//! The paper's quantitative claims, asserted against the models and
//! kernels of this workspace — the table/figure "shape" contract that
//! EXPERIMENTS.md reports in prose.

use idg::telescope::Dataset;
use idg::types::Baseline;
use idg::WorkItem;
use idg_gpusim::{kernel_time, Device};
use idg_perf::{
    attainable_ops_per_sec, degridder_counts, gridder_counts, Architecture, EnergyModel, IDG_RHO,
};

fn paper_scale_items(count: usize) -> Vec<WorkItem> {
    (0..count)
        .map(|i| WorkItem {
            baseline_index: i,
            baseline: Baseline::new(0, 1),
            time_offset: 0,
            nr_timesteps: 128,
            channel_offset: 0,
            nr_channels: 16,
            aterm_index: 0,
            coord_x: 0,
            coord_y: 0,
            w_plane: 0,
        })
        .collect()
}

#[test]
fn claim_17_fmas_per_sincos() {
    // Algorithm 1's caption: "For every evaluation of sin(α) and cos(α),
    // 17 real-valued multiply-add operations are performed."
    let items = paper_scale_items(8);
    for counts in [gridder_counts(&items, 24), degridder_counts(&items, 24)] {
        assert_eq!(counts.rho(), 17.0);
    }
}

#[test]
fn claim_kernels_are_compute_bound() {
    // Sec. VI-B: "On all architectures, both kernels are compute bound
    // measured by their operational intensity."
    let items = paper_scale_items(64);
    let counts = gridder_counts(&items, 24);
    for arch in Architecture::all() {
        let balance = arch.peak_tops() * 1e12 / (arch.mem_bw_gbps * 1e9);
        assert!(
            counts.intensity_dram() > balance,
            "{}: OI {} vs balance {balance}",
            arch.nickname,
            counts.intensity_dram()
        );
    }
}

#[test]
fn claim_pascal_peak_fractions() {
    // Sec. VI-C-2: PASCAL reaches "74% and 55% of the peak for the
    // gridder and degridder kernel, respectively".
    let device = Device::pascal();
    let items = paper_scale_items(64);
    let peak = device.arch.peak_tops() * 1e12;

    let gc = gridder_counts(&items, 24);
    let g_frac = gc.total_ops() as f64 / kernel_time(&device, &gc) / peak;
    assert!(
        (0.64..0.84).contains(&g_frac),
        "gridder fraction {g_frac} (paper 0.74)"
    );

    let dc = degridder_counts(&items, 24);
    let d_frac = dc.total_ops() as f64 / kernel_time(&device, &dc) / peak;
    assert!(
        (0.45..0.65).contains(&d_frac),
        "degridder fraction {d_frac} (paper 0.55)"
    );
    assert!(g_frac > d_frac);
}

#[test]
fn claim_fig15_gflops_per_watt() {
    // Fig. 15: "it achieves 32 and 23 GFlops/W … Second, but still with
    // about 13 GFlops/W, comes FIJI. HASWELL lags far behind …
    // achieving only about 1.5 GFlops/W."
    let items = paper_scale_items(64);
    let gc = gridder_counts(&items, 24);
    let dc = degridder_counts(&items, 24);

    let eff = |device: &Device, counts: &idg_perf::OpCounts| {
        let t = kernel_time(device, counts);
        EnergyModel::new(device.arch.clone()).gflops_per_watt(counts, t, 1.0)
    };
    let pascal = Device::pascal();
    let fiji = Device::fiji();
    let p_g = eff(&pascal, &gc);
    let p_d = eff(&pascal, &dc);
    let f_g = eff(&fiji, &gc);
    assert!(
        (16.0..64.0).contains(&p_g),
        "PASCAL gridder {p_g} (paper 32)"
    );
    assert!(
        (11.0..46.0).contains(&p_d),
        "PASCAL degridder {p_d} (paper 23)"
    );
    assert!((6.5..26.0).contains(&f_g), "FIJI {f_g} (paper 13)");

    // HASWELL via the shared CPU timing model
    let haswell = Architecture::haswell();
    let t = idg_perf::modeled_kernel_seconds(&haswell, &gc, 0.9);
    let h_g = EnergyModel::new(haswell).gflops_per_watt(&gc, t, 1.0);
    assert!((0.7..3.0).contains(&h_g), "HASWELL {h_g} (paper 1.5)");

    assert!(
        p_g / h_g > 8.0,
        "order-of-magnitude efficiency gap: {p_g} vs {h_g}"
    );
}

#[test]
fn claim_sfu_keeps_pascal_flat_in_rho() {
    // Sec. VI-C-1: "Since sine/cosine is handled in a separate
    // processing queue, the performance of PASCAL stays high when ρ
    // decreases. In contrast, on FIJI … a more significant performance
    // degradation is observed for small values of ρ. A similar behavior
    // is observed for HASWELL."
    let pascal = Architecture::pascal();
    let fiji = Architecture::fiji();
    let haswell = Architecture::haswell();
    let frac = |a: &Architecture, rho: f64| attainable_ops_per_sec(a, rho) / (a.peak_tops() * 1e12);
    assert!(frac(&pascal, 8.0) > 0.9);
    assert!(frac(&fiji, 8.0) < 0.6);
    assert!(frac(&haswell, 8.0) < 0.35);
    // at the IDG operating point the ordering defines Fig. 11's ceilings
    assert!(frac(&pascal, IDG_RHO) > frac(&fiji, IDG_RHO));
    assert!(frac(&fiji, IDG_RHO) > frac(&haswell, IDG_RHO));
}

#[test]
fn claim_subgrid_count_matches_benchmark_structure() {
    // Sec. VI-A parameters at reduced scale: the plan must cover every
    // visibility with 24² subgrids and respect the A-term cadence.
    let ds = Dataset::representative(15, 7).expect("representative dataset");
    let plan = idg::Plan::create(&ds.obs, &ds.uvw).unwrap();
    assert_eq!(plan.skipped_visibilities, 0);
    assert_eq!(plan.nr_gridded_visibilities(), ds.obs.nr_visibilities());
    assert_eq!(plan.subgrid_size(), 24);
    for item in &plan.items {
        let first = ds.obs.aterm_index(item.time_offset);
        let last = ds.obs.aterm_index(item.time_offset + item.nr_timesteps - 1);
        assert_eq!(first, last);
    }
}

#[test]
fn claim_gpu_order_of_magnitude_speedup() {
    // Sec. VI-B: "Both GPUs complete the task almost an order of
    // magnitude faster than HASWELL."
    let items = paper_scale_items(256);
    let gc = gridder_counts(&items, 24);
    let haswell_t = idg_perf::modeled_kernel_seconds(&Architecture::haswell(), &gc, 0.9);
    let pascal_t = kernel_time(&Device::pascal(), &gc);
    let fiji_t = kernel_time(&Device::fiji(), &gc);
    assert!(
        haswell_t / pascal_t > 7.0,
        "PASCAL speedup {}",
        haswell_t / pascal_t
    );
    assert!(
        haswell_t / fiji_t > 5.0,
        "FIJI speedup {}",
        haswell_t / fiji_t
    );
}
