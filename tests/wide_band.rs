//! Wide fractional-bandwidth integration tests.
//!
//! Long baselines smear across frequency (uv scales with ν), forcing the
//! planner to split the band into channel groups per subgrid — the
//! "C̃ channels that can be covered" of Sec. V-A. These tests drive that
//! path end-to-end: every kernel must honor each work item's channel
//! range, and the images/predictions must remain correct.

use idg::telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::{dirty_image, model_grid_from_image, Image};

/// 26 % fractional bandwidth on a long-baseline layout: the uv smear at
/// the longest spacings spans ≈ 40 grid pixels — far beyond one subgrid.
fn wide_band_obs() -> Observation {
    Observation::builder()
        .stations(6)
        .timesteps(32)
        .channels(16, 130e6, 2.2e6)
        .grid_size(1024)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .unwrap()
}

fn wide_band_dataset(sky: SkyModel) -> Dataset {
    let obs = wide_band_obs();
    let layout = Layout::uniform(obs.nr_stations, 9_000.0, 701);
    Dataset::simulate(obs, &layout, sky, &IdentityATerm)
}

#[test]
fn plan_splits_channels_and_covers_everything() {
    let ds = wide_band_dataset(SkyModel::empty());
    let plan = idg::Plan::create(&ds.obs, &ds.uvw).unwrap();
    assert_eq!(plan.skipped_visibilities, 0);
    assert_eq!(plan.nr_gridded_visibilities(), ds.obs.nr_visibilities());
    assert!(
        plan.items
            .iter()
            .any(|i| i.nr_channels < ds.obs.nr_channels()),
        "long baselines must split the band"
    );
    assert!(
        plan.items.iter().any(|i| i.channel_offset > 0),
        "groups beyond the first channel exist"
    );
}

#[test]
fn wide_band_source_is_imaged_correctly() {
    let src = PointSource {
        l: 0.004,
        m: -0.003,
        flux: 2.0,
    };
    let ds = wide_band_dataset(SkyModel { sources: vec![src] });
    let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
    let plan = proxy.plan(&ds.uvw).unwrap();
    let (grid, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let image = dirty_image(&grid, &ds.obs, plan.nr_gridded_visibilities());
    let (px, py, peak) = image.peak();
    let ex = Image::lm_to_pixel(&ds.obs, src.l);
    let ey = Image::lm_to_pixel(&ds.obs, src.m);
    assert!(
        px.abs_diff(ex) <= 1 && py.abs_diff(ey) <= 1,
        "peak at ({px},{py}), expected ({ex},{ey})"
    );
    assert!(
        (peak - src.flux as f32).abs() < 0.15 * src.flux as f32,
        "peak {peak}"
    );
}

#[test]
fn wide_band_prediction_matches_direct_on_all_backends() {
    let ds = wide_band_dataset(SkyModel::empty());
    let o = &ds.obs;

    let (px, py, flux) = (540usize, 480usize, 1.25f32);
    let mut model = Image::new(o.grid_size);
    *model.at_mut(py, px) = flux;
    let model_grid = model_grid_from_image(&model, o);

    let direct = idg::telescope::predict_visibilities(
        o,
        &ds.uvw,
        &IdentityATerm,
        &SkyModel {
            sources: vec![PointSource {
                l: Image::pixel_to_lm(o, px),
                m: Image::pixel_to_lm(o, py),
                flux: flux as f64,
            }],
        },
    );

    for backend in [
        Backend::CpuReference,
        Backend::CpuOptimized,
        Backend::GpuPascal,
    ] {
        let proxy = Proxy::new(backend, o.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (pred, _) = proxy
            .degrid(&plan, &model_grid, &ds.uvw, &ds.aterms)
            .unwrap();

        // EVERY channel slot must be written (the degridder scatter must
        // cover every channel group) and match the direct prediction.
        let mut err = 0.0f64;
        let mut mag = 0.0f64;
        let mut zero_slots = 0usize;
        for (a, b) in pred.iter().zip(&direct) {
            if a.pols[0].abs() == 0.0 {
                zero_slots += 1;
            }
            err += (a.pols[0] - b.pols[0]).abs() as f64;
            mag += b.pols[0].abs() as f64;
        }
        assert_eq!(zero_slots, 0, "{backend:?}: unwritten channel slots");
        let rel = err / mag;
        assert!(rel < 0.01, "{backend:?}: wide-band prediction error {rel}");
    }
}

#[test]
fn narrow_band_and_wide_band_plans_agree_on_short_baselines() {
    // A compact layout never needs channel splitting, even at wide
    // fractional bandwidth — the plan should keep whole-band groups.
    let obs = wide_band_obs();
    let layout = Layout::uniform(obs.nr_stations, 400.0, 702);
    let ds = Dataset::simulate(obs, &layout, SkyModel::empty(), &IdentityATerm);
    let plan = idg::Plan::create(&ds.obs, &ds.uvw).unwrap();
    assert!(
        plan.items
            .iter()
            .all(|i| i.nr_channels == ds.obs.nr_channels()),
        "compact arrays keep the whole band per subgrid"
    );
}
