//! Noisy-data imaging sensitivity and data-set persistence.

use idg::telescope::{
    load_dataset, save_dataset, Dataset, IdentityATerm, Layout, NoiseModel, SkyModel,
};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::dirty_image;

fn obs() -> Observation {
    Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .unwrap()
}

#[test]
fn noisy_source_is_recovered_and_noise_integrates_down() {
    let o = obs();
    let layout = Layout::uniform(o.nr_stations, 1200.0, 601);
    let flux = 5.0;
    let mut ds = Dataset::simulate(
        o.clone(),
        &layout,
        SkyModel::single_center(flux),
        &IdentityATerm,
    );

    let noise = NoiseModel {
        sefd_jy: 4000.0,
        seed: 602,
    };
    let sigma = noise.corrupt(&o, &mut ds.visibilities);
    assert!(sigma > 1.0, "visible per-sample noise: sigma = {sigma}");

    let proxy = Proxy::new(Backend::CpuOptimized, o.clone()).unwrap();
    let plan = proxy.plan(&ds.uvw).unwrap();
    let (grid, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let image = dirty_image(&grid, &o, plan.nr_gridded_visibilities());

    // the source still stands out clearly
    let (px, py, peak) = image.peak();
    assert_eq!((px, py), (128, 128));
    assert!((peak - flux as f32).abs() < 0.5, "peak {peak} vs {flux}");

    // Difference imaging isolates the thermal noise from the source's
    // PSF sidelobes: image(noisy) − image(clean) must integrate down
    // roughly like σ/√N_vis (taper weighting modifies the naive
    // radiometer estimate by an O(1) factor).
    let clean = Dataset::simulate(
        o.clone(),
        &layout,
        SkyModel::single_center(flux),
        &IdentityATerm,
    );
    let (grid_clean, _) = proxy
        .grid(&plan, &clean.uvw, &clean.visibilities, &clean.aterms)
        .unwrap();
    let image_clean = dirty_image(&grid_clean, &o, plan.nr_gridded_visibilities());

    let expected_rms = sigma / (plan.nr_gridded_visibilities() as f64).sqrt();
    let mut acc = 0.0f64;
    let mut count = 0usize;
    for y in (40usize..216).step_by(3) {
        for x in (40usize..216).step_by(3) {
            let d = (image.at(y, x) - image_clean.at(y, x)) as f64;
            acc += d * d;
            count += 1;
        }
    }
    let measured_rms = (acc / count as f64).sqrt();
    assert!(
        measured_rms > 0.3 * expected_rms && measured_rms < 5.0 * expected_rms,
        "image noise {measured_rms} vs radiometer estimate {expected_rms}"
    );
    // and the detection is significant
    assert!(peak as f64 > 10.0 * measured_rms, "strong detection");
}

#[test]
fn saved_dataset_grids_identically_after_reload() {
    let o = obs();
    let layout = Layout::uniform(o.nr_stations, 1000.0, 603);
    let ds = Dataset::simulate(
        o.clone(),
        &layout,
        SkyModel::random(&o, 3, 0.5, 604),
        &IdentityATerm,
    );

    let dir = std::env::temp_dir().join("idg-io-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.idg");
    save_dataset(&ds, &path).unwrap();
    let loaded = load_dataset(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let proxy = Proxy::new(Backend::CpuOptimized, o.clone()).unwrap();
    let plan_a = proxy.plan(&ds.uvw).unwrap();
    let plan_b = proxy.plan(&loaded.uvw).unwrap();
    assert_eq!(plan_a.nr_subgrids(), plan_b.nr_subgrids());

    let (grid_a, _) = proxy
        .grid(&plan_a, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let (grid_b, _) = proxy
        .grid(&plan_b, &loaded.uvw, &loaded.visibilities, &loaded.aterms)
        .unwrap();
    assert_eq!(
        grid_a.as_slice(),
        grid_b.as_slice(),
        "bit-identical gridding"
    );
}
