//! End-to-end accuracy: the full IDG pipeline against the direct
//! measurement-equation oracle.
//!
//! These tests cross five crates (telescope → plan → kernels → fft →
//! imaging) and pin the numbers a user of the library cares about:
//! point-source flux recovery, astrometry, prediction accuracy, and the
//! A-term round trip.

use idg::telescope::{ATerms, Dataset, GaussianBeam, IdentityATerm, Layout, PointSource, SkyModel};
use idg::types::Observation;
use idg::{Backend, Proxy};
use idg_imaging::{beam_weight_image, dirty_image, model_grid_from_image, Image};

fn obs() -> Observation {
    Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .build()
        .unwrap()
}

#[test]
fn multi_source_fluxes_and_positions_are_recovered() {
    let sources = vec![
        PointSource {
            l: 0.0,
            m: 0.0,
            flux: 5.0,
        },
        PointSource {
            l: 0.009,
            m: 0.006,
            flux: 2.0,
        },
        PointSource {
            l: -0.012,
            m: -0.004,
            flux: 3.0,
        },
    ];
    // Earth-rotation synthesis (64 × 60 s ≈ 16° of rotation) so the PSF
    // sidelobes of the 28-baseline array stay well below the flux
    // tolerance for any layout realization. With the default snapshot
    // coverage (integration_time = 1 s) the sidelobes of the 5 Jy source
    // reach ±40 % and the recovered fluxes depend on the RNG stream that
    // realizes the station layout, not on the pipeline under test.
    let o = Observation::builder()
        .stations(8)
        .timesteps(64)
        .channels(4, 150e6, 2e6)
        .grid_size(256)
        .subgrid_size(24)
        .kernel_size(9)
        .aterm_interval(32)
        .image_size(0.05)
        .integration_time(60.0)
        .build()
        .unwrap();
    let layout = Layout::uniform(o.nr_stations, 1500.0, 301);
    let ds = Dataset::simulate(
        o.clone(),
        &layout,
        SkyModel {
            sources: sources.clone(),
        },
        &IdentityATerm,
    );

    let proxy = Proxy::new(Backend::CpuOptimized, o.clone()).unwrap();
    let plan = proxy.plan(&ds.uvw).unwrap();
    assert_eq!(plan.skipped_visibilities, 0);
    let (grid, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let image = dirty_image(&grid, &o, plan.nr_gridded_visibilities());

    for src in &sources {
        let ex = Image::lm_to_pixel(&o, src.l);
        let ey = Image::lm_to_pixel(&o, src.m);
        // search the 3×3 neighbourhood (sub-pixel positions)
        let mut local = f32::MIN;
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                local = local.max(image.at((ey as i64 + dy) as usize, (ex as i64 + dx) as usize));
            }
        }
        // fluxes within 15 % despite PSF sidelobe confusion from the
        // other sources
        assert!(
            (local - src.flux as f32).abs() < 0.15 * src.flux as f32 + 0.3,
            "source at ({},{}) flux {} recovered as {local}",
            ex,
            ey,
            src.flux
        );

        // The sharper, realization-independent pin: the IDG dirty value
        // at the source pixel must match the direct-DFT dirty value of
        // the same visibilities (the true image including all sidelobe
        // confusion) to sub-percent. This catches pipeline bugs the flux
        // check above would hide inside its sidelobe allowance.
        let oracle = direct_dft_dirty(&o, &ds.uvw, &ds.visibilities, ex, ey);
        let idg = image.at(ey, ex) as f64;
        assert!(
            (idg - oracle).abs() < 0.01 * src.flux + 0.02,
            "pixel ({ex},{ey}): IDG dirty {idg} vs direct DFT {oracle}"
        );
    }
}

/// Direct-DFT dirty-image value at pixel `(px, py)`: the Stokes-I
/// inverse measurement equation evaluated per visibility in f64, with
/// the same `1/W` natural-weight normalization as [`dirty_image`]. The
/// ground truth the gridder+FFT+adder pipeline approximates.
fn direct_dft_dirty(
    o: &Observation,
    uvw: &[idg::Uvw],
    vis: &[idg::types::Visibility<f32>],
    px: usize,
    py: usize,
) -> f64 {
    const C: f64 = 299_792_458.0;
    let l = Image::pixel_to_lm(o, px);
    let m = Image::pixel_to_lm(o, py);
    let r2 = l * l + m * m;
    let n = r2 / (1.0 + (1.0 - r2).sqrt());
    let nr_chan = o.nr_channels();
    let mut acc = 0.0f64;
    for (i, bl_uvw) in uvw.iter().enumerate() {
        for (c, freq) in o.frequencies.iter().enumerate() {
            let v = vis[i * nr_chan + c];
            let stokes_i = (v.pols[0] + v.pols[3]).scale(0.5);
            let phase = 2.0 * std::f64::consts::PI * freq / C
                * (bl_uvw.u as f64 * l + bl_uvw.v as f64 * m + bl_uvw.w as f64 * n);
            acc += stokes_i.re as f64 * phase.cos() - stokes_i.im as f64 * phase.sin();
        }
    }
    acc / (uvw.len() * nr_chan) as f64
}

#[test]
fn degridding_matches_direct_prediction_to_sub_percent() {
    // Build a 3-component model image, degrid it on every back-end and
    // compare with the analytic measurement-equation prediction.
    let o = obs();
    let layout = Layout::uniform(o.nr_stations, 1200.0, 302);
    let ds = Dataset::simulate(o.clone(), &layout, SkyModel::empty(), &IdentityATerm);

    let pixels = [
        (150usize, 110usize, 1.5f32),
        (128, 128, 2.0),
        (96, 160, 0.75),
    ];
    let mut model = Image::new(o.grid_size);
    let mut sources = Vec::new();
    for (px, py, flux) in pixels {
        *model.at_mut(py, px) += flux;
        sources.push(PointSource {
            l: Image::pixel_to_lm(&o, px),
            m: Image::pixel_to_lm(&o, py),
            flux: flux as f64,
        });
    }
    let model_grid = model_grid_from_image(&model, &o);
    let direct =
        idg::telescope::predict_visibilities(&o, &ds.uvw, &IdentityATerm, &SkyModel { sources });

    for backend in Backend::all() {
        let proxy = Proxy::new(backend, o.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (pred, _) = proxy
            .degrid(&plan, &model_grid, &ds.uvw, &ds.aterms)
            .unwrap();

        let mut err = 0.0f64;
        let mut mag = 0.0f64;
        for (a, b) in pred.iter().zip(&direct) {
            err += (a.pols[0] - b.pols[0]).abs() as f64;
            mag += b.pols[0].abs() as f64;
        }
        let rel = err / mag;
        assert!(
            rel < 0.01,
            "{backend:?}: mean relative prediction error {rel}"
        );
    }
}

#[test]
fn beam_corruption_is_corrected_in_the_image() {
    // Observe through a drifting Gaussian beam; imaging with the matched
    // A-terms recovers substantially more flux than ignoring them.
    let o = obs();
    let src = PointSource {
        l: 0.012,
        m: -0.008,
        flux: 2.0,
    };
    let layout = Layout::uniform(o.nr_stations, 1200.0, 303);
    let beam = GaussianBeam::new(&o, 0.55, 304);
    let ds = Dataset::simulate(o.clone(), &layout, SkyModel { sources: vec![src] }, &beam);

    let proxy = Proxy::new(Backend::CpuOptimized, o.clone()).unwrap();
    let plan = proxy.plan(&ds.uvw).unwrap();
    let (ex, ey) = (Image::lm_to_pixel(&o, src.l), Image::lm_to_pixel(&o, src.m));

    let identity = ATerms::identity(&o);
    let (grid_raw, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &identity)
        .unwrap();
    let raw = dirty_image(&grid_raw, &o, plan.nr_gridded_visibilities()).at(ey, ex);

    // IDG applies the adjoint sandwich; recovering fluxes additionally
    // divides by the beam-weight map (flat-gain correction), like every
    // production imager.
    let (grid_cor, _) = proxy
        .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();
    let weighted = dirty_image(&grid_cor, &o, plan.nr_gridded_visibilities());
    let weight = beam_weight_image(&ds.aterms, &o, 0.01);
    let cor = weighted.at(ey, ex) / weight.at(ey, ex);

    assert!(
        cor > raw,
        "correction recovers beam-attenuated flux: {cor} vs {raw}"
    );
    assert!(
        (cor - src.flux as f32).abs() < 0.2 * src.flux as f32,
        "corrected flux {cor} vs true {}",
        src.flux
    );
}

#[test]
fn w_stacking_path_produces_equivalent_grid() {
    // Enable W-stacking in the plan (w_step > 0): the partitioning
    // changes (items split per w-plane) but the gridded result must stay
    // numerically consistent because IDG evaluates w-phases per pixel.
    let base = obs();
    let layout = Layout::uniform(base.nr_stations, 1500.0, 305);
    let sky = SkyModel::random(&base, 4, 0.5, 306);
    let ds = Dataset::simulate(base.clone(), &layout, sky.clone(), &IdentityATerm);

    let mut with_w = base.clone();
    with_w.w_step = 30.0;

    let p0 = Proxy::new(Backend::CpuOptimized, base.clone()).unwrap();
    let plan0 = p0.plan(&ds.uvw).unwrap();
    let (g0, _) = p0
        .grid(&plan0, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    let p1 = Proxy::new(Backend::CpuOptimized, with_w).unwrap();
    let plan1 = p1.plan(&ds.uvw).unwrap();
    assert!(plan1.nr_subgrids() >= plan0.nr_subgrids());
    assert!(plan1.stats().nr_w_planes > 1, "w-stacking splits planes");
    let (g1, _) = p1
        .grid(&plan1, &ds.uvw, &ds.visibilities, &ds.aterms)
        .unwrap();

    // images agree (grids differ only by per-item layout rounding)
    let i0 = dirty_image(&g0, &base, plan0.nr_gridded_visibilities());
    let i1 = dirty_image(&g1, &base, plan1.nr_gridded_visibilities());
    let peak0 = i0.peak();
    let peak1 = i1.peak();
    assert_eq!((peak0.0, peak0.1), (peak1.0, peak1.1));
    assert!((peak0.2 - peak1.2).abs() < 0.05 * peak0.2.abs());
}
