//! Property-based integration tests over the full pipeline.
//!
//! Random observation geometries, layouts and skies, checked against the
//! pipeline's invariants: plan coverage, adjoint linearity, backend
//! equivalence and round-trip consistency.

use idg::telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg::types::Observation;
use idg::{Backend, Plan, Proxy};
use proptest::prelude::*;

fn arbitrary_obs() -> impl Strategy<Value = Observation> {
    (4usize..8, 16usize..48, 1usize..5, 0usize..3).prop_map(
        |(stations, timesteps, channels, size_sel)| {
            let (grid, subgrid) = [(128, 16), (256, 16), (256, 24)][size_sel];
            Observation::builder()
                .stations(stations)
                .timesteps(timesteps)
                .channels(channels, 130e6, 2e6)
                .grid_size(grid)
                .subgrid_size(subgrid)
                .kernel_size(5)
                .aterm_interval(16)
                .image_size(0.05)
                .build()
                .unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn plan_always_partitions_all_visibilities(
        obs in arbitrary_obs(),
        radius in 300.0..2000.0f64,
        seed in 0u64..1000,
    ) {
        let layout = Layout::uniform(obs.nr_stations, radius, seed);
        let uvw = idg::telescope::UvwGenerator::representative(&layout, 1.0)
            .generate(&obs);
        let plan = Plan::create(&obs, &uvw).unwrap();
        prop_assert_eq!(
            plan.nr_gridded_visibilities() + plan.skipped_visibilities,
            obs.nr_visibilities()
        );
        for item in &plan.items {
            prop_assert!(item.nr_timesteps >= 1);
            prop_assert!(item.coord_x + obs.subgrid_size <= obs.grid_size);
            prop_assert!(item.coord_y + obs.subgrid_size <= obs.grid_size);
        }
    }

    #[test]
    fn gridding_is_linear_and_backends_agree(
        obs in arbitrary_obs(),
        seed in 0u64..1000,
        gain in 0.5..2.0f32,
    ) {
        let layout = Layout::uniform(obs.nr_stations, 900.0, seed);
        let sky = SkyModel::random(&obs, 3, 0.5, seed ^ 77);
        let ds = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);
        let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        prop_assume!(plan.nr_subgrids() > 0);

        // linearity: grid(g·V) = g·grid(V)
        let (grid1, _) = proxy.grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms).unwrap();
        let scaled: Vec<_> = ds.visibilities.iter().map(|v| v.scale(gain)).collect();
        let (grid2, _) = proxy.grid(&plan, &ds.uvw, &scaled, &ds.aterms).unwrap();
        let scale_ref = grid1.as_slice().iter().map(|c| c.abs()).fold(1e-9f32, f32::max);
        for (a, b) in grid2.as_slice().iter().zip(grid1.as_slice()) {
            prop_assert!((b.scale(gain) - *a).abs() / scale_ref < 2e-3);
        }

        // backend equivalence (reference f64 vs optimized f32)
        let gold = Proxy::new(Backend::CpuReference, obs.clone()).unwrap();
        let (grid3, _) = gold.grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms).unwrap();
        for (a, b) in grid1.as_slice().iter().zip(grid3.as_slice()) {
            prop_assert!((*a - *b).abs() / scale_ref < 2e-3);
        }
    }

    #[test]
    fn degrid_of_gridded_data_is_bounded(
        obs in arbitrary_obs(),
        seed in 0u64..1000,
    ) {
        // degrid(grid(V)) is a local average operator: outputs stay
        // bounded by the input magnitude scale (no energy blow-up).
        let layout = Layout::uniform(obs.nr_stations, 900.0, seed);
        let sky = SkyModel::random(&obs, 3, 0.5, seed ^ 31);
        let ds = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);
        let proxy = Proxy::new(Backend::CpuOptimized, obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        prop_assume!(plan.nr_subgrids() > 0);

        let (grid, _) = proxy.grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms).unwrap();
        let (pred, _) = proxy.degrid(&plan, &grid, &ds.uvw, &ds.aterms).unwrap();

        let in_max = ds
            .visibilities
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(0.0f32, f32::max);
        let out_max = pred
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(0.0f32, f32::max);
        // each output averages ≤ T̃·C̃ taper-weighted inputs; bound by
        // a generous constant times the input scale
        prop_assert!(out_max <= 50.0 * in_max + 1e-3, "{out_max} vs {in_max}");
        prop_assert!(out_max.is_finite());
    }
}
