//! Error type shared across the IDG workspace.
//!
//! [`IdgError`] is *classified*: every variant knows whether it is
//! transient (worth retrying the failed unit of work) or persistent
//! (retrying cannot help; the caller must degrade gracefully, e.g. by
//! re-executing the failed jobs on the CPU back-end), and device-fault
//! variants carry the job index and pipeline site they occurred at so
//! schedulers can re-enqueue exactly the failed HtoD → kernel → DtoH
//! chain.

/// Where in the device pipeline a fault occurred.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// During the host-to-device transfer of a job's inputs.
    HtoD,
    /// During kernel execution.
    Kernel,
    /// During the device-to-host transfer of a job's outputs.
    DtoH,
    /// During device-memory allocation.
    Alloc,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultSite::HtoD => "HtoD",
            FaultSite::Kernel => "kernel",
            FaultSite::DtoH => "DtoH",
            FaultSite::Alloc => "alloc",
        })
    }
}

/// Errors produced by the IDG library.
#[derive(Debug, Clone, PartialEq)]
pub enum IdgError {
    /// A configuration value is out of range or inconsistent.
    InvalidParameter(String),
    /// Input array dimensions disagree with the observation parameters.
    ShapeMismatch {
        /// What was being checked.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Observed element count.
        actual: usize,
    },
    /// A visibility falls outside the representable uv-range of the grid.
    UvOutOfRange {
        /// u in wavelengths.
        u: f64,
        /// v in wavelengths.
        v: f64,
        /// Maximum representable |u|/|v| in wavelengths.
        max: f64,
    },
    /// FFT size not supported by the planner.
    UnsupportedFftSize(usize),
    /// The device model ran out of (modeled) device memory.
    DeviceOutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// A transferred buffer failed its integrity checksum (a bit flipped
    /// in flight). Transient: re-transferring the job's chain heals it.
    TransferCorruption {
        /// Job (work group) index whose transfer was corrupted.
        job: usize,
        /// Which transfer engine carried the corrupted buffer.
        site: FaultSite,
    },
    /// A kernel launch faulted (the device equivalent of a crashed
    /// launch / ECC error). Transient: the launch can be replayed.
    KernelFault {
        /// Job (work group) index whose kernel faulted.
        job: usize,
    },
    /// A stream operation stalled past its watchdog timeout. Transient.
    StreamStall {
        /// Job (work group) index whose operation stalled.
        job: usize,
        /// Engine the stalled operation was queued on.
        site: FaultSite,
        /// Modeled seconds lost before the watchdog fired.
        seconds: f64,
    },
    /// An operating-system I/O failure (file read/write).
    Io(String),
    /// An internal invariant was violated (bug).
    Internal(String),
}

impl IdgError {
    /// Whether retrying the failed unit of work can plausibly succeed.
    ///
    /// Transfer corruption, kernel faults and stream stalls are
    /// one-shot events: replaying the job's HtoD → kernel → DtoH chain
    /// heals them. Everything else (bad inputs, exhausted device
    /// memory, I/O failures, internal bugs) reproduces on retry and
    /// must instead be handled by degradation or by the caller.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            IdgError::TransferCorruption { .. }
                | IdgError::KernelFault { .. }
                | IdgError::StreamStall { .. }
        )
    }

    /// Whether the failure can be resolved by *degrading* the device's
    /// execution configuration rather than by retrying as-is.
    ///
    /// Device memory exhaustion is the canonical case: a plain replay
    /// allocates the same buffers and fails identically, but shrinking
    /// the working set (fewer jobs in flight, fewer pipeline buffers)
    /// can make the same work fit. Transient faults are *not*
    /// degradable — they heal on retry without giving anything up —
    /// and input/internal errors reproduce under any configuration.
    pub fn is_degradable(&self) -> bool {
        matches!(self, IdgError::DeviceOutOfMemory { .. })
    }

    /// The job (work group) index a device fault is attributed to.
    pub fn job(&self) -> Option<usize> {
        match self {
            IdgError::TransferCorruption { job, .. }
            | IdgError::KernelFault { job }
            | IdgError::StreamStall { job, .. } => Some(*job),
            _ => None,
        }
    }

    /// The pipeline site a device fault occurred at.
    pub fn fault_site(&self) -> Option<FaultSite> {
        match self {
            IdgError::TransferCorruption { site, .. } | IdgError::StreamStall { site, .. } => {
                Some(*site)
            }
            IdgError::KernelFault { .. } => Some(FaultSite::Kernel),
            IdgError::DeviceOutOfMemory { .. } => Some(FaultSite::Alloc),
            _ => None,
        }
    }
}

impl std::fmt::Display for IdgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdgError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            IdgError::ShapeMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch for {what}: expected {expected}, got {actual}"
                )
            }
            IdgError::UvOutOfRange { u, v, max } => {
                write!(
                    f,
                    "uv ({u:.1}, {v:.1}) outside representable range ±{max:.1} wavelengths"
                )
            }
            IdgError::UnsupportedFftSize(n) => write!(f, "unsupported FFT size {n}"),
            IdgError::DeviceOutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, available {available} B"
                )
            }
            IdgError::TransferCorruption { job, site } => {
                write!(f, "checksum mismatch on {site} transfer of job {job}")
            }
            IdgError::KernelFault { job } => write!(f, "kernel fault in job {job}"),
            IdgError::StreamStall { job, site, seconds } => {
                write!(
                    f,
                    "stream stall on {site} of job {job} ({seconds:.3} s watchdog timeout)"
                )
            }
            IdgError::Io(msg) => write!(f, "i/o error: {msg}"),
            IdgError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for IdgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IdgError::InvalidParameter("x".into());
        assert_eq!(e.to_string(), "invalid parameter: x");
        let e = IdgError::ShapeMismatch {
            what: "visibilities",
            expected: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("visibilities"));
        let e = IdgError::UvOutOfRange {
            u: 1.0,
            v: 2.0,
            max: 0.5,
        };
        assert!(e.to_string().contains("outside"));
        let e = IdgError::UnsupportedFftSize(7);
        assert!(e.to_string().contains('7'));
        let e = IdgError::DeviceOutOfMemory {
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("device out of memory"));
        let e = IdgError::Internal("bug".into());
        assert!(e.to_string().contains("bug"));
        let e = IdgError::Io("disk on fire".into());
        assert!(e.to_string().contains("i/o error"));
    }

    #[test]
    fn fault_variants_render_their_site_and_job() {
        let e = IdgError::TransferCorruption {
            job: 7,
            site: FaultSite::HtoD,
        };
        assert!(e.to_string().contains("HtoD") && e.to_string().contains('7'));
        let e = IdgError::KernelFault { job: 3 };
        assert!(e.to_string().contains("job 3"));
        let e = IdgError::StreamStall {
            job: 2,
            site: FaultSite::DtoH,
            seconds: 0.25,
        };
        assert!(e.to_string().contains("DtoH"));
    }

    #[test]
    fn transience_classification() {
        assert!(IdgError::TransferCorruption {
            job: 0,
            site: FaultSite::HtoD
        }
        .is_transient());
        assert!(IdgError::KernelFault { job: 0 }.is_transient());
        assert!(IdgError::StreamStall {
            job: 0,
            site: FaultSite::Kernel,
            seconds: 1.0
        }
        .is_transient());
        assert!(!IdgError::DeviceOutOfMemory {
            requested: 1,
            available: 0
        }
        .is_transient());
        assert!(!IdgError::InvalidParameter("x".into()).is_transient());
        assert!(!IdgError::Io("x".into()).is_transient());
        assert!(!IdgError::Internal("x".into()).is_transient());
    }

    #[test]
    fn degradability_classification() {
        // OOM is the only degradable error: non-transient, but a
        // smaller working set can resolve it.
        let oom = IdgError::DeviceOutOfMemory {
            requested: 8,
            available: 4,
        };
        assert!(oom.is_degradable());
        assert!(!oom.is_transient());
        // Transient faults heal on retry; degrading would give up
        // throughput for nothing.
        assert!(!IdgError::TransferCorruption {
            job: 0,
            site: FaultSite::HtoD
        }
        .is_degradable());
        assert!(!IdgError::KernelFault { job: 0 }.is_degradable());
        assert!(!IdgError::StreamStall {
            job: 0,
            site: FaultSite::Kernel,
            seconds: 1.0
        }
        .is_degradable());
        // Reproducible-under-any-configuration errors.
        assert!(!IdgError::InvalidParameter("x".into()).is_degradable());
        assert!(!IdgError::Io("x".into()).is_degradable());
        assert!(!IdgError::Internal("x".into()).is_degradable());
    }

    #[test]
    fn fault_attribution_accessors() {
        let e = IdgError::TransferCorruption {
            job: 5,
            site: FaultSite::DtoH,
        };
        assert_eq!(e.job(), Some(5));
        assert_eq!(e.fault_site(), Some(FaultSite::DtoH));
        let e = IdgError::KernelFault { job: 1 };
        assert_eq!(e.fault_site(), Some(FaultSite::Kernel));
        let e = IdgError::DeviceOutOfMemory {
            requested: 2,
            available: 1,
        };
        assert_eq!(e.job(), None);
        assert_eq!(e.fault_site(), Some(FaultSite::Alloc));
        assert_eq!(IdgError::Internal("x".into()).fault_site(), None);
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<IdgError>();
    }
}
