//! Error type shared across the IDG workspace.

/// Errors produced by the IDG library.
#[derive(Debug, Clone, PartialEq)]
pub enum IdgError {
    /// A configuration value is out of range or inconsistent.
    InvalidParameter(String),
    /// Input array dimensions disagree with the observation parameters.
    ShapeMismatch {
        /// What was being checked.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Observed element count.
        actual: usize,
    },
    /// A visibility falls outside the representable uv-range of the grid.
    UvOutOfRange {
        /// u in wavelengths.
        u: f64,
        /// v in wavelengths.
        v: f64,
        /// Maximum representable |u|/|v| in wavelengths.
        max: f64,
    },
    /// FFT size not supported by the planner.
    UnsupportedFftSize(usize),
    /// The device model ran out of (modeled) device memory.
    DeviceOutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// An internal invariant was violated (bug).
    Internal(String),
}

impl std::fmt::Display for IdgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdgError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            IdgError::ShapeMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch for {what}: expected {expected}, got {actual}"
                )
            }
            IdgError::UvOutOfRange { u, v, max } => {
                write!(
                    f,
                    "uv ({u:.1}, {v:.1}) outside representable range ±{max:.1} wavelengths"
                )
            }
            IdgError::UnsupportedFftSize(n) => write!(f, "unsupported FFT size {n}"),
            IdgError::DeviceOutOfMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, available {available} B"
                )
            }
            IdgError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for IdgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IdgError::InvalidParameter("x".into());
        assert_eq!(e.to_string(), "invalid parameter: x");
        let e = IdgError::ShapeMismatch {
            what: "visibilities",
            expected: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("visibilities"));
        let e = IdgError::UvOutOfRange {
            u: 1.0,
            v: 2.0,
            max: 0.5,
        };
        assert!(e.to_string().contains("outside"));
        let e = IdgError::UnsupportedFftSize(7);
        assert!(e.to_string().contains('7'));
        let e = IdgError::DeviceOutOfMemory {
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("device out of memory"));
        let e = IdgError::Internal("bug".into());
        assert!(e.to_string().contains("bug"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<IdgError>();
    }
}
