//! # idg-types — fundamental data types for Image-Domain Gridding
//!
//! This crate provides the shared vocabulary of the IDG reproduction:
//! complex numbers tuned for FMA-friendly accumulation, 2×2 Jones matrices
//! describing direction-dependent effects (A-terms), visibility and
//! (u,v,w)-coordinate records, grid and subgrid containers, and the
//! observation-parameter bundle that every other crate consumes.
//!
//! Everything here is deliberately dependency-free: the numeric tower is
//! built from scratch (see [`float::Float`]) so that the whole workspace
//! can be audited down to primitive operations — important for a paper
//! reproduction whose headline analysis is about *operation counts*.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![allow(clippy::should_implement_trait)] // add/sub/mul/div methods on math types are deliberate

pub mod complex;
pub mod error;
pub mod float;
pub mod grid;
pub mod jones;
pub mod params;
pub mod vis;

pub use complex::{Cf32, Cf64, Complex};
pub use error::{FaultSite, IdgError};
pub use float::Float;
pub use grid::{Grid, Subgrid, NR_POLARIZATIONS};
pub use jones::Jones;
pub use params::{Observation, ObservationBuilder, SPEED_OF_LIGHT};
pub use vis::{Baseline, Uvw, Visibility};

/// Result alias used across the IDG workspace.
pub type Result<T> = std::result::Result<T, IdgError>;
