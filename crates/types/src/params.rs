//! Observation parameters.
//!
//! [`Observation`] bundles everything the planner, kernels and simulators
//! need to agree on: array size, time/frequency sampling, image geometry
//! and IDG tile configuration. The defaults of [`ObservationBuilder`]
//! reproduce the paper's benchmark data set (Sec. VI-A): 150 stations,
//! 8192 time steps of 1 s, 16 channels, A-terms updated every 256 time
//! steps, 24×24 subgrids on a 2048×2048 grid.

use crate::error::IdgError;
use crate::vis::Baseline;

/// Speed of light in m/s; converts uvw meters to wavelengths.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Immutable description of one observation / imaging run.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Number of stations in the array.
    pub nr_stations: usize,
    /// Number of time steps per baseline.
    pub nr_timesteps: usize,
    /// Integration time per step, seconds.
    pub integration_time: f64,
    /// Channel center frequencies, Hz (length = number of channels).
    pub frequencies: Vec<f64>,
    /// Master grid edge length, pixels.
    pub grid_size: usize,
    /// Subgrid edge length, pixels (the paper uses 24).
    pub subgrid_size: usize,
    /// Field-of-view edge length, radians (the "image size" of IDG).
    pub image_size: f64,
    /// Support of the combined A-term/W-term/taper kernel, pixels; the
    /// planner reserves this margin around the visibilities it covers.
    pub kernel_size: usize,
    /// A-term update interval, in time steps (256 in the paper).
    pub aterm_interval: usize,
    /// Maximum number of time steps per subgrid (`T̃_max`, Sec. V-A);
    /// bounds per-work-item compute and memory.
    pub max_timesteps_per_subgrid: usize,
    /// W-stacking step in wavelengths; `0.0` disables W-layering.
    pub w_step: f64,
}

impl Observation {
    /// Start building an observation with the paper's defaults.
    pub fn builder() -> ObservationBuilder {
        ObservationBuilder::default()
    }

    /// Number of frequency channels.
    #[inline]
    pub fn nr_channels(&self) -> usize {
        self.frequencies.len()
    }

    /// Number of distinct baselines (no auto-correlations).
    #[inline]
    pub fn nr_baselines(&self) -> usize {
        self.nr_stations * (self.nr_stations - 1) / 2
    }

    /// All baselines in canonical order.
    pub fn baselines(&self) -> Vec<Baseline> {
        Baseline::all(self.nr_stations)
    }

    /// Total number of visibilities = baselines × time steps × channels.
    #[inline]
    pub fn nr_visibilities(&self) -> usize {
        self.nr_baselines() * self.nr_timesteps * self.nr_channels()
    }

    /// Number of A-term intervals covering the observation.
    #[inline]
    pub fn nr_aterm_intervals(&self) -> usize {
        self.nr_timesteps.div_ceil(self.aterm_interval)
    }

    /// The A-term interval index a time step falls into.
    #[inline]
    pub fn aterm_index(&self, timestep: usize) -> usize {
        timestep / self.aterm_interval
    }

    /// Image-domain pixel scale: radians per grid pixel.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.image_size / self.grid_size as f64
    }

    /// Map a (u or v) coordinate in *wavelengths* to a fractional grid
    /// pixel coordinate; the grid center (DC) sits at `grid_size/2`.
    #[inline]
    pub fn uv_to_pixel(&self, uv_wavelengths: f64) -> f64 {
        uv_wavelengths * self.image_size + self.grid_size as f64 / 2.0
    }

    /// Inverse of [`Self::uv_to_pixel`].
    #[inline]
    pub fn pixel_to_uv(&self, pixel: f64) -> f64 {
        (pixel - self.grid_size as f64 / 2.0) / self.image_size
    }

    /// Longest wavelength in the frequency set, meters.
    pub fn max_wavelength(&self) -> f64 {
        let f_min = self
            .frequencies
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        SPEED_OF_LIGHT / f_min
    }

    /// Shortest wavelength, meters.
    pub fn min_wavelength(&self) -> f64 {
        let f_max = self.frequencies.iter().copied().fold(0.0f64, f64::max);
        SPEED_OF_LIGHT / f_max
    }

    /// Largest |u| or |v| (in wavelengths) the grid can represent without
    /// the kernel margin spilling off the edge.
    pub fn max_uv_wavelengths(&self) -> f64 {
        ((self.grid_size - self.subgrid_size) as f64 / 2.0) / self.image_size
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), IdgError> {
        if self.nr_stations < 2 {
            return Err(IdgError::InvalidParameter(
                "nr_stations must be >= 2".into(),
            ));
        }
        if self.frequencies.is_empty() {
            return Err(IdgError::InvalidParameter(
                "frequencies must be non-empty".into(),
            ));
        }
        if self.nr_timesteps == 0 {
            return Err(IdgError::InvalidParameter(
                "nr_timesteps must be > 0".into(),
            ));
        }
        if self.subgrid_size >= self.grid_size {
            return Err(IdgError::InvalidParameter(
                "subgrid_size must be smaller than grid_size".into(),
            ));
        }
        if self.kernel_size >= self.subgrid_size {
            return Err(IdgError::InvalidParameter(
                "kernel_size must be smaller than subgrid_size".into(),
            ));
        }
        if self.image_size <= 0.0 || self.image_size > 2.0 || self.image_size.is_nan() {
            return Err(IdgError::InvalidParameter(
                "image_size must be in (0, 2] radians".into(),
            ));
        }
        if self.aterm_interval == 0 || self.max_timesteps_per_subgrid == 0 {
            return Err(IdgError::InvalidParameter(
                "aterm_interval and max_timesteps_per_subgrid must be > 0".into(),
            ));
        }
        if self.frequencies.iter().any(|f| *f <= 0.0 || f.is_nan()) {
            return Err(IdgError::InvalidParameter(
                "frequencies must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`Observation`]; defaults reproduce the paper's benchmark.
#[derive(Clone, Debug)]
pub struct ObservationBuilder {
    nr_stations: usize,
    nr_timesteps: usize,
    integration_time: f64,
    start_frequency: f64,
    channel_width: f64,
    nr_channels: usize,
    grid_size: usize,
    subgrid_size: usize,
    image_size: f64,
    kernel_size: usize,
    aterm_interval: usize,
    max_timesteps_per_subgrid: usize,
    w_step: f64,
}

impl Default for ObservationBuilder {
    fn default() -> Self {
        Self {
            nr_stations: 150,
            nr_timesteps: 8192,
            integration_time: 1.0,
            start_frequency: 150e6, // SKA1-low band center region
            channel_width: 1e6,
            nr_channels: 16,
            grid_size: 2048,
            subgrid_size: 24,
            image_size: 0.05, // ~2.9 degrees FoV
            kernel_size: 9,
            aterm_interval: 256,
            max_timesteps_per_subgrid: 128,
            w_step: 0.0,
        }
    }
}

impl ObservationBuilder {
    /// Set the number of stations.
    pub fn stations(mut self, n: usize) -> Self {
        self.nr_stations = n;
        self
    }
    /// Set the number of time steps.
    pub fn timesteps(mut self, n: usize) -> Self {
        self.nr_timesteps = n;
        self
    }
    /// Set the integration time in seconds.
    pub fn integration_time(mut self, t: f64) -> Self {
        self.integration_time = t;
        self
    }
    /// Set the channel layout: `nr` channels starting at `start` Hz spaced
    /// `width` Hz apart.
    pub fn channels(mut self, nr: usize, start: f64, width: f64) -> Self {
        self.nr_channels = nr;
        self.start_frequency = start;
        self.channel_width = width;
        self
    }
    /// Set the grid edge length in pixels.
    pub fn grid_size(mut self, n: usize) -> Self {
        self.grid_size = n;
        self
    }
    /// Set the subgrid edge length in pixels.
    pub fn subgrid_size(mut self, n: usize) -> Self {
        self.subgrid_size = n;
        self
    }
    /// Set the field of view in radians.
    pub fn image_size(mut self, s: f64) -> Self {
        self.image_size = s;
        self
    }
    /// Set the convolution-kernel support in pixels.
    pub fn kernel_size(mut self, n: usize) -> Self {
        self.kernel_size = n;
        self
    }
    /// Set the A-term update interval in time steps.
    pub fn aterm_interval(mut self, n: usize) -> Self {
        self.aterm_interval = n;
        self
    }
    /// Set `T̃_max`, the per-subgrid time-step cap.
    pub fn max_timesteps_per_subgrid(mut self, n: usize) -> Self {
        self.max_timesteps_per_subgrid = n;
        self
    }
    /// Set the W-stacking step in wavelengths (0 = disabled).
    pub fn w_step(mut self, w: f64) -> Self {
        self.w_step = w;
        self
    }

    /// Finalize and validate.
    pub fn build(self) -> Result<Observation, IdgError> {
        let frequencies: Vec<f64> = (0..self.nr_channels)
            .map(|c| self.start_frequency + c as f64 * self.channel_width)
            .collect();
        let obs = Observation {
            nr_stations: self.nr_stations,
            nr_timesteps: self.nr_timesteps,
            integration_time: self.integration_time,
            frequencies,
            grid_size: self.grid_size,
            subgrid_size: self.subgrid_size,
            image_size: self.image_size,
            kernel_size: self.kernel_size,
            aterm_interval: self.aterm_interval,
            max_timesteps_per_subgrid: self.max_timesteps_per_subgrid,
            w_step: self.w_step,
        };
        obs.validate()?;
        Ok(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let obs = Observation::builder().build().unwrap();
        assert_eq!(obs.nr_stations, 150);
        assert_eq!(obs.nr_baselines(), 11_175);
        assert_eq!(obs.nr_timesteps, 8192);
        assert_eq!(obs.nr_channels(), 16);
        assert_eq!(obs.grid_size, 2048);
        assert_eq!(obs.subgrid_size, 24);
        assert_eq!(obs.aterm_interval, 256);
        assert_eq!(obs.nr_aterm_intervals(), 32);
        assert_eq!(obs.nr_visibilities(), 11_175 * 8192 * 16);
    }

    #[test]
    fn uv_pixel_round_trip() {
        let obs = Observation::builder().build().unwrap();
        let uv = 1234.5;
        let px = obs.uv_to_pixel(uv);
        assert!((obs.pixel_to_uv(px) - uv).abs() < 1e-9);
        // DC maps to the grid center.
        assert_eq!(obs.uv_to_pixel(0.0), 1024.0);
    }

    #[test]
    fn aterm_indexing() {
        let obs = Observation::builder().build().unwrap();
        assert_eq!(obs.aterm_index(0), 0);
        assert_eq!(obs.aterm_index(255), 0);
        assert_eq!(obs.aterm_index(256), 1);
        assert_eq!(obs.aterm_index(8191), 31);
    }

    #[test]
    fn wavelength_bounds() {
        let obs = Observation::builder()
            .channels(2, 100e6, 100e6)
            .build()
            .unwrap();
        assert!((obs.max_wavelength() - SPEED_OF_LIGHT / 100e6).abs() < 1e-9);
        assert!((obs.min_wavelength() - SPEED_OF_LIGHT / 200e6).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(Observation::builder().stations(1).build().is_err());
        assert!(Observation::builder().timesteps(0).build().is_err());
        assert!(Observation::builder()
            .channels(0, 100e6, 1e6)
            .build()
            .is_err());
        assert!(Observation::builder().subgrid_size(4096).build().is_err());
        assert!(Observation::builder().kernel_size(24).build().is_err());
        assert!(Observation::builder().image_size(0.0).build().is_err());
        assert!(Observation::builder().image_size(3.0).build().is_err());
        assert!(Observation::builder().aterm_interval(0).build().is_err());
        assert!(Observation::builder()
            .channels(2, -1.0, 1.0)
            .build()
            .is_err());
    }

    #[test]
    fn max_uv_is_consistent_with_grid() {
        let obs = Observation::builder().build().unwrap();
        let max_uv = obs.max_uv_wavelengths();
        let px = obs.uv_to_pixel(max_uv);
        // Leaves exactly subgrid_size/2 pixels of margin at the edge.
        assert!((px - (obs.grid_size - obs.subgrid_size / 2) as f64).abs() < 1e-6);
    }

    #[test]
    fn frequencies_are_evenly_spaced() {
        let obs = Observation::builder()
            .channels(4, 100e6, 2e6)
            .build()
            .unwrap();
        assert_eq!(obs.frequencies, vec![100e6, 102e6, 104e6, 106e6]);
    }

    #[test]
    fn cell_size_relation() {
        let obs = Observation::builder().build().unwrap();
        assert!((obs.cell_size() * obs.grid_size as f64 - obs.image_size).abs() < 1e-12);
    }
}
