//! Complex arithmetic tuned for the IDG accumulation loops.
//!
//! The inner loops of Algorithms 1 and 2 of the paper are complex
//! multiply-accumulates: `pixel += phasor * visibility`. On hardware with
//! FMA units one complex MAC is exactly 4 real fused multiply-adds, which
//! is how the paper counts operations. [`Complex::mul_acc`] expresses that
//! shape directly so the compiler can emit FMAs, and so the analytic
//! operation counters in `idg-perf` agree with the code.

use crate::float::Float;

/// A complex number over a real scalar `T` (layout: `[re, im]`).
///
/// `#[repr(C)]` guarantees the interleaved layout used by the FFT and the
/// grid containers, so a `&[Complex<f32>]` can be viewed as `&[f32]` of
/// twice the length when separating real/imaginary planes for
/// vectorization (see the CPU-optimized kernels).
#[derive(Copy, Clone, Debug, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex number — the production type of every kernel.
pub type Cf32 = Complex<f32>;
/// Double-precision complex number — used by reference/gold kernels.
pub type Cf64 = Complex<f64>;

impl<T: Float> Complex<T> {
    /// The complex zero.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            re: T::ZERO,
            im: T::ZERO,
        }
    }

    /// Construct from parts.
    #[inline(always)]
    pub fn new(re: T, im: T) -> Self {
        Self { re, im }
    }

    /// The multiplicative identity `1 + 0i`.
    #[inline(always)]
    pub fn one() -> Self {
        Self {
            re: T::ONE,
            im: T::ZERO,
        }
    }

    /// A unit phasor `e^{iθ} = cos θ + i sin θ`.
    ///
    /// This is the `Φ` of Algorithm 1; the batched fast-math variant lives
    /// in `idg-math`.
    #[inline(always)]
    pub fn from_phase(theta: T) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> T {
        self.re.mul_add(self.re, self.im * self.im)
    }

    /// Magnitude.
    #[inline(always)]
    pub fn abs(self) -> T {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: T) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Fused multiply-accumulate: `self += a * b`.
    ///
    /// Expands to exactly 4 real FMAs — the operation the paper's roofline
    /// model counts 16 of per (visibility, pixel) pair (4 per polarization).
    #[inline(always)]
    pub fn mul_acc(&mut self, a: Self, b: Self) {
        self.re = a.re.mul_add(b.re, self.re);
        self.re = (-a.im).mul_add(b.im, self.re);
        self.im = a.re.mul_add(b.im, self.im);
        self.im = a.im.mul_add(b.re, self.im);
    }

    /// Fused conjugate multiply-accumulate: `self += conj(a) * b`.
    #[inline(always)]
    pub fn conj_mul_acc(&mut self, a: Self, b: Self) {
        self.re = a.re.mul_add(b.re, self.re);
        self.re = a.im.mul_add(b.im, self.re);
        self.im = a.re.mul_add(b.im, self.im);
        self.im = (-a.im).mul_add(b.re, self.im);
    }

    /// Multiplication by `i` (quarter-turn rotation), free of multiplies.
    #[inline(always)]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }

    /// Complex division (reference-quality; not used in hot loops).
    #[inline]
    pub fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }

    /// Lossy cast between precisions.
    #[inline(always)]
    pub fn cast<U: Float>(self) -> Complex<U> {
        Complex {
            re: U::from_f64(self.re.to_f64()),
            im: U::from_f64(self.im.to_f64()),
        }
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl<T: Float> std::ops::Add for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<T: Float> std::ops::Sub for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<T: Float> std::ops::Mul for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re.mul_add(rhs.re, -(self.im * rhs.im)),
            im: self.re.mul_add(rhs.im, self.im * rhs.re),
        }
    }
}

impl<T: Float> std::ops::Neg for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<T: Float> std::ops::AddAssign for Complex<T> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl<T: Float> std::ops::SubAssign for Complex<T> {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl<T: Float> std::ops::MulAssign for Complex<T> {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<T: Float> std::ops::Mul<T> for Complex<T> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: T) -> Self {
        self.scale(rhs)
    }
}

impl<T: Float> From<T> for Complex<T> {
    #[inline(always)]
    fn from(re: T) -> Self {
        Self { re, im: T::ZERO }
    }
}

impl<T: Float> std::iter::Sum for Complex<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::new(T::ZERO, T::ZERO), |a, b| a + b)
    }
}

impl<T: std::fmt::Display + Float> std::fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im < T::ZERO {
            write!(f, "{}-{}i", self.re, self.im.abs())
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: Cf64, b: Cf64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn basic_arithmetic() {
        let a = Cf64::new(1.0, 2.0);
        let b = Cf64::new(3.0, -1.0);
        assert_eq!(a + b, Cf64::new(4.0, 1.0));
        assert_eq!(a - b, Cf64::new(-2.0, 3.0));
        assert_eq!(a * b, Cf64::new(5.0, 5.0));
        assert_eq!(-a, Cf64::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Cf64::new(2.0, 4.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Cf64::new(3.0, 4.0);
        assert_eq!(a.conj(), Cf64::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Cf64::from(25.0), 1e-15));
    }

    #[test]
    fn phasor_is_unit_magnitude() {
        for i in 0..64 {
            let theta = i as f64 * 0.7 - 20.0;
            let p = Cf64::from_phase(theta);
            assert!((p.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mul_acc_matches_separate_ops() {
        let mut acc = Cf64::new(0.5, -0.25);
        let expect = acc + Cf64::new(1.5, 2.0) * Cf64::new(-0.5, 3.0);
        acc.mul_acc(Cf64::new(1.5, 2.0), Cf64::new(-0.5, 3.0));
        assert!(close(acc, expect, 1e-14));
    }

    #[test]
    fn conj_mul_acc_matches_separate_ops() {
        let mut acc = Cf64::new(0.0, 0.0);
        let a = Cf64::new(1.5, 2.0);
        let b = Cf64::new(-0.5, 3.0);
        acc.conj_mul_acc(a, b);
        assert!(close(acc, a.conj() * b, 1e-14));
    }

    #[test]
    fn mul_i_rotates_quarter_turn() {
        let a = Cf64::new(2.0, 1.0);
        assert_eq!(a.mul_i(), a * Cf64::new(0.0, 1.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cf64::new(2.0, -3.0);
        let b = Cf64::new(0.5, 1.5);
        assert!(close((a * b).div(b), a, 1e-12));
    }

    #[test]
    fn cast_between_precisions() {
        let a = Cf64::new(1.25, -0.5); // representable in f32
        let b: Cf32 = a.cast();
        assert_eq!(b, Cf32::new(1.25, -0.5));
        assert_eq!(b.cast::<f64>(), a);
    }

    #[test]
    fn sum_iterator() {
        let v = vec![Cf64::new(1.0, 1.0); 10];
        let s: Cf64 = v.into_iter().sum();
        assert_eq!(s, Cf64::new(10.0, 10.0));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Cf64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Cf64::new(1.0, -2.0).to_string(), "1--2i".replace("--", "-"));
    }

    proptest! {
        #[test]
        fn prop_mul_commutative(ar in -100.0..100.0f64, ai in -100.0..100.0f64,
                                br in -100.0..100.0f64, bi in -100.0..100.0f64) {
            let a = Cf64::new(ar, ai);
            let b = Cf64::new(br, bi);
            prop_assert!(close(a * b, b * a, 1e-12));
        }

        #[test]
        fn prop_mul_associative(ar in -10.0..10.0f64, ai in -10.0..10.0f64,
                                br in -10.0..10.0f64, bi in -10.0..10.0f64,
                                cr in -10.0..10.0f64, ci in -10.0..10.0f64) {
            let a = Cf64::new(ar, ai);
            let b = Cf64::new(br, bi);
            let c = Cf64::new(cr, ci);
            prop_assert!(close((a * b) * c, a * (b * c), 1e-10));
        }

        #[test]
        fn prop_distributive(ar in -10.0..10.0f64, ai in -10.0..10.0f64,
                             br in -10.0..10.0f64, bi in -10.0..10.0f64,
                             cr in -10.0..10.0f64, ci in -10.0..10.0f64) {
            let a = Cf64::new(ar, ai);
            let b = Cf64::new(br, bi);
            let c = Cf64::new(cr, ci);
            prop_assert!(close(a * (b + c), a * b + a * c, 1e-10));
        }

        #[test]
        fn prop_norm_multiplicative(ar in -10.0..10.0f64, ai in -10.0..10.0f64,
                                    br in -10.0..10.0f64, bi in -10.0..10.0f64) {
            let a = Cf64::new(ar, ai);
            let b = Cf64::new(br, bi);
            let lhs = (a * b).abs();
            let rhs = a.abs() * b.abs();
            prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs));
        }

        #[test]
        fn prop_conj_antihomomorphism(ar in -10.0..10.0f64, ai in -10.0..10.0f64,
                                      br in -10.0..10.0f64, bi in -10.0..10.0f64) {
            let a = Cf64::new(ar, ai);
            let b = Cf64::new(br, bi);
            prop_assert!(close((a * b).conj(), a.conj() * b.conj(), 1e-11));
        }
    }
}
