//! Visibility, baseline and (u,v,w)-coordinate records.
//!
//! A *visibility* is the correlation of the signals of a station pair for
//! one integration time and one frequency channel: a 2×2 complex coherency
//! matrix stored as 4 polarizations `[xx, xy, yx, yy]`. Each visibility is
//! associated with a `uvw`-coordinate, the baseline vector between its two
//! stations expressed in meters (converted to wavelengths per channel by
//! the kernels).

use crate::complex::Complex;
use crate::float::Float;

/// A pair of stations, `station1 < station2`, identifying a baseline.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Baseline {
    /// Index of the first station.
    pub station1: usize,
    /// Index of the second station.
    pub station2: usize,
}

impl Baseline {
    /// Construct a baseline, normalizing the station order.
    pub fn new(a: usize, b: usize) -> Self {
        if a <= b {
            Self {
                station1: a,
                station2: b,
            }
        } else {
            Self {
                station1: b,
                station2: a,
            }
        }
    }

    /// Enumerate all `n·(n−1)/2` distinct baselines of an `n`-station array
    /// (auto-correlations excluded, as in the paper: 150 stations →
    /// 11,175 baselines).
    pub fn all(nr_stations: usize) -> Vec<Baseline> {
        let mut out = Vec::with_capacity(nr_stations * nr_stations.saturating_sub(1) / 2);
        for s1 in 0..nr_stations {
            for s2 in (s1 + 1)..nr_stations {
                out.push(Baseline {
                    station1: s1,
                    station2: s2,
                });
            }
        }
        out
    }
}

/// A baseline vector in meters at one integration time.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
#[repr(C)]
pub struct Uvw {
    /// East-west component (m).
    pub u: f32,
    /// North-south component (m).
    pub v: f32,
    /// Line-of-sight component (m).
    pub w: f32,
}

impl Uvw {
    /// Construct from components.
    #[inline]
    pub fn new(u: f32, v: f32, w: f32) -> Self {
        Self { u, v, w }
    }

    /// Scale from meters to wavelengths for a given frequency (Hz).
    #[inline]
    pub fn in_wavelengths(self, frequency_hz: f64) -> (f64, f64, f64) {
        let scale = frequency_hz / crate::params::SPEED_OF_LIGHT;
        (
            self.u as f64 * scale,
            self.v as f64 * scale,
            self.w as f64 * scale,
        )
    }

    /// Euclidean length in meters.
    #[inline]
    pub fn length(self) -> f32 {
        (self.u * self.u + self.v * self.v + self.w * self.w).sqrt()
    }

    /// The reversed baseline (conjugate point in the uv-plane).
    #[inline]
    pub fn negate(self) -> Self {
        Self {
            u: -self.u,
            v: -self.v,
            w: -self.w,
        }
    }
}

/// One 4-polarization visibility sample `[xx, xy, yx, yy]`.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
#[repr(C)]
pub struct Visibility<T> {
    /// The four correlation products.
    pub pols: [Complex<T>; 4],
}

impl<T: Float> Visibility<T> {
    /// The zero visibility.
    #[inline]
    pub fn zero() -> Self {
        Self {
            pols: [Complex::zero(); 4],
        }
    }

    /// Construct from the four polarization products.
    #[inline]
    pub fn new(xx: Complex<T>, xy: Complex<T>, yx: Complex<T>, yy: Complex<T>) -> Self {
        Self {
            pols: [xx, xy, yx, yy],
        }
    }

    /// An unpolarized point-source visibility of given amplitude and phase:
    /// power split over xx and yy, cross-hands zero.
    #[inline]
    pub fn unpolarized(amplitude: T, phase: T) -> Self {
        let p = Complex::from_phase(phase).scale(amplitude);
        Self::new(p, Complex::zero(), Complex::zero(), p)
    }

    /// Element-wise sum.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        Self {
            pols: [
                self.pols[0] + rhs.pols[0],
                self.pols[1] + rhs.pols[1],
                self.pols[2] + rhs.pols[2],
                self.pols[3] + rhs.pols[3],
            ],
        }
    }

    /// Element-wise difference (used when subtracting predicted model
    /// visibilities in the imaging major cycle).
    #[inline]
    pub fn sub(self, rhs: Self) -> Self {
        Self {
            pols: [
                self.pols[0] - rhs.pols[0],
                self.pols[1] - rhs.pols[1],
                self.pols[2] - rhs.pols[2],
                self.pols[3] - rhs.pols[3],
            ],
        }
    }

    /// Scale all polarizations by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self {
            pols: [
                self.pols[0].scale(s),
                self.pols[1].scale(s),
                self.pols[2].scale(s),
                self.pols[3].scale(s),
            ],
        }
    }

    /// Root-mean-square magnitude over the four polarizations.
    pub fn rms(self) -> T {
        let s = self.pols.iter().fold(T::ZERO, |acc, p| acc + p.norm_sqr());
        (s / T::from_f64(4.0)).sqrt()
    }

    /// Lossy cast between precisions.
    pub fn cast<U: Float>(self) -> Visibility<U> {
        Visibility {
            pols: [
                self.pols[0].cast(),
                self.pols[1].cast(),
                self.pols[2].cast(),
                self.pols[3].cast(),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cf64;

    #[test]
    fn baseline_normalizes_order() {
        assert_eq!(Baseline::new(5, 2), Baseline::new(2, 5));
        assert_eq!(Baseline::new(5, 2).station1, 2);
    }

    #[test]
    fn baseline_count_matches_paper() {
        // 150 stations -> 11,175 baselines, as stated in Sec. VI-A.
        assert_eq!(Baseline::all(150).len(), 11_175);
        assert_eq!(Baseline::all(2).len(), 1);
        assert_eq!(Baseline::all(1).len(), 0);
        assert_eq!(Baseline::all(0).len(), 0);
    }

    #[test]
    fn baselines_are_unique_and_ordered() {
        let bls = Baseline::all(20);
        let mut seen = std::collections::HashSet::new();
        for bl in &bls {
            assert!(bl.station1 < bl.station2);
            assert!(seen.insert(*bl));
        }
    }

    #[test]
    fn uvw_wavelength_scaling() {
        let uvw = Uvw::new(299_792_458.0, 0.0, 0.0);
        let (u, v, w) = uvw.in_wavelengths(2.0); // 2 Hz -> lambda = c/2
        assert!((u - 2.0).abs() < 1e-6);
        assert_eq!(v, 0.0);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn uvw_length_and_negate() {
        let uvw = Uvw::new(3.0, 4.0, 0.0);
        assert_eq!(uvw.length(), 5.0);
        assert_eq!(uvw.negate(), Uvw::new(-3.0, -4.0, 0.0));
    }

    #[test]
    fn visibility_arithmetic() {
        let a = Visibility::<f64>::unpolarized(2.0, 0.0);
        let b = Visibility::<f64>::unpolarized(1.0, 0.0);
        let s = a.add(b);
        assert_eq!(s.pols[0], Cf64::new(3.0, 0.0));
        assert_eq!(s.pols[1], Cf64::zero());
        let d = s.sub(b);
        assert_eq!(d.pols[0], a.pols[0]);
        assert_eq!(a.scale(0.5).pols[3], Cf64::new(1.0, 0.0));
    }

    #[test]
    fn unpolarized_has_zero_cross_hands() {
        let v = Visibility::<f32>::unpolarized(1.5, 0.7);
        assert_eq!(v.pols[1], Complex::zero());
        assert_eq!(v.pols[2], Complex::zero());
        assert!((v.pols[0].abs() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn rms_of_unit_visibility() {
        let v = Visibility::<f64>::new(
            Cf64::new(1.0, 0.0),
            Cf64::new(1.0, 0.0),
            Cf64::new(1.0, 0.0),
            Cf64::new(1.0, 0.0),
        );
        assert!((v.rms() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cast_round_trips_representable_values() {
        let v = Visibility::<f64>::unpolarized(0.5, 0.0);
        assert_eq!(v.cast::<f32>().cast::<f64>(), v);
    }
}
