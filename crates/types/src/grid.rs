//! Grid and subgrid containers.
//!
//! The *grid* is the discrete Fourier transform of the sky image: a
//! `grid_size × grid_size` plane per polarization (4 planes). *Subgrids*
//! are the small `N × N` tiles at the heart of IDG (24×24 in the paper's
//! benchmark), onto which neighbouring visibilities are accumulated before
//! being Fourier-transformed and added to the grid.
//!
//! Both containers use planar polarization layout `[pol][y][x]`: the adder
//! parallelizes over grid rows (Sec. V-B d) and the FFT transforms each
//! polarization plane independently, so planar storage gives both unit
//! stride.

use crate::complex::Complex;
use crate::float::Float;

/// Number of polarization products (XX, XY, YX, YY).
pub const NR_POLARIZATIONS: usize = 4;

/// The master grid: 4 polarization planes of `size × size` complex pixels.
#[derive(Clone, Debug)]
pub struct Grid<T> {
    size: usize,
    data: Vec<Complex<T>>,
}

impl<T: Float> Grid<T> {
    /// Allocate a zeroed grid of `size × size` pixels per polarization.
    pub fn new(size: usize) -> Self {
        Self {
            size,
            data: vec![Complex::zero(); NR_POLARIZATIONS * size * size],
        }
    }

    /// Grid edge length in pixels.
    #[inline(always)]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Linear index of `(pol, y, x)`.
    #[inline(always)]
    fn index(&self, pol: usize, y: usize, x: usize) -> usize {
        (pol * self.size + y) * self.size + x
    }

    /// Read one pixel.
    #[inline(always)]
    pub fn at(&self, pol: usize, y: usize, x: usize) -> Complex<T> {
        debug_assert!(pol < NR_POLARIZATIONS && y < self.size && x < self.size);
        self.data[self.index(pol, y, x)]
    }

    /// Mutable access to one pixel.
    #[inline(always)]
    pub fn at_mut(&mut self, pol: usize, y: usize, x: usize) -> &mut Complex<T> {
        debug_assert!(pol < NR_POLARIZATIONS && y < self.size && x < self.size);
        let i = self.index(pol, y, x);
        &mut self.data[i]
    }

    /// One full polarization plane as a slice (row-major).
    #[inline]
    pub fn plane(&self, pol: usize) -> &[Complex<T>] {
        let n = self.size * self.size;
        &self.data[pol * n..(pol + 1) * n]
    }

    /// One full polarization plane, mutable.
    #[inline]
    pub fn plane_mut(&mut self, pol: usize) -> &mut [Complex<T>] {
        let n = self.size * self.size;
        &mut self.data[pol * n..(pol + 1) * n]
    }

    /// One row of one polarization plane.
    #[inline]
    pub fn row(&self, pol: usize, y: usize) -> &[Complex<T>] {
        let start = self.index(pol, y, 0);
        &self.data[start..start + self.size]
    }

    /// One row, mutable — the unit of parallelism in the adder.
    #[inline]
    pub fn row_mut(&mut self, pol: usize, y: usize) -> &mut [Complex<T>] {
        let start = self.index(pol, y, 0);
        &mut self.data[start..start + self.size]
    }

    /// Split the full backing store into per-`(pol, y)` rows for parallel
    /// mutation. Yields `4 * size` disjoint row slices, ordered by
    /// polarization then row.
    pub fn rows_mut(&mut self) -> std::slice::ChunksMut<'_, Complex<T>> {
        self.data.chunks_mut(self.size)
    }

    /// Raw backing store (planar `[pol][y][x]`).
    #[inline]
    pub fn as_slice(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Raw backing store, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.data
    }

    /// Reset all pixels to zero (reused between imaging cycles).
    pub fn clear(&mut self) {
        self.data.fill(Complex::zero());
    }

    /// Sum of `|pixel|²` over all pixels and polarizations.
    pub fn power(&self) -> f64 {
        self.data.iter().map(|c| c.norm_sqr().to_f64()).sum()
    }

    /// Fraction of non-zero pixels in polarization 0 — the *uv-coverage*
    /// discussed in Sec. IV of the paper.
    pub fn uv_coverage(&self) -> f64 {
        let plane = self.plane(0);
        let nz = plane.iter().filter(|c| c.norm_sqr() > T::ZERO).count();
        nz as f64 / plane.len() as f64
    }

    /// Element-wise accumulate another grid of the same size
    /// (used by W-stacking to merge per-plane grids).
    pub fn accumulate(&mut self, other: &Grid<T>) {
        assert_eq!(self.size, other.size, "grid size mismatch");
        for (dst, src) in self.data.iter_mut().zip(other.data.iter()) {
            *dst += *src;
        }
    }
}

/// A small `N × N` subgrid tile with the same planar layout as [`Grid`].
#[derive(Clone, Debug, PartialEq)]
pub struct Subgrid<T> {
    size: usize,
    data: Vec<Complex<T>>,
}

impl<T: Float> Subgrid<T> {
    /// Allocate a zeroed `size × size` subgrid.
    pub fn new(size: usize) -> Self {
        Self {
            size,
            data: vec![Complex::zero(); NR_POLARIZATIONS * size * size],
        }
    }

    /// Subgrid edge length in pixels.
    #[inline(always)]
    pub fn size(&self) -> usize {
        self.size
    }

    #[inline(always)]
    fn index(&self, pol: usize, y: usize, x: usize) -> usize {
        (pol * self.size + y) * self.size + x
    }

    /// Read one pixel.
    #[inline(always)]
    pub fn at(&self, pol: usize, y: usize, x: usize) -> Complex<T> {
        debug_assert!(pol < NR_POLARIZATIONS && y < self.size && x < self.size);
        self.data[self.index(pol, y, x)]
    }

    /// Mutable access to one pixel.
    #[inline(always)]
    pub fn at_mut(&mut self, pol: usize, y: usize, x: usize) -> &mut Complex<T> {
        debug_assert!(pol < NR_POLARIZATIONS && y < self.size && x < self.size);
        let i = self.index(pol, y, x);
        &mut self.data[i]
    }

    /// Read all four polarizations of one pixel.
    #[inline(always)]
    pub fn pixel(&self, y: usize, x: usize) -> [Complex<T>; 4] {
        [
            self.at(0, y, x),
            self.at(1, y, x),
            self.at(2, y, x),
            self.at(3, y, x),
        ]
    }

    /// Write all four polarizations of one pixel.
    #[inline(always)]
    pub fn set_pixel(&mut self, y: usize, x: usize, pols: [Complex<T>; 4]) {
        for (pol, value) in pols.into_iter().enumerate() {
            *self.at_mut(pol, y, x) = value;
        }
    }

    /// One polarization plane (row-major `size × size`).
    #[inline]
    pub fn plane(&self, pol: usize) -> &[Complex<T>] {
        let n = self.size * self.size;
        &self.data[pol * n..(pol + 1) * n]
    }

    /// One polarization plane, mutable.
    #[inline]
    pub fn plane_mut(&mut self, pol: usize) -> &mut [Complex<T>] {
        let n = self.size * self.size;
        &mut self.data[pol * n..(pol + 1) * n]
    }

    /// Raw backing store.
    #[inline]
    pub fn as_slice(&self) -> &[Complex<T>] {
        &self.data
    }

    /// Raw backing store, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex<T>] {
        &mut self.data
    }

    /// Reset all pixels to zero.
    pub fn clear(&mut self) {
        self.data.fill(Complex::zero());
    }

    /// Sum of `|pixel|²`.
    pub fn power(&self) -> f64 {
        self.data.iter().map(|c| c.norm_sqr().to_f64()).sum()
    }

    /// Maximum absolute difference to another subgrid (accuracy tests).
    pub fn max_abs_diff(&self, other: &Subgrid<T>) -> f64 {
        assert_eq!(self.size, other.size);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs().to_f64())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cf32;

    #[test]
    fn grid_starts_zeroed() {
        let g = Grid::<f32>::new(16);
        assert_eq!(g.size(), 16);
        assert_eq!(g.power(), 0.0);
        assert_eq!(g.uv_coverage(), 0.0);
    }

    #[test]
    fn grid_pixel_round_trip() {
        let mut g = Grid::<f32>::new(8);
        *g.at_mut(2, 3, 5) = Cf32::new(1.0, -2.0);
        assert_eq!(g.at(2, 3, 5), Cf32::new(1.0, -2.0));
        assert_eq!(g.at(2, 5, 3), Cf32::zero());
        assert_eq!(g.at(1, 3, 5), Cf32::zero());
    }

    #[test]
    fn grid_planes_are_disjoint() {
        let mut g = Grid::<f32>::new(4);
        g.plane_mut(0).fill(Cf32::new(1.0, 0.0));
        assert_eq!(g.plane(1).iter().map(|c| c.re).sum::<f32>(), 0.0);
        assert_eq!(g.plane(0).iter().map(|c| c.re).sum::<f32>(), 16.0);
    }

    #[test]
    fn grid_rows_mut_covers_everything() {
        let mut g = Grid::<f32>::new(4);
        let rows: Vec<_> = g.rows_mut().collect();
        assert_eq!(rows.len(), NR_POLARIZATIONS * 4);
        assert!(rows.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn grid_row_matches_at() {
        let mut g = Grid::<f32>::new(4);
        *g.at_mut(3, 2, 1) = Cf32::new(7.0, 0.0);
        assert_eq!(g.row(3, 2)[1], Cf32::new(7.0, 0.0));
        g.row_mut(3, 2)[0] = Cf32::new(9.0, 0.0);
        assert_eq!(g.at(3, 2, 0), Cf32::new(9.0, 0.0));
    }

    #[test]
    fn grid_uv_coverage_counts_nonzero() {
        let mut g = Grid::<f32>::new(4);
        *g.at_mut(0, 0, 0) = Cf32::new(1.0, 0.0);
        *g.at_mut(0, 1, 1) = Cf32::new(0.0, 1.0);
        assert!((g.uv_coverage() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn grid_accumulate_adds() {
        let mut a = Grid::<f32>::new(4);
        let mut b = Grid::<f32>::new(4);
        *a.at_mut(0, 1, 1) = Cf32::new(1.0, 0.0);
        *b.at_mut(0, 1, 1) = Cf32::new(2.0, 1.0);
        a.accumulate(&b);
        assert_eq!(a.at(0, 1, 1), Cf32::new(3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn grid_accumulate_size_mismatch_panics() {
        let mut a = Grid::<f32>::new(4);
        let b = Grid::<f32>::new(8);
        a.accumulate(&b);
    }

    #[test]
    fn grid_clear_resets() {
        let mut g = Grid::<f32>::new(4);
        *g.at_mut(0, 0, 0) = Cf32::new(5.0, 5.0);
        g.clear();
        assert_eq!(g.power(), 0.0);
    }

    #[test]
    fn subgrid_pixel_round_trip() {
        let mut s = Subgrid::<f32>::new(24);
        let pols = [
            Cf32::new(1.0, 0.0),
            Cf32::new(0.0, 1.0),
            Cf32::new(-1.0, 0.0),
            Cf32::new(0.0, -1.0),
        ];
        s.set_pixel(10, 20, pols);
        assert_eq!(s.pixel(10, 20), pols);
        assert_eq!(s.pixel(20, 10), [Cf32::zero(); 4]);
    }

    #[test]
    fn subgrid_max_abs_diff() {
        let mut a = Subgrid::<f32>::new(8);
        let b = Subgrid::<f32>::new(8);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        *a.at_mut(0, 0, 0) = Cf32::new(3.0, 4.0);
        assert!((a.max_abs_diff(&b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn subgrid_planes_sized_correctly() {
        let s = Subgrid::<f32>::new(24);
        assert_eq!(s.plane(3).len(), 576);
        assert_eq!(s.as_slice().len(), 4 * 576);
    }
}
