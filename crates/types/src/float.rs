//! Minimal floating-point abstraction.
//!
//! The workspace avoids external numeric crates so the operation inventory
//! stays auditable. [`Float`] is the small surface the generic algorithms
//! (FFT, complex arithmetic, tapers) actually need, implemented for `f32`
//! and `f64`.

/// Operations required from a real scalar type by the IDG kernels.
///
/// All methods mirror the inherent methods on `f32`/`f64`; `mul_add` is
/// kept explicit because the paper's roofline analysis counts fused
/// multiply-adds as the fundamental unit of compute.
pub trait Float:
    Copy
    + Clone
    + std::fmt::Debug
    + std::fmt::Display
    + PartialEq
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + std::ops::MulAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Two.
    const TWO: Self;
    /// Archimedes' constant.
    const PI: Self;
    /// 2π, the phase period.
    const TAU: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossy conversion from `usize`.
    fn from_usize(v: usize) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Sine (libm reference, *not* the batched fast path — see `idg-math`).
    fn sin(self) -> Self;
    /// Cosine (libm reference).
    fn cos(self) -> Self;
    /// Simultaneous sine and cosine.
    fn sin_cos(self) -> (Self, Self);
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b`.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Floor.
    fn floor(self) -> Self;
    /// Round to nearest.
    fn round(self) -> Self;
    /// Exponential.
    fn exp(self) -> Self;
    /// Largest of two values.
    fn max(self, other: Self) -> Self;
    /// Smallest of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite.
    fn is_finite(self) -> bool;
}

macro_rules! impl_float {
    ($t:ty, $pi:expr, $tau:expr) => {
        impl Float for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const PI: Self = $pi;
            const TAU: Self = $tau;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn sin(self) -> Self {
                self.sin()
            }
            #[inline(always)]
            fn cos(self) -> Self {
                self.cos()
            }
            #[inline(always)]
            fn sin_cos(self) -> (Self, Self) {
                self.sin_cos()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                self.floor()
            }
            #[inline(always)]
            fn round(self) -> Self {
                self.round()
            }
            #[inline(always)]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_float!(f32, std::f32::consts::PI, std::f32::consts::TAU);
impl_float!(f64, std::f64::consts::PI, std::f64::consts::TAU);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_sum<T: Float>(n: usize) -> T {
        let mut acc = T::ZERO;
        for i in 0..n {
            acc += T::from_usize(i);
        }
        acc
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(f32::TAU, 2.0 * f32::PI);
        assert_eq!(f64::TAU, 2.0 * f64::PI);
        assert_eq!(f32::HALF + f32::HALF, f32::ONE);
    }

    #[test]
    fn generic_arithmetic_matches_native() {
        assert_eq!(generic_sum::<f32>(10), 45.0);
        assert_eq!(generic_sum::<f64>(10), 45.0);
    }

    #[test]
    fn mul_add_is_fused_semantics() {
        // mul_add must match the mathematically exact result where
        // separate mul+add would round twice.
        let a: f64 = 1.0 + 2f64.powi(-52);
        let exact = a.mul_add(a, -1.0);
        assert!(exact > 0.0, "fused result keeps the low bits");
    }

    #[test]
    fn sin_cos_pythagorean_identity() {
        for i in 0..100 {
            let x = (i as f64) * 0.37 - 18.0;
            let (s, c) = Float::sin_cos(x);
            assert!((s * s + c * c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(f64::from_usize(7), 7.0);
    }
}
