//! 2×2 complex Jones matrices.
//!
//! Direction-dependent effects (the *A-terms* of the measurement equation,
//! Eq. (1) of the paper) are described per station, per direction, per
//! A-term interval by a 2×2 complex matrix acting on the two instrumental
//! polarizations. A visibility (which correlates two stations p, q) is
//! corrected as `A_p · V · A_qᴴ` — exactly what [`Jones::sandwich`]
//! computes and what the gridder applies to each subgrid pixel.

use crate::complex::Complex;
use crate::float::Float;

/// A 2×2 complex matrix in row-major order:
///
/// ```text
/// | xx  xy |
/// | yx  yy |
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Default)]
#[repr(C)]
pub struct Jones<T> {
    /// Row 1, column 1.
    pub xx: Complex<T>,
    /// Row 1, column 2.
    pub xy: Complex<T>,
    /// Row 2, column 1.
    pub yx: Complex<T>,
    /// Row 2, column 2.
    pub yy: Complex<T>,
}

impl<T: Float> Jones<T> {
    /// Construct from four complex entries (row-major).
    #[inline]
    pub fn new(xx: Complex<T>, xy: Complex<T>, yx: Complex<T>, yy: Complex<T>) -> Self {
        Self { xx, xy, yx, yy }
    }

    /// The identity matrix — the "A-terms all set to identity" configuration
    /// used by the paper's benchmark data set.
    #[inline]
    pub fn identity() -> Self {
        Self {
            xx: Complex::one(),
            xy: Complex::zero(),
            yx: Complex::zero(),
            yy: Complex::one(),
        }
    }

    /// The zero matrix.
    #[inline]
    pub fn zero() -> Self {
        Self {
            xx: Complex::zero(),
            xy: Complex::zero(),
            yx: Complex::zero(),
            yy: Complex::zero(),
        }
    }

    /// A diagonal matrix `diag(a, b)` — models per-polarization complex gain.
    #[inline]
    pub fn diagonal(a: Complex<T>, b: Complex<T>) -> Self {
        Self {
            xx: a,
            xy: Complex::zero(),
            yx: Complex::zero(),
            yy: b,
        }
    }

    /// A scalar matrix `g·I` — models a direction-dependent scalar beam.
    #[inline]
    pub fn scalar(g: Complex<T>) -> Self {
        Self::diagonal(g, g)
    }

    /// Conjugate (Hermitian) transpose.
    #[inline]
    pub fn hermitian(self) -> Self {
        Self {
            xx: self.xx.conj(),
            xy: self.yx.conj(),
            yx: self.xy.conj(),
            yy: self.yy.conj(),
        }
    }

    /// Matrix product `self · rhs`.
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        Self {
            xx: self.xx * rhs.xx + self.xy * rhs.yx,
            xy: self.xx * rhs.xy + self.xy * rhs.yy,
            yx: self.yx * rhs.xx + self.yy * rhs.yx,
            yy: self.yx * rhs.xy + self.yy * rhs.yy,
        }
    }

    /// The A-term sandwich `A_p · M · A_qᴴ` applied to a coherency matrix.
    ///
    /// `self` plays the role of `A_p`, `aq` of `A_q`. This is Line 17 of
    /// Algorithm 1 (`apply_aterm`).
    #[inline]
    pub fn sandwich(self, m: Self, aq: Self) -> Self {
        self.mul(m).mul(aq.hermitian())
    }

    /// View the four entries as a 4-element polarization array
    /// `[xx, xy, yx, yy]` — the layout of visibilities and subgrid pixels.
    #[inline]
    pub fn to_pols(self) -> [Complex<T>; 4] {
        [self.xx, self.xy, self.yx, self.yy]
    }

    /// Build from a 4-element polarization array `[xx, xy, yx, yy]`.
    #[inline]
    pub fn from_pols(p: [Complex<T>; 4]) -> Self {
        Self {
            xx: p[0],
            xy: p[1],
            yx: p[2],
            yy: p[3],
        }
    }

    /// Determinant.
    #[inline]
    pub fn det(self) -> Complex<T> {
        self.xx * self.yy - self.xy * self.yx
    }

    /// Inverse; returns `None` when the determinant is (near) zero.
    pub fn inverse(self) -> Option<Self> {
        let d = self.det();
        if d.norm_sqr() <= T::from_f64(1e-30) {
            return None;
        }
        let inv_d = Complex::one().div(d);
        Some(Self {
            xx: self.yy * inv_d,
            xy: -self.xy * inv_d,
            yx: -self.yx * inv_d,
            yy: self.xx * inv_d,
        })
    }

    /// Frobenius norm.
    pub fn frobenius(self) -> T {
        (self.xx.norm_sqr() + self.xy.norm_sqr() + self.yx.norm_sqr() + self.yy.norm_sqr()).sqrt()
    }

    /// Element-wise sum.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        Self {
            xx: self.xx + rhs.xx,
            xy: self.xy + rhs.xy,
            yx: self.yx + rhs.yx,
            yy: self.yy + rhs.yy,
        }
    }

    /// Scale all entries by a real factor.
    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self {
            xx: self.xx.scale(s),
            xy: self.xy.scale(s),
            yx: self.yx.scale(s),
            yy: self.yy.scale(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cf64;
    use proptest::prelude::*;

    type J = Jones<f64>;

    fn c(re: f64, im: f64) -> Cf64 {
        Cf64::new(re, im)
    }

    fn rand_jones(seed: &[f64; 8]) -> J {
        J::new(
            c(seed[0], seed[1]),
            c(seed[2], seed[3]),
            c(seed[4], seed[5]),
            c(seed[6], seed[7]),
        )
    }

    fn close(a: J, b: J, tol: f64) -> bool {
        let d = J::new(a.xx - b.xx, a.xy - b.xy, a.yx - b.yx, a.yy - b.yy);
        d.frobenius() <= tol * (1.0 + a.frobenius().max(b.frobenius()))
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_jones(&[1.0, 2.0, -0.5, 0.25, 3.0, -1.0, 0.0, 1.5]);
        assert!(close(a.mul(J::identity()), a, 1e-15));
        assert!(close(J::identity().mul(a), a, 1e-15));
    }

    #[test]
    fn identity_sandwich_is_identity_operation() {
        let m = rand_jones(&[1.0, -1.0, 2.0, 0.5, -0.25, 0.75, 3.0, 0.0]);
        let out = J::identity().sandwich(m, J::identity());
        assert!(close(out, m, 1e-15));
    }

    #[test]
    fn hermitian_involution() {
        let a = rand_jones(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.hermitian().hermitian(), a);
    }

    #[test]
    fn diagonal_sandwich_scales_pols() {
        // With diagonal A-terms the sandwich multiplies each polarization
        // by the corresponding gain product — a known analytic case.
        let ap = J::diagonal(c(2.0, 0.0), c(3.0, 0.0));
        let aq = J::diagonal(c(1.0, 1.0), c(0.0, 2.0));
        let m = rand_jones(&[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        let out = ap.sandwich(m, aq);
        assert!(close(
            out,
            J::new(
                m.xx * c(2.0, 0.0) * c(1.0, -1.0),
                m.xy * c(2.0, 0.0) * c(0.0, -2.0),
                m.yx * c(3.0, 0.0) * c(1.0, -1.0),
                m.yy * c(3.0, 0.0) * c(0.0, -2.0),
            ),
            1e-14
        ));
    }

    #[test]
    fn pols_round_trip() {
        let a = rand_jones(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(J::from_pols(a.to_pols()), a);
    }

    #[test]
    fn inverse_of_identity() {
        assert!(close(
            J::identity().inverse().unwrap(),
            J::identity(),
            1e-15
        ));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = J::new(c(1.0, 0.0), c(2.0, 0.0), c(2.0, 0.0), c(4.0, 0.0));
        assert!(a.inverse().is_none());
    }

    #[test]
    fn det_of_diagonal() {
        let a = J::diagonal(c(2.0, 0.0), c(0.0, 3.0));
        assert_eq!(a.det(), c(0.0, 6.0));
    }

    proptest! {
        #[test]
        fn prop_inverse_round_trip(v in proptest::array::uniform8(-5.0..5.0f64)) {
            let a = rand_jones(&v);
            prop_assume!(a.det().abs() > 1e-3);
            let inv = a.inverse().unwrap();
            prop_assert!(close(a.mul(inv), J::identity(), 1e-9));
            prop_assert!(close(inv.mul(a), J::identity(), 1e-9));
        }

        #[test]
        fn prop_hermitian_antihomomorphism(
            va in proptest::array::uniform8(-5.0..5.0f64),
            vb in proptest::array::uniform8(-5.0..5.0f64),
        ) {
            let a = rand_jones(&va);
            let b = rand_jones(&vb);
            prop_assert!(close(a.mul(b).hermitian(), b.hermitian().mul(a.hermitian()), 1e-10));
        }

        #[test]
        fn prop_mul_associative(
            va in proptest::array::uniform8(-3.0..3.0f64),
            vb in proptest::array::uniform8(-3.0..3.0f64),
            vc in proptest::array::uniform8(-3.0..3.0f64),
        ) {
            let a = rand_jones(&va);
            let b = rand_jones(&vb);
            let c3 = rand_jones(&vc);
            prop_assert!(close(a.mul(b).mul(c3), a.mul(b.mul(c3)), 1e-9));
        }

        #[test]
        fn prop_det_multiplicative(
            va in proptest::array::uniform8(-3.0..3.0f64),
            vb in proptest::array::uniform8(-3.0..3.0f64),
        ) {
            let a = rand_jones(&va);
            let b = rand_jones(&vb);
            let lhs = a.mul(b).det();
            let rhs = a.det() * b.det();
            prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
        }
    }
}
