//! Reference gridder and degridder — scalar, double precision.
//!
//! Direct transliterations of Algorithm 1 and Algorithm 2 of the paper,
//! kept deliberately unoptimized: accumulation in `f64`, libm
//! trigonometry, one pixel (gridder) or one visibility (degridder) at a
//! time. Every optimized path in the workspace is validated against these
//! functions.

use crate::buffers::{pixel_index, SubgridArray};
use crate::geometry::KernelGeometry;
use crate::KernelData;
use idg_obs::{KernelCounters, KernelStage};
use idg_plan::WorkItem;
use idg_types::{Cf64, IdgError, Jones, Visibility};

/// Bytes of one 4-polarization complex-f32 quantity (visibility sample
/// or subgrid pixel): 4 × 2 × 4 bytes.
const BYTES_POL4: u64 = 32;
/// Bytes of one staged uvw coordinate (3 × f32).
const BYTES_UVW: u64 = 12;

/// Convert a sampled f32 Jones matrix to f64.
fn jones64(j: Jones<f32>) -> Jones<f64> {
    Jones {
        xx: j.xx.cast(),
        xy: j.xy.cast(),
        yx: j.yx.cast(),
        yy: j.yy.cast(),
    }
}

/// Algorithm 1 for every work item: accumulate phase-shifted visibilities
/// into image-domain subgrid pixels, then apply the adjoint A-term
/// sandwich and the taper.
///
/// `subgrids` must hold `items.len()` subgrids of `obs.subgrid_size`.
pub fn gridder_reference(
    data: &KernelData<'_>,
    items: &[WorkItem],
    subgrids: &mut SubgridArray,
) -> Result<(), IdgError> {
    crate::check_launch(data, items, subgrids)?;

    let geom = KernelGeometry::new(data.obs);
    let n = geom.subgrid_size;
    let nr_time = data.obs.nr_timesteps;
    let nr_chan = data.obs.nr_channels();

    for (item, subgrid) in items.iter().zip(subgrids.subgrids_mut()) {
        let (u0, v0, w0) = geom.subgrid_center_uvw(item);
        let ap_plane = data.aterms.plane(item.aterm_index, item.baseline.station1);
        let aq_plane = data.aterms.plane(item.aterm_index, item.baseline.station2);

        // Measured op tally for this item: incremented beside the real
        // arithmetic with the real loop trip counts, flushed once per
        // item (a no-op unless an obs session is active). The reference
        // kernel has no staging pass, so unique DRAM traffic (each
        // visibility/uvw read once, each output pixel written once, the
        // two A-term planes fetched once) is charged at the sites where
        // the corresponding data is first touched.
        let mut tally = KernelCounters {
            invocations: 1,
            visibilities: item.nr_visibilities() as u64,
            dram_bytes: item.nr_visibilities() as u64 * BYTES_POL4
                + item.nr_timesteps as u64 * BYTES_UVW
                + 2 * (n * n) as u64 * BYTES_POL4,
            ..KernelCounters::default()
        };

        for y in 0..n {
            let m = geom.pixel_to_lm(y);
            for x in 0..n {
                let l = geom.pixel_to_lm(x);
                let n_term = KernelGeometry::compute_n(l, m);
                let phase_offset = 2.0 * std::f64::consts::PI * (u0 * l + v0 * m + w0 * n_term);

                let mut pix = [Cf64::zero(); 4];
                for dt in 0..item.nr_timesteps {
                    let t = item.time_offset + dt;
                    let uvw_m = data.uvw[item.baseline_index * nr_time + t];
                    let phase_index =
                        uvw_m.u as f64 * l + uvw_m.v as f64 * m + uvw_m.w as f64 * n_term;
                    // only this work item's channel group (Sec. V-A)
                    for ci in 0..item.nr_channels {
                        let c = item.channel_offset + ci;
                        let freq = data.obs.frequencies[c];
                        let phase = KernelGeometry::gridding_phase(phase_index, phase_offset, freq);
                        let phasor = Cf64::from_phase(phase);
                        tally.sincos_pairs += 1;
                        tally.fmas += 1; // the phase FMA feeding sincos
                        tally.shared_bytes += BYTES_POL4 + BYTES_UVW; // staged vis + uvw re-read
                        let vis =
                            data.visibilities[(item.baseline_index * nr_time + t) * nr_chan + c];
                        for (p, v) in vis.pols.iter().enumerate() {
                            pix[p].mul_acc(phasor, v.cast());
                            tally.fmas += 4; // one complex multiply-accumulate
                        }
                    }
                }

                // adjoint A-term sandwich A_pᴴ · pix · A_q, then taper
                let ap = jones64(ap_plane[y * n + x]);
                let aq = jones64(aq_plane[y * n + x]);
                let corrected = ap.hermitian().mul(Jones::from_pols(pix)).mul(aq);
                let taper = data.taper[y * n + x] as f64;
                let tapered = corrected.scale(taper).to_pols();
                for (p, v) in tapered.iter().enumerate() {
                    subgrid[pixel_index(n, p, y, x)] = v.cast();
                }
                tally.dram_bytes += BYTES_POL4; // output pixel written once
            }
        }
        idg_obs::add_kernel(KernelStage::Gridder, &tally);
    }
    Ok(())
}

/// Algorithm 2 for every work item: apply the forward A-term sandwich and
/// taper to the (image-domain) subgrid pixels, then predict each
/// visibility as the phase-weighted pixel sum.
///
/// Results are written into `vis_out`, which uses the same
/// `[baseline][timestep][channel]` layout as the input buffers; only the
/// slots covered by `items` are written.
pub fn degridder_reference(
    data: &KernelData<'_>,
    items: &[WorkItem],
    subgrids: &SubgridArray,
    vis_out: &mut [Visibility<f32>],
) -> Result<(), IdgError> {
    crate::check_launch(data, items, subgrids)?;
    if vis_out.len() != data.obs.nr_visibilities() {
        return Err(IdgError::ShapeMismatch {
            what: "visibility output buffer",
            expected: data.obs.nr_visibilities(),
            actual: vis_out.len(),
        });
    }

    let geom = KernelGeometry::new(data.obs);
    let n = geom.subgrid_size;
    let nr_time = data.obs.nr_timesteps;
    let nr_chan = data.obs.nr_channels();

    for (item, subgrid) in items.iter().zip(subgrids.subgrids()) {
        let (u0, v0, w0) = geom.subgrid_center_uvw(item);
        let ap_plane = data.aterms.plane(item.aterm_index, item.baseline.station1);
        let aq_plane = data.aterms.plane(item.aterm_index, item.baseline.station2);

        // Measured tally (see gridder_reference): staging reads the
        // subgrid and both A-term planes once, charged here; uvw and
        // the predicted visibilities are charged in the prediction loop.
        let mut tally = KernelCounters {
            invocations: 1,
            dram_bytes: 3 * (n * n) as u64 * BYTES_POL4,
            ..KernelCounters::default()
        };

        // Lines 2–3 of Algorithm 2: taper and forward A-term sandwich,
        // plus the per-pixel geometry, staged once per work item.
        let mut pixels = vec![[Cf64::zero(); 4]; n * n];
        let mut geom_cache = vec![(0.0f64, 0.0f64, 0.0f64, 0.0f64); n * n]; // l, m, n, φ_offset
        for y in 0..n {
            let m = geom.pixel_to_lm(y);
            for x in 0..n {
                let l = geom.pixel_to_lm(x);
                let n_term = KernelGeometry::compute_n(l, m);
                let phase_offset = 2.0 * std::f64::consts::PI * (u0 * l + v0 * m + w0 * n_term);
                geom_cache[y * n + x] = (l, m, n_term, phase_offset);

                let raw = Jones::from_pols([
                    subgrid[pixel_index(n, 0, y, x)].cast(),
                    subgrid[pixel_index(n, 1, y, x)].cast(),
                    subgrid[pixel_index(n, 2, y, x)].cast(),
                    subgrid[pixel_index(n, 3, y, x)].cast(),
                ]);
                let ap = jones64(ap_plane[y * n + x]);
                let aq = jones64(aq_plane[y * n + x]);
                let taper = data.taper[y * n + x] as f64;
                pixels[y * n + x] = ap.sandwich(raw, aq).scale(taper).to_pols();
            }
        }

        for dt in 0..item.nr_timesteps {
            let t = item.time_offset + dt;
            let uvw_m = data.uvw[item.baseline_index * nr_time + t];
            tally.dram_bytes += BYTES_UVW;
            for ci in 0..item.nr_channels {
                let c = item.channel_offset + ci;
                let freq = data.obs.frequencies[c];
                let mut acc = [Cf64::zero(); 4];
                for i in 0..n * n {
                    let (l, m, n_term, phase_offset) = geom_cache[i];
                    let phase_index =
                        uvw_m.u as f64 * l + uvw_m.v as f64 * m + uvw_m.w as f64 * n_term;
                    // degridding phase = −(gridding phase)
                    let phase = -KernelGeometry::gridding_phase(phase_index, phase_offset, freq);
                    let phasor = Cf64::from_phase(phase);
                    tally.sincos_pairs += 1;
                    // the phase FMA feeding sincos, then staged pixel +
                    // geometry cache + accumulator traffic
                    tally.fmas += 1;
                    tally.shared_bytes += BYTES_POL4 + 16 + BYTES_UVW;
                    for p in 0..4 {
                        acc[p].mul_acc(phasor, pixels[i][p]);
                        tally.fmas += 4; // one complex multiply-accumulate
                    }
                }
                vis_out[(item.baseline_index * nr_time + t) * nr_chan + c] = Visibility {
                    pols: [acc[0].cast(), acc[1].cast(), acc[2].cast(), acc[3].cast()],
                };
                tally.visibilities += 1;
                tally.dram_bytes += BYTES_POL4; // predicted visibility written once
            }
        }
        idg_obs::add_kernel(KernelStage::Degridder, &tally);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_plan::Plan;
    use idg_telescope::{ATerms, Dataset, IdentityATerm, Layout, SkyModel, StationGains};
    use idg_types::{Complex, Observation};

    pub(crate) fn flat_taper(n: usize) -> Vec<f32> {
        vec![1.0; n * n]
    }

    fn small_dataset() -> Dataset {
        let obs = Observation::builder()
            .stations(5)
            .timesteps(16)
            .channels(3, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(8)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(5, 800.0, 11);
        let sky = SkyModel::random(&obs, 4, 0.5, 13);
        Dataset::simulate(obs, &layout, sky, &IdentityATerm)
    }

    #[test]
    fn grid_then_degrid_round_trip_single_visibility_items() {
        // For a work item holding exactly ONE visibility, the phase sums
        // of gridder and degridder telescope into Σ_x |e^{iφ}|² = Ñ², so
        // degrid(grid(V)) = Ñ²·V *exactly* (identity A-terms, flat
        // taper). This pins the phase-conjugation convention of the
        // kernel pair. (With multiple visibilities per subgrid the
        // composition is a local convolution, not identity — that path
        // is validated end-to-end through the FFT/adder in idg-core.)
        let obs = Observation::builder()
            .stations(5)
            .timesteps(12)
            .channels(1, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(4)
            .max_timesteps_per_subgrid(1)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(5, 800.0, 11);
        let sky = SkyModel::random(&obs, 4, 0.5, 13);
        let ds = Dataset::simulate(obs, &layout, sky, &IdentityATerm);

        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        assert!(plan.nr_subgrids() > 0);
        assert!(plan.items.iter().all(|i| i.nr_timesteps == 1));
        let taper = flat_taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");

        let n2 = (ds.obs.subgrid_size * ds.obs.subgrid_size) as f32;
        let mut out = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        degridder_reference(&data, &plan.items, &subgrids, &mut out).expect("kernel run");

        let mut checked = 0usize;
        for item in &plan.items {
            let idx = item.baseline_index * ds.obs.nr_timesteps + item.time_offset;
            let got = out[idx].scale(1.0 / n2);
            let expect = ds.visibilities[idx];
            for p in 0..4 {
                let err = (got.pols[p] - expect.pols[p]).abs();
                let mag = expect.pols[p].abs().max(1.0);
                assert!(
                    err / mag < 2e-3,
                    "pol {p} at idx {idx}: {} vs {} (err {err})",
                    got.pols[p],
                    expect.pols[p]
                );
            }
            checked += 1;
        }
        assert!(checked > 20);
    }

    #[test]
    fn gridder_zero_visibilities_gives_zero_subgrids() {
        let ds = small_dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let zeros = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        let taper = flat_taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &zeros,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");
        assert_eq!(subgrids.power(), 0.0);
    }

    #[test]
    fn gridder_is_linear_in_visibilities() {
        let ds = small_dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = flat_taper(ds.obs.subgrid_size);
        let items = &plan.items[..plan.items.len().min(4)];

        let doubled: Vec<_> = ds.visibilities.iter().map(|v| v.scale(2.0)).collect();

        let mut sub1 = SubgridArray::new(items.len(), ds.obs.subgrid_size);
        let data1 = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        gridder_reference(&data1, items, &mut sub1).expect("kernel run");

        let mut sub2 = SubgridArray::new(items.len(), ds.obs.subgrid_size);
        let data2 = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &doubled,
            aterms: &ds.aterms,
            taper: &taper,
        };
        gridder_reference(&data2, items, &mut sub2).expect("kernel run");

        for (a, b) in sub1.as_slice().iter().zip(sub2.as_slice()) {
            assert!((b.scale(0.5) - *a).abs() < 1e-4 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn taper_scales_pixels_pointwise() {
        let ds = small_dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let items = &plan.items[..1];
        let n = ds.obs.subgrid_size;

        let flat = flat_taper(n);
        let mut graded: Vec<f32> = Vec::with_capacity(n * n);
        for i in 0..n * n {
            graded.push(0.5 + (i % 7) as f32 * 0.1);
        }

        let mk = |taper: &[f32]| {
            let data = KernelData {
                obs: &ds.obs,
                uvw: &ds.uvw,
                visibilities: &ds.visibilities,
                aterms: &ds.aterms,
                taper,
            };
            let mut sub = SubgridArray::new(1, n);
            gridder_reference(&data, items, &mut sub).expect("kernel run");
            sub
        };
        let s_flat = mk(&flat);
        let s_grad = mk(&graded);
        for pol in 0..4 {
            for y in 0..n {
                for x in 0..n {
                    let expect = s_flat.at(0, pol, y, x).scale(graded[y * n + x]);
                    let got = s_grad.at(0, pol, y, x);
                    assert!((got - expect).abs() < 1e-4 * (1.0 + expect.abs()));
                }
            }
        }
    }

    #[test]
    fn unitary_aterms_cancel_in_round_trip() {
        // Diagonal pure-phase gains are unitary, so the adjoint sandwich
        // (gridding) inverts the forward sandwich (measurement), and the
        // round trip against identity-A-term gridding of *gain-corrupted*
        // visibilities matches plain gridding of clean visibilities.
        let obs = Observation::builder()
            .stations(4)
            .timesteps(8)
            .channels(2, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .aterm_interval(8)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(4, 600.0, 5);
        let sky = SkyModel::random(&obs, 3, 0.5, 6);

        // Unitary gains: amplitude exactly 1.
        struct UnitPhases(StationGains);
        impl idg_telescope::aterm::ATermModel for UnitPhases {
            fn evaluate(&self, i: usize, s: usize, l: f64, m: f64) -> Jones<f64> {
                let j = self.0.evaluate(i, s, l, m);
                let norm = |c: Complex<f64>| {
                    let a = c.abs();
                    if a > 0.0 {
                        c.scale(1.0 / a)
                    } else {
                        Complex::one()
                    }
                };
                Jones::diagonal(norm(j.xx), norm(j.yy))
            }
        }
        let gains = UnitPhases(StationGains::random(4, obs.nr_aterm_intervals(), 17));

        let corrupted = Dataset::simulate(obs.clone(), &layout, sky.clone(), &gains);
        let clean = Dataset::simulate(obs.clone(), &layout, sky, &IdentityATerm);

        let plan = Plan::create(&obs, &clean.uvw).unwrap();
        let taper = flat_taper(obs.subgrid_size);

        let mut sub_corr = SubgridArray::new(plan.nr_subgrids(), obs.subgrid_size);
        let data_corr = KernelData {
            obs: &obs,
            uvw: &corrupted.uvw,
            visibilities: &corrupted.visibilities,
            aterms: &corrupted.aterms, // sampled unitary gains
            taper: &taper,
        };
        gridder_reference(&data_corr, &plan.items, &mut sub_corr).expect("kernel run");

        let mut sub_clean = SubgridArray::new(plan.nr_subgrids(), obs.subgrid_size);
        let ident = ATerms::identity(&obs);
        let data_clean = KernelData {
            obs: &obs,
            uvw: &clean.uvw,
            visibilities: &clean.visibilities,
            aterms: &ident,
            taper: &taper,
        };
        gridder_reference(&data_clean, &plan.items, &mut sub_clean).expect("kernel run");

        // The gains are direction-independent so the correction is exact.
        let mut max_rel = 0.0f64;
        for (a, b) in sub_corr.as_slice().iter().zip(sub_clean.as_slice()) {
            let err = (*a - *b).abs() as f64;
            let mag = b.abs().max(1e-3) as f64;
            max_rel = max_rel.max(err / mag);
        }
        assert!(
            max_rel < 5e-2,
            "unitary A-term correction residual {max_rel}"
        );
    }

    #[test]
    fn mismatched_subgrid_count_is_a_shape_error() {
        let ds = small_dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = flat_taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut subgrids = SubgridArray::new(plan.nr_subgrids() + 1, ds.obs.subgrid_size);
        let err = gridder_reference(&data, &plan.items, &mut subgrids)
            .expect_err("count mismatch must be rejected");
        assert!(matches!(
            err,
            IdgError::ShapeMismatch {
                what: "subgrid count",
                ..
            }
        ));
    }
}
