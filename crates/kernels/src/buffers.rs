//! Contiguous subgrid storage shared by gridder, FFT, adder and splitter.

use idg_types::{Cf32, Complex, NR_POLARIZATIONS};

/// A batch of subgrids in `[subgrid][pol][y][x]` layout — contiguous so
/// the batched FFT can treat it as a sequence of planes and the (modeled)
/// device transfers can move it as one allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct SubgridArray {
    size: usize,
    count: usize,
    data: Vec<Cf32>,
}

impl SubgridArray {
    /// Allocate `count` zeroed subgrids of `size × size` pixels.
    pub fn new(count: usize, size: usize) -> Self {
        Self {
            size,
            count,
            data: vec![Complex::zero(); count * NR_POLARIZATIONS * size * size],
        }
    }

    /// Subgrid edge length.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of subgrids.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Bytes per subgrid (4 polarization planes of complex f32).
    pub fn bytes_per_subgrid(&self) -> usize {
        NR_POLARIZATIONS * self.size * self.size * std::mem::size_of::<Cf32>()
    }

    /// One whole subgrid (4 planes), immutable.
    #[inline]
    pub fn subgrid(&self, idx: usize) -> &[Cf32] {
        let n = NR_POLARIZATIONS * self.size * self.size;
        &self.data[idx * n..(idx + 1) * n]
    }

    /// One whole subgrid (4 planes), mutable.
    #[inline]
    pub fn subgrid_mut(&mut self, idx: usize) -> &mut [Cf32] {
        let n = NR_POLARIZATIONS * self.size * self.size;
        &mut self.data[idx * n..(idx + 1) * n]
    }

    /// Iterate over subgrids mutably (rayon-splittable chunks).
    pub fn subgrids_mut(&mut self) -> std::slice::ChunksExactMut<'_, Cf32> {
        let n = NR_POLARIZATIONS * self.size * self.size;
        self.data.chunks_exact_mut(n)
    }

    /// Iterate over subgrids immutably.
    pub fn subgrids(&self) -> std::slice::ChunksExact<'_, Cf32> {
        let n = NR_POLARIZATIONS * self.size * self.size;
        self.data.chunks_exact(n)
    }

    /// Raw backing store (`count × 4` planes of `size²`).
    #[inline]
    pub fn as_slice(&self) -> &[Cf32] {
        &self.data
    }

    /// Raw backing store, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Cf32] {
        &mut self.data
    }

    /// Read pixel `(pol, y, x)` of subgrid `idx`.
    #[inline(always)]
    pub fn at(&self, idx: usize, pol: usize, y: usize, x: usize) -> Cf32 {
        self.subgrid(idx)[(pol * self.size + y) * self.size + x]
    }

    /// Zero all subgrids.
    pub fn clear(&mut self) {
        self.data.fill(Complex::zero());
    }

    /// Sum of |pixel|² across the whole batch.
    pub fn power(&self) -> f64 {
        self.data.iter().map(|c| c.norm_sqr() as f64).sum()
    }
}

/// Index of pixel `(pol, y, x)` within a single-subgrid slice of edge `n`.
#[inline(always)]
pub fn pixel_index(n: usize, pol: usize, y: usize, x: usize) -> usize {
    (pol * n + y) * n + x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_accessors() {
        let mut arr = SubgridArray::new(3, 8);
        assert_eq!(arr.count(), 3);
        assert_eq!(arr.size(), 8);
        assert_eq!(arr.as_slice().len(), 3 * 4 * 64);
        assert_eq!(arr.bytes_per_subgrid(), 4 * 64 * 8);

        arr.subgrid_mut(1)[pixel_index(8, 2, 3, 4)] = Cf32::new(1.0, -1.0);
        assert_eq!(arr.at(1, 2, 3, 4), Cf32::new(1.0, -1.0));
        assert_eq!(arr.at(0, 2, 3, 4), Cf32::zero());
        assert_eq!(arr.at(2, 2, 3, 4), Cf32::zero());
    }

    #[test]
    fn chunks_are_disjoint_and_complete() {
        let mut arr = SubgridArray::new(4, 4);
        for (i, sg) in arr.subgrids_mut().enumerate() {
            sg[0] = Cf32::new(i as f32, 0.0);
        }
        for (i, sg) in arr.subgrids().enumerate() {
            assert_eq!(sg[0], Cf32::new(i as f32, 0.0));
        }
        assert_eq!(arr.subgrids().count(), 4);
    }

    #[test]
    fn clear_and_power() {
        let mut arr = SubgridArray::new(2, 4);
        arr.subgrid_mut(0)[0] = Cf32::new(3.0, 4.0);
        assert!((arr.power() - 25.0).abs() < 1e-6);
        arr.clear();
        assert_eq!(arr.power(), 0.0);
    }
}
