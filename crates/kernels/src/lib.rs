//! # idg-kernels — the IDG compute kernels
//!
//! Implementations of the paper's Algorithms 1 and 2 plus the surrounding
//! data movement:
//!
//! * [`mod@reference`] — scalar double-precision gridder/degridder, the gold
//!   standard every optimized path is validated against;
//! * [`cpu`] — the optimized CPU kernels of Sec. V-B: single precision,
//!   per-work-item SoA staging of visibilities, batched phasor
//!   (sincos) evaluation via `idg-math` (the SVML/VML analogue),
//!   channel-vectorized gridder reduction (Listing 1), pixel-vectorized
//!   degridder, thread-level parallelism over work items with rayon
//!   (the OpenMP analogue);
//! * [`adder`] — the adder (parallel over grid rows, Sec. V-B d) and the
//!   splitter (parallel over subgrids), including the half-pixel phase
//!   correction that accompanies the `x + 0.5` pixel-center convention;
//! * [`fft`] — batched subgrid FFTs;
//! * [`buffers`] — the contiguous subgrid array shared by all stages;
//! * [`cache`] — the pass-level [`KernelCache`] of item-independent
//!   geometry planes and adder/splitter phasor tables, shared across
//!   passes by the proxy.
//!
//! ## Geometry conventions (shared by every kernel in the workspace)
//!
//! * Image coordinates of subgrid pixel `x`:
//!   `l(x) = (x + 0.5 − Ñ/2)·image_size/Ñ` (and `m(y)` likewise);
//!   `n = (l²+m²)/(1+√(1−l²−m²))`.
//! * Gridding phase: `φ = 2π[(u−u₀)l + (v−v₀)m + (w−w₀)n]` with
//!   `(u,v,w)` in wavelengths, `u₀,v₀` the subgrid-center uv-coordinate
//!   and `w₀` the W-plane offset; degridding uses `−φ`. This is the
//!   conjugate of the measurement equation (Eq. 1), so gridding is the
//!   adjoint of prediction.
//! * The gridder applies the *adjoint* A-term sandwich `A_pᴴ · S · A_q`;
//!   the degridder applies the *forward* sandwich `A_p · S · A_qᴴ`.
//! * Subgrids hold image-domain pixels (DC at the center); the subgrid
//!   FFT runs unshifted and the adder/splitter fold the fftshift and the
//!   half-pixel phase ramp into their index/phase arithmetic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernels

pub mod adder;
pub mod buffers;
pub mod cache;
pub mod cpu;
pub mod fft;
pub mod geometry;
pub mod reference;

pub use adder::{add_subgrids, split_subgrids};
pub use buffers::SubgridArray;
pub use cache::{GeometryKey, KernelCache, PhasorKey};
pub use cpu::{degridder_cpu, gridder_cpu};
pub use fft::{fft_subgrids, FftNorm};
pub use geometry::KernelGeometry;
pub use reference::{degridder_reference, gridder_reference};

use idg_telescope::ATerms;
use idg_types::{Observation, Uvw, Visibility};

/// Borrowed inputs shared by the gridder and degridder kernels.
///
/// `uvw` and `visibilities` are full-observation buffers in
/// `[baseline][timestep]` / `[baseline][timestep][channel]` layout; work
/// items index into them.
pub struct KernelData<'a> {
    /// Observation parameters.
    pub obs: &'a Observation,
    /// uvw coordinates (meters).
    pub uvw: &'a [Uvw],
    /// Visibilities (input for gridding, output target for degridding).
    pub visibilities: &'a [Visibility<f32>],
    /// Sampled A-terms.
    pub aterms: &'a ATerms,
    /// Image-domain taper, `subgrid_size²` row-major values.
    pub taper: &'a [f32],
}

impl<'a> KernelData<'a> {
    /// Validate buffer shapes against the observation.
    pub fn validate(&self) -> Result<(), idg_types::IdgError> {
        let expect_uvw = self.obs.nr_baselines() * self.obs.nr_timesteps;
        if self.uvw.len() != expect_uvw {
            return Err(idg_types::IdgError::ShapeMismatch {
                what: "uvw",
                expected: expect_uvw,
                actual: self.uvw.len(),
            });
        }
        let expect_vis = self.obs.nr_visibilities();
        if self.visibilities.len() != expect_vis {
            return Err(idg_types::IdgError::ShapeMismatch {
                what: "visibilities",
                expected: expect_vis,
                actual: self.visibilities.len(),
            });
        }
        let n2 = self.obs.subgrid_size * self.obs.subgrid_size;
        if self.taper.len() != n2 {
            return Err(idg_types::IdgError::ShapeMismatch {
                what: "taper",
                expected: n2,
                actual: self.taper.len(),
            });
        }
        if self.aterms.subgrid_size() != self.obs.subgrid_size {
            return Err(idg_types::IdgError::ShapeMismatch {
                what: "aterms subgrid size",
                expected: self.obs.subgrid_size,
                actual: self.aterms.subgrid_size(),
            });
        }
        Ok(())
    }
}

/// Launch-time shape checks shared by the gridder/degridder entry
/// points: inputs consistent with the observation, one subgrid per work
/// item, subgrids sized to the observation.
pub(crate) fn check_launch(
    data: &KernelData<'_>,
    items: &[idg_plan::WorkItem],
    subgrids: &SubgridArray,
) -> Result<(), idg_types::IdgError> {
    data.validate()?;
    if subgrids.count() != items.len() {
        return Err(idg_types::IdgError::ShapeMismatch {
            what: "subgrid count",
            expected: items.len(),
            actual: subgrids.count(),
        });
    }
    if subgrids.size() != data.obs.subgrid_size {
        return Err(idg_types::IdgError::ShapeMismatch {
            what: "subgrid size",
            expected: data.obs.subgrid_size,
            actual: subgrids.size(),
        });
    }
    Ok(())
}
