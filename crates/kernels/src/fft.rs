//! Batched subgrid FFTs — step (2) of the IDG pipeline.
//!
//! Every subgrid's four polarization planes are transformed between the
//! image domain (where the gridder/degridder and the corrections operate)
//! and the Fourier domain (where the adder/splitter move data to/from the
//! grid). The batch is embarrassingly parallel (Sec. V-B c) and is
//! delegated to `idg-fft`'s rayon-parallel batch path.

use crate::buffers::SubgridArray;
use idg_fft::{Direction, Fft2d};
use idg_types::{Complex, Float};

/// Extra normalization applied after the transform.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FftNorm {
    /// No extra scaling (forward unscaled / inverse 1/N² — the plan's
    /// native convention; the adder applies the gridding-side 1/Ñ²).
    None,
    /// Multiply by `1/Ñ²` (useful when bypassing the adder in tests).
    ByPixelCount,
}

/// Transform all subgrids in `array` in the given direction.
pub fn fft_subgrids(array: &mut SubgridArray, direction: Direction, norm: FftNorm) {
    let n = array.size();
    if array.count() == 0 {
        return;
    }
    record_fft(array.count(), direction);
    let fft = Fft2d::<f32>::new(n);
    fft.process_batch(array.as_mut_slice(), direction);
    if norm == FftNorm::ByPixelCount {
        let scale = 1.0 / f32::from_usize(n * n);
        for v in array.as_mut_slice() {
            *v = v.scale(scale);
        }
    }
}

/// Transform all subgrids with a caller-supplied plan (avoids re-planning
/// per call in hot loops; the plan must match the subgrid size).
pub fn fft_subgrids_with_plan(array: &mut SubgridArray, fft: &Fft2d<f32>, direction: Direction) {
    assert_eq!(
        fft.size(),
        array.size(),
        "plan size must match subgrid size"
    );
    if array.count() == 0 {
        return;
    }
    record_fft(array.count(), direction);
    fft.process_batch(array.as_mut_slice(), direction);
}

/// Count a subgrid FFT batch against the active obs session (if any).
fn record_fft(count: usize, direction: Direction) {
    match direction {
        Direction::Forward => idg_obs::add_subgrids_fft(count as u64),
        Direction::Inverse => idg_obs::add_subgrids_ifft(count as u64),
    }
}

/// Total energy helper used by Parseval-style tests.
pub fn total_power(array: &SubgridArray) -> f64 {
    array
        .as_slice()
        .iter()
        .map(|c| Complex::norm_sqr(*c) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Cf32;

    fn filled(count: usize, n: usize) -> SubgridArray {
        let mut arr = SubgridArray::new(count, n);
        for (i, v) in arr.as_mut_slice().iter_mut().enumerate() {
            *v = Cf32::new(((i * 13) % 7) as f32 - 3.0, ((i * 5) % 11) as f32 * 0.25);
        }
        arr
    }

    #[test]
    fn forward_inverse_round_trip() {
        let orig = filled(3, 24);
        let mut arr = orig.clone();
        fft_subgrids(&mut arr, Direction::Forward, FftNorm::None);
        fft_subgrids(&mut arr, Direction::Inverse, FftNorm::None);
        for (a, b) in arr.as_slice().iter().zip(orig.as_slice()) {
            assert!((*a - *b).abs() < 1e-3);
        }
    }

    #[test]
    fn parseval_across_batch() {
        let orig = filled(2, 16);
        let mut arr = orig.clone();
        fft_subgrids(&mut arr, Direction::Forward, FftNorm::None);
        let e_time = total_power(&orig);
        let e_freq = total_power(&arr) / (16.0 * 16.0);
        assert!((e_time - e_freq).abs() < 1e-6 * e_time);
    }

    #[test]
    fn pixel_count_norm() {
        let mut arr = filled(1, 8);
        let mut reference = arr.clone();
        fft_subgrids(&mut arr, Direction::Forward, FftNorm::ByPixelCount);
        fft_subgrids(&mut reference, Direction::Forward, FftNorm::None);
        for (a, b) in arr.as_slice().iter().zip(reference.as_slice()) {
            assert!((a.scale(64.0) - *b).abs() < 1e-4);
        }
    }

    #[test]
    fn with_plan_matches_adhoc() {
        let mut a = filled(2, 24);
        let mut b = a.clone();
        fft_subgrids(&mut a, Direction::Forward, FftNorm::None);
        let plan = idg_fft::Fft2d::<f32>::new(24);
        fft_subgrids_with_plan(&mut b, &plan, Direction::Forward);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut arr = SubgridArray::new(0, 24);
        fft_subgrids(&mut arr, Direction::Forward, FftNorm::None);
        assert_eq!(arr.count(), 0);
    }

    #[test]
    #[should_panic(expected = "plan size must match")]
    fn plan_size_mismatch_panics() {
        let mut arr = SubgridArray::new(1, 24);
        let plan = idg_fft::Fft2d::<f32>::new(16);
        fft_subgrids_with_plan(&mut arr, &plan, Direction::Forward);
    }
}
