//! Optimized CPU gridder and degridder (Sec. V-B of the paper).
//!
//! The optimizations mirror the paper's, translated to Rust idiom:
//!
//! 1. **Staging / transposition** — per work item, visibilities are
//!    loaded into structure-of-arrays buffers with real and imaginary
//!    parts separated, so the reduction loops stride contiguously
//!    (the paper's "load and transpose … into memory-aligned arrays").
//! 2. **Batched phasors** — all `T̃·C̃` phases of a pixel are computed
//!    first, then evaluated with one `sincos_batch` call (`idg-math`'s
//!    SVML/VML analogue, medium accuracy).
//! 3. **Vectorized reductions** — the gridder reduces over channels
//!    (Listing 1: 16 FMAs per iteration across 8 accumulators), the
//!    degridder over pixels; both loops are written as straight-line
//!    mul_adds over slices so LLVM emits packed FMA code.
//! 4. **Thread-level parallelism** — work items are distributed over
//!    cores with rayon (the OpenMP `parallel for` analogue). Gridder
//!    threads own disjoint subgrids; degridder threads own disjoint
//!    visibility blocks, reassembled after the parallel section.

use crate::buffers::SubgridArray;
use crate::cache::{GeometryKey, KernelCache};
use crate::geometry::KernelGeometry;
use crate::KernelData;
use idg_math::{sincos_batch, Accuracy};
use idg_obs::{KernelCounters, KernelStage};
use idg_plan::WorkItem;
use idg_types::{Float, IdgError, Jones, Visibility};
use rayon::prelude::*;

/// Bytes of one 4-pol complex-f32 quantity (visibility or pixel).
const BYTES_POL4: u64 = 32;
/// Bytes of one staged uvw coordinate (3 × f32).
const BYTES_UVW: u64 = 12;

/// Per-worker scratch buffers, reused across work items.
struct Scratch {
    /// Phases, then sin/cos planes, each `max(T̃·C̃, Ñ²)` long.
    phases: Vec<f32>,
    /// Per-channel phase staging of the degridder.
    chan_phases: Vec<f32>,
    sin: Vec<f32>,
    cos: Vec<f32>,
    /// SoA staging: 4 pols × re/im.
    re: [Vec<f32>; 4],
    im: [Vec<f32>; 4],
    /// Per-item phase offsets φ₀ (the only geometry plane that varies
    /// per item — l/m/n come shared from the [`KernelCache`]).
    d: Vec<f32>,
    /// Gridder pixel accumulators, persisted across visibility batches.
    pix: Vec<[(f32, f32); 4]>,
}

impl Scratch {
    fn new() -> Self {
        Self {
            phases: Vec::new(),
            chan_phases: Vec::new(),
            sin: Vec::new(),
            cos: Vec::new(),
            re: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            im: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            d: Vec::new(),
            pix: Vec::new(),
        }
    }

    fn resize(&mut self, len: usize) {
        self.phases.resize(len, 0.0);
        self.chan_phases.resize(len, 0.0);
        self.sin.resize(len, 0.0);
        self.cos.resize(len, 0.0);
        for p in 0..4 {
            self.re[p].resize(len, 0.0);
            self.im[p].resize(len, 0.0);
        }
        self.d.resize(len, 0.0);
        self.pix.resize(len, [(0.0, 0.0); 4]);
    }
}

/// Visibility-batch size (elements of T̃·C̃) staged per sincos/reduction
/// round — the `T_B × C_B` platform parameter of Sec. V-B: large enough
/// to amortize call overheads, small enough that the 11 staging arrays
/// (phases, sin, cos, 8 SoA planes) stay L1-resident.
const VIS_BATCH: usize = 512;

/// [`reduce_4pol`] over `soa[offset..offset+len]` paired with
/// `sin/cos[..len]` (the trig planes are batch-local, the visibility SoA
/// planes are item-global).
#[inline]
fn reduce_4pol_offset(
    sin: &[f32],
    cos: &[f32],
    re: &[Vec<f32>; 4],
    im: &[Vec<f32>; 4],
    offset: usize,
    len: usize,
) -> [(f32, f32); 4] {
    let re_slices = [
        &re[0][offset..],
        &re[1][offset..],
        &re[2][offset..],
        &re[3][offset..],
    ];
    let im_slices = [
        &im[0][offset..],
        &im[1][offset..],
        &im[2][offset..],
        &im[3][offset..],
    ];
    reduce_4pol_slices(sin, cos, &re_slices, &im_slices, len)
}

/// The channel-reduction of Listing 1, generalized to reduce over any
/// contiguous index range: 16 FMAs per element across 8 accumulators.
///
/// Strict-FP reductions cannot be auto-vectorized (the compiler may not
/// reassociate float adds), so the accumulators are split into `LANES`
/// independent partial sums — each maps onto one SIMD lane and the loop
/// compiles to packed FMAs, the effect of Listing 1\'s
/// `#pragma omp simd reduction`.
#[inline]
fn reduce_4pol(
    sin: &[f32],
    cos: &[f32],
    re: &[Vec<f32>; 4],
    im: &[Vec<f32>; 4],
    len: usize,
) -> [(f32, f32); 4] {
    let re_slices = [
        re[0].as_slice(),
        re[1].as_slice(),
        re[2].as_slice(),
        re[3].as_slice(),
    ];
    let im_slices = [
        im[0].as_slice(),
        im[1].as_slice(),
        im[2].as_slice(),
        im[3].as_slice(),
    ];
    reduce_4pol_slices(sin, cos, &re_slices, &im_slices, len)
}

#[inline]
fn reduce_4pol_slices(
    sin: &[f32],
    cos: &[f32],
    re: &[&[f32]; 4],
    im: &[&[f32]; 4],
    len: usize,
) -> [(f32, f32); 4] {
    const LANES: usize = 16;
    let mut acc = [(0.0f32, 0.0f32); 4];
    let full = len - len % LANES;

    for p in 0..4 {
        let (vr, vi) = (&re[p][..len], &im[p][..len]);
        let (s, c) = (&sin[..len], &cos[..len]);

        let mut ar = [0.0f32; LANES];
        let mut ai = [0.0f32; LANES];
        // chunks_exact (rather than a manually indexed `while`) lets LLVM
        // prove the accumulator arrays never alias the inputs, so they live
        // in vector registers across the whole loop instead of round-tripping
        // through the stack every iteration (~7× on this reduction).
        for (((vr_c, vi_c), s_c), c_c) in vr[..full]
            .chunks_exact(LANES)
            .zip(vi[..full].chunks_exact(LANES))
            .zip(s[..full].chunks_exact(LANES))
            .zip(c[..full].chunks_exact(LANES))
        {
            for lane in 0..LANES {
                // pixel += vis * (cos + i*sin):
                ar[lane] = vr_c[lane].mul_add(c_c[lane], ar[lane]);
                ar[lane] = (-vi_c[lane]).mul_add(s_c[lane], ar[lane]);
                ai[lane] = vr_c[lane].mul_add(s_c[lane], ai[lane]);
                ai[lane] = vi_c[lane].mul_add(c_c[lane], ai[lane]);
            }
        }
        let mut ar_sum: f32 = ar.iter().sum();
        let mut ai_sum: f32 = ai.iter().sum();
        for k in full..len {
            ar_sum = vr[k].mul_add(c[k], ar_sum);
            ar_sum = (-vi[k]).mul_add(s[k], ar_sum);
            ai_sum = vr[k].mul_add(s[k], ai_sum);
            ai_sum = vi[k].mul_add(c[k], ai_sum);
        }
        acc[p] = (ar_sum, ai_sum);
    }
    acc
}

/// Optimized gridder: Algorithm 1 over all work items, parallelized with
/// rayon; numerically validated against [`crate::gridder_reference`].
pub fn gridder_cpu(
    data: &KernelData<'_>,
    items: &[WorkItem],
    subgrids: &mut SubgridArray,
    accuracy: Accuracy,
    cache: &KernelCache,
) -> Result<(), IdgError> {
    crate::check_launch(data, items, subgrids)?;

    let geom = KernelGeometry::new(data.obs);
    let n = geom.subgrid_size;
    let n2 = n * n;
    // Shared per-pixel direction cosines: one lookup per pass, every
    // work item reuses the same planes.
    let planes = cache.geometry(GeometryKey::new(n, geom.image_size));
    let nr_time = data.obs.nr_timesteps;
    let nr_chan = data.obs.nr_channels();
    // per-channel phase scale 2π·ν/c as f32 (phases stay < ~10⁴ rad)
    let scales: Vec<f32> = data
        .obs
        .frequencies
        .iter()
        .map(|f| f32::from_f64(KernelGeometry::phase_scale(*f)))
        .collect();

    items
        .par_iter()
        .zip(subgrids.as_mut_slice().par_chunks_exact_mut(4 * n2))
        .for_each_init(Scratch::new, |scr, (item, subgrid)| {
            let item_chan = item.nr_channels;
            let tc = item.nr_timesteps * item_chan;
            scr.resize(tc.max(n2));

            // Measured op tally, incremented beside the staging loops
            // and batched-math call sites with their actual lengths;
            // flushed once per item (no-op without an active session).
            let mut tally = KernelCounters {
                invocations: 1,
                ..KernelCounters::default()
            };

            // stage this item's channel group (SoA, re/im separated)
            let base = item.baseline_index * nr_time + item.time_offset;
            for dt in 0..item.nr_timesteps {
                let row_start = (base + dt) * nr_chan + item.channel_offset;
                let row = &data.visibilities[row_start..row_start + item_chan];
                for (ci, v) in row.iter().enumerate() {
                    let k = dt * item_chan + ci;
                    for p in 0..4 {
                        scr.re[p][k] = v.pols[p].re;
                        scr.im[p][k] = v.pols[p].im;
                    }
                }
                tally.visibilities += row.len() as u64;
                tally.dram_bytes += row.len() as u64 * BYTES_POL4 + BYTES_UVW;
            }

            let (u0, v0, w0) = geom.subgrid_center_uvw(item);
            let uvw = &data.uvw[base..base + item.nr_timesteps];
            let ap_plane = data.aterms.plane(item.aterm_index, item.baseline.station1);
            let aq_plane = data.aterms.plane(item.aterm_index, item.baseline.station2);
            let identity_aterms = data.aterms.is_identity();
            // both station planes are fetched even when identity
            tally.dram_bytes += (ap_plane.len() + aq_plane.len()) as u64 * BYTES_POL4;

            // Per-pixel phase offset φ₀ — the only geometry term that
            // depends on the item; l/m/n come from the cached planes.
            for i in 0..n2 {
                scr.d[i] = f32::from_f64(
                    2.0 * std::f64::consts::PI
                        * (u0 * planes.l[i] + v0 * planes.m[i] + w0 * planes.n_term[i]),
                );
            }

            // Batch-outer / pixel-inner, the paper\'s Sec. V-B
            // optimization 1 (T_B × C_B batching): one batch\'s SoA
            // planes (≤ VIS_BATCH elements) and the trig staging stay
            // L1-resident while *every* pixel consumes them; the pixel
            // accumulators persist across batches like the GPU kernel\'s
            // registers.
            scr.pix[..n2].fill([(0.0, 0.0); 4]);
            let batch_t = (VIS_BATCH / item_chan).max(1);
            let mut t0 = 0usize;
            while t0 < item.nr_timesteps {
                let t1 = (t0 + batch_t).min(item.nr_timesteps);
                let len = (t1 - t0) * item_chan;
                let off = t0 * item_chan;

                for (i, acc) in scr.pix[..n2].iter_mut().enumerate() {
                    let (lf, mf, nf, phase_offset) =
                        (planes.lf[i], planes.mf[i], planes.nf[i], scr.d[i]);
                    for (bt, uvw_m) in uvw[t0..t1].iter().enumerate() {
                        let phase_index = uvw_m.u.mul_add(lf, uvw_m.v.mul_add(mf, uvw_m.w * nf));
                        let row = &mut scr.phases[bt * item_chan..(bt + 1) * item_chan];
                        for (ci, ph) in row.iter_mut().enumerate() {
                            *ph = scales[item.channel_offset + ci]
                                .mul_add(phase_index, -phase_offset);
                        }
                    }
                    // one batched sincos call per (pixel, batch) — the
                    // SVML analogue
                    sincos_batch(&scr.phases[..len], &mut scr.sin, &mut scr.cos, accuracy);
                    tally.sincos_pairs += len as u64;
                    tally.fmas += len as u64; // phase mul_add per element

                    // Listing 1: vectorized 4-pol reduction over the batch
                    let partial =
                        reduce_4pol_offset(&scr.sin, &scr.cos, &scr.re, &scr.im, off, len);
                    tally.fmas += 16 * len as u64; // 4 pols × 4 mul_adds
                    tally.shared_bytes += len as u64 * (BYTES_POL4 + BYTES_UVW);
                    for p in 0..4 {
                        acc[p].0 += partial[p].0;
                        acc[p].1 += partial[p].1;
                    }
                }
                t0 = t1;
            }

            // Epilogue: A-term (adjoint) + taper, then store.
            for y in 0..n {
                for x in 0..n {
                    let i = y * n + x;
                    let acc = scr.pix[i];
                    let taper = data.taper[i];
                    let store = |subgrid: &mut [idg_types::Cf32], vals: [(f32, f32); 4]| {
                        for (p, (vr, vi)) in vals.into_iter().enumerate() {
                            subgrid[(p * n + y) * n + x] =
                                idg_types::Cf32::new(vr * taper, vi * taper);
                        }
                    };
                    if identity_aterms {
                        store(subgrid, acc);
                    } else {
                        let pix = Jones::from_pols([
                            idg_types::Cf32::new(acc[0].0, acc[0].1),
                            idg_types::Cf32::new(acc[1].0, acc[1].1),
                            idg_types::Cf32::new(acc[2].0, acc[2].1),
                            idg_types::Cf32::new(acc[3].0, acc[3].1),
                        ]);
                        let ap = ap_plane[i];
                        let aq = aq_plane[i];
                        let corrected = ap.hermitian().mul(pix).mul(aq).to_pols();
                        store(
                            subgrid,
                            [
                                (corrected[0].re, corrected[0].im),
                                (corrected[1].re, corrected[1].im),
                                (corrected[2].re, corrected[2].im),
                                (corrected[3].re, corrected[3].im),
                            ],
                        );
                    }
                    tally.dram_bytes += BYTES_POL4; // output pixel written once
                }
            }
            idg_obs::add_kernel(KernelStage::Gridder, &tally);
        });
    Ok(())
}

/// Optimized degridder: Algorithm 2 over all work items.
///
/// Parallel over work items; `vis_out` is pre-partitioned into disjoint
/// per-timestep rows (the plan never assigns one visibility to two
/// items), so each worker predicts straight into its own slices — no
/// per-item staging allocation, no sequential scatter afterwards.
pub fn degridder_cpu(
    data: &KernelData<'_>,
    items: &[WorkItem],
    subgrids: &SubgridArray,
    vis_out: &mut [Visibility<f32>],
    accuracy: Accuracy,
    cache: &KernelCache,
) -> Result<(), IdgError> {
    crate::check_launch(data, items, subgrids)?;
    if vis_out.len() != data.obs.nr_visibilities() {
        return Err(IdgError::ShapeMismatch {
            what: "visibility output buffer",
            expected: data.obs.nr_visibilities(),
            actual: vis_out.len(),
        });
    }

    let geom = KernelGeometry::new(data.obs);
    let n = geom.subgrid_size;
    let n2 = n * n;
    let nr_time = data.obs.nr_timesteps;
    let nr_chan = data.obs.nr_channels();
    let planes = cache.geometry(GeometryKey::new(n, geom.image_size));
    let scales: Vec<f32> = data
        .obs
        .frequencies
        .iter()
        .map(|f| f32::from_f64(KernelGeometry::phase_scale(*f)))
        .collect();

    // Carve vis_out into one mutable row slice per (item, timestep),
    // bundled per item. Rows are sorted by destination offset so the
    // buffer can be split left-to-right with `split_at_mut`; a malformed
    // (overlapping) plan underflows `dst - cursor` and panics, the same
    // failure mode the old overlapping-scatter copy had.
    let mut row_order: Vec<(usize, usize)> = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let base = item.baseline_index * nr_time + item.time_offset;
        for dt in 0..item.nr_timesteps {
            row_order.push(((base + dt) * nr_chan + item.channel_offset, idx));
        }
    }
    row_order.sort_unstable();
    let mut bundles: Vec<Vec<&mut [Visibility<f32>]>> = items
        .iter()
        .map(|item| Vec::with_capacity(item.nr_timesteps))
        .collect();
    let mut rest = vis_out;
    let mut cursor = 0usize;
    for (dst, idx) in row_order {
        let (_, tail) = std::mem::take(&mut rest).split_at_mut(dst - cursor);
        let (row, tail) = tail.split_at_mut(items[idx].nr_channels);
        bundles[idx].push(row);
        rest = tail;
        cursor = dst + items[idx].nr_channels;
    }

    items
        .par_iter()
        .enumerate()
        .zip(bundles.into_par_iter())
        .for_each_init(Scratch::new, |scr, ((s_idx, item), mut rows)| {
            scr.resize(n2);
            let subgrid = subgrids.subgrid(s_idx);
            let ap_plane = data.aterms.plane(item.aterm_index, item.baseline.station1);
            let aq_plane = data.aterms.plane(item.aterm_index, item.baseline.station2);
            let (u0, v0, w0) = geom.subgrid_center_uvw(item);

            // Measured op tally (see gridder_cpu): the staging pass
            // reads the subgrid and both A-term planes once.
            let mut tally = KernelCounters {
                invocations: 1,
                dram_bytes: (n2 + ap_plane.len() + aq_plane.len()) as u64 * BYTES_POL4,
                ..KernelCounters::default()
            };

            // Lines 2–3 of Algorithm 2: forward A-term sandwich + taper,
            // staged SoA, together with per-pixel geometry (l, m, n, φ₀).
            for y in 0..n {
                for x in 0..n {
                    let i = y * n + x;
                    scr.d[i] = f32::from_f64(
                        2.0 * std::f64::consts::PI
                            * (u0 * planes.l[i] + v0 * planes.m[i] + w0 * planes.n_term[i]),
                    );

                    let raw = Jones::from_pols([
                        subgrid[(y) * n + x],
                        subgrid[(n + y) * n + x],
                        subgrid[(2 * n + y) * n + x],
                        subgrid[(3 * n + y) * n + x],
                    ]);
                    let taper = data.taper[i];
                    let px = ap_plane[i]
                        .sandwich(raw, aq_plane[i])
                        .scale(taper)
                        .to_pols();
                    for p in 0..4 {
                        scr.re[p][i] = px[p].re;
                        scr.im[p][i] = px[p].im;
                    }
                }
            }

            let base = item.baseline_index * nr_time + item.time_offset;
            let uvw = &data.uvw[base..base + item.nr_timesteps];
            let item_chan = item.nr_channels;

            for (dt, uvw_m) in uvw.iter().enumerate() {
                tally.dram_bytes += BYTES_UVW;
                // per-pixel meter-valued phase index (3 FMAs each)
                for i in 0..n2 {
                    scr.phases[i] = uvw_m.u.mul_add(
                        planes.lf[i],
                        uvw_m.v.mul_add(planes.mf[i], uvw_m.w * planes.nf[i]),
                    );
                }
                let out_row = &mut rows[dt];
                for ci in 0..item_chan {
                    // degridding phase = −(scale·index − offset)
                    let scale = scales[item.channel_offset + ci];
                    for i in 0..n2 {
                        scr.chan_phases[i] = (-scale).mul_add(scr.phases[i], scr.d[i]);
                    }
                    sincos_batch(&scr.chan_phases[..n2], &mut scr.sin, &mut scr.cos, accuracy);
                    tally.sincos_pairs += n2 as u64;
                    tally.fmas += n2 as u64; // phase mul_add per pixel
                    let acc = reduce_4pol(&scr.sin, &scr.cos, &scr.re, &scr.im, n2);
                    // 4 pols × 4 mul_adds, then staged pixel + geometry +
                    // accumulator traffic
                    tally.fmas += 16 * n2 as u64;
                    tally.shared_bytes += n2 as u64 * (BYTES_POL4 + 16 + BYTES_UVW);
                    tally.visibilities += 1;
                    tally.dram_bytes += BYTES_POL4; // predicted vis written once
                    out_row[ci] = Visibility {
                        pols: [
                            idg_types::Cf32::new(acc[0].0, acc[0].1),
                            idg_types::Cf32::new(acc[1].0, acc[1].1),
                            idg_types::Cf32::new(acc[2].0, acc[2].1),
                            idg_types::Cf32::new(acc[3].0, acc[3].1),
                        ],
                    };
                }
            }
            idg_obs::add_kernel(KernelStage::Degridder, &tally);
        });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{degridder_reference, gridder_reference};
    use idg_plan::Plan;
    use idg_telescope::{Dataset, GaussianBeam, IdentityATerm, Layout, SkyModel};
    use idg_types::Observation;

    fn dataset(aterm_kind: u8) -> Dataset {
        let obs = Observation::builder()
            .stations(6)
            .timesteps(24)
            .channels(5, 150e6, 2e6) // odd channel count: exercises remainders
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(8)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(6, 900.0, 17);
        let sky = SkyModel::random(&obs, 5, 0.6, 23);
        match aterm_kind {
            0 => Dataset::simulate(obs, &layout, sky, &IdentityATerm),
            _ => {
                let beam = GaussianBeam::new(&obs, 0.8, 31);
                Dataset::simulate(obs, &layout, sky, &beam)
            }
        }
    }

    fn taper(n: usize) -> Vec<f32> {
        idg_math::spheroidal_2d(n)
    }

    fn assert_subgrids_close(a: &SubgridArray, b: &SubgridArray, tol: f32) {
        let scale = b.as_slice().iter().map(|c| c.abs()).fold(1.0f32, f32::max);
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                (*x - *y).abs() / scale < tol,
                "pixel {i}: {x} vs {y} (scale {scale})"
            );
        }
    }

    #[test]
    fn gridder_matches_reference_identity_aterms() {
        let ds = dataset(0);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let tp = taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &tp,
        };
        let mut fast = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let mut gold = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_cpu(
            &data,
            &plan.items,
            &mut fast,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        gridder_reference(&data, &plan.items, &mut gold).expect("kernel run");
        assert_subgrids_close(&fast, &gold, 2e-4);
    }

    #[test]
    fn gridder_matches_reference_beam_aterms() {
        let ds = dataset(1);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let tp = taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &tp,
        };
        let mut fast = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let mut gold = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_cpu(
            &data,
            &plan.items,
            &mut fast,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        gridder_reference(&data, &plan.items, &mut gold).expect("kernel run");
        assert_subgrids_close(&fast, &gold, 2e-4);
    }

    #[test]
    fn degridder_matches_reference() {
        let ds = dataset(1);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let tp = taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &tp,
        };
        // grid something non-trivial first, then degrid it both ways
        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");

        let mut fast = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        let mut gold = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        degridder_cpu(
            &data,
            &plan.items,
            &subgrids,
            &mut fast,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        degridder_reference(&data, &plan.items, &subgrids, &mut gold).expect("kernel run");

        let scale = gold
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(1.0f32, f32::max);
        for (i, (a, b)) in fast.iter().zip(&gold).enumerate() {
            for p in 0..4 {
                assert!(
                    (a.pols[p] - b.pols[p]).abs() / scale < 3e-4,
                    "vis {i} pol {p}: {} vs {}",
                    a.pols[p],
                    b.pols[p]
                );
            }
        }
    }

    #[test]
    fn fast_accuracy_stays_close_to_medium() {
        let ds = dataset(0);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let tp = taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &tp,
        };
        let mut med = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let mut fast = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_cpu(
            &data,
            &plan.items,
            &mut med,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        gridder_cpu(
            &data,
            &plan.items,
            &mut fast,
            Accuracy::Fast,
            &KernelCache::new(),
        )
        .expect("kernel run");
        assert_subgrids_close(&fast, &med, 1e-3);
    }

    #[test]
    fn parallel_execution_is_deterministic() {
        let ds = dataset(0);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let tp = taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &tp,
        };
        let mut a = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let mut b = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_cpu(
            &data,
            &plan.items,
            &mut a,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        gridder_cpu(
            &data,
            &plan.items,
            &mut b,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        assert_eq!(
            a.as_slice(),
            b.as_slice(),
            "per-item accumulation order is fixed"
        );
    }

    /// Both tail-handling regimes of the optimized kernels against the
    /// reference on the same plan.
    fn assert_tail_conformance(ds: &Dataset) {
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let tp = taper(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &tp,
        };
        let mut fast = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let mut gold = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_cpu(
            &data,
            &plan.items,
            &mut fast,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        gridder_reference(&data, &plan.items, &mut gold).expect("kernel run");
        assert_subgrids_close(&fast, &gold, 2e-4);

        let mut vfast = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        let mut vgold = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        degridder_cpu(
            &data,
            &plan.items,
            &gold,
            &mut vfast,
            Accuracy::Medium,
            &KernelCache::new(),
        )
        .expect("kernel run");
        degridder_reference(&data, &plan.items, &gold, &mut vgold).expect("kernel run");
        let scale = vgold
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(1.0f32, f32::max);
        for (i, (a, b)) in vfast.iter().zip(&vgold).enumerate() {
            for p in 0..4 {
                assert!(
                    (a.pols[p] - b.pols[p]).abs() / scale < 3e-4,
                    "vis {i} pol {p}: {} vs {}",
                    a.pols[p],
                    b.pols[p]
                );
            }
        }
    }

    #[test]
    fn tails_shorter_than_a_simd_lane_match_reference() {
        // 5 timesteps × 3 channels = 15 visibilities per work item:
        // smaller than LANES (16), so the FMA reduction runs entirely
        // in its scalar tail loop, and far below VIS_BATCH, so the
        // batched-sincos path sees a single partial batch.
        let obs = Observation::builder()
            .stations(3)
            .timesteps(5)
            .channels(3, 150e6, 2e6)
            .grid_size(128)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(5)
            .image_size(0.04)
            .build()
            .unwrap();
        assert!(obs.aterm_interval * obs.nr_channels() < 16);
        let layout = Layout::uniform(3, 700.0, 53);
        let sky = SkyModel::random(&obs, 3, 0.5, 59);
        let beam = GaussianBeam::new(&obs, 0.8, 61);
        assert_tail_conformance(&Dataset::simulate(obs, &layout, sky, &beam));
    }

    #[test]
    fn items_straddling_vis_batch_match_reference() {
        // 120 timesteps × 5 channels = 600 visibilities per work item:
        // the batch loop runs one full VIS_BATCH chunk (102 timesteps ×
        // 5 channels = 510) plus a ragged 18-timestep remainder, and
        // 600 % LANES = 8 leaves a sub-lane tail in every reduction.
        let obs = Observation::builder()
            .stations(3)
            .timesteps(120)
            .channels(5, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(20)
            .kernel_size(7)
            .aterm_interval(120)
            .image_size(0.05)
            .build()
            .unwrap();
        let vis_per_item = obs.aterm_interval * obs.nr_channels();
        assert!(vis_per_item > VIS_BATCH && !vis_per_item.is_multiple_of(VIS_BATCH));
        assert!(!vis_per_item.is_multiple_of(16));
        let layout = Layout::uniform(3, 900.0, 67);
        let sky = SkyModel::random(&obs, 4, 0.6, 71);
        assert_tail_conformance(&Dataset::simulate(obs, &layout, sky, &IdentityATerm));
    }
}
