//! Pass-level kernel cache: shared geometry planes and phasor tables.
//!
//! The hot kernels used to repeat two kinds of item-independent work on
//! every call: per-pixel direction cosines (identical for every work
//! item of a given subgrid geometry — only the `(u₀,v₀,w₀)` offset
//! varies) and the adder/splitter phasor tables (`phase_correction`,
//! the fftshift index map, and the n×n product table the adder
//! re-multiplied per pixel). [`KernelCache`] computes each table once
//! per key and hands out `Arc`s; hit/miss totals flow into `idg-obs`
//! so the self-validation layer can pin the expected lookup count per
//! pass.
//!
//! Numerical contract: cached tables are produced by *the same
//! expressions, in the same order* as the previously inlined per-call
//! code, so cached and cold runs are bit-identical (pinned by the
//! conformance suite's cache-transparency cases).

use crate::geometry::KernelGeometry;
use idg_fft::shift::fftshift_source;
use idg_sync::RwLock;
use idg_types::{Cf32, Complex, Float};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-axis phase-correction table: `corr[j] = e^{iπ(j−Ñ/2)(Ñ−1)/Ñ}` —
/// the half-pixel ramp that compensates the `x + 0.5` pixel-center
/// convention of the image-domain kernels.
pub fn phase_correction(n: usize) -> Vec<Cf32> {
    (0..n)
        .map(|j| {
            let p = j as f64 - n as f64 / 2.0;
            let phase = std::f64::consts::PI * p * (n as f64 - 1.0) / n as f64;
            Complex::new(f32::from_f64(phase.cos()), f32::from_f64(phase.sin()))
        })
        .collect()
}

/// Key of a [`GeometryPlanes`] entry: everything `pixel_to_lm`/`compute_n`
/// read. `image_size` is keyed by its bit pattern so the key stays `Eq`
/// without tolerating float edge cases.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct GeometryKey {
    /// Subgrid edge length, pixels.
    pub subgrid_size: usize,
    /// `f64::to_bits` of the field-of-view (radians).
    pub image_size_bits: u64,
}

impl GeometryKey {
    /// Key for a subgrid of `subgrid_size` pixels spanning `image_size`
    /// radians.
    pub fn new(subgrid_size: usize, image_size: f64) -> Self {
        Self {
            subgrid_size,
            image_size_bits: image_size.to_bits(),
        }
    }
}

/// Shared per-pixel direction cosines of one subgrid geometry, in both
/// the f64 form (feeding the per-item φ₀ offset, still computed per
/// item) and the f32 narrowing the kernels consume directly.
#[derive(Debug)]
pub struct GeometryPlanes {
    /// `l(x)` per pixel (row-major), f64.
    pub l: Vec<f64>,
    /// `m(y)` per pixel, f64.
    pub m: Vec<f64>,
    /// `n(l,m)` per pixel, f64.
    pub n_term: Vec<f64>,
    /// `l` narrowed to f32 (exactly `f32::from_f64(l)`).
    pub lf: Vec<f32>,
    /// `m` narrowed to f32.
    pub mf: Vec<f32>,
    /// `n` narrowed to f32.
    pub nf: Vec<f32>,
}

impl GeometryPlanes {
    fn compute(key: &GeometryKey) -> Self {
        let n = key.subgrid_size;
        // Only `subgrid_size` and `image_size` feed pixel_to_lm/compute_n;
        // the grid fields are irrelevant here.
        let geom = KernelGeometry {
            subgrid_size: n,
            grid_size: 0,
            image_size: f64::from_bits(key.image_size_bits),
            w_step: 0.0,
        };
        let n2 = n * n;
        let mut planes = GeometryPlanes {
            l: Vec::with_capacity(n2),
            m: Vec::with_capacity(n2),
            n_term: Vec::with_capacity(n2),
            lf: Vec::with_capacity(n2),
            mf: Vec::with_capacity(n2),
            nf: Vec::with_capacity(n2),
        };
        for y in 0..n {
            let m = geom.pixel_to_lm(y);
            for x in 0..n {
                let l = geom.pixel_to_lm(x);
                let n_term = KernelGeometry::compute_n(l, m);
                planes.l.push(l);
                planes.m.push(m);
                planes.n_term.push(n_term);
                planes.lf.push(f32::from_f64(l));
                planes.mf.push(f32::from_f64(m));
                planes.nf.push(f32::from_f64(n_term));
            }
        }
        planes
    }
}

/// Key of a [`PhasorTables`] entry: the adder/splitter tables depend on
/// the subgrid size alone.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PhasorKey {
    /// Subgrid edge length, pixels.
    pub subgrid_size: usize,
}

impl PhasorKey {
    /// Key for subgrids of `subgrid_size` pixels.
    pub fn new(subgrid_size: usize) -> Self {
        Self { subgrid_size }
    }
}

/// Precomputed adder/splitter phasors and index maps for one subgrid
/// size.
#[derive(Debug)]
pub struct PhasorTables {
    /// Per-axis half-pixel ramp, `corr[j] = e^{iπ(j−Ñ/2)(Ñ−1)/Ñ}`.
    pub corr: Vec<Cf32>,
    /// Adder factor table, `add[jy·Ñ+jx] = (corr[jy]·corr[jx])/Ñ²` —
    /// previously re-multiplied per (item, row, pixel).
    pub add: Vec<Cf32>,
    /// Splitter factor table, `split[jy·Ñ+jx] = corr[jy]*·corr[jx]*`.
    pub split: Vec<Cf32>,
    /// fftshift source index per axis: `shift[j]` is where destination
    /// index `j` reads from (same map for rows and columns).
    pub shift: Vec<usize>,
}

impl PhasorTables {
    fn compute(key: &PhasorKey) -> Self {
        let n = key.subgrid_size;
        let corr = phase_correction(n);
        let scale = 1.0f32 / f32::from_usize(n * n);
        let mut add = Vec::with_capacity(n * n);
        let mut split = Vec::with_capacity(n * n);
        for jy in 0..n {
            let corr_y = corr[jy];
            let corr_y_conj = corr[jy].conj();
            for jx in 0..n {
                add.push((corr_y * corr[jx]).scale(scale));
                split.push(corr_y_conj * corr[jx].conj());
            }
        }
        let shift = (0..n).map(|j| fftshift_source(n, 0, j).1).collect();
        PhasorTables {
            corr,
            add,
            split,
            shift,
        }
    }
}

/// Pass-level cache of item-independent kernel tables.
///
/// One instance lives in `Proxy` (shared with its executor) for the
/// lifetime of the proxy; tables are built on first use and every later
/// pass reuses them. Lookups are counted — both on the cache itself
/// (for direct inspection) and into the active `idg-obs` session, whose
/// self-validation pins the exact number of lookups a pass performs.
#[derive(Debug, Default)]
pub struct KernelCache {
    geometry: RwLock<HashMap<GeometryKey, Arc<GeometryPlanes>>>,
    phasors: RwLock<HashMap<PhasorKey, Arc<PhasorTables>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Read-mostly lookup: warm passes take only the shared read lock, so
/// concurrent workers never serialize on a hit; the write lock is
/// taken on miss alone, with the key re-checked under it (another
/// worker may have built the table between the two acquisitions — the
/// loser of that race counts as a hit and shares the winner's `Arc`,
/// so a key is only ever built once).
fn lookup<K: Eq + Hash + Copy, V>(
    map: &RwLock<HashMap<K, Arc<V>>>,
    key: K,
    build: impl FnOnce() -> V,
) -> (Arc<V>, bool) {
    {
        let read = map.read();
        if let Some(v) = read.get(&key) {
            return (Arc::clone(v), true);
        }
    }
    let mut write = map.write();
    if let Some(v) = write.get(&key) {
        return (Arc::clone(v), true);
    }
    let v = Arc::new(build());
    write.insert(key, Arc::clone(&v));
    (v, false)
}

impl KernelCache {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            idg_obs::add_cache_hits(1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            idg_obs::add_cache_misses(1);
        }
    }

    /// Shared geometry planes for `key`, built on first use.
    pub fn geometry(&self, key: GeometryKey) -> Arc<GeometryPlanes> {
        let (planes, hit) = lookup(&self.geometry, key, || GeometryPlanes::compute(&key));
        self.count(hit);
        planes
    }

    /// Shared adder/splitter phasor tables for `key`, built on first use.
    pub fn phasors(&self, key: PhasorKey) -> Arc<PhasorTables> {
        let (tables, hit) = lookup(&self.phasors, key, || PhasorTables::compute(&key));
        self.count(hit);
        tables
    }

    /// Lookups answered from an existing table since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build their table since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_planes_match_inline_formulas() {
        let cache = KernelCache::new();
        let n = 16usize;
        let image_size = 0.05f64;
        let planes = cache.geometry(GeometryKey::new(n, image_size));
        let geom = KernelGeometry {
            subgrid_size: n,
            grid_size: 256,
            image_size,
            w_step: 0.0,
        };
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                let l = geom.pixel_to_lm(x);
                let m = geom.pixel_to_lm(y);
                let nt = KernelGeometry::compute_n(l, m);
                assert_eq!(planes.l[i].to_bits(), l.to_bits());
                assert_eq!(planes.m[i].to_bits(), m.to_bits());
                assert_eq!(planes.n_term[i].to_bits(), nt.to_bits());
                assert_eq!(planes.lf[i].to_bits(), f32::from_f64(l).to_bits());
                assert_eq!(planes.nf[i].to_bits(), f32::from_f64(nt).to_bits());
            }
        }
    }

    #[test]
    fn phasor_tables_match_inline_formulas() {
        let cache = KernelCache::new();
        let n = 12usize;
        let t = cache.phasors(PhasorKey::new(n));
        let corr = phase_correction(n);
        let scale = 1.0f32 / (n * n) as f32;
        for jy in 0..n {
            for jx in 0..n {
                let add = (corr[jy] * corr[jx]).scale(scale);
                let split = corr[jy].conj() * corr[jx].conj();
                assert_eq!(t.add[jy * n + jx], add);
                assert_eq!(t.split[jy * n + jx], split);
            }
        }
        for j in 0..n {
            assert_eq!(t.shift[j], fftshift_source(n, 0, j).1);
            // the per-axis map is identical for rows and columns
            assert_eq!(t.shift[j], fftshift_source(n, j, 0).0);
        }
    }

    #[test]
    fn lookups_count_hits_and_misses() {
        let cache = KernelCache::new();
        let _ = cache.phasors(PhasorKey::new(8));
        let _ = cache.phasors(PhasorKey::new(8));
        let _ = cache.phasors(PhasorKey::new(16));
        let _ = cache.geometry(GeometryKey::new(8, 0.1));
        let _ = cache.geometry(GeometryKey::new(8, 0.1));
        let _ = cache.geometry(GeometryKey::new(8, 0.2));
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn repeated_lookups_share_one_table() {
        let cache = KernelCache::new();
        let a = cache.phasors(PhasorKey::new(16));
        let b = cache.phasors(PhasorKey::new(16));
        assert!(Arc::ptr_eq(&a, &b));
    }
}
