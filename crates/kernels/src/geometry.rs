//! Shared kernel geometry: pixel → direction mapping and phase terms.
//!
//! Both Algorithm 1 and Algorithm 2 evaluate the same
//! `α = f(x,y)·g(u,v,w)` phase structure; this module centralizes it so
//! reference, optimized-CPU and simulated-GPU kernels cannot drift apart.

use idg_plan::WorkItem;
use idg_types::{Observation, SPEED_OF_LIGHT};

/// Precomputed per-observation geometry constants.
#[derive(Copy, Clone, Debug)]
pub struct KernelGeometry {
    /// Subgrid edge length, pixels.
    pub subgrid_size: usize,
    /// Grid edge length, pixels.
    pub grid_size: usize,
    /// Field of view, radians.
    pub image_size: f64,
    /// W-stacking step, wavelengths.
    pub w_step: f64,
}

impl KernelGeometry {
    /// Extract the geometry of `obs`.
    pub fn new(obs: &Observation) -> Self {
        Self {
            subgrid_size: obs.subgrid_size,
            grid_size: obs.grid_size,
            image_size: obs.image_size,
            w_step: obs.w_step,
        }
    }

    /// Image-domain coordinate of pixel index `i` (x or y axis):
    /// `l = (i + 0.5 − Ñ/2)·image_size/Ñ`.
    #[inline(always)]
    pub fn pixel_to_lm(&self, i: usize) -> f64 {
        (i as f64 + 0.5 - self.subgrid_size as f64 / 2.0) * self.image_size
            / self.subgrid_size as f64
    }

    /// Numerically stable `n(l,m) = 1 − √(1−l²−m²)`.
    #[inline(always)]
    pub fn compute_n(l: f64, m: f64) -> f64 {
        let r2 = l * l + m * m;
        debug_assert!(r2 < 1.0, "direction cosines outside the celestial sphere");
        r2 / (1.0 + (1.0 - r2).sqrt())
    }

    /// The uv-coordinate (wavelengths) of the *center* of `item`'s
    /// subgrid: `u₀ = (coord + Ñ/2 − grid/2)/image_size`.
    #[inline]
    pub fn subgrid_center_uvw(&self, item: &WorkItem) -> (f64, f64, f64) {
        let half_grid = self.grid_size as f64 / 2.0;
        let half_sub = self.subgrid_size as f64 / 2.0;
        let u0 = (item.coord_x as f64 + half_sub - half_grid) / self.image_size;
        let v0 = (item.coord_y as f64 + half_sub - half_grid) / self.image_size;
        let w0 = item.w_plane as f64 * self.w_step;
        (u0, v0, w0)
    }

    /// `2π·ν/c` — converts a meter-valued `u·l+v·m+w·n` inner product to
    /// the phase contribution at frequency `freq`.
    #[inline(always)]
    pub fn phase_scale(freq: f64) -> f64 {
        2.0 * std::f64::consts::PI * freq / SPEED_OF_LIGHT
    }

    /// The *gridding* phase of one (pixel, sample, channel) triple:
    /// `φ = 2π[(u−u₀)l + (v−v₀)m + (w−w₀)n]`, inputs in meters except
    /// `(u₀,v₀,w₀)` in wavelengths. Degridding uses `−φ`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub fn gridding_phase(
        phase_index_m: f64, // u·l + v·m + w·n, meters
        phase_offset: f64,  // 2π·(u₀·l + v₀·m + w₀·n), radians
        freq: f64,
    ) -> f64 {
        Self::phase_scale(freq) * phase_index_m - phase_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Baseline;

    fn obs() -> Observation {
        Observation::builder()
            .stations(4)
            .timesteps(8)
            .grid_size(256)
            .subgrid_size(16)
            .image_size(0.08)
            .build()
            .unwrap()
    }

    #[test]
    fn lm_is_symmetric_around_center() {
        let g = KernelGeometry::new(&obs());
        // pixels 7 and 8 straddle the center of a 16-pixel axis
        assert!((g.pixel_to_lm(7) + g.pixel_to_lm(8)).abs() < 1e-15);
        // spacing is image_size / N
        let spacing = g.pixel_to_lm(1) - g.pixel_to_lm(0);
        assert!((spacing - 0.08 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn n_matches_exact_formula() {
        for (l, m) in [(0.0, 0.0), (0.01, 0.02), (-0.3, 0.4), (0.6, -0.5)] {
            let exact = 1.0 - (1.0f64 - l * l - m * m).sqrt();
            assert!((KernelGeometry::compute_n(l, m) - exact).abs() < 1e-15);
        }
    }

    #[test]
    fn center_subgrid_has_zero_offset() {
        let o = obs();
        let g = KernelGeometry::new(&o);
        // subgrid centered on the grid: coord = grid/2 − sub/2
        let item = WorkItem {
            baseline_index: 0,
            baseline: Baseline::new(0, 1),
            time_offset: 0,
            nr_timesteps: 1,
            channel_offset: 0,
            nr_channels: 16,
            aterm_index: 0,
            coord_x: 128 - 8,
            coord_y: 128 - 8,
            w_plane: 0,
        };
        let (u0, v0, w0) = g.subgrid_center_uvw(&item);
        assert_eq!(u0, 0.0);
        assert_eq!(v0, 0.0);
        assert_eq!(w0, 0.0);
    }

    #[test]
    fn offset_subgrid_maps_back_through_uv_to_pixel() {
        let o = obs();
        let g = KernelGeometry::new(&o);
        let item = WorkItem {
            baseline_index: 0,
            baseline: Baseline::new(0, 1),
            time_offset: 0,
            nr_timesteps: 1,
            channel_offset: 0,
            nr_channels: 16,
            aterm_index: 0,
            coord_x: 40,
            coord_y: 200,
            w_plane: 0,
        };
        let (u0, v0, _) = g.subgrid_center_uvw(&item);
        assert!((o.uv_to_pixel(u0) - (40.0 + 8.0)).abs() < 1e-9);
        assert!((o.uv_to_pixel(v0) - (200.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn phase_scale_is_2pi_over_lambda() {
        let freq = 150e6;
        let lambda = SPEED_OF_LIGHT / freq;
        assert!(
            (KernelGeometry::phase_scale(freq) - 2.0 * std::f64::consts::PI / lambda).abs() < 1e-12
        );
    }
}
