//! Adder and splitter: moving subgrids onto and off the master grid.
//!
//! The adder adds Fourier-transformed subgrids into the grid. Because
//! subgrids may overlap, parallelizing over subgrids would need atomics
//! (the GPU strategy, see `idg-gpusim`); on the CPU the paper instead
//! parallelizes over *grid rows* so no two threads ever touch the same
//! pixel (Sec. V-B d). The splitter extracts subgrid regions from the
//! (read-only) grid and parallelizes over subgrids.
//!
//! Both kernels fold in two index/phase fix-ups so the rest of the
//! pipeline can stay oblivious:
//!
//! 1. the **fftshift** between the FFT's DC-at-index-0 layout and the
//!    grid's DC-at-center layout, and
//! 2. the **half-pixel phase ramp** `e^{iπ(p_x+p_y)(Ñ−1)/Ñ}`,
//!    `p = j − Ñ/2`, that compensates the `x + 0.5` pixel-center
//!    convention of the image-domain kernels (the analogue of the phasor
//!    in the reference IDG adder);
//!
//! plus the `1/Ñ²` normalization that makes gridding and degridding exact
//! inverses through the unscaled forward FFT.

use crate::buffers::SubgridArray;
use crate::cache::{KernelCache, PhasorKey};
use idg_plan::WorkItem;
use idg_types::{Grid, IdgError, NR_POLARIZATIONS};
use rayon::prelude::*;

/// Launch-time shape validation shared by the adder and splitter
/// (`check_launch`-style: typed errors, no entry-point panics): one
/// subgrid per work item, and every item's footprint inside the grid.
fn check_placement(
    grid_size: usize,
    items: &[WorkItem],
    subgrids: &SubgridArray,
) -> Result<(), IdgError> {
    if items.len() != subgrids.count() {
        return Err(IdgError::ShapeMismatch {
            what: "subgrid count (one per work item)",
            expected: items.len(),
            actual: subgrids.count(),
        });
    }
    let n = subgrids.size();
    for item in items {
        if item.coord_x + n > grid_size || item.coord_y + n > grid_size {
            return Err(IdgError::ShapeMismatch {
                what: "subgrid placement (footprint beyond grid edge)",
                expected: grid_size,
                actual: item.coord_x.max(item.coord_y) + n,
            });
        }
    }
    Ok(())
}

/// Add Fourier-domain subgrids into the grid (parallel over grid rows).
///
/// `subgrids` must contain the *forward-FFT* of the image-domain subgrids
/// produced by the gridder, one per work item.
///
/// # Errors
/// [`IdgError::ShapeMismatch`] when the subgrid count does not match the
/// work items or a subgrid footprint falls outside the grid.
pub fn add_subgrids(
    grid: &mut Grid<f32>,
    items: &[WorkItem],
    subgrids: &SubgridArray,
    cache: &KernelCache,
) -> Result<(), IdgError> {
    let gsize = grid.size();
    check_placement(gsize, items, subgrids)?;
    let n = subgrids.size();
    let tables = cache.phasors(PhasorKey::new(n));

    // Row index: which (item, j_y) pairs touch each grid row.
    let mut rows: Vec<Vec<(u32, u16)>> = vec![Vec::new(); gsize];
    for (i, item) in items.iter().enumerate() {
        for jy in 0..n {
            rows[item.coord_y + jy].push((i as u32, jy as u16));
        }
    }

    idg_obs::add_subgrids_added(items.len() as u64);
    grid.as_mut_slice()
        .par_chunks_mut(gsize)
        .enumerate()
        .for_each(|(row_idx, grid_row)| {
            let pol = row_idx / gsize;
            let y = row_idx % gsize;
            debug_assert!(pol < NR_POLARIZATIONS);
            for &(item_idx, jy) in &rows[y] {
                let item = &items[item_idx as usize];
                let sub = subgrids.subgrid(item_idx as usize);
                let jy = jy as usize;
                let sy = tables.shift[jy];
                let factors = &tables.add[jy * n..jy * n + n];
                let sub_row = &sub[(pol * n + sy) * n..(pol * n + sy) * n + n];
                let dst = &mut grid_row[item.coord_x..item.coord_x + n];
                for jx in 0..n {
                    dst[jx] += sub_row[tables.shift[jx]] * factors[jx];
                }
            }
        });
    Ok(())
}

/// Extract subgrid regions from the grid (parallel over subgrids),
/// producing Fourier-domain subgrids ready for the inverse subgrid FFT.
///
/// Overlapping reads are safe — the grid is read-only here, which is why
/// the splitter can parallelize over subgrids where the adder cannot
/// (Sec. V-B d).
/// # Errors
/// [`IdgError::ShapeMismatch`] when the subgrid count does not match the
/// work items or a subgrid footprint falls outside the grid.
pub fn split_subgrids(
    grid: &Grid<f32>,
    items: &[WorkItem],
    subgrids: &mut SubgridArray,
    cache: &KernelCache,
) -> Result<(), IdgError> {
    check_placement(grid.size(), items, subgrids)?;
    let n = subgrids.size();
    let tables = cache.phasors(PhasorKey::new(n));

    idg_obs::add_subgrids_split(items.len() as u64);
    items
        .par_iter()
        .zip(
            subgrids
                .as_mut_slice()
                .par_chunks_exact_mut(NR_POLARIZATIONS * n * n),
        )
        .for_each(|(item, sub)| {
            for pol in 0..NR_POLARIZATIONS {
                for jy in 0..n {
                    let sy = tables.shift[jy];
                    let grid_row = grid.row(pol, item.coord_y + jy);
                    let factors = &tables.split[jy * n..jy * n + n];
                    for jx in 0..n {
                        sub[(pol * n + sy) * n + tables.shift[jx]] =
                            grid_row[item.coord_x + jx] * factors[jx];
                    }
                }
            }
        });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::pixel_index;
    use crate::cache::phase_correction;
    use crate::fft::{fft_subgrids, FftNorm};
    use crate::reference::{degridder_reference, gridder_reference};
    use crate::KernelData;
    use idg_fft::shift::fftshift_source;
    use idg_fft::Direction;
    use idg_plan::WorkItem;
    use idg_telescope::ATerms;
    use idg_types::Cf32;
    use idg_types::{Baseline, Observation, Uvw, Visibility, SPEED_OF_LIGHT};

    /// An observation with one baseline, one time step, one channel —
    /// the minimal unit for exactness tests.
    fn unit_obs() -> Observation {
        Observation::builder()
            .stations(2)
            .timesteps(1)
            .channels(1, 150e6, 1e6)
            .grid_size(128)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(1)
            .image_size(0.05)
            .build()
            .unwrap()
    }

    /// uvw (meters) that lands exactly on integer grid pixel `(px, py)`.
    fn uvw_at_pixel(obs: &Observation, px: usize, py: usize) -> Uvw {
        let freq = obs.frequencies[0];
        let u_lambda = obs.pixel_to_uv(px as f64);
        let v_lambda = obs.pixel_to_uv(py as f64);
        let to_m = SPEED_OF_LIGHT / freq;
        Uvw::new((u_lambda * to_m) as f32, (v_lambda * to_m) as f32, 0.0)
    }

    fn item_covering(obs: &Observation, px: usize, py: usize) -> WorkItem {
        WorkItem {
            baseline_index: 0,
            baseline: Baseline::new(0, 1),
            time_offset: 0,
            nr_timesteps: 1,
            channel_offset: 0,
            nr_channels: 1,
            aterm_index: 0,
            coord_x: px - obs.subgrid_size / 2,
            coord_y: py - obs.subgrid_size / 2,
            w_plane: 0,
        }
    }

    /// The full forward chain on one exactly-on-pixel visibility must put
    /// V at exactly one grid cell, with the correct complex value — this
    /// pins the fftshift indexing, the half-pixel ramp and the 1/Ñ²
    /// normalization all at once.
    #[test]
    fn single_on_pixel_visibility_lands_exactly() {
        let obs = unit_obs();
        let (px, py) = (70usize, 45usize);
        let uvw = vec![uvw_at_pixel(&obs, px, py)];
        let vis_val = Cf32::new(0.8, -0.6);
        let visibilities = vec![Visibility {
            pols: [vis_val, Cf32::zero(), Cf32::zero(), vis_val],
        }];
        let aterms = ATerms::identity(&obs);
        let taper = vec![1.0f32; obs.subgrid_size * obs.subgrid_size];
        let data = KernelData {
            obs: &obs,
            uvw: &uvw,
            visibilities: &visibilities,
            aterms: &aterms,
            taper: &taper,
        };
        let items = [item_covering(&obs, px, py)];

        let mut subgrids = SubgridArray::new(1, obs.subgrid_size);
        gridder_reference(&data, &items, &mut subgrids).expect("kernel run");
        fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);

        let mut grid = Grid::<f32>::new(obs.grid_size);
        add_subgrids(&mut grid, &items, &subgrids, &KernelCache::new()).expect("adder run");

        // the target pixel holds V...
        let got = grid.at(0, py, px);
        assert!(
            (got - vis_val).abs() < 1e-4,
            "expected {vis_val} at ({px},{py}), got {got}"
        );
        // ...and (almost) nothing leaks anywhere else
        let mut leak = 0.0f64;
        for y in 0..obs.grid_size {
            for x in 0..obs.grid_size {
                if (x, y) != (px, py) {
                    leak = leak.max(grid.at(0, y, x).abs() as f64);
                }
            }
        }
        assert!(leak < 1e-4, "leakage {leak}");
        // cross-hands stay zero
        assert!(grid.at(1, py, px).abs() < 1e-6);
    }

    /// The reverse chain: a single grid cell degrids to exactly its value
    /// for an on-pixel visibility.
    #[test]
    fn single_grid_cell_degrids_exactly() {
        let obs = unit_obs();
        let (px, py) = (61usize, 77usize);
        let uvw = vec![uvw_at_pixel(&obs, px, py)];
        let visibilities = vec![Visibility::<f32>::zero()];
        let aterms = ATerms::identity(&obs);
        let taper = vec![1.0f32; obs.subgrid_size * obs.subgrid_size];
        let data = KernelData {
            obs: &obs,
            uvw: &uvw,
            visibilities: &visibilities,
            aterms: &aterms,
            taper: &taper,
        };
        let items = [item_covering(&obs, px, py)];

        let model_val = Cf32::new(-0.3, 0.9);
        let mut grid = Grid::<f32>::new(obs.grid_size);
        *grid.at_mut(0, py, px) = model_val;
        *grid.at_mut(3, py, px) = model_val;

        let mut subgrids = SubgridArray::new(1, obs.subgrid_size);
        split_subgrids(&grid, &items, &mut subgrids, &KernelCache::new()).expect("splitter run");
        fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);

        let mut out = vec![Visibility::<f32>::zero(); 1];
        degridder_reference(&data, &items, &subgrids, &mut out).expect("kernel run");

        assert!(
            (out[0].pols[0] - model_val).abs() < 1e-4,
            "expected {model_val}, got {}",
            out[0].pols[0]
        );
        assert!((out[0].pols[3] - model_val).abs() < 1e-4);
        assert!(out[0].pols[1].abs() < 1e-5);
    }

    /// Adding two overlapping subgrids must accumulate, not overwrite.
    #[test]
    fn overlapping_subgrids_accumulate() {
        let obs = unit_obs();
        let n = obs.subgrid_size;
        let items = [
            WorkItem {
                baseline_index: 0,
                baseline: Baseline::new(0, 1),
                time_offset: 0,
                nr_timesteps: 1,
                channel_offset: 0,
                nr_channels: 1,
                aterm_index: 0,
                coord_x: 50,
                coord_y: 50,
                w_plane: 0,
            },
            WorkItem {
                baseline_index: 0,
                baseline: Baseline::new(0, 1),
                time_offset: 0,
                nr_timesteps: 1,
                channel_offset: 0,
                nr_channels: 1,
                aterm_index: 0,
                coord_x: 54,
                coord_y: 52,
                w_plane: 0,
            },
        ];
        // Fill both subgrids with a DC-only Fourier content: set every
        // bin so that the result is easy to sum — simplest is to compare
        // against sequential addition on a second grid.
        let mut subgrids = SubgridArray::new(2, n);
        for (i, sg) in subgrids.subgrids_mut().enumerate() {
            for (k, v) in sg.iter_mut().enumerate() {
                *v = Cf32::new((k % 5) as f32 * 0.1 + i as f32, 0.25 * i as f32);
            }
        }

        let mut grid_par = Grid::<f32>::new(obs.grid_size);
        add_subgrids(&mut grid_par, &items, &subgrids, &KernelCache::new()).expect("adder run");

        // sequential oracle
        let mut grid_seq = Grid::<f32>::new(obs.grid_size);
        let corr = phase_correction(n);
        for (i, item) in items.iter().enumerate() {
            for pol in 0..4 {
                for jy in 0..n {
                    for jx in 0..n {
                        let (sy, sx) = fftshift_source(n, jy, jx);
                        let val = subgrids.subgrid(i)[pixel_index(n, pol, sy, sx)];
                        let factor = (corr[jy] * corr[jx]).scale(1.0 / (n * n) as f32);
                        *grid_seq.at_mut(pol, item.coord_y + jy, item.coord_x + jx) += val * factor;
                    }
                }
            }
        }

        for (a, b) in grid_par.as_slice().iter().zip(grid_seq.as_slice()) {
            assert!((*a - *b).abs() < 1e-5);
        }
        // overlap region actually accumulated from both items
        assert!(grid_par.at(0, 55, 56).abs() > 0.0);
    }

    /// split(add(X)) must reproduce X for non-overlapping items (adder and
    /// splitter are exact inverses on disjoint regions).
    #[test]
    fn adder_splitter_round_trip() {
        let obs = unit_obs();
        let n = obs.subgrid_size;
        let items = [item_covering(&obs, 40, 40), item_covering(&obs, 90, 80)];
        let mut subgrids = SubgridArray::new(2, n);
        for (i, sg) in subgrids.subgrids_mut().enumerate() {
            for (k, v) in sg.iter_mut().enumerate() {
                *v = Cf32::new(
                    ((k * 7 + i * 3) % 11) as f32 * 0.1 - 0.5,
                    ((k * 5 + i) % 13) as f32 * 0.05,
                );
            }
        }
        let cache = KernelCache::new();
        let mut grid = Grid::<f32>::new(obs.grid_size);
        add_subgrids(&mut grid, &items, &subgrids, &cache).expect("adder run");

        let mut recovered = SubgridArray::new(2, n);
        split_subgrids(&grid, &items, &mut recovered, &cache).expect("splitter run");

        // adder scaled by 1/N²; splitter doesn't rescale, so recovered
        // = original / N².
        let n2 = (n * n) as f32;
        for (a, b) in recovered.as_slice().iter().zip(subgrids.as_slice()) {
            assert!((a.scale(n2) - *b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn phase_correction_is_unit_magnitude_and_symmetric() {
        let corr = phase_correction(24);
        for c in &corr {
            assert!((c.abs() - 1.0).abs() < 1e-6);
        }
        // center bin has zero phase
        assert!((corr[12] - Cf32::new(1.0, 0.0)).abs() < 1e-6);
        // conjugate symmetry around the center
        for d in 1..12 {
            let a = corr[12 + d];
            let b = corr[12 - d];
            assert!((a - b.conj()).abs() < 1e-5, "asymmetry at ±{d}");
        }
    }

    #[test]
    fn adder_count_mismatch_is_a_typed_error() {
        let obs = unit_obs();
        let mut grid = Grid::<f32>::new(obs.grid_size);
        let subgrids = SubgridArray::new(2, obs.subgrid_size);
        let items = [item_covering(&obs, 40, 40)];
        let err = add_subgrids(&mut grid, &items, &subgrids, &KernelCache::new())
            .expect_err("count mismatch must be rejected");
        assert!(matches!(
            err,
            IdgError::ShapeMismatch {
                expected: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn out_of_grid_placement_is_a_typed_error() {
        let obs = unit_obs();
        let grid = Grid::<f32>::new(obs.grid_size);
        let mut subgrids = SubgridArray::new(1, obs.subgrid_size);
        // footprint hangs off the right/bottom edge
        let items = [item_covering(&obs, obs.grid_size - 2, obs.grid_size - 2)];
        let err = split_subgrids(&grid, &items, &mut subgrids, &KernelCache::new())
            .expect_err("out-of-grid placement must be rejected");
        assert!(matches!(err, IdgError::ShapeMismatch { .. }));
    }
}
