//! Model-checked coherence of the read-mostly [`KernelCache`]
//! (DESIGN.md §13): under every interleaving up to the bound,
//! concurrent lookups of the same key share one table (a key is built
//! exactly once, whoever loses the read→write re-check race) and the
//! hit/miss tallies stay exact.
//!
//! Compiled only under `RUSTFLAGS="--cfg idg_model_check"`; an empty
//! test binary otherwise.

#![cfg(idg_model_check)]

use idg_kernels::cache::{GeometryKey, KernelCache, PhasorKey};
use idg_mc::{thread, Config, Explorer};
use std::sync::Arc;

fn explorer() -> Explorer {
    Explorer::new(Config::default()).expect("valid config")
}

#[test]
fn concurrent_same_key_lookups_build_once_and_share() {
    // Tiny tables keep per-schedule work negligible; the exploration
    // cost is all in the interleavings.
    let report = explorer().explore(|| {
        let cache = KernelCache::new();
        let key = PhasorKey::new(2);
        let (a, b) = thread::scope(|s| {
            let ha = s.spawn(|| cache.phasors(key));
            let hb = s.spawn(|| cache.phasors(key));
            (
                ha.join().expect("lookup does not panic"),
                hb.join().expect("lookup does not panic"),
            )
        });
        assert!(Arc::ptr_eq(&a, &b), "both threads must share one table");
        assert_eq!(cache.misses(), 1, "the table is built exactly once");
        assert_eq!(cache.hits(), 1, "the race loser counts as a hit");
    });
    assert!(report.proved(), "report: {report:?}");
}

#[test]
fn distinct_keys_miss_independently() {
    let report = explorer().explore(|| {
        let cache = KernelCache::new();
        thread::scope(|s| {
            s.spawn(|| cache.geometry(GeometryKey::new(2, 0.1)));
            s.spawn(|| cache.geometry(GeometryKey::new(2, 0.2)));
        });
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    });
    assert!(report.proved(), "report: {report:?}");
}

#[test]
fn warm_reads_overlap_without_losing_counts() {
    // One cold build, then two concurrent warm readers: the read lock
    // is shared, and the tallies must still come out exact.
    let report = explorer().explore(|| {
        let cache = KernelCache::new();
        let key = PhasorKey::new(2);
        let cold = cache.phasors(key);
        thread::scope(|s| {
            let ha = s.spawn(|| cache.phasors(key));
            let hb = s.spawn(|| cache.phasors(key));
            let a = ha.join().expect("warm lookup");
            let b = hb.join().expect("warm lookup");
            assert!(Arc::ptr_eq(&a, &cold) && Arc::ptr_eq(&b, &cold));
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
    });
    assert!(report.proved(), "report: {report:?}");
}
