//! Staged pipeline execution — the conformance harness's view of a
//! back-end.
//!
//! [`Proxy::grid`] and [`Proxy::degrid`] run their three kernel stages
//! back-to-back and only return the final product, which is the right
//! API for applications but useless for *attributing* a numerical
//! discrepancy: a grid that disagrees by 1e-3 says nothing about
//! whether the gridder, the subgrid FFT, or the adder diverged. The
//! `*_stages` variants here run the identical kernels in the identical
//! order but snapshot every intermediate buffer, so the conformance
//! suite (`crates/conformance`) can compare back-ends stage by stage
//! against the scalar reference.
//!
//! These methods are *functional* only: no timing, no execution report,
//! no pipeline modeling. GPU back-ends execute their kernels in a
//! single launch group (numerically identical to the grouped launches
//! of [`idg_gpusim::GpuExecutor`], which partition work items purely
//! for the performance model).

use crate::proxy::{Backend, Proxy};
use idg_fft::Direction;
use idg_gpusim::kernels::{degridder_gpu, gridder_gpu};
use idg_kernels::{
    add_subgrids, degridder_cpu, degridder_reference, fft_subgrids, gridder_cpu, gridder_reference,
    split_subgrids, FftNorm, KernelData, SubgridArray,
};
use idg_math::Accuracy;
use idg_plan::Plan;
use idg_telescope::ATerms;
use idg_types::{Grid, IdgError, Uvw, Visibility};

/// Every intermediate buffer of one gridding pass.
#[derive(Clone, Debug)]
pub struct GridStages {
    /// Image-domain subgrids straight out of the gridder kernel
    /// (taper and A-terms applied, before any FFT).
    pub gridder_subgrids: SubgridArray,
    /// The same subgrids after the forward FFT (Fourier domain,
    /// unnormalized, DC at index 0).
    pub fft_subgrids: SubgridArray,
    /// The final grid after the adder.
    pub grid: Grid<f32>,
}

/// Every intermediate buffer of one degridding pass.
#[derive(Clone, Debug)]
pub struct DegridStages {
    /// Subgrid regions extracted from the grid by the splitter
    /// (Fourier domain).
    pub split_subgrids: SubgridArray,
    /// The same subgrids after the inverse FFT (image domain).
    pub ifft_subgrids: SubgridArray,
    /// The predicted visibilities out of the degridder kernel.
    pub visibilities: Vec<Visibility<f32>>,
}

impl Proxy {
    /// Run the gridding pass, snapshotting each stage.
    pub fn grid_stages(
        &self,
        plan: &Plan,
        uvw: &[Uvw],
        visibilities: &[Visibility<f32>],
        aterms: &ATerms,
    ) -> Result<GridStages, IdgError> {
        let data = KernelData {
            obs: self.observation(),
            uvw,
            visibilities,
            aterms,
            taper: self.taper(),
        };
        data.validate()?;

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), self.observation().subgrid_size);
        match self.backend() {
            Backend::CpuReference => gridder_reference(&data, &plan.items, &mut subgrids)?,
            Backend::CpuOptimized => {
                gridder_cpu(
                    &data,
                    &plan.items,
                    &mut subgrids,
                    Accuracy::Medium,
                    self.kernel_cache(),
                )?;
            }
            Backend::GpuPascal | Backend::GpuFiji => {
                gridder_gpu(
                    &data,
                    &plan.items,
                    &mut subgrids,
                    &self.device()?,
                    self.kernel_cache(),
                )?;
            }
        }
        let gridder_subgrids = subgrids.clone();

        fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
        let fft_snapshot = subgrids.clone();

        let mut grid = Grid::<f32>::new(self.observation().grid_size);
        add_subgrids(&mut grid, &plan.items, &subgrids, self.kernel_cache())?;

        Ok(GridStages {
            gridder_subgrids,
            fft_subgrids: fft_snapshot,
            grid,
        })
    }

    /// Run the degridding pass, snapshotting each stage.
    pub fn degrid_stages(
        &self,
        plan: &Plan,
        grid: &Grid<f32>,
        uvw: &[Uvw],
        aterms: &ATerms,
    ) -> Result<DegridStages, IdgError> {
        let zeros = vec![Visibility::<f32>::zero(); self.observation().nr_visibilities()];
        let data = KernelData {
            obs: self.observation(),
            uvw,
            visibilities: &zeros,
            aterms,
            taper: self.taper(),
        };
        data.validate()?;
        if grid.size() != self.observation().grid_size {
            return Err(IdgError::ShapeMismatch {
                what: "grid",
                expected: self.observation().grid_size,
                actual: grid.size(),
            });
        }

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), self.observation().subgrid_size);
        split_subgrids(grid, &plan.items, &mut subgrids, self.kernel_cache())?;
        let split_snapshot = subgrids.clone();

        fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
        let ifft_snapshot = subgrids.clone();

        let mut vis = vec![Visibility::<f32>::zero(); self.observation().nr_visibilities()];
        match self.backend() {
            Backend::CpuReference => degridder_reference(&data, &plan.items, &subgrids, &mut vis)?,
            Backend::CpuOptimized => {
                degridder_cpu(
                    &data,
                    &plan.items,
                    &subgrids,
                    &mut vis,
                    Accuracy::Medium,
                    self.kernel_cache(),
                )?;
            }
            Backend::GpuPascal | Backend::GpuFiji => {
                degridder_gpu(
                    &data,
                    &plan.items,
                    &subgrids,
                    &mut vis,
                    &self.device()?,
                    self.kernel_cache(),
                )?;
            }
        }

        Ok(DegridStages {
            split_subgrids: split_snapshot,
            ifft_subgrids: ifft_snapshot,
            visibilities: vis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_telescope::{Dataset, Layout, SkyModel};
    use idg_types::Observation;

    #[test]
    fn stages_agree_with_the_monolithic_pass() {
        let obs = Observation::builder()
            .stations(4)
            .timesteps(16)
            .channels(2, 150e6, 2e6)
            .grid_size(128)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(16)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(4, 700.0, 41);
        let sky = SkyModel::random(&obs, 3, 0.5, 43);
        let ds = Dataset::simulate(obs, &layout, sky, &idg_telescope::IdentityATerm);

        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();

            let (grid, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let stages = proxy
                .grid_stages(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            assert_eq!(grid.as_slice(), stages.grid.as_slice(), "{backend:?} grid");

            let (vis, _) = proxy.degrid(&plan, &grid, &ds.uvw, &ds.aterms).unwrap();
            let dstages = proxy
                .degrid_stages(&plan, &grid, &ds.uvw, &ds.aterms)
                .unwrap();
            assert_eq!(vis, dstages.visibilities, "{backend:?} visibilities");
        }
    }
}
