//! Streamed gridding: chunked ingestion driving the batch pipeline.
//!
//! [`Proxy::grid_streamed`] consumes the observation as a sequence of
//! bounded time-axis chunks (split by `idg_stream`), plans and executes
//! each chunk independently across a concurrent worker pool with a
//! bounded admission window, and commits every chunk's subgrids in a
//! single in-order pass at the end. The streamed grid is **bit
//! identical** to the one-shot [`Proxy::grid`] result for every chunk
//! policy and worker count, because:
//!
//! 1. chunk boundaries snap to `aterm_interval` multiples, which are
//!    exactly the boundaries the one-shot planner's accumulation loop
//!    breaks on, and every chunk plan shares the whole-observation
//!    [`UvExtents`], so the chunk-local work items are *verbatim* a
//!    partition of the one-shot plan's items
//!    (see [`idg_plan::Plan::create_windowed`]);
//! 2. each work item's subgrid is produced by the same kernels over the
//!    same full input buffers (items carry global time offsets);
//! 3. the commit sorts all items by
//!    `(baseline_index, channel_offset, time_offset)` — recovering the
//!    one-shot plan order — and performs **one** `add_subgrids` call,
//!    so every f32 accumulation happens in the one-shot order. Summing
//!    per-chunk grids instead would reorder additions (f32 addition is
//!    not associative, and `0.0 + (-0.0)` even flips a sign bit).
//!
//! [`Proxy::degrid_streamed`] is the duplex twin: a deferred
//! **splitter** stage (`split_deferred` on the executors) extracts
//! each chunk's subgrids from the model grid, the chunk-local degrid
//! passes flow through the same scheduler, and each chunk's predicted
//! visibilities are committed into the caller's buffer exactly once —
//! guarded by a [`CommitLedger`] — in one-shot plan order. Because the
//! degridder *overwrites* disjoint per-item visibility slots (no
//! accumulation anywhere on the read side), the plain in-order copies
//! reproduce [`Proxy::degrid`] bit for bit on every back-end, policy,
//! worker count and fault schedule; see DESIGN.md §12 for the
//! commit-order argument.

use super::{check_finite_uvw, check_finite_vis, Backend, Proxy};
use crate::report::{ExecutionReport, FleetStats};
use idg_fft::Direction;
use idg_gpusim::{DeferredSubgrids, DeferredVis, JobFailure};
use idg_kernels::{
    add_subgrids, degridder_cpu, degridder_reference, fft_subgrids, gridder_cpu, gridder_reference,
    split_subgrids, FftNorm, KernelData, SubgridArray,
};
use idg_math::Accuracy;
use idg_perf::{degridder_counts, gridder_counts, OpCounts};
use idg_plan::{Plan, UvExtents, WorkItem};
use idg_stream::{
    plan_chunk, Chunk, ChunkPolicy, ChunkedDataset, CommitLedger, StreamDirection, StreamRun,
    StreamScheduler,
};
use idg_telescope::ATerms;
use idg_types::{Grid, IdgError, Uvw, Visibility};
use std::time::Instant;

/// Modeled host bandwidth of the final streamed commit — the figure
/// the gpusim host-adder shape uses, so modeled streamed totals stay
/// comparable to one-shot modeled totals.
const HOST_ADDER_BW: f64 = 40e9;

/// Configuration of a streamed gridding pass.
#[derive(Copy, Clone, Debug)]
pub struct StreamConfig {
    /// Time-axis chunking bounds (A-term snapping applies on top).
    pub policy: ChunkPolicy,
    /// Worker threads executing chunk passes concurrently.
    pub workers: usize,
    /// Admission window: the producer blocks once this many admitted
    /// chunks remain uncompleted (backpressure).
    pub max_inflight: usize,
}

impl StreamConfig {
    /// A streamed-pass configuration; parameters are validated by
    /// [`Proxy::grid_streamed`] (or eagerly via
    /// [`StreamConfig::validate`]).
    pub fn new(policy: ChunkPolicy, workers: usize, max_inflight: usize) -> Self {
        Self {
            policy,
            workers,
            max_inflight,
        }
    }

    /// Typed rejection of degenerate configurations: zero-sized chunk
    /// bounds, zero workers or a zero admission window would all stall
    /// the stream forever.
    pub fn validate(&self) -> Result<(), IdgError> {
        self.policy.validate()?;
        StreamScheduler::new(self.workers, self.max_inflight).map(|_| ())
    }
}

/// Everything one chunk's pass produced, pending the final commit.
struct ChunkOutput {
    /// The chunk-local plan's work items (global time offsets).
    items: Vec<WorkItem>,
    /// Computed subgrids as ranges into `items` (job granularity on the
    /// GPU paths, one whole-chunk range on the CPU paths).
    pending: DeferredSubgrids,
    /// Jobs re-executed on the CPU reference kernels, with chunk-local
    /// indices (remapped to stream-global ones during aggregation).
    fallback_jobs: Vec<JobFailure>,
    counts: OpCounts,
    kernel_seconds: f64,
    fft_seconds: f64,
    transfer_seconds: f64,
    /// Modeled end-to-end chunk time (GPU) or measured wall (CPU).
    makespan: f64,
    device_energy_j: f64,
    host_energy_j: f64,
    nr_retries: usize,
    backoff_seconds: f64,
    redispatched_jobs: usize,
    degradation_steps: usize,
    breaker_trips: u64,
}

/// Deterministic makespan model of the concurrent chunk passes: greedy
/// list scheduling of the chunk makespans, in ingestion order, onto
/// `lanes` modeled workers. The effective concurrency is bounded by
/// both the worker pool and the admission window, so the caller passes
/// `min(workers, max_inflight)`.
fn stream_makespan(chunk_makespans: &[f64], lanes: usize) -> f64 {
    let mut lane_busy = vec![0.0f64; lanes.max(1)];
    for &m in chunk_makespans {
        let mut earliest = 0usize;
        for (i, &t) in lane_busy.iter().enumerate() {
            if t < lane_busy[earliest] {
                earliest = i;
            }
        }
        lane_busy[earliest] += m;
    }
    lane_busy.iter().fold(0.0f64, |a, &b| a.max(b))
}

/// One committed subgrid: its work item, and where its pixels live in
/// the per-chunk pending arrays.
struct CommitSlot {
    item: WorkItem,
    src: usize,
    plane: usize,
}

/// Everything one chunk's degrid pass produced, pending the final
/// exactly-once visibility commit.
struct DegridChunkOutput {
    /// The chunk-local plan's work items (global time offsets).
    items: Vec<WorkItem>,
    /// Completed `items` ranges in job order (one whole-chunk range on
    /// the CPU paths); CPU-fallback ranges are appended after.
    ranges: Vec<std::ops::Range<usize>>,
    /// Chunk-local predicted visibilities (full observation extent,
    /// zeros outside the covered slots — slots are globally indexed).
    vis: Vec<Visibility<f32>>,
    /// Jobs re-executed on the CPU reference kernels, with chunk-local
    /// indices (remapped to stream-global ones during aggregation).
    fallback_jobs: Vec<JobFailure>,
    counts: OpCounts,
    kernel_seconds: f64,
    fft_seconds: f64,
    /// Splitter time: measured wall (CPU) or modeled device time (GPU).
    splitter_seconds: f64,
    transfer_seconds: f64,
    /// Modeled end-to-end chunk time (GPU) or measured wall (CPU).
    makespan: f64,
    device_energy_j: f64,
    host_energy_j: f64,
    nr_retries: usize,
    backoff_seconds: f64,
    redispatched_jobs: usize,
    degradation_steps: usize,
    breaker_trips: u64,
}

/// One committed work item of a streamed degrid pass: the item whose
/// visibility rows are copied, and which chunk's local buffer holds
/// them.
struct DegridCommitSlot {
    item: WorkItem,
    src: usize,
}

impl Proxy {
    /// Grid visibilities through the streaming front-end: chunked
    /// ingestion, a concurrent bounded-window pass scheduler, and a
    /// single deferred in-order commit.
    ///
    /// The returned grid is bit-identical to [`Proxy::grid`] over the
    /// same inputs, for every chunk policy, worker count and completion
    /// order (see the module docs for the argument); the report carries
    /// the scheduling summary in [`ExecutionReport::stream`].
    pub fn grid_streamed(
        &self,
        config: &StreamConfig,
        uvw: &[Uvw],
        visibilities: &[Visibility<f32>],
        aterms: &ATerms,
    ) -> Result<(Grid<f32>, ExecutionReport), IdgError> {
        let data = KernelData {
            obs: &self.obs,
            uvw,
            visibilities,
            aterms,
            taper: &self.taper,
        };
        data.validate()?;
        check_finite_vis(visibilities)?;
        check_finite_uvw(uvw)?;
        config.validate()?;
        let scheduler = StreamScheduler::new(config.workers, config.max_inflight)?;
        let chunks = ChunkedDataset::split(&self.obs, &config.policy)?;
        let extents = UvExtents::compute(&self.obs, uvw)?;

        let t_start = Instant::now();
        let StreamRun { results, stats } = scheduler.run_stream(chunks.chunks(), |chunk| {
            self.run_chunk(&data, &extents, chunk)
        })?;
        let mut outputs = Vec::with_capacity(results.len());
        for result in results {
            outputs.push(result?);
        }

        // aggregate: gather every pending subgrid behind a commit slot,
        // remap fallback indices to stream-global ones, sum the timing
        let mut arrays: Vec<SubgridArray> = Vec::new();
        let mut slots: Vec<CommitSlot> = Vec::new();
        let mut fallback_jobs: Vec<JobFailure> = Vec::new();
        let mut counts = OpCounts::default();
        let (mut kernel_seconds, mut fft_seconds, mut transfer_seconds) = (0.0, 0.0, 0.0);
        let (mut device_energy, mut host_energy, mut backoff_seconds) = (0.0, 0.0, 0.0);
        let mut nr_retries = 0usize;
        let (mut redispatched, mut degradation, mut trips) = (0usize, 0usize, 0u64);
        let mut makespans = Vec::with_capacity(outputs.len());
        let mut item_base = 0usize;
        let mut job_base = 0usize;
        for out in outputs {
            for (range, subgrids) in out.pending {
                let src = arrays.len();
                for (plane, idx) in range.enumerate() {
                    slots.push(CommitSlot {
                        item: out.items[idx],
                        src,
                        plane,
                    });
                }
                arrays.push(subgrids);
            }
            for mut failure in out.fallback_jobs {
                failure.job += job_base;
                failure.first_item += item_base;
                fallback_jobs.push(failure);
            }
            counts.add(&out.counts);
            kernel_seconds += out.kernel_seconds;
            fft_seconds += out.fft_seconds;
            transfer_seconds += out.transfer_seconds;
            device_energy += out.device_energy_j;
            host_energy += out.host_energy_j;
            nr_retries += out.nr_retries;
            backoff_seconds += out.backoff_seconds;
            redispatched += out.redispatched_jobs;
            degradation += out.degradation_steps;
            trips += out.breaker_trips;
            makespans.push(out.makespan);
            item_base += out.items.len();
            job_base += out.items.len().div_ceil(self.work_group_size);
        }
        if slots.len() != item_base {
            return Err(IdgError::Internal(format!(
                "streamed commit covers {} of {} work items",
                slots.len(),
                item_base
            )));
        }

        // the single in-order commit: sorting by (baseline, channel
        // group, time) recovers exactly the one-shot plan's item order
        slots.sort_by_key(|s| {
            (
                s.item.baseline_index,
                s.item.channel_offset,
                s.item.time_offset,
            )
        });
        let n = self.obs.subgrid_size;
        let mut combined = SubgridArray::new(slots.len(), n);
        let mut items: Vec<WorkItem> = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            combined
                .subgrid_mut(i)
                .copy_from_slice(arrays[slot.src].subgrid(slot.plane));
            items.push(slot.item);
        }
        let mut grid = Grid::<f32>::new(self.obs.grid_size);
        let t_commit = Instant::now();
        {
            let _span = idg_obs::wall_span("adder", "stage", None);
            add_subgrids(&mut grid, &items, &combined, &self.cache)?;
        }
        let commit_seconds = t_commit.elapsed().as_secs_f64();

        let modeled = matches!(self.backend, Backend::GpuPascal | Backend::GpuFiji);
        let adder_seconds = if modeled {
            (slots.len() * 4 * n * n * 8) as f64 / HOST_ADDER_BW
        } else {
            commit_seconds
        };
        let total_seconds = if modeled {
            stream_makespan(&makespans, config.workers.min(config.max_inflight)) + adder_seconds
        } else {
            t_start.elapsed().as_secs_f64()
        };
        // per-chunk device breakdowns are not aggregated across the
        // stream (each chunk ran its own fleet pass); only the scalar
        // fault-tolerance counters are summed
        let fleet = if modeled {
            self.fleet.as_ref().map(|c| FleetStats {
                nr_devices: c.nr_devices,
                redispatched_jobs: redispatched,
                degradation_steps: degradation,
                breaker_trips: trips,
                per_device: Vec::new(),
            })
        } else {
            None
        };

        Ok((
            grid,
            ExecutionReport {
                backend: self.backend.label().into(),
                pass: "gridding",
                modeled,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                transfer_seconds,
                total_seconds,
                counts,
                device_energy_j: modeled.then_some(device_energy),
                host_energy_j: modeled.then_some(host_energy),
                nr_retries,
                backoff_seconds,
                fallback_jobs,
                fleet,
                metrics: None,
                stream: Some(stats),
            },
        ))
    }

    /// Run [`Proxy::grid_streamed`] under an observability session (the
    /// streamed counterpart of [`Proxy::grid_observed`], with the same
    /// self-validation contract adapted to chunked execution).
    pub fn grid_streamed_observed(
        &self,
        config: &StreamConfig,
        uvw: &[Uvw],
        visibilities: &[Visibility<f32>],
        aterms: &ATerms,
    ) -> Result<(Grid<f32>, ExecutionReport, idg_obs::Trace), IdgError> {
        let session = idg_obs::Session::begin("gridding");
        let result = self.grid_streamed(config, uvw, visibilities, aterms);
        let trace = session.finish();
        let (grid, mut report) = result?;
        report.metrics = Some(trace.metrics.clone());
        self.validate_streamed(config, uvw, &report)?;
        Ok((grid, report, trace))
    }

    /// Predict visibilities from a model grid through the streaming
    /// front-end — the duplex twin of [`Proxy::grid_streamed`]: a
    /// deferred splitter stage extracts each chunk's subgrids, the
    /// chunk-local degrid passes run across the same bounded-window
    /// scheduler, and every chunk's predicted visibilities are
    /// committed into the output buffer exactly once, in one-shot plan
    /// order.
    ///
    /// The returned visibilities are bit-identical to
    /// [`Proxy::degrid`] over the same inputs, for every chunk policy,
    /// worker count, completion order and fault schedule: the chunk
    /// plans partition the one-shot plan's items verbatim, the
    /// degridder overwrites disjoint per-item slots (no accumulation
    /// on the read side), and the commit copies each item's rows from
    /// its chunk's buffer — guarded by a [`CommitLedger`] so each
    /// chunk commits exactly once.
    pub fn degrid_streamed(
        &self,
        config: &StreamConfig,
        grid: &Grid<f32>,
        uvw: &[Uvw],
        aterms: &ATerms,
    ) -> Result<(Vec<Visibility<f32>>, ExecutionReport), IdgError> {
        let zeros = vec![Visibility::<f32>::zero(); self.obs.nr_visibilities()];
        let data = KernelData {
            obs: &self.obs,
            uvw,
            visibilities: &zeros,
            aterms,
            taper: &self.taper,
        };
        data.validate()?;
        check_finite_uvw(uvw)?;
        if grid
            .as_slice()
            .iter()
            .any(|c| !c.re.is_finite() || !c.im.is_finite())
        {
            return Err(IdgError::InvalidParameter(
                "model grid contains non-finite (NaN/Inf) samples".into(),
            ));
        }
        if grid.size() != self.obs.grid_size {
            return Err(IdgError::ShapeMismatch {
                what: "grid",
                expected: self.obs.grid_size,
                actual: grid.size(),
            });
        }
        config.validate()?;
        let scheduler = StreamScheduler::new(config.workers, config.max_inflight)?;
        let chunks = ChunkedDataset::split(&self.obs, &config.policy)?;
        let extents = UvExtents::compute(&self.obs, uvw)?;

        let t_start = Instant::now();
        let StreamRun { results, mut stats } = scheduler.run_stream(chunks.chunks(), |chunk| {
            self.run_degrid_chunk(&data, &extents, grid, chunk)
        })?;
        stats.direction = StreamDirection::Degridding;
        let mut outputs = Vec::with_capacity(results.len());
        for result in results {
            outputs.push(result?);
        }

        // aggregate: gather every covered work item behind a commit
        // slot, remap fallback indices, sum the timing; the ledger
        // pins the exactly-once-per-chunk commit discipline
        let mut chunk_vis: Vec<Vec<Visibility<f32>>> = Vec::with_capacity(outputs.len());
        let mut slots: Vec<DegridCommitSlot> = Vec::new();
        let mut fallback_jobs: Vec<JobFailure> = Vec::new();
        let mut counts = OpCounts::default();
        let (mut kernel_seconds, mut fft_seconds, mut transfer_seconds) = (0.0, 0.0, 0.0);
        let mut splitter_seconds = 0.0;
        let (mut device_energy, mut host_energy, mut backoff_seconds) = (0.0, 0.0, 0.0);
        let mut nr_retries = 0usize;
        let (mut redispatched, mut degradation, mut trips) = (0usize, 0usize, 0u64);
        let mut makespans = Vec::with_capacity(outputs.len());
        let mut item_base = 0usize;
        let mut job_base = 0usize;
        let mut ledger = CommitLedger::new(outputs.len());
        for (src, out) in outputs.into_iter().enumerate() {
            ledger.commit(src)?;
            for range in &out.ranges {
                for idx in range.clone() {
                    slots.push(DegridCommitSlot {
                        item: out.items[idx],
                        src,
                    });
                }
            }
            for mut failure in out.fallback_jobs {
                failure.job += job_base;
                failure.first_item += item_base;
                fallback_jobs.push(failure);
            }
            counts.add(&out.counts);
            kernel_seconds += out.kernel_seconds;
            fft_seconds += out.fft_seconds;
            splitter_seconds += out.splitter_seconds;
            transfer_seconds += out.transfer_seconds;
            device_energy += out.device_energy_j;
            host_energy += out.host_energy_j;
            nr_retries += out.nr_retries;
            backoff_seconds += out.backoff_seconds;
            redispatched += out.redispatched_jobs;
            degradation += out.degradation_steps;
            trips += out.breaker_trips;
            makespans.push(out.makespan);
            item_base += out.items.len();
            job_base += out.items.len().div_ceil(self.work_group_size);
            chunk_vis.push(out.vis);
        }
        ledger.finish()?;
        if slots.len() != item_base {
            return Err(IdgError::Internal(format!(
                "streamed degrid commit covers {} of {} work items",
                slots.len(),
                item_base
            )));
        }

        // the exactly-once in-order commit: sorting by (baseline,
        // channel group, time) recovers the one-shot plan's item
        // order; each item's rows are plain copies of disjoint slots
        slots.sort_by_key(|s| {
            (
                s.item.baseline_index,
                s.item.channel_offset,
                s.item.time_offset,
            )
        });
        let nr_time = self.obs.nr_timesteps;
        let nr_chan = self.obs.nr_channels();
        let mut vis = vec![Visibility::<f32>::zero(); self.obs.nr_visibilities()];
        let mut committed_vis = 0u64;
        let t_commit = Instant::now();
        {
            let _span = idg_obs::wall_span("vis_commit", "stage", None);
            for slot in &slots {
                let item = &slot.item;
                let src = &chunk_vis[slot.src];
                for dt in 0..item.nr_timesteps {
                    let row = (item.baseline_index * nr_time + item.time_offset + dt) * nr_chan;
                    let cols =
                        row + item.channel_offset..row + item.channel_offset + item.nr_channels;
                    vis[cols.clone()].copy_from_slice(&src[cols]);
                }
                committed_vis += (item.nr_timesteps * item.nr_channels) as u64;
            }
        }
        let commit_seconds = t_commit.elapsed().as_secs_f64();

        let modeled = matches!(self.backend, Backend::GpuPascal | Backend::GpuFiji);
        // each committed visibility is one 4-pol read + write (32 B)
        let commit_model = (committed_vis * 2 * 32) as f64 / HOST_ADDER_BW;
        let adder_seconds = splitter_seconds
            + if modeled {
                commit_model
            } else {
                commit_seconds
            };
        let total_seconds = if modeled {
            stream_makespan(&makespans, config.workers.min(config.max_inflight)) + commit_model
        } else {
            t_start.elapsed().as_secs_f64()
        };
        let fleet = if modeled {
            self.fleet.as_ref().map(|c| FleetStats {
                nr_devices: c.nr_devices,
                redispatched_jobs: redispatched,
                degradation_steps: degradation,
                breaker_trips: trips,
                per_device: Vec::new(),
            })
        } else {
            None
        };

        Ok((
            vis,
            ExecutionReport {
                backend: self.backend.label().into(),
                pass: "degridding",
                modeled,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                transfer_seconds,
                total_seconds,
                counts,
                device_energy_j: modeled.then_some(device_energy),
                host_energy_j: modeled.then_some(host_energy),
                nr_retries,
                backoff_seconds,
                fallback_jobs,
                fleet,
                metrics: None,
                stream: Some(stats),
            },
        ))
    }

    /// Run [`Proxy::degrid_streamed`] under an observability session
    /// (the streamed counterpart of [`Proxy::degrid_observed`], with
    /// the self-validation contract adapted to chunked execution).
    pub fn degrid_streamed_observed(
        &self,
        config: &StreamConfig,
        grid: &Grid<f32>,
        uvw: &[Uvw],
        aterms: &ATerms,
    ) -> Result<(Vec<Visibility<f32>>, ExecutionReport, idg_obs::Trace), IdgError> {
        let session = idg_obs::Session::begin("degridding");
        let result = self.degrid_streamed(config, grid, uvw, aterms);
        let trace = session.finish();
        let (vis, mut report) = result?;
        report.metrics = Some(trace.metrics.clone());
        self.validate_streamed(config, uvw, &report)?;
        Ok((vis, report, trace))
    }

    /// One chunk's pass: plan against the shared uv extents, then run
    /// the back-end's gridder + subgrid FFT, leaving the commit to the
    /// caller. Runs on a scheduler worker thread.
    fn run_chunk(
        &self,
        data: &KernelData<'_>,
        extents: &UvExtents,
        chunk: &Chunk,
    ) -> Result<ChunkOutput, IdgError> {
        let plan = plan_chunk(&self.obs, data.uvw, extents, chunk)?;
        let n = self.obs.subgrid_size;
        let tag = u32::try_from(chunk.index).ok();
        match self.backend {
            Backend::CpuReference | Backend::CpuOptimized => {
                let t0 = Instant::now();
                let mut subgrids = SubgridArray::new(plan.nr_subgrids(), n);
                {
                    let _span = idg_obs::wall_span("gridder", "stage", tag);
                    match self.backend {
                        Backend::CpuReference => {
                            gridder_reference(data, &plan.items, &mut subgrids)?;
                        }
                        _ => gridder_cpu(
                            data,
                            &plan.items,
                            &mut subgrids,
                            Accuracy::Medium,
                            &self.cache,
                        )?,
                    }
                }
                let t1 = Instant::now();
                {
                    let _span = idg_obs::wall_span("subgrid_fft", "stage", tag);
                    fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
                }
                let t2 = Instant::now();
                let counts = gridder_counts(&plan.items, n);
                let nr_items = plan.items.len();
                Ok(ChunkOutput {
                    items: plan.items,
                    pending: vec![(0..nr_items, subgrids)],
                    fallback_jobs: Vec::new(),
                    counts,
                    kernel_seconds: (t1 - t0).as_secs_f64(),
                    fft_seconds: (t2 - t1).as_secs_f64(),
                    transfer_seconds: 0.0,
                    makespan: (t2 - t0).as_secs_f64(),
                    device_energy_j: 0.0,
                    host_energy_j: 0.0,
                    nr_retries: 0,
                    backoff_seconds: 0.0,
                    redispatched_jobs: 0,
                    degradation_steps: 0,
                    breaker_trips: 0,
                })
            }
            Backend::GpuPascal | Backend::GpuFiji => {
                if let Some(fconfig) = self.fleet.clone() {
                    let (pending, report) =
                        self.fleet_executor(&fconfig)?.grid_deferred(data, &plan)?;
                    let (pending, fallback_jobs) =
                        self.fallback_pending(data, &plan, pending, &report.failed_jobs)?;
                    return Ok(ChunkOutput {
                        items: plan.items,
                        pending,
                        fallback_jobs,
                        counts: report.counts,
                        kernel_seconds: report.kernel_seconds,
                        fft_seconds: report.fft_seconds,
                        transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                        makespan: report.makespan,
                        device_energy_j: report.device_energy_j,
                        host_energy_j: report.host_energy_j,
                        nr_retries: report.nr_retries,
                        backoff_seconds: report.backoff_seconds,
                        redispatched_jobs: report.redispatched_jobs,
                        degradation_steps: report.degradation_steps,
                        breaker_trips: report.breaker_trips,
                    });
                }
                let (pending, report) = self.executor()?.grid_deferred(data, &plan)?;
                let (pending, fallback_jobs) =
                    self.fallback_pending(data, &plan, pending, &report.failed_jobs)?;
                Ok(ChunkOutput {
                    items: plan.items,
                    pending,
                    fallback_jobs,
                    counts: report.counts,
                    kernel_seconds: report.kernel_seconds,
                    fft_seconds: report.fft_seconds,
                    transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                    makespan: report.makespan,
                    device_energy_j: report.device_energy_j,
                    host_energy_j: report.host_energy_j,
                    nr_retries: report.nr_retries,
                    backoff_seconds: report.backoff_seconds,
                    redispatched_jobs: 0,
                    degradation_steps: 0,
                    breaker_trips: 0,
                })
            }
        }
    }

    /// Graceful degradation for the deferred-commit path: compute the
    /// persistently failed jobs' subgrids on the CPU reference kernels
    /// and append them to the pending set, so they join the same single
    /// in-order commit as the device-produced subgrids (the one-shot
    /// fallback instead adds them after the device pass committed).
    fn fallback_pending(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        mut pending: DeferredSubgrids,
        failed_jobs: &[JobFailure],
    ) -> Result<(DeferredSubgrids, Vec<JobFailure>), IdgError> {
        if failed_jobs.is_empty() {
            return Ok((pending, Vec::new()));
        }
        if !self.cpu_fallback {
            return Err(failed_jobs[0].error.clone());
        }
        idg_obs::add_fallback_jobs(failed_jobs.len() as u64);
        for failure in failed_jobs {
            let _span = idg_obs::wall_span("cpu_fallback", "job", u32::try_from(failure.job).ok());
            let range = failure.first_item..failure.first_item + failure.nr_items;
            let items = &plan.items[range.clone()];
            let mut subgrids = SubgridArray::new(items.len(), self.obs.subgrid_size);
            gridder_reference(data, items, &mut subgrids)?;
            fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
            pending.push((range, subgrids));
        }
        Ok((pending, failed_jobs.to_vec()))
    }

    /// One chunk's degrid pass: plan against the shared uv extents,
    /// split the chunk's subgrids out of the model grid, and predict
    /// its visibilities into a chunk-local buffer, leaving the commit
    /// to the caller. Runs on a scheduler worker thread.
    fn run_degrid_chunk(
        &self,
        data: &KernelData<'_>,
        extents: &UvExtents,
        grid: &Grid<f32>,
        chunk: &Chunk,
    ) -> Result<DegridChunkOutput, IdgError> {
        let plan = plan_chunk(&self.obs, data.uvw, extents, chunk)?;
        let n = self.obs.subgrid_size;
        let tag = u32::try_from(chunk.index).ok();
        match self.backend {
            Backend::CpuReference | Backend::CpuOptimized => {
                let t0 = Instant::now();
                let mut subgrids = SubgridArray::new(plan.nr_subgrids(), n);
                {
                    let _span = idg_obs::wall_span("splitter", "stage", tag);
                    split_subgrids(grid, &plan.items, &mut subgrids, &self.cache)?;
                }
                let t1 = Instant::now();
                {
                    let _span = idg_obs::wall_span("subgrid_ifft", "stage", tag);
                    fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
                }
                let t2 = Instant::now();
                let mut vis = vec![Visibility::<f32>::zero(); self.obs.nr_visibilities()];
                {
                    let _span = idg_obs::wall_span("degridder", "stage", tag);
                    match self.backend {
                        Backend::CpuReference => {
                            degridder_reference(data, &plan.items, &subgrids, &mut vis)?;
                        }
                        _ => degridder_cpu(
                            data,
                            &plan.items,
                            &subgrids,
                            &mut vis,
                            Accuracy::Medium,
                            &self.cache,
                        )?,
                    }
                }
                let t3 = Instant::now();
                let counts = degridder_counts(&plan.items, n);
                // one covering range: the whole chunk is one CPU "job"
                let ranges: Vec<std::ops::Range<usize>> =
                    std::iter::once(0..plan.items.len()).collect();
                Ok(DegridChunkOutput {
                    items: plan.items,
                    ranges,
                    vis,
                    fallback_jobs: Vec::new(),
                    counts,
                    kernel_seconds: (t3 - t2).as_secs_f64(),
                    fft_seconds: (t2 - t1).as_secs_f64(),
                    splitter_seconds: (t1 - t0).as_secs_f64(),
                    transfer_seconds: 0.0,
                    makespan: (t3 - t0).as_secs_f64(),
                    device_energy_j: 0.0,
                    host_energy_j: 0.0,
                    nr_retries: 0,
                    backoff_seconds: 0.0,
                    redispatched_jobs: 0,
                    degradation_steps: 0,
                    breaker_trips: 0,
                })
            }
            Backend::GpuPascal | Backend::GpuFiji => {
                if let Some(fconfig) = self.fleet.clone() {
                    let (deferred, report) = self
                        .fleet_executor(&fconfig)?
                        .split_deferred(data, &plan, grid)?;
                    let (deferred, fallback_jobs) = self.fallback_pending_degrid(
                        data,
                        &plan,
                        grid,
                        deferred,
                        &report.failed_jobs,
                    )?;
                    return Ok(DegridChunkOutput {
                        items: plan.items,
                        ranges: deferred.ranges,
                        vis: deferred.vis,
                        fallback_jobs,
                        counts: report.counts,
                        kernel_seconds: report.kernel_seconds,
                        fft_seconds: report.fft_seconds,
                        splitter_seconds: report.adder_seconds,
                        transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                        makespan: report.makespan,
                        device_energy_j: report.device_energy_j,
                        host_energy_j: report.host_energy_j,
                        nr_retries: report.nr_retries,
                        backoff_seconds: report.backoff_seconds,
                        redispatched_jobs: report.redispatched_jobs,
                        degradation_steps: report.degradation_steps,
                        breaker_trips: report.breaker_trips,
                    });
                }
                let (deferred, report) = self.executor()?.split_deferred(data, &plan, grid)?;
                let (deferred, fallback_jobs) =
                    self.fallback_pending_degrid(data, &plan, grid, deferred, &report.failed_jobs)?;
                Ok(DegridChunkOutput {
                    items: plan.items,
                    ranges: deferred.ranges,
                    vis: deferred.vis,
                    fallback_jobs,
                    counts: report.counts,
                    kernel_seconds: report.kernel_seconds,
                    fft_seconds: report.fft_seconds,
                    splitter_seconds: report.adder_seconds,
                    transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                    makespan: report.makespan,
                    device_energy_j: report.device_energy_j,
                    host_energy_j: report.host_energy_j,
                    nr_retries: report.nr_retries,
                    backoff_seconds: report.backoff_seconds,
                    redispatched_jobs: 0,
                    degradation_steps: 0,
                    breaker_trips: 0,
                })
            }
        }
    }

    /// Graceful degradation for the deferred-split path: re-predict
    /// the persistently failed jobs' visibilities with the CPU
    /// reference kernels into the same chunk-local buffer (the
    /// executor already zeroed their slots) and append their ranges,
    /// so they join the same exactly-once commit as the
    /// device-produced slots.
    fn fallback_pending_degrid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
        mut deferred: DeferredVis,
        failed_jobs: &[JobFailure],
    ) -> Result<(DeferredVis, Vec<JobFailure>), IdgError> {
        if failed_jobs.is_empty() {
            return Ok((deferred, Vec::new()));
        }
        if !self.cpu_fallback {
            return Err(failed_jobs[0].error.clone());
        }
        idg_obs::add_fallback_jobs(failed_jobs.len() as u64);
        for failure in failed_jobs {
            let _span = idg_obs::wall_span("cpu_fallback", "job", u32::try_from(failure.job).ok());
            let range = failure.first_item..failure.first_item + failure.nr_items;
            let items = &plan.items[range.clone()];
            let mut subgrids = SubgridArray::new(items.len(), self.obs.subgrid_size);
            split_subgrids(grid, items, &mut subgrids, &self.cache)?;
            fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
            degridder_reference(data, items, &subgrids, &mut deferred.vis)?;
            deferred.ranges.push(range);
        }
        Ok((deferred, failed_jobs.to_vec()))
    }

    /// Cross-validate an observed streamed pass (see
    /// [`Proxy::grid_observed`] for the contract). The chunk-local
    /// plans are re-derived here — planning is cheap next to the
    /// kernels — to get the analytic counts, total item count and
    /// per-chunk job counts the expectations need. Skipped whenever
    /// kernels may legitimately run more than once per work item.
    fn validate_streamed(
        &self,
        config: &StreamConfig,
        uvw: &[Uvw],
        report: &ExecutionReport,
    ) -> Result<(), IdgError> {
        let fleet_perturbed = self.fleet_has_faults()
            || report.fleet.as_ref().is_some_and(|f| {
                f.redispatched_jobs > 0 || f.degradation_steps > 0 || f.breaker_trips > 0
            });
        if self.fault_config.is_some()
            || report.nr_retries > 0
            || !report.fallback_jobs.is_empty()
            || fleet_perturbed
        {
            return Ok(());
        }
        let Some(metrics) = &report.metrics else {
            return Ok(());
        };
        let gridding = report.pass == "gridding";
        let chunks = ChunkedDataset::split(&self.obs, &config.policy)?;
        let extents = UvExtents::compute(&self.obs, uvw)?;
        let mut analytic = OpCounts::default();
        let mut nr_items = 0u64;
        let mut nr_jobs = 0u64;
        for chunk in chunks.chunks() {
            let plan = plan_chunk(&self.obs, uvw, &extents, chunk)?;
            analytic.add(&if gridding {
                gridder_counts(&plan.items, self.obs.subgrid_size)
            } else {
                degridder_counts(&plan.items, self.obs.subgrid_size)
            });
            nr_items += plan.items.len() as u64;
            nr_jobs += plan.work_groups(self.work_group_size).count() as u64;
        }
        let k = metrics.pass_kernel();
        let checks = [
            ("visibilities", k.visibilities, analytic.visibilities),
            ("sincos_pairs", k.sincos_pairs, analytic.sincos_pairs),
            ("fmas", k.fmas, analytic.fmas),
            ("dram_bytes", k.dram_bytes, analytic.dram_bytes),
            ("shared_bytes", k.shared_bytes, analytic.shared_bytes),
            ("invocations", k.invocations, nr_items),
        ];
        for (name, measured, predicted) in checks {
            if measured != predicted {
                return Err(IdgError::Internal(format!(
                    "observability self-validation failed: streamed {} {name} \
                     measured {measured} != analytic {predicted}",
                    report.pass
                )));
            }
        }
        // Streamed cache cadence. Gridding: the reference path looks
        // up once (the final commit's phasor tables); the optimized
        // CPU path once per chunk (geometry planes) plus the commit;
        // the GPU paths once per device job (compute phases) plus the
        // commit. Degridding: the splitter looks up phasors once per
        // chunk (reference) or per job (GPU), the degridder adds a
        // geometry lookup per chunk (optimized CPU) or per job (GPU),
        // and the final visibility commit is plain copies — no lookup.
        let lookups = metrics.cache_hits + metrics.cache_misses;
        let expected_lookups = match (self.backend, gridding) {
            (Backend::CpuReference, true) => 1,
            (Backend::CpuOptimized, true) => chunks.len() as u64 + 1,
            (Backend::GpuPascal | Backend::GpuFiji, true) => nr_jobs + 1,
            (Backend::CpuReference, false) => chunks.len() as u64,
            (Backend::CpuOptimized, false) => 2 * chunks.len() as u64,
            (Backend::GpuPascal | Backend::GpuFiji, false) => 2 * nr_jobs,
        };
        if lookups != expected_lookups {
            return Err(IdgError::Internal(format!(
                "observability self-validation failed: streamed {} cache lookups \
                 measured {lookups} != expected {expected_lookups}",
                report.pass
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_telescope::{Dataset, GaussianBeam, Layout, SkyModel};
    use idg_types::Observation;

    fn dataset() -> Dataset {
        let obs = Observation::builder()
            .stations(5)
            .timesteps(48)
            .channels(4, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(8)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(5, 900.0, 171);
        let sky = SkyModel::random(&obs, 4, 0.6, 173);
        let beam = GaussianBeam::new(&obs, 0.8, 179);
        Dataset::simulate(obs, &layout, sky, &beam)
    }

    fn assert_bit_identical(a: &Grid<f32>, b: &Grid<f32>) {
        assert_eq!(a.size(), b.size());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn streamed_grid_is_bit_identical_to_one_shot_on_every_backend() {
        let ds = dataset();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            let (reference, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let config = StreamConfig::new(ChunkPolicy::by_timesteps(8), 2, 2);
            let (streamed, report) = proxy
                .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            assert_bit_identical(&reference, &streamed);
            let stats = report.stream.expect("streamed pass reports stream stats");
            assert_eq!(stats.nr_chunks, 6, "{backend:?}");
            assert_eq!(stats.completed_chunks, 6);
            assert_eq!(stats.failed_chunks, 0);
            assert_eq!(stats.inflight_max, 2);
            assert_eq!(stats.backpressure_waits, 4);
        }
    }

    #[test]
    fn streamed_pass_survives_chunk_policies_tighter_than_one_interval() {
        // a 1-timestep policy snaps up to whole A-term intervals; the
        // grid stays bit-identical and every timestep is still covered
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (reference, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let config = StreamConfig::new(ChunkPolicy::by_timesteps(1), 3, 4);
        let (streamed, report) = proxy
            .grid_streamed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_bit_identical(&reference, &streamed);
        assert_eq!(report.stream.unwrap().nr_chunks, 6);
    }

    #[test]
    fn stream_config_rejects_degenerate_parameters() {
        let bad = [
            StreamConfig::new(ChunkPolicy::by_timesteps(0), 2, 2),
            StreamConfig::new(ChunkPolicy::by_visibilities(0), 2, 2),
            StreamConfig::new(ChunkPolicy::by_timesteps(8), 0, 2),
            StreamConfig::new(ChunkPolicy::by_timesteps(8), 2, 0),
        ];
        for config in bad {
            assert!(matches!(
                config.validate(),
                Err(IdgError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn observed_streamed_runs_self_validate_on_every_backend() {
        let ds = dataset();
        let config = StreamConfig::new(ChunkPolicy::by_timesteps(16), 2, 3);
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let (_, report, trace) = proxy
                .grid_streamed_observed(&config, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let metrics = report.metrics.expect("observed run attaches metrics");
            assert_eq!(metrics.chunks_ingested, 3, "{backend:?}");
            assert_eq!(metrics.passes_inflight_max, 3);
            assert!(trace
                .spans
                .iter()
                .any(|s| s.name == "chunk" || s.name == "adder"));
        }
    }

    fn assert_vis_bit_identical(a: &[Visibility<f32>], b: &[Visibility<f32>]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            for (p, q) in x.pols.iter().zip(y.pols.iter()) {
                assert_eq!(p.re.to_bits(), q.re.to_bits());
                assert_eq!(p.im.to_bits(), q.im.to_bits());
            }
        }
    }

    #[test]
    fn streamed_degrid_is_bit_identical_to_one_shot_on_every_backend() {
        let ds = dataset();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            let (model, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let (reference, _) = proxy.degrid(&plan, &model, &ds.uvw, &ds.aterms).unwrap();
            let config = StreamConfig::new(ChunkPolicy::by_timesteps(8), 2, 2);
            let (streamed, report) = proxy
                .degrid_streamed(&config, &model, &ds.uvw, &ds.aterms)
                .unwrap();
            assert_vis_bit_identical(&reference, &streamed);
            assert_eq!(report.pass, "degridding");
            let stats = report.stream.expect("streamed pass reports stream stats");
            assert_eq!(stats.direction, idg_stream::StreamDirection::Degridding);
            assert_eq!(stats.nr_chunks, 6, "{backend:?}");
            assert_eq!(stats.completed_chunks, 6);
            assert_eq!(stats.failed_chunks, 0);
            assert_eq!(stats.inflight_max, 2);
            assert_eq!(stats.backpressure_waits, 4);
        }
    }

    #[test]
    fn observed_streamed_degrid_runs_self_validate_on_every_backend() {
        let ds = dataset();
        let config = StreamConfig::new(ChunkPolicy::by_timesteps(16), 2, 3);
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            let (model, _) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            let (_, report, trace) = proxy
                .degrid_streamed_observed(&config, &model, &ds.uvw, &ds.aterms)
                .unwrap();
            let metrics = report.metrics.expect("observed run attaches metrics");
            assert_eq!(metrics.chunks_ingested, 3, "{backend:?}");
            assert_eq!(metrics.passes_inflight_max, 3);
            assert!(trace
                .spans
                .iter()
                .any(|s| s.name == "chunk" || s.name == "vis_commit"));
        }
    }

    #[test]
    fn streamed_degrid_rejects_degenerate_parameters_typed() {
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (model, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let bad = [
            StreamConfig::new(ChunkPolicy::by_timesteps(0), 2, 2),
            StreamConfig::new(ChunkPolicy::by_visibilities(0), 2, 2),
            StreamConfig::new(ChunkPolicy::by_timesteps(8), 0, 2),
            StreamConfig::new(ChunkPolicy::by_timesteps(8), 2, 0),
        ];
        for config in bad {
            assert!(matches!(
                proxy.degrid_streamed(&config, &model, &ds.uvw, &ds.aterms),
                Err(IdgError::InvalidParameter(_))
            ));
        }
    }

    #[test]
    fn modeled_stream_makespan_overlaps_chunks_across_lanes() {
        // two equal chunks on two lanes finish in one chunk's time
        let span = stream_makespan(&[1.0, 1.0], 2);
        assert!((span - 1.0).abs() < 1e-12);
        // one lane serializes them
        assert!((stream_makespan(&[1.0, 1.0], 1) - 2.0).abs() < 1e-12);
        // list scheduling packs the short chunks behind the long one
        assert!((stream_makespan(&[3.0, 1.0, 1.0, 1.0], 2) - 3.0).abs() < 1e-12);
    }
}
