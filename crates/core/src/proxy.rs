//! The proxy: one entry point per back-end.
//!
//! Mirrors the proxy layer of the reference IDG library: the application
//! hands over observation parameters once, then issues `grid`/`degrid`
//! calls against whichever back-end was selected. CPU back-ends execute
//! and *measure*; GPU back-ends execute the device model and *model*
//! their times (see DESIGN.md, substitutions).

use crate::report::{ExecutionReport, FleetStats};
use idg_fft::Direction;
use idg_gpusim::{
    BreakerConfig, Device, FaultConfig, FleetExecutor, GpuExecutor, JobFailure, RetryPolicy,
};
use idg_kernels::{
    add_subgrids, degridder_cpu, degridder_reference, fft_subgrids, gridder_cpu, gridder_reference,
    split_subgrids, FftNorm, KernelCache, KernelData, SubgridArray,
};
use idg_math::Accuracy;
use idg_perf::{degridder_counts, gridder_counts};
use idg_plan::Plan;
use idg_telescope::ATerms;
use idg_types::{Grid, IdgError, Observation, Uvw, Visibility};
use std::sync::Arc;
use std::time::Instant;

pub mod streaming;
pub use streaming::StreamConfig;

/// Which implementation executes the kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Scalar double-precision reference kernels (gold standard).
    CpuReference,
    /// Optimized CPU kernels of Sec. V-B (measured).
    CpuOptimized,
    /// GTX 1080 device model running the Sec. V-C mapping (modeled).
    GpuPascal,
    /// Fury X device model running the Sec. V-C mapping (modeled).
    GpuFiji,
}

impl Backend {
    /// Human-readable label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::CpuReference => "cpu-reference",
            Backend::CpuOptimized => "cpu-optimized",
            Backend::GpuPascal => "gpu-pascal",
            Backend::GpuFiji => "gpu-fiji",
        }
    }

    /// All back-ends, CPU first.
    pub fn all() -> [Backend; 4] {
        [
            Backend::CpuReference,
            Backend::CpuOptimized,
            Backend::GpuPascal,
            Backend::GpuFiji,
        ]
    }
}

/// Reject non-finite samples at the proxy boundary: a single NaN/Inf
/// visibility silently poisons the entire grid (NaN propagates through
/// every accumulation), so the error must be typed and early.
fn check_finite_vis(visibilities: &[Visibility<f32>]) -> Result<(), IdgError> {
    for (i, v) in visibilities.iter().enumerate() {
        if v.pols
            .iter()
            .any(|p| !p.re.is_finite() || !p.im.is_finite())
        {
            return Err(IdgError::InvalidParameter(format!(
                "visibility {i} is non-finite (NaN/Inf)"
            )));
        }
    }
    Ok(())
}

/// Same boundary check for uvw coordinates: a NaN coordinate corrupts
/// the plan's subgrid placement, not just one sample.
fn check_finite_uvw(uvw: &[Uvw]) -> Result<(), IdgError> {
    for (i, c) in uvw.iter().enumerate() {
        if !c.u.is_finite() || !c.v.is_finite() || !c.w.is_finite() {
            return Err(IdgError::InvalidParameter(format!(
                "uvw coordinate {i} is non-finite (NaN/Inf)"
            )));
        }
    }
    Ok(())
}

/// Multi-device execution configuration for GPU back-ends.
///
/// When attached to a [`Proxy`] (see [`Proxy::with_fleet`]), gridding
/// and degridding passes are partitioned across `nr_devices` clones of
/// the back-end's device model by a [`FleetExecutor`], with per-device
/// circuit breakers and the OOM degradation ladder between the plain
/// device path and the proxy's per-job CPU fallback.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of member devices (clamped to at least 1).
    pub nr_devices: usize,
    /// Per-member fault schedules `(member index, schedule)`, applied
    /// on top of the proxy-wide [`Proxy::fault_config`] (which, when
    /// set, seeds *every* member).
    pub member_faults: Vec<(usize, FaultConfig)>,
    /// Circuit-breaker tuning shared by all members (`None` uses
    /// [`BreakerConfig::default`]).
    pub breaker: Option<BreakerConfig>,
}

impl FleetConfig {
    /// A fault-free homogeneous fleet of `nr_devices` members.
    pub fn new(nr_devices: usize) -> Self {
        Self {
            nr_devices: nr_devices.max(1),
            member_faults: Vec::new(),
            breaker: None,
        }
    }
}

/// A configured IDG instance for one observation.
pub struct Proxy {
    backend: Backend,
    obs: Observation,
    taper: Vec<f32>,
    /// Work items per (modeled) kernel launch on GPU back-ends.
    pub work_group_size: usize,
    /// Optional device fault-injection schedule (GPU back-ends).
    pub fault_config: Option<FaultConfig>,
    /// Retry policy for transient device faults (GPU back-ends).
    pub retry_policy: RetryPolicy,
    /// Re-execute persistently failed device jobs on the CPU reference
    /// kernels and merge their outputs (graceful degradation; the
    /// fallback is flagged in the report). When disabled, a persistent
    /// device fault fails the whole pass with its classified error.
    pub cpu_fallback: bool,
    /// Multi-device execution: when set, GPU passes run on a
    /// [`FleetExecutor`] over `nr_devices` clones of the back-end's
    /// device model instead of a single [`GpuExecutor`].
    pub fleet: Option<FleetConfig>,
    /// Pass-level kernel cache: geometry planes and adder/splitter
    /// phasor tables, built on the first pass and reused by every later
    /// one (shared with GPU executors).
    cache: Arc<KernelCache>,
}

impl Proxy {
    /// Create a proxy; precomputes the prolate-spheroidal taper.
    pub fn new(backend: Backend, obs: Observation) -> Result<Self, IdgError> {
        obs.validate()?;
        let taper = idg_math::spheroidal_2d(obs.subgrid_size);
        Ok(Self {
            backend,
            obs,
            taper,
            work_group_size: 256,
            fault_config: None,
            retry_policy: RetryPolicy::default(),
            cpu_fallback: true,
            fleet: None,
            cache: Arc::new(KernelCache::new()),
        })
    }

    /// The proxy's pass-level kernel cache (hit/miss inspection).
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.cache
    }

    /// Attach a device fault-injection schedule (GPU back-ends; CPU
    /// back-ends ignore it). With a fleet configured, the schedule
    /// seeds every member (see [`FleetConfig::member_faults`] for
    /// per-member overrides).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.fault_config = Some(faults);
        self
    }

    /// Run GPU passes across a fleet of `nr_devices` clones of the
    /// back-end's device model (CPU back-ends ignore it).
    pub fn with_fleet(mut self, nr_devices: usize) -> Self {
        self.fleet = Some(FleetConfig::new(nr_devices));
        self
    }

    /// Full fleet configuration (member fault schedules, breaker
    /// tuning); see [`Proxy::with_fleet`] for the plain case.
    pub fn with_fleet_config(mut self, config: FleetConfig) -> Self {
        self.fleet = Some(config);
        self
    }

    /// The observation this proxy was configured for.
    pub fn observation(&self) -> &Observation {
        &self.obs
    }

    /// The back-end in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The image-domain taper applied per subgrid (`subgrid_size²`).
    pub fn taper(&self) -> &[f32] {
        &self.taper
    }

    /// Build the execution plan for a uvw buffer
    /// (`[baseline][timestep]`, meters).
    pub fn plan(&self, uvw: &[Uvw]) -> Result<Plan, IdgError> {
        Plan::create(&self.obs, uvw)
    }

    pub(crate) fn device(&self) -> Result<Device, IdgError> {
        match self.backend {
            Backend::GpuPascal => Ok(Device::pascal()),
            Backend::GpuFiji => Ok(Device::fiji()),
            _ => Err(IdgError::InvalidParameter(format!(
                "device() requires a GPU back-end, got {:?}",
                self.backend
            ))),
        }
    }

    fn executor(&self) -> Result<GpuExecutor, IdgError> {
        let executor = GpuExecutor::new(self.device()?, self.work_group_size)
            .with_retry_policy(self.retry_policy)
            .with_cache(Arc::clone(&self.cache));
        Ok(match &self.fault_config {
            Some(f) => executor.with_faults(f.clone()),
            None => executor,
        })
    }

    /// Build the fleet executor for `config`, sharing the proxy's
    /// kernel cache across all members.
    fn fleet_executor(&self, config: &FleetConfig) -> Result<FleetExecutor, IdgError> {
        let mut fleet =
            FleetExecutor::uniform(self.device()?, config.nr_devices, self.work_group_size)
                .with_retry_policy(self.retry_policy)
                .with_cache(Arc::clone(&self.cache));
        if let Some(f) = &self.fault_config {
            for member in 0..config.nr_devices {
                fleet = fleet.with_member_faults(member, f.clone());
            }
        }
        for (member, faults) in &config.member_faults {
            if *member >= config.nr_devices {
                return Err(IdgError::InvalidParameter(format!(
                    "fleet member fault index {member} out of range (fleet has {} devices)",
                    config.nr_devices
                )));
            }
            fleet = fleet.with_member_faults(*member, faults.clone());
        }
        if let Some(breaker) = config.breaker {
            fleet = fleet.with_breaker(breaker);
        }
        Ok(fleet)
    }

    /// Whether the fleet path can perturb measured counters: any fault
    /// schedule on any member makes retries/degradation possible.
    fn fleet_has_faults(&self) -> bool {
        self.fleet
            .as_ref()
            .is_some_and(|c| !c.member_faults.is_empty())
    }

    /// Graceful degradation after a device pass: re-execute the
    /// persistently failed jobs' work items on the CPU reference
    /// kernels and merge their subgrids into `grid`. Errors with the
    /// first failure's classified error when the fallback is disabled.
    fn fallback_grid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &mut Grid<f32>,
        failed_jobs: &[JobFailure],
    ) -> Result<Vec<JobFailure>, IdgError> {
        if failed_jobs.is_empty() {
            return Ok(Vec::new());
        }
        if !self.cpu_fallback {
            return Err(failed_jobs[0].error.clone());
        }
        idg_obs::add_fallback_jobs(failed_jobs.len() as u64);
        for failure in failed_jobs {
            let _span = idg_obs::wall_span("cpu_fallback", "job", Some(failure.job as u32));
            let items = &plan.items[failure.first_item..failure.first_item + failure.nr_items];
            let mut subgrids = SubgridArray::new(items.len(), self.obs.subgrid_size);
            gridder_reference(data, items, &mut subgrids)?;
            fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
            add_subgrids(grid, items, &subgrids, &self.cache)?;
        }
        Ok(failed_jobs.to_vec())
    }

    /// Degridding counterpart of [`Proxy::fallback_grid`]: predict the
    /// failed jobs' visibilities with the CPU reference kernels.
    fn fallback_degrid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
        vis: &mut [Visibility<f32>],
        failed_jobs: &[JobFailure],
    ) -> Result<Vec<JobFailure>, IdgError> {
        if failed_jobs.is_empty() {
            return Ok(Vec::new());
        }
        if !self.cpu_fallback {
            return Err(failed_jobs[0].error.clone());
        }
        idg_obs::add_fallback_jobs(failed_jobs.len() as u64);
        for failure in failed_jobs {
            let _span = idg_obs::wall_span("cpu_fallback", "job", Some(failure.job as u32));
            let items = &plan.items[failure.first_item..failure.first_item + failure.nr_items];
            let mut subgrids = SubgridArray::new(items.len(), self.obs.subgrid_size);
            split_subgrids(grid, items, &mut subgrids, &self.cache)?;
            fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
            degridder_reference(data, items, &subgrids, vis)?;
        }
        Ok(failed_jobs.to_vec())
    }

    /// Grid visibilities onto a new grid.
    pub fn grid(
        &self,
        plan: &Plan,
        uvw: &[Uvw],
        visibilities: &[Visibility<f32>],
        aterms: &ATerms,
    ) -> Result<(Grid<f32>, ExecutionReport), IdgError> {
        let data = KernelData {
            obs: &self.obs,
            uvw,
            visibilities,
            aterms,
            taper: &self.taper,
        };
        data.validate()?;
        check_finite_vis(visibilities)?;
        check_finite_uvw(uvw)?;

        match self.backend {
            Backend::CpuReference | Backend::CpuOptimized => {
                let mut subgrids = SubgridArray::new(plan.nr_subgrids(), self.obs.subgrid_size);
                let t0 = Instant::now();
                {
                    let _span = idg_obs::wall_span("gridder", "stage", None);
                    match self.backend {
                        Backend::CpuReference => {
                            gridder_reference(&data, &plan.items, &mut subgrids)?;
                        }
                        _ => gridder_cpu(
                            &data,
                            &plan.items,
                            &mut subgrids,
                            Accuracy::Medium,
                            &self.cache,
                        )?,
                    }
                }
                let t1 = Instant::now();
                {
                    let _span = idg_obs::wall_span("subgrid_fft", "stage", None);
                    fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
                }
                let t2 = Instant::now();
                let mut grid = Grid::<f32>::new(self.obs.grid_size);
                {
                    let _span = idg_obs::wall_span("adder", "stage", None);
                    add_subgrids(&mut grid, &plan.items, &subgrids, &self.cache)?;
                }
                let t3 = Instant::now();

                let counts = gridder_counts(&plan.items, self.obs.subgrid_size);
                Ok((
                    grid,
                    ExecutionReport {
                        backend: self.backend.label().into(),
                        pass: "gridding",
                        modeled: false,
                        kernel_seconds: (t1 - t0).as_secs_f64(),
                        fft_seconds: (t2 - t1).as_secs_f64(),
                        adder_seconds: (t3 - t2).as_secs_f64(),
                        transfer_seconds: 0.0,
                        total_seconds: (t3 - t0).as_secs_f64(),
                        counts,
                        device_energy_j: None,
                        host_energy_j: None,
                        nr_retries: 0,
                        backoff_seconds: 0.0,
                        fallback_jobs: Vec::new(),
                        fleet: None,
                        metrics: None,
                        stream: None,
                    },
                ))
            }
            Backend::GpuPascal | Backend::GpuFiji => {
                if let Some(config) = self.fleet.clone() {
                    let (mut grid, report) = self.fleet_executor(&config)?.grid(&data, plan)?;
                    let fallback_jobs =
                        self.fallback_grid(&data, plan, &mut grid, &report.failed_jobs)?;
                    return Ok((
                        grid,
                        ExecutionReport {
                            backend: self.backend.label().into(),
                            pass: "gridding",
                            modeled: true,
                            kernel_seconds: report.kernel_seconds,
                            fft_seconds: report.fft_seconds,
                            adder_seconds: report.adder_seconds,
                            transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                            total_seconds: report.makespan,
                            counts: report.counts,
                            device_energy_j: Some(report.device_energy_j),
                            host_energy_j: Some(report.host_energy_j),
                            nr_retries: report.nr_retries,
                            backoff_seconds: report.backoff_seconds,
                            fallback_jobs,
                            fleet: Some(FleetStats {
                                nr_devices: config.nr_devices,
                                redispatched_jobs: report.redispatched_jobs,
                                degradation_steps: report.degradation_steps,
                                breaker_trips: report.breaker_trips,
                                per_device: report.per_device,
                            }),
                            metrics: None,
                            stream: None,
                        },
                    ));
                }
                let (mut grid, report) = self.executor()?.grid(&data, plan)?;
                let fallback_jobs =
                    self.fallback_grid(&data, plan, &mut grid, &report.failed_jobs)?;
                Ok((
                    grid,
                    ExecutionReport {
                        backend: self.backend.label().into(),
                        pass: "gridding",
                        modeled: true,
                        kernel_seconds: report.kernel_seconds,
                        fft_seconds: report.fft_seconds,
                        adder_seconds: report.adder_seconds,
                        transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                        total_seconds: report.makespan,
                        counts: report.counts,
                        device_energy_j: Some(report.device_energy_j),
                        host_energy_j: Some(report.host_energy_j),
                        nr_retries: report.nr_retries,
                        backoff_seconds: report.backoff_seconds,
                        fallback_jobs,
                        fleet: None,
                        metrics: None,
                        stream: None,
                    },
                ))
            }
        }
    }

    /// Run [`Proxy::grid`] under an observability session.
    ///
    /// Returns the grid, the report with [`ExecutionReport::metrics`]
    /// attached, and the full [`idg_obs::Trace`] (spans + counter
    /// snapshot, exportable with [`idg_obs::chrome_trace_json`]). On
    /// clean runs — no fault injection, no retries, no CPU fallback —
    /// the measured kernel counters are cross-validated against the
    /// analytic `idg_perf` model with exact integer equality; a
    /// mismatch fails the pass with [`IdgError::Internal`], so every
    /// observed run doubles as an assertion that the performance model
    /// is correct.
    pub fn grid_observed(
        &self,
        plan: &Plan,
        uvw: &[Uvw],
        visibilities: &[Visibility<f32>],
        aterms: &ATerms,
    ) -> Result<(Grid<f32>, ExecutionReport, idg_obs::Trace), IdgError> {
        let session = idg_obs::Session::begin("gridding");
        let result = self.grid(plan, uvw, visibilities, aterms);
        let trace = session.finish();
        let (grid, mut report) = result?;
        report.metrics = Some(trace.metrics.clone());
        self.validate_measured(&report, plan)?;
        Ok((grid, report, trace))
    }

    /// Run [`Proxy::degrid`] under an observability session (see
    /// [`Proxy::grid_observed`] for the validation contract).
    pub fn degrid_observed(
        &self,
        plan: &Plan,
        grid: &Grid<f32>,
        uvw: &[Uvw],
        aterms: &ATerms,
    ) -> Result<(Vec<Visibility<f32>>, ExecutionReport, idg_obs::Trace), IdgError> {
        let session = idg_obs::Session::begin("degridding");
        let result = self.degrid(plan, grid, uvw, aterms);
        let trace = session.finish();
        let (vis, mut report) = result?;
        report.metrics = Some(trace.metrics.clone());
        self.validate_measured(&report, plan)?;
        Ok((vis, report, trace))
    }

    /// Cross-validate an observed pass's measured counters against the
    /// analytic model — exact integer equality, field by field. Skipped
    /// for runs where kernels legitimately execute more than once per
    /// work item: retries and CPU fallbacks re-run them, and fault
    /// injection may re-run the compute phase for checksum staging.
    fn validate_measured(&self, report: &ExecutionReport, plan: &Plan) -> Result<(), IdgError> {
        // Fleet runs self-validate too, but only when nothing perturbed
        // the per-job kernel/cache cadence: member faults, breaker
        // re-dispatches and degraded (chunked) jobs all change how often
        // kernels and cache lookups run per work item.
        let fleet_perturbed = self.fleet_has_faults()
            || report.fleet.as_ref().is_some_and(|f| {
                f.redispatched_jobs > 0 || f.degradation_steps > 0 || f.breaker_trips > 0
            });
        if self.fault_config.is_some()
            || report.nr_retries > 0
            || !report.fallback_jobs.is_empty()
            || fleet_perturbed
        {
            return Ok(());
        }
        let Some(metrics) = &report.metrics else {
            return Ok(());
        };
        let analytic = match report.pass {
            "gridding" => gridder_counts(&plan.items, self.obs.subgrid_size),
            _ => degridder_counts(&plan.items, self.obs.subgrid_size),
        };
        let k = metrics.pass_kernel();
        let checks = [
            ("visibilities", k.visibilities, analytic.visibilities),
            ("sincos_pairs", k.sincos_pairs, analytic.sincos_pairs),
            ("fmas", k.fmas, analytic.fmas),
            ("dram_bytes", k.dram_bytes, analytic.dram_bytes),
            ("shared_bytes", k.shared_bytes, analytic.shared_bytes),
            ("invocations", k.invocations, plan.items.len() as u64),
        ];
        for (name, measured, predicted) in checks {
            if measured != predicted {
                return Err(IdgError::Internal(format!(
                    "observability self-validation failed: {} {name} measured {measured} \
                     != analytic {predicted}",
                    report.pass
                )));
            }
        }
        // Kernel-cache lookups are as deterministic as the op counts:
        // the reference path consults the cache once per pass (the
        // adder/splitter phasor tables), the optimized CPU path twice
        // (geometry planes + phasor tables) and the GPU path twice per
        // work group (each job's compute and commit phases look up
        // independently).
        let lookups = metrics.cache_hits + metrics.cache_misses;
        let expected_lookups = match self.backend {
            Backend::CpuReference => 1,
            Backend::CpuOptimized => 2,
            Backend::GpuPascal | Backend::GpuFiji => {
                2 * plan.work_groups(self.work_group_size).count() as u64
            }
        };
        if lookups != expected_lookups {
            return Err(IdgError::Internal(format!(
                "observability self-validation failed: {} cache lookups measured {lookups} \
                 != expected {expected_lookups}",
                report.pass
            )));
        }
        Ok(())
    }

    /// Predict visibilities from a model grid.
    ///
    /// The `visibilities` input only supplies the buffer shape (the
    /// degridder overwrites covered slots); pass the observed data or a
    /// zero buffer.
    pub fn degrid(
        &self,
        plan: &Plan,
        grid: &Grid<f32>,
        uvw: &[Uvw],
        aterms: &ATerms,
    ) -> Result<(Vec<Visibility<f32>>, ExecutionReport), IdgError> {
        let zeros = vec![Visibility::<f32>::zero(); self.obs.nr_visibilities()];
        let data = KernelData {
            obs: &self.obs,
            uvw,
            visibilities: &zeros,
            aterms,
            taper: &self.taper,
        };
        data.validate()?;
        check_finite_uvw(uvw)?;
        if grid
            .as_slice()
            .iter()
            .any(|c| !c.re.is_finite() || !c.im.is_finite())
        {
            return Err(IdgError::InvalidParameter(
                "model grid contains non-finite (NaN/Inf) samples".into(),
            ));
        }
        if grid.size() != self.obs.grid_size {
            return Err(IdgError::ShapeMismatch {
                what: "grid",
                expected: self.obs.grid_size,
                actual: grid.size(),
            });
        }

        match self.backend {
            Backend::CpuReference | Backend::CpuOptimized => {
                let mut subgrids = SubgridArray::new(plan.nr_subgrids(), self.obs.subgrid_size);
                let t0 = Instant::now();
                {
                    let _span = idg_obs::wall_span("splitter", "stage", None);
                    split_subgrids(grid, &plan.items, &mut subgrids, &self.cache)?;
                }
                let t1 = Instant::now();
                {
                    let _span = idg_obs::wall_span("subgrid_ifft", "stage", None);
                    fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
                }
                let t2 = Instant::now();
                let mut vis = vec![Visibility::<f32>::zero(); self.obs.nr_visibilities()];
                {
                    let _span = idg_obs::wall_span("degridder", "stage", None);
                    match self.backend {
                        Backend::CpuReference => {
                            degridder_reference(&data, &plan.items, &subgrids, &mut vis)?;
                        }
                        _ => {
                            degridder_cpu(
                                &data,
                                &plan.items,
                                &subgrids,
                                &mut vis,
                                Accuracy::Medium,
                                &self.cache,
                            )?;
                        }
                    }
                }
                let t3 = Instant::now();

                let counts = degridder_counts(&plan.items, self.obs.subgrid_size);
                Ok((
                    vis,
                    ExecutionReport {
                        backend: self.backend.label().into(),
                        pass: "degridding",
                        modeled: false,
                        kernel_seconds: (t3 - t2).as_secs_f64(),
                        fft_seconds: (t2 - t1).as_secs_f64(),
                        adder_seconds: (t1 - t0).as_secs_f64(),
                        transfer_seconds: 0.0,
                        total_seconds: (t3 - t0).as_secs_f64(),
                        counts,
                        device_energy_j: None,
                        host_energy_j: None,
                        nr_retries: 0,
                        backoff_seconds: 0.0,
                        fallback_jobs: Vec::new(),
                        fleet: None,
                        metrics: None,
                        stream: None,
                    },
                ))
            }
            Backend::GpuPascal | Backend::GpuFiji => {
                if let Some(config) = self.fleet.clone() {
                    let (mut vis, report) =
                        self.fleet_executor(&config)?.degrid(&data, plan, grid)?;
                    let fallback_jobs =
                        self.fallback_degrid(&data, plan, grid, &mut vis, &report.failed_jobs)?;
                    return Ok((
                        vis,
                        ExecutionReport {
                            backend: self.backend.label().into(),
                            pass: "degridding",
                            modeled: true,
                            kernel_seconds: report.kernel_seconds,
                            fft_seconds: report.fft_seconds,
                            adder_seconds: report.adder_seconds,
                            transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                            total_seconds: report.makespan,
                            counts: report.counts,
                            device_energy_j: Some(report.device_energy_j),
                            host_energy_j: Some(report.host_energy_j),
                            nr_retries: report.nr_retries,
                            backoff_seconds: report.backoff_seconds,
                            fallback_jobs,
                            fleet: Some(FleetStats {
                                nr_devices: config.nr_devices,
                                redispatched_jobs: report.redispatched_jobs,
                                degradation_steps: report.degradation_steps,
                                breaker_trips: report.breaker_trips,
                                per_device: report.per_device,
                            }),
                            metrics: None,
                            stream: None,
                        },
                    ));
                }
                let (mut vis, report) = self.executor()?.degrid(&data, plan, grid)?;
                let fallback_jobs =
                    self.fallback_degrid(&data, plan, grid, &mut vis, &report.failed_jobs)?;
                Ok((
                    vis,
                    ExecutionReport {
                        backend: self.backend.label().into(),
                        pass: "degridding",
                        modeled: true,
                        kernel_seconds: report.kernel_seconds,
                        fft_seconds: report.fft_seconds,
                        adder_seconds: report.adder_seconds,
                        transfer_seconds: report.htod_seconds + report.dtoh_seconds,
                        total_seconds: report.makespan,
                        counts: report.counts,
                        device_energy_j: Some(report.device_energy_j),
                        host_energy_j: Some(report.host_energy_j),
                        nr_retries: report.nr_retries,
                        backoff_seconds: report.backoff_seconds,
                        fallback_jobs,
                        fleet: None,
                        metrics: None,
                        stream: None,
                    },
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_telescope::{Dataset, GaussianBeam, Layout, SkyModel};

    fn dataset() -> Dataset {
        let obs = Observation::builder()
            .stations(6)
            .timesteps(32)
            .channels(4, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(16)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(6, 900.0, 71);
        let sky = SkyModel::random(&obs, 4, 0.6, 73);
        let beam = GaussianBeam::new(&obs, 0.8, 79);
        Dataset::simulate(obs, &layout, sky, &beam)
    }

    #[test]
    fn all_backends_produce_equivalent_grids() {
        let ds = dataset();
        let mut grids = Vec::new();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            let (grid, report) = proxy
                .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            assert!(grid.power() > 0.0, "{backend:?}");
            assert_eq!(report.pass, "gridding");
            assert_eq!(
                report.modeled,
                matches!(backend, Backend::GpuPascal | Backend::GpuFiji)
            );
            grids.push(grid);
        }
        let reference = &grids[0];
        let scale = reference
            .as_slice()
            .iter()
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for grid in &grids[1..] {
            for (a, b) in grid.as_slice().iter().zip(reference.as_slice()) {
                assert!((*a - *b).abs() / scale < 3e-3, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn all_backends_produce_equivalent_predictions() {
        let ds = dataset();
        // model grid: grid the data once
        let proxy0 = Proxy::new(Backend::CpuReference, ds.obs.clone()).unwrap();
        let plan = proxy0.plan(&ds.uvw).unwrap();
        let (grid, _) = proxy0
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        let mut results = Vec::new();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let (vis, report) = proxy.degrid(&plan, &grid, &ds.uvw, &ds.aterms).unwrap();
            assert_eq!(report.pass, "degridding");
            assert!(report.counts.visibilities > 0);
            results.push(vis);
        }
        let reference = &results[0];
        let scale = reference
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for vis in &results[1..] {
            for (a, b) in vis.iter().zip(reference.iter()) {
                for p in 0..4 {
                    assert!((a.pols[p] - b.pols[p]).abs() / scale < 3e-3);
                }
            }
        }
    }

    #[test]
    fn gpu_reports_contain_energy_and_pipeline_metrics() {
        let ds = dataset();
        let proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (_, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(report.device_energy_j.unwrap() > 0.0);
        assert!(report.host_energy_j.unwrap() > 0.0);
        assert!(report.mvis_per_sec() > 0.0);
        assert!(report.kernel_tops() > 0.0);
    }

    #[test]
    fn cpu_reports_are_measured() {
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (_, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(!report.modeled);
        assert!(report.total_seconds > 0.0);
        assert!(report.device_energy_j.is_none());
        let text = report.to_string();
        assert!(text.contains("cpu-optimized"));
    }

    #[test]
    fn degrid_rejects_wrong_grid_size() {
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let wrong = Grid::<f32>::new(64);
        assert!(matches!(
            proxy.degrid(&plan, &wrong, &ds.uvw, &ds.aterms),
            Err(IdgError::ShapeMismatch { what: "grid", .. })
        ));
    }

    #[test]
    fn non_finite_inputs_are_rejected_with_a_typed_error() {
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();

        let mut bad_vis = ds.visibilities.clone();
        bad_vis[7].pols[2].im = f32::NAN;
        assert!(matches!(
            proxy.grid(&plan, &ds.uvw, &bad_vis, &ds.aterms),
            Err(IdgError::InvalidParameter(msg)) if msg.contains("visibility 7")
        ));

        let mut bad_vis = ds.visibilities.clone();
        bad_vis[0].pols[0].re = f32::INFINITY;
        assert!(matches!(
            proxy.grid(&plan, &ds.uvw, &bad_vis, &ds.aterms),
            Err(IdgError::InvalidParameter(_))
        ));

        let mut bad_uvw = ds.uvw.clone();
        bad_uvw[3].w = f32::NAN;
        assert!(matches!(
            proxy.grid(&plan, &bad_uvw, &ds.visibilities, &ds.aterms),
            Err(IdgError::InvalidParameter(msg)) if msg.contains("uvw coordinate 3")
        ));
        let (grid, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(matches!(
            proxy.degrid(&plan, &grid, &bad_uvw, &ds.aterms),
            Err(IdgError::InvalidParameter(_))
        ));

        let mut bad_grid = grid.clone();
        bad_grid.as_mut_slice()[11].re = f32::NAN;
        assert!(matches!(
            proxy.degrid(&plan, &bad_grid, &ds.uvw, &ds.aterms),
            Err(IdgError::InvalidParameter(_))
        ));
    }

    #[test]
    fn persistent_device_faults_fall_back_to_the_cpu() {
        use idg_gpusim::{FaultKind, TargetedFault};
        use idg_types::FaultSite;

        let ds = dataset();
        let mut gold_proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        gold_proxy.work_group_size = 4;
        let plan = gold_proxy.plan(&ds.uvw).unwrap();
        let (gold, _) = gold_proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        // job 1 hits device OOM: persistent, so the proxy re-executes
        // its work items on the CPU reference kernels
        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 4;
        let proxy = proxy.with_faults(FaultConfig::targeted(vec![TargetedFault {
            job: 1,
            attempt: 0,
            site: FaultSite::Alloc,
            kind: FaultKind::OutOfMemory,
        }]));
        let (grid, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        assert_eq!(report.fallback_jobs.len(), 1);
        assert_eq!(report.fallback_jobs[0].job, 1);
        assert!(!report.fallback_jobs[0].error.is_transient());
        assert!(report.to_string().contains("re-executed on the CPU"));

        // the merged grid is numerically equivalent to the all-device
        // run (the fallback kernels are the f64 reference family)
        let scale = gold
            .as_slice()
            .iter()
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for (a, b) in grid.as_slice().iter().zip(gold.as_slice()) {
            assert!((*a - *b).abs() / scale < 3e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn disabled_fallback_surfaces_the_classified_error() {
        use idg_gpusim::{FaultKind, TargetedFault};
        use idg_types::FaultSite;

        let ds = dataset();
        let mut proxy = Proxy::new(Backend::GpuFiji, ds.obs.clone()).unwrap();
        proxy.work_group_size = 4;
        proxy.cpu_fallback = false;
        let proxy = proxy.with_faults(FaultConfig::targeted(vec![TargetedFault {
            job: 0,
            attempt: 0,
            site: FaultSite::Alloc,
            kind: FaultKind::OutOfMemory,
        }]));
        let plan = proxy.plan(&ds.uvw).unwrap();
        assert!(matches!(
            proxy.grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms),
            Err(IdgError::DeviceOutOfMemory { .. })
        ));
    }

    #[test]
    fn transient_faults_recover_without_fallback() {
        use idg_gpusim::{FaultKind, TargetedFault};
        use idg_types::FaultSite;

        let ds = dataset();
        let mut gold_proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        gold_proxy.work_group_size = 8;
        let plan = gold_proxy.plan(&ds.uvw).unwrap();
        let (gold, _) = gold_proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 8;
        let proxy = proxy.with_faults(FaultConfig::targeted(vec![TargetedFault {
            job: 0,
            attempt: 0,
            site: FaultSite::HtoD,
            kind: FaultKind::TransferCorruption,
        }]));
        let (grid, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(report.nr_retries, 1);
        assert!(report.backoff_seconds > 0.0);
        assert!(report.fallback_jobs.is_empty());
        assert_eq!(grid.as_slice(), gold.as_slice(), "recovery is exact");
    }

    #[test]
    fn observed_runs_self_validate_on_every_backend() {
        // The acceptance contract of the observability layer: an
        // instrumented pass yields measured counters exactly equal to
        // the analytic perf model (validate_measured errors otherwise),
        // and the Chrome export is valid JSON.
        let ds = dataset();
        for backend in Backend::all() {
            let proxy = Proxy::new(backend, ds.obs.clone()).unwrap();
            let plan = proxy.plan(&ds.uvw).unwrap();
            let (grid, report, trace) = proxy
                .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
                .unwrap();
            assert!(grid.power() > 0.0);
            let analytic = gridder_counts(&plan.items, ds.obs.subgrid_size);
            assert_eq!(report.effective_counts(), analytic, "{backend:?} gridding");
            assert_eq!(trace.metrics.pass, "gridding");
            assert_eq!(trace.metrics.planned_items, 0, "plan made outside session");
            let json = idg_obs::chrome_trace_json(&trace);
            idg_obs::validate_json(&json).unwrap_or_else(|e| panic!("{backend:?}: {e}"));

            let (_, dreport, dtrace) = proxy
                .degrid_observed(&plan, &grid, &ds.uvw, &ds.aterms)
                .unwrap();
            let danalytic = degridder_counts(&plan.items, ds.obs.subgrid_size);
            assert_eq!(
                dreport.effective_counts(),
                danalytic,
                "{backend:?} degridding"
            );
            assert_eq!(dtrace.metrics.subgrids_split, plan.nr_subgrids() as u64);
        }
    }

    #[test]
    fn observed_gpu_trace_has_one_stage_span_per_job() {
        let ds = dataset();
        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 8;
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (_, _, trace) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let nr_jobs = plan.work_groups(8).count();
        assert!(nr_jobs > 1);
        for job in 0..nr_jobs as u32 {
            let stages = trace
                .spans
                .iter()
                .filter(|s| s.cat == "stage" && s.job == Some(job))
                .count();
            assert_eq!(stages, 3, "HtoD/Compute/DtoH for job {job}");
        }
        // the session-level pass span is present exactly once
        assert_eq!(trace.spans.iter().filter(|s| s.cat == "pass").count(), 1);
    }

    #[test]
    fn unobserved_runs_attach_no_metrics() {
        // Backward compatibility: the default path never records.
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (_, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(report.metrics.is_none());
        assert_eq!(report.effective_counts(), report.counts);
    }

    #[test]
    fn observed_fallback_run_counts_fallback_jobs_and_skips_validation() {
        use idg_gpusim::{FaultKind, TargetedFault};
        use idg_types::FaultSite;

        let ds = dataset();
        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 4;
        let proxy = proxy.with_faults(FaultConfig::targeted(vec![TargetedFault {
            job: 1,
            attempt: 0,
            site: FaultSite::Alloc,
            kind: FaultKind::OutOfMemory,
        }]));
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (_, report, trace) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(report.fallback_jobs.len(), 1);
        assert_eq!(trace.metrics.fallback_jobs, 1);
        // every visibility was gridded exactly once in the end — the
        // failed job's by the CPU fallback, the rest on the device
        let analytic = gridder_counts(&plan.items, ds.obs.subgrid_size);
        assert_eq!(trace.metrics.gridder.visibilities, analytic.visibilities);
    }

    #[test]
    fn second_pass_reuses_the_kernel_cache_bit_identically() {
        // The tables built by the first pass serve every later one: the
        // second gridding pass reports only cache hits, and its grid is
        // bit-identical to the first (cached tables hold the very same
        // values the cold path computed).
        let ds = dataset();
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();

        let (first, _, trace1) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(trace1.metrics.cache_misses, 2, "cold pass builds tables");
        assert_eq!(trace1.metrics.cache_hits, 0);

        let (second, _, trace2) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(trace2.metrics.cache_hits, 2, "warm pass reuses tables");
        assert_eq!(trace2.metrics.cache_misses, 0);
        assert_eq!(first.as_slice(), second.as_slice());

        // the cache itself agrees with the per-session counters
        assert_eq!(proxy.kernel_cache().misses(), 2);
        assert_eq!(proxy.kernel_cache().hits(), 2);
    }

    #[test]
    fn gpu_passes_share_the_proxy_cache_across_executors() {
        // Each grid() call builds a fresh GpuExecutor, but the cache is
        // the proxy's: the second pass is all hits.
        let ds = dataset();
        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 8;
        let plan = proxy.plan(&ds.uvw).unwrap();
        let jobs = plan.work_groups(8).count() as u64;
        assert!(jobs > 1);

        let (first, _, trace1) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(trace1.metrics.cache_misses, 2, "one build per table kind");
        assert_eq!(trace1.metrics.cache_hits, 2 * jobs - 2);

        let (second, _, trace2) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(trace2.metrics.cache_misses, 0);
        assert_eq!(trace2.metrics.cache_hits, 2 * jobs);
        assert_eq!(first.as_slice(), second.as_slice());
    }

    #[test]
    fn clean_fleet_passes_match_the_single_device_backend_bit_identically() {
        let ds = dataset();
        let mut single = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        single.work_group_size = 4;
        let plan = single.plan(&ds.uvw).unwrap();
        let (gold_grid, gold_report) = single
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let (gold_vis, _) = single
            .degrid(&plan, &gold_grid, &ds.uvw, &ds.aterms)
            .unwrap();
        assert!(gold_report.fleet.is_none(), "single device: no fleet stats");

        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 4;
        let proxy = proxy.with_fleet(3);
        let (grid, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert_eq!(grid.as_slice(), gold_grid.as_slice(), "bit-identical merge");
        let stats = report.fleet.as_ref().unwrap();
        assert_eq!(stats.nr_devices, 3);
        assert_eq!(stats.per_device.len(), 3);
        assert_eq!(stats.breaker_trips, 0);
        assert_eq!(stats.redispatched_jobs, 0);
        assert!(
            report.total_seconds < gold_report.total_seconds,
            "three devices beat one: {} vs {}",
            report.total_seconds,
            gold_report.total_seconds
        );
        assert!(report.to_string().contains("3 devices"));

        let (vis, dreport) = proxy.degrid(&plan, &grid, &ds.uvw, &ds.aterms).unwrap();
        assert_eq!(vis, gold_vis, "fleet degridding matches one device");
        assert!(dreport.fleet.is_some());
    }

    #[test]
    fn observed_clean_fleet_runs_self_validate() {
        // A fault-free fleet keeps the per-job kernel/cache cadence of
        // the single-device path, so validate_measured stays armed.
        let ds = dataset();
        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 4;
        let proxy = proxy.with_fleet(2);
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (grid, report, trace) = proxy
            .grid_observed(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(grid.power() > 0.0);
        let analytic = gridder_counts(&plan.items, ds.obs.subgrid_size);
        assert_eq!(report.effective_counts(), analytic);
        assert_eq!(trace.metrics.breaker_trips, 0);
    }

    #[test]
    fn fleet_absorbs_a_lemon_device_without_cpu_fallback() {
        use idg_gpusim::BreakerConfig;

        let ds = dataset();
        let mut gold_proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        gold_proxy.work_group_size = 1;
        let plan = gold_proxy.plan(&ds.uvw).unwrap();
        let (gold, _) = gold_proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();

        let lemon = FaultConfig {
            seed: 8,
            transfer_corruption_rate: 0.25,
            kernel_fault_rate: 0.2,
            stall_rate: 0.1,
            ..FaultConfig::default()
        };
        let mut proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone()).unwrap();
        proxy.work_group_size = 1;
        let proxy = proxy.with_fleet_config(FleetConfig {
            nr_devices: 4,
            member_faults: vec![(1, lemon)],
            breaker: Some(BreakerConfig {
                window: 4,
                trip_unhealthy: 2,
                cooldown_seconds: 0.5,
                half_open_probes: 2,
            }),
        });
        let (grid, report) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        assert!(report.fallback_jobs.is_empty(), "peers absorb the lemon");
        let stats = report.fleet.as_ref().unwrap();
        assert!(stats.breaker_trips > 0, "the lemon trips its breaker");
        assert!(stats.redispatched_jobs > 0, "its jobs move to peers");
        assert_eq!(grid.as_slice(), gold.as_slice(), "still bit-identical");
    }

    #[test]
    fn fleet_member_fault_index_out_of_range_is_rejected() {
        let ds = dataset();
        let proxy = Proxy::new(Backend::GpuPascal, ds.obs.clone())
            .unwrap()
            .with_fleet_config(FleetConfig {
                nr_devices: 2,
                member_faults: vec![(5, FaultConfig::default())],
                breaker: None,
            });
        let plan = proxy.plan(&ds.uvw).unwrap();
        assert!(matches!(
            proxy.grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms),
            Err(IdgError::InvalidParameter(msg)) if msg.contains("out of range")
        ));
    }

    #[test]
    fn proxy_validates_observation() {
        let bad = Observation {
            nr_stations: 1,
            ..dataset().obs
        };
        assert!(Proxy::new(Backend::CpuOptimized, bad).is_err());
    }
}
