//! Per-pass execution reports.
//!
//! One [`ExecutionReport`] is produced per gridding/degridding pass,
//! carrying exactly the quantities the paper's evaluation section plots:
//! per-stage times (Fig. 9), visibility throughput (Fig. 10), operation
//! counts and intensities (Figs. 11–13) and energy (Figs. 14–15).

use idg_gpusim::{DeviceReport, JobFailure};
use idg_obs::MetricsSnapshot;
use idg_perf::OpCounts;
use idg_stream::StreamStats;

/// Aggregated multi-device statistics of a fleet pass.
///
/// Present on [`ExecutionReport`] only when the pass ran on a
/// [`idg_gpusim::FleetExecutor`] (see [`crate::Proxy::with_fleet`]);
/// `None` for CPU and single-device passes. The merged makespan is
/// the report's `total_seconds`; retries are aggregated into the
/// report's `nr_retries`.
#[derive(Clone, Debug)]
pub struct FleetStats {
    /// Number of member devices the pass was partitioned across.
    pub nr_devices: usize,
    /// Dispatches that did not land on the job's preferred device
    /// (breaker refusals, dead devices, post-failure re-queues).
    pub redispatched_jobs: usize,
    /// Degradation-ladder rungs taken across the fleet.
    pub degradation_steps: usize,
    /// Circuit-breaker trips summed over devices.
    pub breaker_trips: u64,
    /// Per-device breakdown (completion counts, retries, final
    /// degradation rung, pipeline makespan, liveness).
    pub per_device: Vec<DeviceReport>,
}

/// Timing and accounting of one gridding or degridding pass.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Back-end label ("cpu-optimized", "gpu-pascal", …).
    pub backend: String,
    /// "gridding" or "degridding".
    pub pass: &'static str,
    /// True when the times/energies are modeled (GPU device model)
    /// rather than wall-clock measured.
    pub modeled: bool,
    /// Main (gridder/degridder) kernel time, s.
    pub kernel_seconds: f64,
    /// Subgrid FFT time, s.
    pub fft_seconds: f64,
    /// Adder or splitter time, s.
    pub adder_seconds: f64,
    /// Host↔device transfer time, s (0 for CPU back-ends).
    pub transfer_seconds: f64,
    /// End-to-end pass time (with overlap for modeled back-ends), s.
    pub total_seconds: f64,
    /// Operation/byte counters of the main kernel.
    pub counts: OpCounts,
    /// Modeled device energy, J (modeled back-ends only).
    pub device_energy_j: Option<f64>,
    /// Modeled host energy while driving the device, J.
    pub host_energy_j: Option<f64>,
    /// Re-enqueued device attempts after transient faults (GPU
    /// back-ends with fault injection; 0 otherwise).
    pub nr_retries: usize,
    /// Modeled backoff delay inserted before retries, s.
    pub backoff_seconds: f64,
    /// Device jobs that failed persistently and were re-executed on
    /// the CPU reference backend (graceful degradation). Empty when the
    /// pass ran entirely on its selected back-end.
    pub fallback_jobs: Vec<JobFailure>,
    /// Multi-device aggregation when the pass ran on a fleet;
    /// `None` for CPU and single-device passes.
    pub fleet: Option<FleetStats>,
    /// Measured counter snapshot of the pass, present when it ran under
    /// an observability session ([`crate::Proxy::grid_observed`] /
    /// [`crate::Proxy::degrid_observed`]); `None` for plain passes, so
    /// existing consumers are unaffected.
    pub metrics: Option<MetricsSnapshot>,
    /// Chunked-ingestion summary when the pass was streamed
    /// ([`crate::Proxy::grid_streamed`]): chunk/worker counts and the
    /// scheduler's backpressure accounting. `None` for one-shot passes.
    pub stream: Option<StreamStats>,
}

impl ExecutionReport {
    /// Visibility throughput of the whole pass, MVisibilities/s —
    /// the Fig. 10 metric, computed from [`Self::effective_counts`]
    /// (measured counters when the pass was observed). 0 when the pass
    /// measured no elapsed time (empty plans and sub-tick passes must
    /// not report NaN/∞ rates).
    pub fn mvis_per_sec(&self) -> f64 {
        if self.total_seconds <= 0.0 {
            return 0.0;
        }
        self.effective_counts().visibilities as f64 / self.total_seconds / 1e6
    }

    /// Achieved main-kernel rate, TOps/s (paper operation definition) —
    /// the Fig. 11 y-axis, from [`Self::effective_counts`]. 0 when no
    /// kernel time was measured.
    pub fn kernel_tops(&self) -> f64 {
        if self.kernel_seconds <= 0.0 {
            return 0.0;
        }
        self.effective_counts().total_ops() as f64 / self.kernel_seconds / 1e12
    }

    /// Fraction of the pass spent in the main kernel — Fig. 9's
    /// ">93 %" observation. 0 when no stage measured any time.
    pub fn kernel_fraction(&self) -> f64 {
        let serial = self.serial_seconds();
        if serial <= 0.0 {
            return 0.0;
        }
        self.kernel_seconds / serial
    }

    /// Sum of all stage times (no overlap) — the Fig. 9 stacking basis.
    pub fn serial_seconds(&self) -> f64 {
        self.kernel_seconds + self.fft_seconds + self.adder_seconds + self.transfer_seconds
    }

    /// The pass's main-kernel operation counts, preferring *measured*
    /// counters (incremented at the kernel call sites during an
    /// observed run) over the analytic model. Falls back to the
    /// analytic [`ExecutionReport::counts`] when the pass was not
    /// observed — the two are asserted equal on fault-free observed
    /// runs, so consumers may use this unconditionally.
    pub fn effective_counts(&self) -> OpCounts {
        match &self.metrics {
            Some(m) => {
                let k = m.pass_kernel();
                OpCounts {
                    fmas: k.fmas,
                    sincos_pairs: k.sincos_pairs,
                    dram_bytes: k.dram_bytes,
                    shared_bytes: k.shared_bytes,
                    visibilities: k.visibilities,
                }
            }
            None => self.counts,
        }
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "[{}] {} ({})",
            self.backend,
            self.pass,
            if self.modeled { "modeled" } else { "measured" }
        )?;
        writeln!(
            f,
            "  kernel {:>9.4} s   fft {:>9.4} s   adder/splitter {:>9.4} s   transfer {:>9.4} s",
            self.kernel_seconds, self.fft_seconds, self.adder_seconds, self.transfer_seconds
        )?;
        writeln!(
            f,
            "  total  {:>9.4} s   {:>8.2} MVis/s   kernel {:>6.3} TOps/s   kernel share {:>5.1} %",
            self.total_seconds,
            self.mvis_per_sec(),
            self.kernel_tops(),
            100.0 * self.kernel_fraction()
        )?;
        if let (Some(d), Some(h)) = (self.device_energy_j, self.host_energy_j) {
            writeln!(f, "  energy {d:>9.2} J device + {h:>7.2} J host")?;
        }
        if self.nr_retries > 0 || !self.fallback_jobs.is_empty() {
            writeln!(
                f,
                "  faults {} retried attempts ({:.4} s backoff), {} jobs re-executed on the CPU",
                self.nr_retries,
                self.backoff_seconds,
                self.fallback_jobs.len()
            )?;
        }
        if let Some(s) = &self.stream {
            writeln!(
                f,
                "  stream {} ({} chunks on {} workers, window {}), peak inflight {}, {} backpressure waits",
                s.direction.label(),
                s.nr_chunks,
                s.nr_workers,
                s.max_inflight,
                s.inflight_max,
                s.backpressure_waits
            )?;
        }
        if let Some(fleet) = &self.fleet {
            writeln!(
                f,
                "  fleet  {} devices, {} redispatched jobs, {} degradation steps, {} breaker trips",
                fleet.nr_devices,
                fleet.redispatched_jobs,
                fleet.degradation_steps,
                fleet.breaker_trips
            )?;
            for d in &fleet.per_device {
                writeln!(
                    f,
                    "    {:<8} {:>3} jobs   {:>3} retries   rung {}   {:>9.4} s{}",
                    d.nickname,
                    d.jobs_completed,
                    d.nr_retries,
                    d.degradation_level,
                    d.makespan,
                    if d.alive { "" } else { "   (dead)" }
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            backend: "test".into(),
            pass: "gridding",
            modeled: true,
            kernel_seconds: 0.95,
            fft_seconds: 0.02,
            adder_seconds: 0.02,
            transfer_seconds: 0.01,
            total_seconds: 0.97,
            counts: OpCounts {
                fmas: 17_000_000,
                sincos_pairs: 1_000_000,
                dram_bytes: 1_000_000,
                shared_bytes: 44_000_000,
                visibilities: 10_000,
            },
            device_energy_j: Some(100.0),
            host_energy_j: Some(20.0),
            nr_retries: 0,
            backoff_seconds: 0.0,
            fallback_jobs: Vec::new(),
            fleet: None,
            metrics: None,
            stream: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.serial_seconds() - 1.0).abs() < 1e-12);
        assert!((r.kernel_fraction() - 0.95).abs() < 1e-12);
        assert!((r.mvis_per_sec() - 10_000.0 / 0.97 / 1e6).abs() < 1e-9);
        let tops = 36_000_000.0 / 0.95 / 1e12;
        assert!((r.kernel_tops() - tops).abs() < 1e-15);
    }

    #[test]
    fn zero_duration_pass_reports_zero_rates_not_nan() {
        // A pass can measure 0 s: empty plans, or stages faster than
        // the clock tick. The derived rates must stay finite (a NaN
        // here poisons every aggregated benchmark table downstream).
        let r = ExecutionReport {
            kernel_seconds: 0.0,
            fft_seconds: 0.0,
            adder_seconds: 0.0,
            transfer_seconds: 0.0,
            total_seconds: 0.0,
            ..report()
        };
        assert_eq!(r.mvis_per_sec(), 0.0);
        assert_eq!(r.kernel_tops(), 0.0);
        assert_eq!(r.kernel_fraction(), 0.0);
        assert!(r.to_string().contains("0.00 MVis/s"));
    }

    #[test]
    fn effective_counts_prefer_the_measured_snapshot() {
        let mut r = report();
        assert_eq!(r.effective_counts(), r.counts, "unobserved: analytic");
        let mut snap = MetricsSnapshot::new("gridding");
        snap.gridder.fmas = 34;
        snap.gridder.sincos_pairs = 2;
        snap.gridder.visibilities = 1;
        r.metrics = Some(snap);
        let eff = r.effective_counts();
        assert_eq!(eff.fmas, 34);
        assert_eq!(eff.sincos_pairs, 2);
        assert_eq!(eff.visibilities, 1);
    }

    #[test]
    fn display_reports_recovery_cost_only_when_present() {
        assert!(!report().to_string().contains("faults"));
        let r = ExecutionReport {
            nr_retries: 2,
            backoff_seconds: 0.003,
            ..report()
        };
        assert!(r.to_string().contains("2 retried attempts"));
    }

    #[test]
    fn display_reports_fleet_stats_only_for_fleet_passes() {
        assert!(!report().to_string().contains("fleet"));
        let r = ExecutionReport {
            fleet: Some(FleetStats {
                nr_devices: 4,
                redispatched_jobs: 3,
                degradation_steps: 1,
                breaker_trips: 2,
                per_device: vec![DeviceReport {
                    nickname: "PASCAL",
                    jobs_completed: 15,
                    nr_retries: 6,
                    breaker_trips: 2,
                    degradation_level: 1,
                    makespan: 0.5,
                    alive: false,
                }],
            }),
            ..report()
        };
        let text = r.to_string();
        assert!(text.contains("4 devices"));
        assert!(text.contains("2 breaker trips"));
        assert!(text.contains("(dead)"));
    }

    #[test]
    fn display_reports_stream_stats_only_for_streamed_passes() {
        assert!(!report().to_string().contains("stream"));
        let r = ExecutionReport {
            stream: Some(StreamStats {
                direction: idg_stream::StreamDirection::Degridding,
                nr_chunks: 4,
                nr_workers: 2,
                max_inflight: 2,
                inflight_max: 2,
                backpressure_waits: 2,
                completed_chunks: 4,
                failed_chunks: 0,
            }),
            ..report()
        };
        let text = r.to_string();
        assert!(text.contains("stream degridding"));
        assert!(text.contains("4 chunks on 2 workers"));
        assert!(text.contains("2 backpressure waits"));
    }

    #[test]
    fn display_includes_key_fields() {
        let text = report().to_string();
        assert!(text.contains("gridding"));
        assert!(text.contains("modeled"));
        assert!(text.contains("MVis/s"));
        assert!(text.contains("energy"));
    }
}
