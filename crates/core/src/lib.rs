//! # idg — Image-Domain Gridding
//!
//! The public façade of the IDG reproduction: a [`Proxy`] that runs
//! complete gridding and degridding passes on a chosen back-end and
//! reports per-stage execution metrics in the shape the paper's
//! evaluation uses.
//!
//! ```no_run
//! use idg::{Backend, Proxy};
//! use idg_telescope::Dataset;
//!
//! // a scaled-down version of the paper's SKA1-low benchmark set
//! let ds = Dataset::representative(10, 42).unwrap();
//! let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
//! let plan = proxy.plan(&ds.uvw).unwrap();
//! let (grid, report) = proxy
//!     .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
//!     .unwrap();
//! println!("{report}");
//! assert!(grid.power() > 0.0);
//! ```
//!
//! ## Back-ends
//!
//! | back-end | execution | timing |
//! |---|---|---|
//! | [`Backend::CpuReference`] | scalar f64 gold kernels | measured |
//! | [`Backend::CpuOptimized`] | Sec. V-B optimized kernels (rayon) | measured |
//! | [`Backend::GpuPascal`] | Sec. V-C mapping on the GTX 1080 device model | modeled |
//! | [`Backend::GpuFiji`] | Sec. V-C mapping on the Fury X device model | modeled |
//!
//! All back-ends produce numerically equivalent grids/visibilities
//! (verified against each other in this crate's tests); the modeled
//! back-ends additionally report Table-I-derived times and energies,
//! which is the substitution DESIGN.md documents.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod proxy;
pub mod report;
pub mod stages;

pub use proxy::{Backend, FleetConfig, Proxy, StreamConfig};
pub use report::{ExecutionReport, FleetStats};
pub use stages::{DegridStages, GridStages};

// Re-export the workspace vocabulary so applications can depend on
// `idg` alone.
pub use idg_fft as fft;
pub use idg_gpusim as gpusim;
pub use idg_kernels as kernels;
pub use idg_math as math;
pub use idg_obs as obs;
pub use idg_perf as perf;
pub use idg_plan as plan;
pub use idg_stream as stream;
pub use idg_telescope as telescope;
pub use idg_types as types;

pub use idg_plan::{Plan, WorkItem};
pub use idg_stream::{ChunkPolicy, CommitLedger, StreamDirection, StreamStats};
pub use idg_types::{Cf32, Complex, Grid, IdgError, Jones, Observation, Uvw, Visibility};
