//! Plan statistics.
//!
//! Performance of IDG "is data dependent (the uvw-coordinates determine
//! the subgrid configuration and, hence, the computational intensity
//! within the gridder and degridder kernels …)" — Sec. VI-A. These
//! statistics quantify that configuration: they feed the operation
//! counters of `idg-perf` and the workload summaries printed by the
//! benchmark harness.

use crate::Plan;

/// Aggregate statistics of an execution plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanStats {
    /// Total number of subgrids.
    pub nr_subgrids: usize,
    /// Total visibilities covered.
    pub nr_visibilities: usize,
    /// Visibilities dropped as unrepresentable.
    pub skipped_visibilities: usize,
    /// Mean time steps per subgrid.
    pub mean_timesteps_per_subgrid: f64,
    /// Minimum time steps in any subgrid.
    pub min_timesteps: usize,
    /// Maximum time steps in any subgrid.
    pub max_timesteps: usize,
    /// Mean visibilities per subgrid.
    pub mean_visibilities_per_subgrid: f64,
    /// Number of distinct W-planes in use.
    pub nr_w_planes: usize,
}

impl PlanStats {
    /// Compute the statistics of `plan`.
    pub fn from_plan(plan: &Plan) -> Self {
        let n = plan.items.len();
        if n == 0 {
            return Self {
                nr_subgrids: 0,
                nr_visibilities: 0,
                skipped_visibilities: plan.skipped_visibilities,
                mean_timesteps_per_subgrid: 0.0,
                min_timesteps: 0,
                max_timesteps: 0,
                mean_visibilities_per_subgrid: 0.0,
                nr_w_planes: 0,
            };
        }
        let total_t: usize = plan.items.iter().map(|i| i.nr_timesteps).sum();
        let min_t = plan.items.iter().map(|i| i.nr_timesteps).min().unwrap_or(0);
        let max_t = plan.items.iter().map(|i| i.nr_timesteps).max().unwrap_or(0);
        let nr_vis = plan.nr_gridded_visibilities();
        let planes: std::collections::HashSet<i32> = plan.items.iter().map(|i| i.w_plane).collect();
        Self {
            nr_subgrids: n,
            nr_visibilities: nr_vis,
            skipped_visibilities: plan.skipped_visibilities,
            mean_timesteps_per_subgrid: total_t as f64 / n as f64,
            min_timesteps: min_t,
            max_timesteps: max_t,
            mean_visibilities_per_subgrid: nr_vis as f64 / n as f64,
            nr_w_planes: planes.len(),
        }
    }
}

impl std::fmt::Display for PlanStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "subgrids:                {}", self.nr_subgrids)?;
        writeln!(f, "visibilities (gridded):  {}", self.nr_visibilities)?;
        writeln!(f, "visibilities (skipped):  {}", self.skipped_visibilities)?;
        writeln!(
            f,
            "timesteps per subgrid:   mean {:.1}, min {}, max {}",
            self.mean_timesteps_per_subgrid, self.min_timesteps, self.max_timesteps
        )?;
        writeln!(
            f,
            "visibilities per subgrid: mean {:.1}",
            self.mean_visibilities_per_subgrid
        )?;
        write!(f, "w-planes in use:         {}", self.nr_w_planes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_telescope::{Layout, UvwGenerator};
    use idg_types::Observation;

    #[test]
    fn stats_are_consistent() {
        let obs = Observation::builder()
            .stations(8)
            .timesteps(64)
            .channels(4, 150e6, 2e6)
            .grid_size(512)
            .subgrid_size(24)
            .build()
            .unwrap();
        let layout = Layout::uniform(8, 2000.0, 1);
        let uvw = UvwGenerator::representative(&layout, 1.0).generate(&obs);
        let plan = Plan::create(&obs, &uvw).unwrap();
        let stats = plan.stats();
        assert_eq!(stats.nr_subgrids, plan.nr_subgrids());
        assert_eq!(stats.nr_visibilities, plan.nr_gridded_visibilities());
        assert!(stats.min_timesteps >= 1);
        assert!(stats.max_timesteps <= obs.max_timesteps_per_subgrid);
        assert!(stats.mean_timesteps_per_subgrid >= stats.min_timesteps as f64);
        assert!(stats.mean_timesteps_per_subgrid <= stats.max_timesteps as f64);
        assert_eq!(stats.nr_w_planes, 1, "w-stacking disabled → single plane");
        let text = stats.to_string();
        assert!(text.contains("subgrids"));
    }

    #[test]
    fn empty_plan_stats() {
        let plan = Plan {
            items: vec![],
            skipped_visibilities: 42,
            subgrid_size: 24,
            grid_size: 512,
        };
        let stats = plan.stats();
        assert_eq!(stats.nr_subgrids, 0);
        assert_eq!(stats.skipped_visibilities, 42);
        assert_eq!(stats.mean_visibilities_per_subgrid, 0.0);
    }
}
