//! # idg-plan — the execution plan
//!
//! Before any kernel runs, IDG decides where the subgrids sit on the grid
//! and which visibilities each one covers (Sec. V-A of the paper). The
//! partitioning is greedy: walking each baseline in time order, time steps
//! (each carrying all `C̃` channels) are accumulated into the current
//! subgrid for as long as the visibilities *and the support of their
//! A/W-projection convolution kernels* fit inside an `Ñ × Ñ` box; when
//! they no longer fit — or `T̃_max` is reached, or the A-term interval or
//! W-plane changes — the subgrid is finalized and a new one starts.
//!
//! The output is a list of [`WorkItem`]s (subgrid metadata). Grouping
//! `m ≤ n` work items yields the *work groups* in which the kernels
//! process them (Fig. 6).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod stats;

pub use stats::PlanStats;

use idg_types::{Baseline, IdgError, Observation, Uvw, SPEED_OF_LIGHT};

/// Metadata of one subgrid and the visibility block it covers — the
/// paper's *work item* (Fig. 6, level 3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Index into the canonical baseline list.
    pub baseline_index: usize,
    /// The station pair.
    pub baseline: Baseline,
    /// First time step covered.
    pub time_offset: usize,
    /// Number of time steps covered (each with this item's channels).
    pub nr_timesteps: usize,
    /// First channel covered. Long baselines smear across frequency (uv
    /// scales with ν), so the planner may split the band into groups —
    /// the "C̃ channels that can be covered by an Ñ × Ñ subgrid" of
    /// Sec. V-A.
    pub channel_offset: usize,
    /// Number of channels covered (`C̃`).
    pub nr_channels: usize,
    /// A-term interval all covered time steps fall into.
    pub aterm_index: usize,
    /// Grid x-pixel of the subgrid's top-left corner.
    pub coord_x: usize,
    /// Grid y-pixel of the subgrid's top-left corner.
    pub coord_y: usize,
    /// W-plane index (0 when W-stacking is disabled).
    pub w_plane: i32,
}

impl WorkItem {
    /// Number of visibilities covered by this work item.
    #[inline]
    pub fn nr_visibilities(&self) -> usize {
        self.nr_timesteps * self.nr_channels
    }
}

/// The full execution plan for one observation.
#[derive(Clone, Debug)]
pub struct Plan {
    /// All work items, ordered by baseline then time.
    pub items: Vec<WorkItem>,
    /// Number of visibilities that could not be covered (uv outside the
    /// representable grid area); these are dropped, mirroring how real
    /// imagers flag out-of-range samples.
    pub skipped_visibilities: usize,
    subgrid_size: usize,
    grid_size: usize,
}

/// Bounding box accumulator in fractional pixel coordinates.
#[derive(Copy, Clone, Debug)]
struct BBox {
    min_x: f64,
    max_x: f64,
    min_y: f64,
    max_y: f64,
}

impl BBox {
    fn empty() -> Self {
        Self {
            min_x: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            min_y: f64::INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    fn include(&mut self, x: f64, y: f64) {
        self.min_x = self.min_x.min(x);
        self.max_x = self.max_x.max(x);
        self.min_y = self.min_y.min(y);
        self.max_y = self.max_y.max(y);
    }

    fn merged(&self, other: &BBox) -> BBox {
        BBox {
            min_x: self.min_x.min(other.min_x),
            max_x: self.max_x.max(other.max_x),
            min_y: self.min_y.min(other.min_y),
            max_y: self.max_y.max(other.max_y),
        }
    }
}

/// Per-baseline uv extents over a *whole* observation: the maximum
/// `hypot(u, v)` baseline length (meters) seen at any time step.
///
/// The planner's channel-group split depends on this maximum — a
/// baseline's frequency smear budget is a function of its longest uv
/// excursion — so chunked (windowed) planning must evaluate it over
/// the full observation, not per chunk, or the streamed plan would
/// group channels differently from the one-shot plan and break the
/// bit-identity contract. Compute the extents once, then hand the
/// same value to every [`Plan::create_windowed`] call.
#[derive(Clone, Debug)]
pub struct UvExtents {
    max_len_m: Vec<f64>,
}

impl UvExtents {
    /// Scan the full uvw buffer (`[baseline-major][timestep]` layout,
    /// meters) and record each baseline's maximum uv length.
    pub fn compute(obs: &Observation, uvw: &[Uvw]) -> Result<UvExtents, IdgError> {
        let nr_time = obs.nr_timesteps;
        let expected = obs.nr_baselines() * nr_time;
        if uvw.len() != expected {
            return Err(IdgError::ShapeMismatch {
                what: "uvw",
                expected,
                actual: uvw.len(),
            });
        }
        let max_len_m = (0..obs.nr_baselines())
            .map(|bl_idx| {
                (0..nr_time)
                    .map(|t| uvw[bl_idx * nr_time + t])
                    .map(|u| (u.u as f64).hypot(u.v as f64))
                    .fold(0.0f64, f64::max)
            })
            .collect();
        Ok(UvExtents { max_len_m })
    }

    /// Maximum uv length of one baseline, meters.
    pub fn max_len_m(&self, baseline_index: usize) -> f64 {
        self.max_len_m[baseline_index]
    }

    /// Number of baselines covered.
    pub fn nr_baselines(&self) -> usize {
        self.max_len_m.len()
    }
}

impl Plan {
    /// Build the execution plan for `obs` given uvw coordinates in
    /// `[baseline-major][timestep]` layout, meters.
    pub fn create(obs: &Observation, uvw: &[Uvw]) -> Result<Plan, IdgError> {
        let extents = UvExtents::compute(obs, uvw)?;
        Self::create_windowed(obs, uvw, &extents, 0..obs.nr_timesteps)
    }

    /// Build the plan for one time window `[window.start, window.end)`
    /// of the observation — the chunk-local planning entry point of
    /// the streaming front-end (`idg-stream`).
    ///
    /// `uvw` is still the *full* buffer (work items carry global time
    /// offsets), and `extents` must come from [`UvExtents::compute`]
    /// over the full observation so channel groups match the one-shot
    /// plan. When the window boundaries are aligned to
    /// `aterm_interval` multiples, the concatenation of the windowed
    /// plans (sorted by baseline, channel group, time) is *exactly*
    /// the one-shot plan: the accumulation loop never crosses an
    /// A-term boundary, so a window starting on one reproduces the
    /// same greedy decisions the full run makes there.
    pub fn create_windowed(
        obs: &Observation,
        uvw: &[Uvw],
        extents: &UvExtents,
        window: std::ops::Range<usize>,
    ) -> Result<Plan, IdgError> {
        let _span = idg_obs::wall_span("plan", "stage", None);
        let nr_time = obs.nr_timesteps;
        let expected = obs.nr_baselines() * nr_time;
        if uvw.len() != expected {
            return Err(IdgError::ShapeMismatch {
                what: "uvw",
                expected,
                actual: uvw.len(),
            });
        }
        if extents.nr_baselines() != obs.nr_baselines() {
            return Err(IdgError::ShapeMismatch {
                what: "uv extents",
                expected: obs.nr_baselines(),
                actual: extents.nr_baselines(),
            });
        }
        if window.start > window.end || window.end > nr_time {
            return Err(IdgError::InvalidParameter(format!(
                "plan window {}..{} outside observation 0..{nr_time}",
                window.start, window.end
            )));
        }

        let baselines = obs.baselines();
        let nr_chan = obs.nr_channels();
        let subgrid = obs.subgrid_size;
        let grid = obs.grid_size;
        let kernel = obs.kernel_size;
        let max_t = obs.max_timesteps_per_subgrid;
        // pixels per wavelength along u and v
        let f_min = obs
            .frequencies
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let f_max = obs.frequencies.iter().copied().fold(0.0f64, f64::max);

        let mut items = Vec::new();
        let mut skipped = 0usize;

        // Per-timestep bounding box for a channel group: evaluating the
        // pixel position at the group's two extreme frequencies suffices
        // because the mapping is linear in frequency.
        let timestep_bbox = |uvw_m: Uvw, f_lo: f64, f_hi: f64| -> BBox {
            let mut bb = BBox::empty();
            for f in [f_lo, f_hi] {
                let scale = f / SPEED_OF_LIGHT;
                let x = obs.uv_to_pixel(uvw_m.u as f64 * scale);
                let y = obs.uv_to_pixel(uvw_m.v as f64 * scale);
                bb.include(x, y);
            }
            bb
        };

        // Integer subgrid origin containing the kernel-padded interval
        // `[min − K/2, max + K/2]` along one axis: the largest
        // admissible origin is `⌊min − K/2⌋`, the smallest is
        // `⌈max + K/2 − Ñ⌉`. A float span test (`max − min + K ≤ Ñ`)
        // alone is NOT sufficient — with an odd kernel the padded box
        // has half-integer ends, so a box that fills the subgrid
        // exactly admits no integer origin and its kernel support
        // would be clipped at the subgrid border.
        let place_axis = |lo_px: f64, hi_px: f64| -> Option<i64> {
            // Absorbs the f32 uvw → f64 pixel conversion noise
            // (≈ |px − G/2| · 2⁻²⁴, up to ~1e-4 px on large grids)
            // while staying far below the half-pixel clipping this
            // placement exists to prevent.
            const EPS: f64 = 1e-3;
            let margin = kernel as f64 / 2.0;
            let lo = (hi_px + margin - subgrid as f64 - EPS).ceil() as i64;
            let hi = (lo_px - margin + EPS).floor() as i64;
            if lo > hi {
                return None;
            }
            // center the subgrid on the covered interval, within bounds
            let ideal = (0.5 * (lo_px + hi_px)).round() as i64 - subgrid as i64 / 2;
            Some(ideal.clamp(lo, hi))
        };
        let place_box = |bb: &BBox| -> Option<(i64, i64)> {
            Some((
                place_axis(bb.min_x, bb.max_x)?,
                place_axis(bb.min_y, bb.max_y)?,
            ))
        };

        let w_plane_of = |uvw_m: Uvw| -> i32 {
            if obs.w_step > 0.0 {
                // w at the band center, in wavelengths
                let w_lambda = uvw_m.w as f64 * (0.5 * (f_min + f_max)) / SPEED_OF_LIGHT;
                (w_lambda / obs.w_step).round() as i32
            } else {
                0
            }
        };

        for (bl_idx, bl) in baselines.iter().enumerate() {
            // Long baselines smear across frequency (the uv position
            // scales with ν): split the band into groups whose smear
            // uses at most half the post-kernel subgrid budget, leaving
            // the rest for time accumulation (Sec. V-A: "having C̃
            // channels that can be covered by an Ñ × Ñ subgrid"). The
            // maximum comes from the whole-observation extents so every
            // window of the same observation groups channels alike.
            let max_len_m = extents.max_len_m(bl_idx);
            let budget_px = (subgrid - kernel) as f64 / 2.0;
            // smear over Δf: max_len·Δf/c·image_size pixels
            let df_budget = if max_len_m > 0.0 {
                budget_px * SPEED_OF_LIGHT / (max_len_m * obs.image_size)
            } else {
                f64::INFINITY
            };
            let mut channel_groups: Vec<(usize, usize)> = Vec::new();
            let mut c0 = 0usize;
            while c0 < nr_chan {
                let mut c1 = c0 + 1;
                while c1 < nr_chan && obs.frequencies[c1] - obs.frequencies[c0] <= df_budget {
                    c1 += 1;
                }
                channel_groups.push((c0, c1 - c0));
                c0 = c1;
            }

            for &(chan_offset, chan_count) in &channel_groups {
                let f_lo = obs.frequencies[chan_offset];
                let f_hi = obs.frequencies[chan_offset + chan_count - 1];
                let mut t = window.start;
                while t < window.end {
                    let t0 = t;
                    let aterm = obs.aterm_index(t0);
                    let wp = w_plane_of(uvw[bl_idx * nr_time + t0]);
                    let mut bbox = timestep_bbox(uvw[bl_idx * nr_time + t0], f_lo, f_hi);

                    // A single time step that cannot fit is unrepresentable.
                    if place_box(&bbox).is_none() {
                        skipped += chan_count;
                        t += 1;
                        continue;
                    }

                    let mut t_end = t0 + 1;
                    while t_end < window.end
                        && t_end - t0 < max_t
                        && obs.aterm_index(t_end) == aterm
                        && w_plane_of(uvw[bl_idx * nr_time + t_end]) == wp
                    {
                        let cand =
                            bbox.merged(&timestep_bbox(uvw[bl_idx * nr_time + t_end], f_lo, f_hi));
                        if place_box(&cand).is_none() {
                            break;
                        }
                        bbox = cand;
                        t_end += 1;
                    }

                    // the accumulation loop only admits placeable
                    // boxes, so None here is a planner bug — surface
                    // it as a typed error rather than tearing down the
                    // whole process mid-observation
                    let Some((coord_x, coord_y)) = place_box(&bbox) else {
                        return Err(IdgError::Internal(
                            "planner invariant violated: accumulated bounding box became \
                             unplaceable"
                                .into(),
                        ));
                    };

                    if coord_x < 0
                        || coord_y < 0
                        || coord_x + subgrid as i64 > grid as i64
                        || coord_y + subgrid as i64 > grid as i64
                    {
                        skipped += (t_end - t0) * chan_count;
                    } else {
                        items.push(WorkItem {
                            baseline_index: bl_idx,
                            baseline: *bl,
                            time_offset: t0,
                            nr_timesteps: t_end - t0,
                            channel_offset: chan_offset,
                            nr_channels: chan_count,
                            aterm_index: aterm,
                            coord_x: coord_x as usize,
                            coord_y: coord_y as usize,
                            w_plane: wp,
                        });
                    }
                    t = t_end;
                }
            }
        }

        idg_obs::add_planned_items(items.len() as u64);
        idg_obs::add_skipped_visibilities(skipped as u64);
        Ok(Plan {
            items,
            skipped_visibilities: skipped,
            subgrid_size: subgrid,
            grid_size: grid,
        })
    }

    /// Number of subgrids (work items).
    pub fn nr_subgrids(&self) -> usize {
        self.items.len()
    }

    /// Number of visibilities covered by the plan.
    pub fn nr_gridded_visibilities(&self) -> usize {
        self.items.iter().map(|i| i.nr_visibilities()).sum()
    }

    /// Subgrid edge length the plan was built for.
    pub fn subgrid_size(&self) -> usize {
        self.subgrid_size
    }

    /// Grid edge length the plan was built for.
    pub fn grid_size(&self) -> usize {
        self.grid_size
    }

    /// Split the work into groups of at most `m` work items (Fig. 6,
    /// level 2) — the unit in which kernels are launched and buffers are
    /// transferred to the (simulated) device.
    pub fn work_groups(&self, m: usize) -> impl Iterator<Item = &[WorkItem]> {
        assert!(m > 0, "work group size must be positive");
        self.items.chunks(m)
    }

    /// Summary statistics (subgrid occupancy, per-baseline counts …).
    pub fn stats(&self) -> PlanStats {
        PlanStats::from_plan(self)
    }

    /// The sorted list of W-plane indices in use (a single `0` when
    /// W-stacking is disabled).
    pub fn w_planes(&self) -> Vec<i32> {
        let mut planes: Vec<i32> = self.items.iter().map(|i| i.w_plane).collect();
        planes.sort_unstable();
        planes.dedup();
        planes
    }

    /// The sub-plan containing only the work items of one W-plane —
    /// W-stacking grids each plane separately and merges in the image
    /// domain (Sec. III / VI-E).
    pub fn subset_for_w_plane(&self, w_plane: i32) -> Plan {
        Plan {
            items: self
                .items
                .iter()
                .filter(|i| i.w_plane == w_plane)
                .copied()
                .collect(),
            skipped_visibilities: 0,
            subgrid_size: self.subgrid_size,
            grid_size: self.grid_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_telescope::{Layout, UvwGenerator};

    fn obs_small() -> Observation {
        Observation::builder()
            .stations(8)
            .timesteps(64)
            .channels(4, 150e6, 2e6)
            .grid_size(512)
            .subgrid_size(24)
            .kernel_size(9)
            .aterm_interval(16)
            .max_timesteps_per_subgrid(32)
            .build()
            .unwrap()
    }

    fn uvw_for(obs: &Observation, radius: f64, seed: u64) -> Vec<Uvw> {
        let layout = Layout::uniform(obs.nr_stations, radius, seed);
        UvwGenerator::representative(&layout, obs.integration_time).generate(obs)
    }

    #[test]
    fn covers_all_visibilities_when_in_range() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 2_000.0, 1);
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert_eq!(plan.skipped_visibilities, 0);
        assert_eq!(
            plan.nr_gridded_visibilities(),
            obs.nr_visibilities(),
            "greedy cover must account for every visibility"
        );
    }

    #[test]
    fn items_partition_time_and_channels_per_baseline() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 2_000.0, 2);
        let plan = Plan::create(&obs, &uvw).unwrap();
        for bl_idx in 0..obs.nr_baselines() {
            // channel groups tile the band
            let mut groups: Vec<(usize, usize)> = plan
                .items
                .iter()
                .filter(|i| i.baseline_index == bl_idx)
                .map(|i| (i.channel_offset, i.nr_channels))
                .collect();
            groups.sort();
            groups.dedup();
            let mut c = 0usize;
            for &(c0, nc) in &groups {
                assert_eq!(c0, c, "channel gap in baseline {bl_idx}");
                c += nc;
            }
            assert_eq!(c, obs.nr_channels());

            // within each channel group, time is partitioned
            for &(c0, _) in &groups {
                let mut t = 0usize;
                for item in plan
                    .items
                    .iter()
                    .filter(|i| i.baseline_index == bl_idx && i.channel_offset == c0)
                {
                    assert_eq!(item.time_offset, t, "gap or overlap in baseline {bl_idx}");
                    t += item.nr_timesteps;
                }
                assert_eq!(t, obs.nr_timesteps);
            }
        }
    }

    #[test]
    fn subgrids_fit_within_grid() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 3_000.0, 3);
        let plan = Plan::create(&obs, &uvw).unwrap();
        for item in &plan.items {
            assert!(item.coord_x + obs.subgrid_size <= obs.grid_size);
            assert!(item.coord_y + obs.subgrid_size <= obs.grid_size);
        }
    }

    #[test]
    fn visibilities_fall_inside_their_subgrid() {
        // The defining invariant: every covered visibility, at every
        // channel, plus kernel margin, lies inside its subgrid box.
        let obs = obs_small();
        let uvw = uvw_for(&obs, 2_500.0, 4);
        let plan = Plan::create(&obs, &uvw).unwrap();
        let margin = obs.kernel_size as f64 / 2.0;
        for item in &plan.items {
            for dt in 0..item.nr_timesteps {
                let t = item.time_offset + dt;
                let uvw_m = uvw[item.baseline_index * obs.nr_timesteps + t];
                for f in
                    &obs.frequencies[item.channel_offset..item.channel_offset + item.nr_channels]
                {
                    let scale = f / SPEED_OF_LIGHT;
                    let x = obs.uv_to_pixel(uvw_m.u as f64 * scale);
                    let y = obs.uv_to_pixel(uvw_m.v as f64 * scale);
                    assert!(
                        x - margin >= item.coord_x as f64 - 1e-6
                            && x + margin <= (item.coord_x + obs.subgrid_size) as f64 + 1e-6,
                        "x={x} outside [{}, {}] margin {margin}",
                        item.coord_x,
                        item.coord_x + obs.subgrid_size
                    );
                    assert!(
                        y - margin >= item.coord_y as f64 - 1e-6
                            && y + margin <= (item.coord_y + obs.subgrid_size) as f64 + 1e-6
                    );
                }
            }
        }
    }

    #[test]
    fn respects_max_timesteps() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 500.0, 5); // short baselines: everything fits
        let plan = Plan::create(&obs, &uvw).unwrap();
        for item in &plan.items {
            assert!(item.nr_timesteps <= obs.max_timesteps_per_subgrid);
        }
    }

    #[test]
    fn respects_aterm_boundaries() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 500.0, 6);
        let plan = Plan::create(&obs, &uvw).unwrap();
        for item in &plan.items {
            let first = obs.aterm_index(item.time_offset);
            let last = obs.aterm_index(item.time_offset + item.nr_timesteps - 1);
            assert_eq!(first, last, "work item spans A-term intervals");
            assert_eq!(item.aterm_index, first);
        }
    }

    #[test]
    fn out_of_range_visibilities_are_skipped() {
        // A huge layout at this FoV pushes uv beyond the grid.
        let obs = obs_small();
        let uvw = uvw_for(&obs, 500_000.0, 7);
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert!(plan.skipped_visibilities > 0);
        assert_eq!(
            plan.nr_gridded_visibilities() + plan.skipped_visibilities,
            obs.nr_visibilities()
        );
    }

    #[test]
    fn work_groups_chunk_items() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 2_000.0, 8);
        let plan = Plan::create(&obs, &uvw).unwrap();
        let m = 7;
        let groups: Vec<_> = plan.work_groups(m).collect();
        assert_eq!(
            groups.iter().map(|g| g.len()).sum::<usize>(),
            plan.nr_subgrids()
        );
        for g in &groups[..groups.len() - 1] {
            assert_eq!(g.len(), m);
        }
        assert!(groups.last().unwrap().len() <= m);
    }

    #[test]
    fn wstacking_splits_on_w_plane() {
        let obs = Observation::builder()
            .stations(6)
            .timesteps(64)
            .channels(4, 150e6, 2e6)
            .grid_size(512)
            .subgrid_size(24)
            .aterm_interval(64)
            .w_step(20.0)
            .build()
            .unwrap();
        let uvw = uvw_for(&obs, 3_000.0, 9);
        let plan = Plan::create(&obs, &uvw).unwrap();
        let f_mid = 0.5 * (obs.frequencies[0] + obs.frequencies[obs.nr_channels() - 1]);
        for item in &plan.items {
            for dt in 0..item.nr_timesteps {
                let t = item.time_offset + dt;
                let w_l = uvw[item.baseline_index * obs.nr_timesteps + t].w as f64 * f_mid
                    / SPEED_OF_LIGHT;
                assert_eq!((w_l / obs.w_step).round() as i32, item.w_plane);
            }
        }
        // with w-stacking enabled there should be more than one plane in use
        let planes: std::collections::HashSet<i32> = plan.items.iter().map(|i| i.w_plane).collect();
        assert!(planes.len() > 1, "expected multiple w-planes");
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let obs = obs_small();
        let uvw = vec![Uvw::default(); 3];
        assert!(matches!(
            Plan::create(&obs, &uvw),
            Err(IdgError::ShapeMismatch { what: "uvw", .. })
        ));
    }

    /// Build the uvw buffer (1 baseline) whose visibilities sit at the
    /// given fractional pixel positions at the observation's single
    /// frequency.
    fn uvw_at_pixels(obs: &Observation, pixels: &[(f64, f64)]) -> Vec<Uvw> {
        assert_eq!(obs.nr_channels(), 1, "pixel placement needs one channel");
        assert_eq!(pixels.len(), obs.nr_timesteps);
        let scale = obs.frequencies[0] / SPEED_OF_LIGHT;
        pixels
            .iter()
            .map(|&(x, y)| Uvw {
                u: (obs.pixel_to_uv(x) / scale) as f32,
                v: (obs.pixel_to_uv(y) / scale) as f32,
                w: 0.0,
            })
            .collect()
    }

    fn obs_single_channel(timesteps: usize) -> Observation {
        Observation::builder()
            .stations(2)
            .timesteps(timesteps)
            .channels(1, 150e6, 2e6)
            .grid_size(128)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(timesteps)
            .image_size(0.04)
            .build()
            .unwrap()
    }

    /// Strict containment: every covered visibility's kernel-padded
    /// position lies inside its subgrid with NO tolerance.
    fn assert_strict_containment(obs: &Observation, uvw: &[Uvw], plan: &Plan) {
        let margin = obs.kernel_size as f64 / 2.0;
        for item in &plan.items {
            for dt in 0..item.nr_timesteps {
                let t = item.time_offset + dt;
                let uvw_m = uvw[item.baseline_index * obs.nr_timesteps + t];
                for f in
                    &obs.frequencies[item.channel_offset..item.channel_offset + item.nr_channels]
                {
                    let scale = f / SPEED_OF_LIGHT;
                    let x = obs.uv_to_pixel(uvw_m.u as f64 * scale);
                    let y = obs.uv_to_pixel(uvw_m.v as f64 * scale);
                    assert!(
                        x - margin >= item.coord_x as f64
                            && x + margin <= (item.coord_x + obs.subgrid_size) as f64,
                        "kernel support [{}, {}] clipped by subgrid [{}, {}]",
                        x - margin,
                        x + margin,
                        item.coord_x,
                        item.coord_x + obs.subgrid_size
                    );
                    assert!(
                        y - margin >= item.coord_y as f64
                            && y + margin <= (item.coord_y + obs.subgrid_size) as f64
                    );
                }
            }
        }
    }

    #[test]
    fn bbox_exactly_filling_the_subgrid_never_leaks_kernel_support() {
        // Regression: two visibilities 10.9 px apart nearly fill the
        // subgrid (span + kernel = 15.9 < Ñ = 16), yet the padded box
        // [57.5, 73.4] fits no *integer* origin: coord 57 clips the
        // right kernel edge (73.4 > 73), coord 58 the left (57.5 <
        // 58). The old float span test accepted the pair as one work
        // item and the rounded centering clipped the kernel support by
        // 0.4 px at the subgrid border.
        let obs = obs_single_channel(2);
        let uvw = uvw_at_pixels(&obs, &[(60.0, 64.0), (70.9, 64.0)]);
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert_eq!(plan.skipped_visibilities, 0);
        assert_eq!(plan.nr_gridded_visibilities(), obs.nr_visibilities());
        assert_strict_containment(&obs, &uvw, &plan);
        // the exactly-full box is unplaceable on integer coords, so the
        // planner must have split the pair
        assert_eq!(plan.nr_subgrids(), 2);
    }

    #[test]
    fn integer_aligned_full_bbox_is_one_item() {
        // The companion case: with an even kernel the padded box
        // [58, 74] has integer ends and fills the subgrid exactly —
        // one work item at origin 58 is admissible and the planner
        // must find it rather than split.
        let mut obs = obs_single_channel(2);
        obs.kernel_size = 4;
        let uvw = uvw_at_pixels(&obs, &[(60.0, 64.0), (72.0, 64.0)]);
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert_eq!(plan.skipped_visibilities, 0);
        assert_eq!(plan.nr_subgrids(), 1);
        assert_eq!(plan.items[0].coord_x, 58);
        assert_strict_containment(&obs, &uvw, &plan);
    }

    #[test]
    fn visibility_on_the_grid_edge_is_covered_or_skipped_never_clipped() {
        // March a visibility toward the grid border: each position is
        // either covered with full kernel support or counted as
        // skipped — no silent clipping at the grid boundary.
        let obs = obs_single_channel(1);
        for x in [120.0, 125.0, 125.5, 126.0, 127.0, 127.9] {
            let uvw = uvw_at_pixels(&obs, &[(x, 64.0)]);
            let plan = Plan::create(&obs, &uvw).unwrap();
            assert_eq!(
                plan.nr_gridded_visibilities() + plan.skipped_visibilities,
                obs.nr_visibilities(),
                "x={x}"
            );
            assert_strict_containment(&obs, &uvw, &plan);
        }
        // well inside: covered; outside the placeable range: skipped
        let inside = Plan::create(&obs, &uvw_at_pixels(&obs, &[(120.0, 64.0)])).unwrap();
        assert_eq!(inside.skipped_visibilities, 0);
        let outside = Plan::create(&obs, &uvw_at_pixels(&obs, &[(127.9, 64.0)])).unwrap();
        assert_eq!(outside.skipped_visibilities, 1);
    }

    #[test]
    fn w_zero_observation_stays_on_a_single_plane() {
        // w = 0 exactly (snapshot of a coplanar east-west array) must
        // not split items across w-planes even with w-stacking enabled.
        let mut obs = obs_single_channel(4);
        obs.w_step = 25.0;
        let uvw = uvw_at_pixels(
            &obs,
            &[(60.0, 64.0), (61.0, 64.0), (62.0, 64.0), (63.0, 64.0)],
        );
        assert!(uvw.iter().all(|u| u.w == 0.0));
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert_eq!(plan.skipped_visibilities, 0);
        assert_eq!(plan.nr_subgrids(), 1, "w = 0 must not fragment the plan");
        assert_eq!(plan.items[0].w_plane, 0);
        assert_eq!(plan.stats().nr_w_planes, 1);
    }

    #[test]
    fn single_timestep_observation_plans_cleanly() {
        let obs = Observation::builder()
            .stations(8)
            .timesteps(1)
            .channels(4, 150e6, 2e6)
            .grid_size(512)
            .subgrid_size(24)
            .kernel_size(9)
            .aterm_interval(1)
            .build()
            .unwrap();
        let uvw = uvw_for(&obs, 2_000.0, 11);
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert_eq!(plan.skipped_visibilities, 0);
        assert_eq!(plan.nr_gridded_visibilities(), obs.nr_visibilities());
        assert_eq!(plan.nr_subgrids(), obs.nr_baselines());
        for item in &plan.items {
            assert_eq!(item.nr_timesteps, 1);
            assert_eq!(item.time_offset, 0);
        }
    }

    #[test]
    fn single_channel_observation_plans_cleanly() {
        let obs = Observation::builder()
            .stations(8)
            .timesteps(64)
            .channels(1, 150e6, 2e6)
            .grid_size(512)
            .subgrid_size(24)
            .kernel_size(9)
            .aterm_interval(16)
            .build()
            .unwrap();
        let uvw = uvw_for(&obs, 2_000.0, 12);
        let plan = Plan::create(&obs, &uvw).unwrap();
        assert_eq!(plan.skipped_visibilities, 0);
        assert_eq!(plan.nr_gridded_visibilities(), obs.nr_visibilities());
        for item in &plan.items {
            assert_eq!(item.channel_offset, 0);
            assert_eq!(item.nr_channels, 1);
        }
        assert_strict_containment(&obs, &uvw, &plan);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // vec![0..64] IS one window
    fn windowed_plans_concatenate_to_the_one_shot_plan() {
        // The streaming contract at the planner level: windows cut on
        // A-term boundaries, planned against the shared uv extents,
        // reproduce the one-shot plan exactly once re-sorted into the
        // one-shot (baseline, channel group, time) order.
        let obs = obs_small(); // 64 time steps, aterm_interval 16
        let uvw = uvw_for(&obs, 2_000.0, 14);
        let one_shot = Plan::create(&obs, &uvw).unwrap();
        let extents = UvExtents::compute(&obs, &uvw).unwrap();
        for windows in [
            vec![0..16, 16..32, 32..48, 48..64],
            vec![0..32, 32..64],
            vec![0..48, 48..64],
            vec![0..64],
        ] {
            let mut items = Vec::new();
            let mut skipped = 0usize;
            for w in windows {
                let p = Plan::create_windowed(&obs, &uvw, &extents, w).unwrap();
                skipped += p.skipped_visibilities;
                items.extend(p.items);
            }
            items.sort_by_key(|i| (i.baseline_index, i.channel_offset, i.time_offset));
            assert_eq!(items, one_shot.items);
            assert_eq!(skipped, one_shot.skipped_visibilities);
        }
    }

    #[test]
    fn windowed_plan_rejects_bad_windows_and_foreign_extents() {
        let obs = obs_small();
        let uvw = uvw_for(&obs, 2_000.0, 15);
        let extents = UvExtents::compute(&obs, &uvw).unwrap();
        assert!(matches!(
            Plan::create_windowed(&obs, &uvw, &extents, 0..obs.nr_timesteps + 1),
            Err(IdgError::InvalidParameter(_))
        ));
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 8..4;
        assert!(matches!(
            Plan::create_windowed(&obs, &uvw, &extents, reversed),
            Err(IdgError::InvalidParameter(_))
        ));
        let foreign = UvExtents {
            max_len_m: vec![1.0; 3],
        };
        assert!(matches!(
            Plan::create_windowed(&obs, &uvw, &foreign, 0..obs.nr_timesteps),
            Err(IdgError::ShapeMismatch {
                what: "uv extents",
                ..
            })
        ));
    }

    #[test]
    fn longer_baselines_make_more_subgrids() {
        // Faster uv motion ⇒ fewer time steps fit per subgrid.
        let obs = obs_small();
        let short = Plan::create(&obs, &uvw_for(&obs, 300.0, 10)).unwrap();
        let long = Plan::create(&obs, &uvw_for(&obs, 4_000.0, 10)).unwrap();
        assert!(
            long.nr_subgrids() >= short.nr_subgrids(),
            "long: {}, short: {}",
            long.nr_subgrids(),
            short.nr_subgrids()
        );
    }
}
#[cfg(test)]
mod channel_split_tests {
    use super::*;
    use idg_telescope::{Layout, UvwGenerator};

    #[test]
    fn long_baselines_split_the_band_into_channel_groups() {
        // A wide fractional bandwidth on long baselines smears uv over
        // more pixels than a subgrid holds: the planner must split the
        // band, and every resulting item must still fit.
        let obs = Observation::builder()
            .stations(4)
            .timesteps(16)
            .channels(16, 130e6, 3e6) // 35 % fractional bandwidth
            .grid_size(1024)
            .subgrid_size(24)
            .kernel_size(9)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(4, 8_000.0, 13);
        let uvw = UvwGenerator::representative(&layout, 1.0).generate(&obs);
        let plan = Plan::create(&obs, &uvw).unwrap();

        assert_eq!(plan.skipped_visibilities, 0, "everything representable");
        assert_eq!(plan.nr_gridded_visibilities(), obs.nr_visibilities());
        assert!(
            plan.items.iter().any(|i| i.nr_channels < obs.nr_channels()),
            "long baselines must have split channel groups"
        );
        // short-spacing items may still carry the whole band
        let max_group = plan.items.iter().map(|i| i.nr_channels).max().unwrap();
        assert!(
            max_group >= 2,
            "groups are not degenerate singles everywhere"
        );
    }
}
