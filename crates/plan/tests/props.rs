//! Property tests for the planner's placement invariants.
//!
//! For randomly drawn observation geometries, every work item the
//! planner emits must (1) carry an integral, in-bounds subgrid origin
//! and (2) *cover* its visibilities: the kernel-padded uv pixel box of
//! every covered (timestep, channel) sample fits inside the placed
//! subgrid — the planner never silently clips kernel support.

use idg_plan::Plan;
use idg_telescope::{Layout, UvwGenerator};
use idg_types::{Observation, SPEED_OF_LIGHT};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn placed_subgrids_are_in_bounds_and_cover_their_padded_uv_boxes(
        seed in 1u64..10_000,
        radius in 200.0..1500.0f64,
        subgrid_size in (8usize..15).prop_map(|h| 2 * h), // 16..=28, even
        kernel_size in 3usize..8,
        image_size in 0.02..0.08f64,
    ) {
        let obs = Observation::builder()
            .stations(5)
            .timesteps(16)
            .channels(3, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(subgrid_size)
            .kernel_size(kernel_size)
            .aterm_interval(8)
            .image_size(image_size)
            .build()
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;
        let layout = Layout::uniform(5, radius, seed);
        let uvw = UvwGenerator::representative(&layout, 1.0).generate(&obs);
        let plan = Plan::create(&obs, &uvw)
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;
        prop_assume!(!plan.items.is_empty());

        // Tolerance matching the planner's own float-noise absorption.
        let eps = 1e-3;
        let margin = kernel_size as f64 / 2.0;
        let nr_time = obs.nr_timesteps;
        for item in &plan.items {
            // (1) integral origin (by construction: usize fields), in
            // bounds with the whole subgrid inside the grid
            prop_assert!(item.coord_x + subgrid_size <= obs.grid_size);
            prop_assert!(item.coord_y + subgrid_size <= obs.grid_size);

            // (2) coverage: every covered sample's padded kernel box
            // lies inside [coord, coord + subgrid] on both axes
            for dt in 0..item.nr_timesteps {
                let uvw_m = uvw[item.baseline_index * nr_time + item.time_offset + dt];
                for c in item.channel_offset..item.channel_offset + item.nr_channels {
                    let scale = obs.frequencies[c] / SPEED_OF_LIGHT;
                    let x = obs.uv_to_pixel(uvw_m.u as f64 * scale);
                    let y = obs.uv_to_pixel(uvw_m.v as f64 * scale);
                    for (pos, coord) in [(x, item.coord_x), (y, item.coord_y)] {
                        let lo = coord as f64;
                        let hi = (coord + subgrid_size) as f64;
                        prop_assert!(
                            pos - margin >= lo - eps && pos + margin <= hi + eps,
                            "sample at {pos} (±{margin}) outside subgrid [{lo}, {hi}]"
                        );
                    }
                }
            }
        }

        // accounting: covered + skipped = all visibilities
        prop_assert_eq!(
            plan.nr_gridded_visibilities() + plan.skipped_visibilities,
            obs.nr_visibilities()
        );
    }
}
