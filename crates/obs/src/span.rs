//! The span model: named intervals on either the wall clock or the
//! device model's deterministic clock.

/// Which clock a span's timestamps come from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Host wall-clock time (CPU back-ends): real, non-reproducible.
    Wall,
    /// Device-model time (GPU back-ends): replayed from the pipeline
    /// simulator's timeline, bit-reproducible across runs.
    Modeled,
}

impl Clock {
    /// Lower-case label used in exported `args.clock` fields.
    pub fn label(self) -> &'static str {
        match self {
            Clock::Wall => "wall",
            Clock::Modeled => "modeled",
        }
    }
}

/// One recorded interval.
///
/// Spans form the pass → job → stage → kernel hierarchy through their
/// `cat` field rather than through parent pointers: a `job` span
/// encloses the `stage` spans sharing its `job` id, and `kernel` spans
/// subdivide their stage. Consumers (the Chrome exporter, the tests)
/// reconstruct nesting from the intervals, which keeps recording
/// lock-free of any tree bookkeeping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Human-readable name (e.g. `"gridder"`, `"HtoD"`).
    pub name: String,
    /// Hierarchy level: `"pass"`, `"job"`, `"stage"` or `"kernel"`.
    pub cat: String,
    /// Pipeline job (work group) index, when attributable to one.
    pub job: Option<u32>,
    /// Display lane (Chrome `tid`); engines map to distinct lanes.
    pub lane: u32,
    /// Clock the timestamps were taken on.
    pub clock: Clock,
    /// Start offset from the session origin, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

impl Span {
    /// End offset from the session origin, microseconds.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}
