//! Observability layer for the IDG pipeline: structured spans and
//! self-validating operation counters.
//!
//! The layer is **zero-cost when disabled** (the default). Every
//! recording site in `kernels`, `plan`, `core` and `gpusim` first
//! checks a single relaxed atomic flag and returns immediately when no
//! [`Session`] is active, so uninstrumented runs never take a lock,
//! never allocate, and — critically — never perturb the numerical
//! pipeline: observability only *reads* loop trip counts, it does not
//! change execution order.
//!
//! A [`Session`] activates a process-global collector. While it is
//! alive, the instrumented call sites accumulate:
//!
//! - **spans** — hierarchical intervals (`pass` → `job` → `stage` →
//!   `kernel`) carrying either wall-clock time (CPU back-ends, measured
//!   with [`std::time::Instant`]) or modeled time (GPU back-ends,
//!   replayed from the pipeline simulator's deterministic timeline);
//! - **counters** — per-stage integer registers (sincos pairs, FMAs,
//!   DRAM/shared bytes, visibilities, subgrids, retries, fallback
//!   jobs) incremented *at the kernel call sites with the actual loop
//!   lengths*, so they measure what the kernels really did rather than
//!   what an analytic model predicts they should have done.
//!
//! [`Session::finish`] returns a [`Trace`] bundling the spans with a
//! flat [`MetricsSnapshot`]. The snapshot is what `idg` cross-validates
//! against the analytic `perf::ops` model (exact integer equality on
//! fault-free runs), and [`chrome::chrome_trace_json`] exports the
//! spans as a Chrome `trace_event` timeline for `chrome://tracing`.
//!
//! Only one session can be active per process; concurrent
//! [`Session::begin`] calls (e.g. parallel instrumented tests)
//! serialize on an internal gate mutex.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod counters;
pub mod span;

pub use chrome::{chrome_trace_json, normalized_events, validate_json};
pub use counters::{KernelCounters, KernelStage, MetricsSnapshot};
pub use span::{Clock, Span};

use idg_sync::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Everything one active session accumulates.
#[derive(Debug)]
struct Collector {
    pass: String,
    start: Instant,
    spans: Vec<Span>,
    metrics: MetricsSnapshot,
}

/// A finished observability session: the spans recorded while it was
/// active plus the flat counter snapshot.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Label of the pass that was traced (e.g. `"gridding"`).
    pub pass: String,
    /// All recorded spans, in completion order.
    pub spans: Vec<Span>,
    /// Flat per-stage counter snapshot.
    pub metrics: MetricsSnapshot,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);
static SESSION_GATE: Mutex<()> = Mutex::new(());

/// Whether an observability session is currently active.
///
/// This is the single check every recording site performs first; a
/// relaxed atomic load, so disabled-mode overhead is one predictable
/// branch.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

fn lock_collector() -> MutexGuard<'static, Option<Collector>> {
    COLLECTOR.lock()
}

/// An active observability session.
///
/// Holds the process-wide session gate for its lifetime, so two
/// sessions never interleave their counters. Dropping the session
/// without calling [`Session::finish`] deactivates recording and
/// discards the collected data.
pub struct Session {
    _gate: MutexGuard<'static, ()>,
}

impl Session {
    /// Activate recording under the given pass label.
    ///
    /// Blocks until any other active session finishes.
    pub fn begin(pass: &str) -> Session {
        // Lock order (tools/lock-order.toml): session gate strictly
        // before collector.
        let gate = SESSION_GATE.lock();
        *lock_collector() = Some(Collector {
            pass: pass.to_string(),
            start: Instant::now(),
            spans: Vec::new(),
            metrics: MetricsSnapshot::new(pass),
        });
        ACTIVE.store(true, Ordering::SeqCst);
        Session { _gate: gate }
    }

    /// Deactivate recording and return everything that was collected.
    ///
    /// A closing `pass`-category wall span covering the whole session
    /// is appended before the trace is sealed.
    pub fn finish(self) -> Trace {
        ACTIVE.store(false, Ordering::SeqCst);
        let collector = lock_collector().take();
        match collector {
            Some(c) => {
                let mut spans = c.spans;
                spans.push(Span {
                    name: c.pass.clone(),
                    cat: "pass".to_string(),
                    job: None,
                    lane: 0,
                    clock: Clock::Wall,
                    start_us: 0,
                    dur_us: c.start.elapsed().as_micros() as u64,
                });
                Trace {
                    pass: c.pass,
                    spans,
                    metrics: c.metrics,
                }
            }
            // Unreachable in practice (the gate guarantees exclusivity)
            // but degrade gracefully rather than panic.
            None => Trace {
                pass: String::new(),
                spans: Vec::new(),
                metrics: MetricsSnapshot::new(""),
            },
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // `finish` consumes self before Drop runs only via ManuallyDrop
        // semantics of move; a plain drop (early return / error path)
        // lands here and must deactivate recording.
        if is_active() {
            ACTIVE.store(false, Ordering::SeqCst);
            *lock_collector() = None;
        }
    }
}

fn with_collector(f: impl FnOnce(&mut Collector)) {
    if !is_active() {
        return;
    }
    if let Some(c) = lock_collector().as_mut() {
        f(c);
    }
}

/// Merge a kernel tally (accumulated locally inside a kernel at its
/// real call sites) into the active session's counters. No-op when
/// disabled. u64 addition is commutative, so concurrent flushes from
/// rayon workers produce order-independent totals.
pub fn add_kernel(stage: KernelStage, tally: &KernelCounters) {
    with_collector(|c| c.metrics.kernel_mut(stage).add(tally));
}

/// Record `n` subgrids pushed through the forward subgrid FFT.
pub fn add_subgrids_fft(n: u64) {
    with_collector(|c| c.metrics.subgrids_fft += n);
}

/// Record `n` subgrids pushed through the inverse subgrid FFT.
pub fn add_subgrids_ifft(n: u64) {
    with_collector(|c| c.metrics.subgrids_ifft += n);
}

/// Record `n` subgrids added onto the master grid.
pub fn add_subgrids_added(n: u64) {
    with_collector(|c| c.metrics.subgrids_added += n);
}

/// Record `n` subgrids extracted from the master grid by the splitter.
pub fn add_subgrids_split(n: u64) {
    with_collector(|c| c.metrics.subgrids_split += n);
}

/// Record `n` work items emitted by the planner.
pub fn add_planned_items(n: u64) {
    with_collector(|c| c.metrics.planned_items += n);
}

/// Record `n` visibilities the planner skipped (outside the grid).
pub fn add_skipped_visibilities(n: u64) {
    with_collector(|c| c.metrics.skipped_visibilities += n);
}

/// Record `n` retried device operations.
pub fn add_retries(n: u64) {
    with_collector(|c| c.metrics.nr_retries += n);
}

/// Record `n` jobs that fell back to the CPU reference path.
pub fn add_fallback_jobs(n: u64) {
    with_collector(|c| c.metrics.fallback_jobs += n);
}

/// Record `n` kernel-cache lookups served from an existing table.
pub fn add_cache_hits(n: u64) {
    with_collector(|c| c.metrics.cache_hits += n);
}

/// Record `n` kernel-cache lookups that had to build their table.
pub fn add_cache_misses(n: u64) {
    with_collector(|c| c.metrics.cache_misses += n);
}

/// Record `n` job outcomes observed by per-device health trackers.
pub fn add_health_outcomes(n: u64) {
    with_collector(|c| c.metrics.health_outcomes += n);
}

/// Record `n` circuit-breaker trips (`Closed → Open` transitions).
pub fn add_breaker_trips(n: u64) {
    with_collector(|c| c.metrics.breaker_trips += n);
}

/// Record `n` degradation-ladder steps taken after device OOM.
pub fn add_degradation_steps(n: u64) {
    with_collector(|c| c.metrics.degradation_steps += n);
}

/// Record `n` jobs re-dispatched from a tripped device to a peer.
pub fn add_redispatched_jobs(n: u64) {
    with_collector(|c| c.metrics.redispatched_jobs += n);
}

/// Record `n` chunks admitted by the streaming scheduler.
pub fn add_chunks_ingested(n: u64) {
    with_collector(|c| c.metrics.chunks_ingested += n);
}

/// Record `n` window-constrained admissions (streaming backpressure).
pub fn add_backpressure_waits(n: u64) {
    with_collector(|c| c.metrics.backpressure_waits += n);
}

/// Record a scheduler run's peak in-flight pass count (max-merged:
/// the snapshot keeps the largest peak seen in the session).
pub fn record_passes_inflight(n: u64) {
    with_collector(|c| c.metrics.passes_inflight_max = c.metrics.passes_inflight_max.max(n));
}

/// Record a span with *modeled* time (seconds on the device model's
/// clock, converted to integer microseconds — fully deterministic).
/// Both *endpoints* are rounded (rather than start and duration
/// independently) so that nesting in model time survives the integer
/// conversion: a span contained in another stays contained in µs.
pub fn modeled_span(name: &str, cat: &str, job: Option<u32>, lane: u32, start_s: f64, dur_s: f64) {
    let start_us = (start_s * 1e6).round().max(0.0) as u64;
    let end_us = ((start_s + dur_s) * 1e6).round().max(0.0) as u64;
    with_collector(|c| {
        c.spans.push(Span {
            name: name.to_string(),
            cat: cat.to_string(),
            job,
            lane,
            clock: Clock::Modeled,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
        });
    });
}

/// Start a wall-clock span; the span is recorded when the returned
/// guard is dropped. Returns a no-op guard when disabled.
pub fn wall_span(name: &'static str, cat: &'static str, job: Option<u32>) -> WallSpanGuard {
    WallSpanGuard {
        name,
        cat,
        job,
        begun: if is_active() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Guard recording a wall-clock span on drop (see [`wall_span`]).
#[must_use = "the span measures until the guard is dropped"]
pub struct WallSpanGuard {
    name: &'static str,
    cat: &'static str,
    job: Option<u32>,
    begun: Option<Instant>,
}

impl Drop for WallSpanGuard {
    fn drop(&mut self) {
        let Some(begun) = self.begun else { return };
        let (name, cat, job) = (self.name, self.cat, self.job);
        with_collector(|c| {
            c.spans.push(Span {
                name: name.to_string(),
                cat: cat.to_string(),
                job,
                lane: 0,
                clock: Clock::Wall,
                start_us: begun.duration_since(c.start).as_micros() as u64,
                dur_us: begun.elapsed().as_micros() as u64,
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_are_noops() {
        assert!(!is_active());
        add_retries(3);
        add_kernel(KernelStage::Gridder, &KernelCounters::default());
        modeled_span("x", "stage", None, 0, 0.0, 1.0);
        let _g = wall_span("y", "stage", None);
        // No session ⇒ nothing observable happened; beginning a fresh
        // session must see pristine counters.
        let s = Session::begin("check");
        let t = s.finish();
        assert_eq!(t.metrics.nr_retries, 0);
        assert_eq!(t.spans.len(), 1); // just the pass span
    }

    #[test]
    fn session_collects_counters_and_spans() {
        let s = Session::begin("gridding");
        let tally = KernelCounters {
            sincos_pairs: 10,
            fmas: 170,
            ..KernelCounters::default()
        };
        add_kernel(KernelStage::Gridder, &tally);
        add_kernel(KernelStage::Gridder, &tally);
        add_subgrids_fft(4);
        modeled_span("compute", "stage", Some(2), 1, 0.5, 0.25);
        drop(wall_span("gridder", "stage", Some(0)));
        let t = s.finish();
        assert_eq!(t.metrics.gridder.sincos_pairs, 20);
        assert_eq!(t.metrics.gridder.fmas, 340);
        assert_eq!(t.metrics.subgrids_fft, 4);
        let modeled: Vec<_> = t
            .spans
            .iter()
            .filter(|s| s.clock == Clock::Modeled)
            .collect();
        assert_eq!(modeled.len(), 1);
        assert_eq!(modeled[0].start_us, 500_000);
        assert_eq!(modeled[0].dur_us, 250_000);
        assert_eq!(t.spans.last().map(|s| s.cat.as_str()), Some("pass"));
        assert!(!is_active());
    }

    #[test]
    fn dropped_session_deactivates() {
        let s = Session::begin("abandoned");
        assert!(is_active());
        drop(s);
        assert!(!is_active());
        let t = Session::begin("next").finish();
        assert_eq!(t.pass, "next");
    }
}
