//! Per-stage counter registers and the flat [`MetricsSnapshot`].
//!
//! Every field is an integer: a snapshot of the same run is therefore
//! byte-identical across repetitions regardless of thread scheduling
//! (the increments commute) — the property the determinism suite pins.

/// Which compute kernel a tally belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum KernelStage {
    /// The gridder (visibilities → subgrid pixels).
    Gridder,
    /// The degridder (subgrid pixels → visibilities).
    Degridder,
}

/// Operation counters measured at a kernel's real call sites.
///
/// Field meanings mirror `perf::ops::OpCounts` so the two can be
/// compared by exact integer equality; the difference is provenance —
/// these are incremented beside the actual `sincos` / accumulate /
/// staging loops with the loop's actual trip counts.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Number of kernel invocations (work items processed).
    pub invocations: u64,
    /// Visibilities processed (gridded or degridded).
    pub visibilities: u64,
    /// Evaluated (sin, cos) pairs.
    pub sincos_pairs: u64,
    /// Fused multiply-add operations.
    pub fmas: u64,
    /// Bytes moved through (modeled) DRAM: visibility, uvw, subgrid
    /// and A-term staging traffic.
    pub dram_bytes: u64,
    /// Bytes served from (modeled) shared memory / L1.
    pub shared_bytes: u64,
}

impl KernelCounters {
    /// Accumulate another tally into this one (plain u64 addition —
    /// commutative and associative).
    pub fn add(&mut self, other: &KernelCounters) {
        self.invocations += other.invocations;
        self.visibilities += other.visibilities;
        self.sincos_pairs += other.sincos_pairs;
        self.fmas += other.fmas;
        self.dram_bytes += other.dram_bytes;
        self.shared_bytes += other.shared_bytes;
    }

    fn json_fields(&self, out: &mut String, indent: &str) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "{indent}\"invocations\": {},\n\
             {indent}\"visibilities\": {},\n\
             {indent}\"sincos_pairs\": {},\n\
             {indent}\"fmas\": {},\n\
             {indent}\"dram_bytes\": {},\n\
             {indent}\"shared_bytes\": {}\n",
            self.invocations,
            self.visibilities,
            self.sincos_pairs,
            self.fmas,
            self.dram_bytes,
            self.shared_bytes,
        );
    }
}

/// Flat, all-integer snapshot of every counter a session collected.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Pass label the session was begun with.
    pub pass: String,
    /// Measured gridder kernel counters.
    pub gridder: KernelCounters,
    /// Measured degridder kernel counters.
    pub degridder: KernelCounters,
    /// Subgrids through the forward FFT (gridding direction).
    pub subgrids_fft: u64,
    /// Subgrids through the inverse FFT (degridding direction).
    pub subgrids_ifft: u64,
    /// Subgrids accumulated onto the master grid by the adder.
    pub subgrids_added: u64,
    /// Subgrids extracted from the master grid by the splitter.
    pub subgrids_split: u64,
    /// Work items emitted by the planner.
    pub planned_items: u64,
    /// Visibilities the planner dropped as unrepresentable.
    pub skipped_visibilities: u64,
    /// Device operations that were retried after transient faults.
    pub nr_retries: u64,
    /// Jobs re-executed on the CPU fallback path.
    pub fallback_jobs: u64,
    /// Kernel-cache lookups answered from an already-built table.
    pub cache_hits: u64,
    /// Kernel-cache lookups that had to build their table.
    pub cache_misses: u64,
    /// Job outcomes recorded by per-device health trackers.
    pub health_outcomes: u64,
    /// Circuit-breaker trips (`Closed → Open` transitions).
    pub breaker_trips: u64,
    /// Degradation-ladder steps taken by fleet devices after OOM.
    pub degradation_steps: u64,
    /// Jobs re-dispatched from a tripped device to a healthy peer.
    pub redispatched_jobs: u64,
    /// Chunks admitted by the streaming front-end's scheduler.
    pub chunks_ingested: u64,
    /// Window-constrained admissions in the streaming scheduler (the
    /// producer had to wait for an in-flight pass to complete).
    pub backpressure_waits: u64,
    /// Peak admitted-but-uncompleted streamed passes (max-merged, not
    /// summed, across scheduler runs in the session).
    pub passes_inflight_max: u64,
}

impl MetricsSnapshot {
    /// Fresh all-zero snapshot for the given pass label.
    pub fn new(pass: &str) -> Self {
        MetricsSnapshot {
            pass: pass.to_string(),
            ..MetricsSnapshot::default()
        }
    }

    /// Mutable access to one kernel's counters by stage.
    pub fn kernel_mut(&mut self, stage: KernelStage) -> &mut KernelCounters {
        match stage {
            KernelStage::Gridder => &mut self.gridder,
            KernelStage::Degridder => &mut self.degridder,
        }
    }

    /// The counters of the kernel that drives the given pass
    /// (`"gridding"` → gridder, `"degridding"` → degridder).
    pub fn pass_kernel(&self) -> &KernelCounters {
        if self.pass.starts_with("degrid") {
            &self.degridder
        } else {
            &self.gridder
        }
    }

    /// Serialize as a stable, human-diffable JSON object.
    ///
    /// Hand-rolled (the workspace is offline, no serde): all values are
    /// integers or a quoted pass label, so the output is byte-stable.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = write!(out, "{{\n  \"pass\": \"{}\",\n", escape_json(&self.pass));
        out.push_str("  \"gridder\": {\n");
        self.gridder.json_fields(&mut out, "    ");
        out.push_str("  },\n  \"degridder\": {\n");
        self.degridder.json_fields(&mut out, "    ");
        let _ = write!(
            out,
            "  }},\n\
             \x20 \"subgrids_fft\": {},\n\
             \x20 \"subgrids_ifft\": {},\n\
             \x20 \"subgrids_added\": {},\n\
             \x20 \"subgrids_split\": {},\n\
             \x20 \"planned_items\": {},\n\
             \x20 \"skipped_visibilities\": {},\n\
             \x20 \"nr_retries\": {},\n\
             \x20 \"fallback_jobs\": {},\n\
             \x20 \"cache_hits\": {},\n\
             \x20 \"cache_misses\": {},\n\
             \x20 \"health_outcomes\": {},\n\
             \x20 \"breaker_trips\": {},\n\
             \x20 \"degradation_steps\": {},\n\
             \x20 \"redispatched_jobs\": {},\n\
             \x20 \"chunks_ingested\": {},\n\
             \x20 \"backpressure_waits\": {},\n\
             \x20 \"passes_inflight_max\": {}\n}}\n",
            self.subgrids_fft,
            self.subgrids_ifft,
            self.subgrids_added,
            self.subgrids_split,
            self.planned_items,
            self.skipped_visibilities,
            self.nr_retries,
            self.fallback_jobs,
            self.cache_hits,
            self.cache_misses,
            self.health_outcomes,
            self.breaker_trips,
            self.degradation_steps,
            self.redispatched_jobs,
            self.chunks_ingested,
            self.backpressure_waits,
            self.passes_inflight_max,
        );
        out
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_plain_sum() {
        let mut a = KernelCounters {
            invocations: 1,
            visibilities: 2,
            sincos_pairs: 3,
            fmas: 4,
            dram_bytes: 5,
            shared_bytes: 6,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.sincos_pairs, 6);
        assert_eq!(a.shared_bytes, 12);
    }

    #[test]
    fn snapshot_json_parses_and_is_stable() {
        let mut m = MetricsSnapshot::new("gridding");
        m.gridder.sincos_pairs = 42;
        m.nr_retries = 1;
        m.cache_hits = 3;
        m.cache_misses = 2;
        m.breaker_trips = 5;
        m.degradation_steps = 7;
        m.chunks_ingested = 9;
        m.backpressure_waits = 4;
        m.passes_inflight_max = 2;
        let j1 = m.to_json();
        let j2 = m.to_json();
        assert_eq!(j1, j2);
        crate::chrome::validate_json(&j1).expect("snapshot JSON must be valid");
        assert!(j1.contains("\"sincos_pairs\": 42"));
        assert!(j1.contains("\"nr_retries\": 1"));
        assert!(j1.contains("\"cache_hits\": 3"));
        assert!(j1.contains("\"cache_misses\": 2"));
        assert!(j1.contains("\"breaker_trips\": 5"));
        assert!(j1.contains("\"degradation_steps\": 7"));
        assert!(j1.contains("\"chunks_ingested\": 9"));
        assert!(j1.contains("\"backpressure_waits\": 4"));
        assert!(j1.contains("\"passes_inflight_max\": 2"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
