//! Chrome `trace_event` exporter, a minimal JSON validity checker,
//! and the normalization helper the determinism suite compares with.
//!
//! The export format is the "JSON Array Format" documented for
//! `chrome://tracing` / Perfetto: an object with a `traceEvents` array
//! of complete (`"ph": "X"`) events carrying `name`, `cat`, `ts`/`dur`
//! in microseconds, `pid`/`tid`, and an `args` object. Load the file
//! via `chrome://tracing` → *Load* to inspect a run visually.

use crate::counters::escape_json;
use crate::span::{Clock, Span};
use crate::Trace;
use std::fmt::Write;

/// Serialize a trace as Chrome `trace_event` JSON.
///
/// Each span becomes one complete event; the span's hierarchy level is
/// its `cat`, the display lane its `tid`, and `args` carries the clock
/// provenance (`"wall"` or `"modeled"`) plus the job id when present.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, s) in trace.spans.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"clock\":\"{}\"",
            escape_json(&s.name),
            escape_json(&s.cat),
            s.start_us,
            s.dur_us,
            s.lane,
            s.clock.label(),
        );
        if let Some(job) = s.job {
            let _ = write!(out, ",\"job\":{job}");
        }
        out.push_str("}}");
        out.push_str(if i + 1 < trace.spans.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"pass\":\"{}\"}}}}",
        escape_json(&trace.pass)
    );
    out
}

/// Normalize a trace's spans into comparable event signatures.
///
/// Wall-clock timestamps differ between repetitions of the same run,
/// so they are dropped; modeled timestamps are deterministic and kept.
/// Two traces of the same seeded run must produce identical vectors —
/// the determinism suite asserts exactly that. Spans are sorted by
/// (start, lane, name) first so rayon completion order cannot leak in.
pub fn normalized_events(trace: &Trace) -> Vec<String> {
    let mut spans: Vec<&Span> = trace.spans.iter().collect();
    spans.sort_by(|a, b| {
        (a.start_us, a.lane, &a.name, a.job, a.dur_us)
            .cmp(&(b.start_us, b.lane, &b.name, b.job, b.dur_us))
    });
    spans
        .iter()
        .map(|s| {
            let mut sig = format!(
                "{}/{}/job={:?}/lane={}/clock={}",
                s.cat,
                s.name,
                s.job,
                s.lane,
                s.clock.label()
            );
            if s.clock == Clock::Modeled {
                let _ = write!(sig, "/ts={}/dur={}", s.start_us, s.dur_us);
            }
            sig
        })
        .collect()
}

/// Validate that `input` is a single well-formed JSON value.
///
/// A small recursive-descent checker (the workspace has no JSON
/// dependency): used by the exporter tests and the golden-file suite
/// to guarantee emitted files are loadable by real tooling.
pub fn validate_json(input: &str) -> Result<(), idg_types::IdgError> {
    validate_json_inner(input).map_err(idg_types::IdgError::InvalidParameter)
}

fn validate_json_inner(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 64;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*pos + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control char in string at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at byte {pos}"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at byte {pos}"));
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

/// Parse a literal token (`true` / `false` / `null`).
fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::MetricsSnapshot;

    fn sample_trace() -> Trace {
        Trace {
            pass: "gridding".to_string(),
            spans: vec![
                Span {
                    name: "HtoD".to_string(),
                    cat: "stage".to_string(),
                    job: Some(0),
                    lane: 1,
                    clock: Clock::Modeled,
                    start_us: 0,
                    dur_us: 100,
                },
                Span {
                    name: "gridder".to_string(),
                    cat: "kernel".to_string(),
                    job: Some(0),
                    lane: 2,
                    clock: Clock::Wall,
                    start_us: 7,
                    dur_us: 93,
                },
            ],
            metrics: MetricsSnapshot::new("gridding"),
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_events() {
        let json = chrome_trace_json(&sample_trace());
        validate_json(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"HtoD\""));
        assert!(json.contains("\"clock\":\"modeled\""));
        assert!(json.contains("\"job\":0"));
    }

    #[test]
    fn normalization_drops_wall_times_only() {
        let t = sample_trace();
        let sigs = normalized_events(&t);
        assert_eq!(sigs.len(), 2);
        assert!(sigs[0].contains("/ts=0/dur=100"), "{}", sigs[0]);
        assert!(!sigs[1].contains("/ts="), "{}", sigs[1]);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, 2.5, -3e2, true, null, \"x\\n\"]}").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{} trailing").is_err());
    }
}
