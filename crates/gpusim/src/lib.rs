//! # idg-gpusim — a software GPU device model
//!
//! The paper runs IDG on an AMD Fury X (OpenCL) and an NVIDIA GTX 1080
//! (CUDA). Lacking those devices, this crate substitutes a *software
//! device model* that preserves everything the paper's claims rest on:
//!
//! * **the parallel mapping** — [`kernels`] executes the exact CUDA
//!   decomposition of Sec. V-C: one thread block per work item; gridder
//!   threads mapped to pixels accumulating in registers with
//!   visibilities staged through a capacity-limited shared-memory
//!   buffer; degridder threads alternating between a pixel role and a
//!   visibility role. The arithmetic is bit-for-bit the same family as
//!   the CPU kernels (validated against the reference kernels), so the
//!   mapping's correctness is testable;
//! * **the machine model** — [`device`] wraps the Table I descriptors
//!   with device-memory capacity accounting, shared-memory capacity per
//!   block, and per-architecture thread-block sizes (192/256 for the
//!   gridder on PASCAL/FIJI, 128/256 for the degridder — Sec. V-C);
//! * **the timing model** — [`timing`] derives kernel durations from the
//!   operation/byte counters of `idg-perf` and the architecture's
//!   ceilings (FMA pipes, SFU or ALU sincos, device-memory bandwidth,
//!   shared-memory bandwidth), which is precisely the quantity the
//!   paper's rooflines bound;
//! * **the host/device pipeline** — [`stream`] is a discrete-event
//!   simulator of CUDA streams with three-deep buffering, reproducing
//!   the overlap behaviour of Fig. 7;
//! * **the executor** — [`executor`] drives whole gridding/degridding
//!   passes: real numerical results (produced by the simulated kernels)
//!   plus a modeled execution/energy report;
//! * **the fault layer** — [`fault`] deterministically injects the
//!   faults real devices throw (transfer bit flips caught by buffer
//!   checksums, device OOM, kernel faults, stream stalls), and the
//!   executor recovers through a capped-exponential-backoff retry
//!   policy whose cost is modeled into the makespan; persistent
//!   failures surface as classified [`idg_types::IdgError`]s so the
//!   proxy layer can re-execute the failed jobs on the CPU.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernels

pub mod device;
pub mod executor;
pub mod fault;
pub mod fleet;
pub mod health;
pub mod kernels;
pub mod occupancy;
pub mod stream;
pub mod timing;

pub use device::Device;
pub use executor::{DeferredSubgrids, DeferredVis, GpuExecutor, GpuRunReport, JobFailure};
pub use fault::{FaultConfig, FaultInjector, FaultKind, RetryPolicy, TargetedFault};
pub use fleet::{DeviceReport, FleetExecutor, FleetMember, FleetRunReport};
pub use health::{BreakerConfig, BreakerState, DeviceHealth, JobOutcome};
pub use occupancy::{occupancy, KernelResources, Occupancy};
pub use stream::{AttemptOutcome, Engine, FaultPoint, OpStatus, PipelineSim, TraceEntry};
pub use timing::{kernel_time, transfer_time};
