//! Multi-device fleet execution: health-gated dispatch, circuit
//! breakers, and graceful OOM degradation over N simulated devices.
//!
//! The [`FleetExecutor`] partitions a pass's work groups across its
//! member devices round-robin (job `j` prefers device `j mod N`) and
//! runs each job through the same fault/retry machinery as the
//! single-device [`crate::GpuExecutor`]. On top of that it layers the
//! robustness the single executor lacks:
//!
//! - **Health-aware dispatch.** Every device carries a
//!   [`DeviceHealth`] tracker; a device whose breaker is `Open`
//!   admits nothing, so the jobs that would have preferred it flow to
//!   healthy peers — re-dispatch *before* CPU fallback. A job that
//!   fails persistently on one device re-enters the queue and is
//!   offered to the devices that have not yet rejected it.
//! - **Graceful OOM degradation.** Device memory pressure walks a
//!   ladder instead of failing the pass: full batches with triple
//!   buffering → halved staging batches → a single buffer set. Each
//!   rung shrinks the modeled reservation; only a device that cannot
//!   fit even the smallest rung is declared dead. Injected allocation
//!   faults ([`IdgError::is_degradable`]) take the same ladder and
//!   then *resume the job's retry loop* past the faulted attempt.
//! - **Deterministic order-preserving merge.** Gridding jobs may
//!   finish on any device in any order, but f32 accumulation is not
//!   associative — so computed subgrids are buffered and committed to
//!   the master grid strictly in global job order, which makes a
//!   fleet run bit-identical to the sequential single-device
//!   reference whatever the fault schedule did to the scheduling.
//!
//! Everything is measured on the modeled [`PipelineSim`] clocks
//! (per-device); no wall time enters any decision, so a chaos run
//! with a given seed and fleet shape replays byte-identically.

use crate::device::Device;
use crate::executor::{
    emit_modeled_spans, run_job, staged_subgrid_bytes, staged_uvw_bytes, staged_vis_bytes,
    DeferredSubgrids, DeferredVis, JobFailure, JobOp, JobRun, RetryStats,
};
use crate::fault::{FaultConfig, FaultInjector, RetryPolicy};
use crate::health::{BreakerConfig, DeviceHealth, JobOutcome};
use crate::kernels::{degridder_gpu, gridder_gpu};
use crate::stream::PipelineSim;
use crate::timing::{adder_time, kernel_time, subgrid_fft_time, transfer_time};
use idg_fft::Direction;
use idg_kernels::{
    add_subgrids, fft_subgrids, split_subgrids, FftNorm, KernelCache, KernelData, SubgridArray,
};
use idg_perf::{degridder_counts, gridder_counts, EnergyModel, OpCounts};
use idg_plan::{Plan, WorkItem};
use idg_types::{Grid, IdgError, Visibility};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

/// Deepest rung of the OOM degradation ladder (see [`level_shape`]).
const MAX_DEGRADATION_LEVEL: usize = 2;

/// One gridding job's computed-but-uncommitted output: the subgrids of
/// each staged chunk, keyed by the chunk's item range within the group.
type PendingChunks = Vec<(Range<usize>, SubgridArray)>;

/// The staging shape at one degradation-ladder rung: `(items staged
/// per buffer set, number of buffer sets)`.
///
/// Rung 0 is the paper's configuration (full work groups, triple
/// buffering); rung 1 halves the staged batch (jobs compute in two
/// half-chunks that fit the smaller buffers); rung 2 additionally
/// gives up the transfer/compute overlap by dropping to one buffer
/// set. The per-job *CPU fallback* rung lives above the fleet, in the
/// proxy: it only engages for jobs the whole fleet failed.
fn level_shape(work_group_size: usize, level: usize) -> (usize, usize) {
    match level {
        0 => (work_group_size, 3),
        1 => (work_group_size.div_ceil(2).max(1), 3),
        _ => (work_group_size.div_ceil(2).max(1), 1),
    }
}

/// One device of the fleet plus its (optional) fault schedule.
///
/// Heterogeneous fleets are expected: members may mix architectures
/// and fault configurations (the "lemon" of a chaos run is simply a
/// member with a much higher fault rate than its peers).
#[derive(Clone, Debug)]
pub struct FleetMember {
    /// The device model.
    pub device: Device,
    /// Fault-injection schedule for this device (None = fault-free).
    pub faults: Option<FaultConfig>,
}

/// Per-device slice of a [`FleetRunReport`].
#[derive(Clone, Debug)]
pub struct DeviceReport {
    /// Architecture nickname (e.g. `"PASCAL"`).
    pub nickname: &'static str,
    /// Jobs whose results this device delivered.
    pub jobs_completed: usize,
    /// Transient-fault retries on this device.
    pub nr_retries: usize,
    /// Breaker trips on this device.
    pub breaker_trips: u64,
    /// Final degradation-ladder rung (0 = full configuration).
    pub degradation_level: usize,
    /// This device's pipeline makespan, modeled seconds.
    pub makespan: f64,
    /// Whether the device was still accepting work at pass end.
    pub alive: bool,
}

/// Outcome of one fleet pass.
#[derive(Clone, Debug)]
pub struct FleetRunReport {
    /// "gridding" or "degridding".
    pub pass: &'static str,
    /// Aggregate operation counters (successful jobs).
    pub counts: OpCounts,
    /// Modeled main-kernel busy time summed over devices, s.
    pub kernel_seconds: f64,
    /// Modeled subgrid-FFT time summed over devices, s.
    pub fft_seconds: f64,
    /// Modeled adder/splitter time summed over devices, s.
    pub adder_seconds: f64,
    /// Modeled host-to-device transfer time summed over devices, s.
    pub htod_seconds: f64,
    /// Modeled device-to-host transfer time summed over devices, s.
    pub dtoh_seconds: f64,
    /// Fleet makespan: the slowest device's pipeline makespan, s.
    pub makespan: f64,
    /// Modeled device energy summed over devices, J.
    pub device_energy_j: f64,
    /// Modeled host energy over the fleet makespan, J.
    pub host_energy_j: f64,
    /// Transient-fault retries summed over devices.
    pub nr_retries: usize,
    /// Total modeled backoff delay inserted before retries, s.
    pub backoff_seconds: f64,
    /// Dispatches that did not land on the job's preferred device
    /// (breaker refusals, dead devices, and post-failure re-queues).
    pub redispatched_jobs: usize,
    /// Degradation-ladder rungs taken across the fleet.
    pub degradation_steps: usize,
    /// Breaker trips summed over devices.
    pub breaker_trips: u64,
    /// Per-device breakdown.
    pub per_device: Vec<DeviceReport>,
    /// Jobs no device could complete (their work is *not* in the
    /// result); the proxy's per-job CPU fallback is the last rung.
    pub failed_jobs: Vec<JobFailure>,
}

impl FleetRunReport {
    /// Whether every job's outputs made it into the result.
    pub fn complete(&self) -> bool {
        self.failed_jobs.is_empty()
    }
}

/// Mutable per-device execution state during one pass.
struct DeviceState {
    device: Device,
    injector: Option<FaultInjector>,
    pipeline: PipelineSim,
    health: DeviceHealth,
    level: usize,
    reserved: u64,
    host_adder: bool,
    alive: bool,
    jobs_completed: usize,
    nr_retries: usize,
    /// Kernel breakdown per global job, for span replay.
    compute_parts: Vec<Vec<(&'static str, f64)>>,
}

/// Model the device-resident allocations of a pass at one ladder rung
/// (same layout as the single-device executor's reservation: grid +
/// buffer sets, falling back to host-side adding when the grid alone
/// no longer fits). Returns `(reserved_bytes, host_adder)`.
fn reserve_at_level(
    device: &mut Device,
    plan: &Plan,
    work_group_size: usize,
    level: usize,
) -> Result<(u64, bool), IdgError> {
    let (w_eff, nr_buffers) = level_shape(work_group_size, level);
    let n = plan.subgrid_size();
    let grid_bytes = (4 * plan.grid_size() * plan.grid_size() * 8) as u64;
    let subgrid_bytes = (w_eff * 4 * n * n * 8) as u64;
    let io_bytes = (w_eff * 512 * 44) as u64; // vis+uvw staging
    let buffers = nr_buffers as u64 * (subgrid_bytes + io_bytes);
    if device.allocate(grid_bytes + buffers).is_ok() {
        return Ok((grid_bytes + buffers, false));
    }
    device.allocate(buffers)?;
    Ok((buffers, true))
}

/// Drives gridding / degridding passes across a fleet of modeled
/// devices (see the module docs for the dispatch and degradation
/// semantics).
pub struct FleetExecutor {
    /// The member devices with their fault schedules.
    pub members: Vec<FleetMember>,
    /// Work items per work group (kernel launch) at full strength.
    pub work_group_size: usize,
    /// Retry policy for transient device faults (shared by members).
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning (shared by members).
    pub breaker: BreakerConfig,
    /// Pass-level kernel cache, shared with the owning proxy.
    pub cache: Arc<KernelCache>,
}

impl FleetExecutor {
    /// Create a fleet from explicit members. A zero group size is
    /// clamped to one, as in the single-device executor.
    pub fn new(members: Vec<FleetMember>, work_group_size: usize) -> Self {
        Self {
            members,
            work_group_size: work_group_size.max(1),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            cache: Arc::new(KernelCache::new()),
        }
    }

    /// A homogeneous fleet: `nr_devices` fault-free clones of `device`.
    pub fn uniform(device: Device, nr_devices: usize, work_group_size: usize) -> Self {
        let members = (0..nr_devices.max(1))
            .map(|_| FleetMember {
                device: device.clone(),
                faults: None,
            })
            .collect();
        Self::new(members, work_group_size)
    }

    /// Attach a fault schedule to one member (e.g. the chaos lemon).
    pub fn with_member_faults(mut self, member: usize, faults: FaultConfig) -> Self {
        if let Some(m) = self.members.get_mut(member) {
            m.faults = Some(faults);
        }
        self
    }

    /// Override the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Override the retry policy for transient faults.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Share a pass-level kernel cache (normally the proxy's).
    pub fn with_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Whether any member carries a fault schedule.
    pub fn any_faults(&self) -> bool {
        self.members.iter().any(|m| m.faults.is_some())
    }

    /// Set up per-device state, walking each device down the
    /// degradation ladder until its reservation fits (a device that
    /// cannot fit even one buffer set starts the pass dead).
    fn setup(
        &self,
        plan: &Plan,
        nr_jobs: usize,
        degradation_steps: &mut usize,
    ) -> Result<Vec<DeviceState>, IdgError> {
        if self.members.is_empty() {
            return Err(IdgError::InvalidParameter(
                "a fleet needs at least one device".into(),
            ));
        }
        self.breaker.validate()?;
        let mut states = Vec::with_capacity(self.members.len());
        for member in &self.members {
            let mut device = member.device.clone();
            let mut level = 0;
            let mut placed = None;
            loop {
                match reserve_at_level(&mut device, plan, self.work_group_size, level) {
                    Ok(ok) => {
                        placed = Some(ok);
                        break;
                    }
                    Err(_) if level < MAX_DEGRADATION_LEVEL => {
                        level += 1;
                        *degradation_steps += 1;
                        idg_obs::add_degradation_steps(1);
                    }
                    Err(_) => break,
                }
            }
            let (reserved, host_adder) = placed.unwrap_or((0, false));
            let (_, nr_buffers) = level_shape(self.work_group_size, level);
            states.push(DeviceState {
                device,
                injector: member.faults.clone().map(FaultInjector::new),
                pipeline: PipelineSim::new(nr_buffers),
                health: DeviceHealth::new(self.breaker)?,
                level,
                reserved,
                host_adder,
                alive: placed.is_some(),
                jobs_completed: 0,
                nr_retries: 0,
                compute_parts: vec![Vec::new(); nr_jobs],
            });
        }
        Ok(states)
    }

    /// Choose a device for `job`: the first admitting device in
    /// round-robin order from the job's preferred owner, or — when
    /// every eligible breaker is `Open` — the device whose cooldown
    /// expires first, with the wait modeled into the job's release
    /// time. `None` means no device can ever take the job.
    fn choose_device(
        states: &mut [DeviceState],
        job: usize,
        tried: &[usize],
    ) -> Option<(usize, f64)> {
        let n = states.len();
        for k in 0..n {
            let d = (job + k) % n;
            if !states[d].alive || tried.contains(&d) {
                continue;
            }
            let now = states[d].pipeline.makespan();
            if states[d].health.admit(now) {
                return Some((d, 0.0));
            }
        }
        // every eligible device refused: wait out the earliest cooldown
        let mut best: Option<(usize, f64)> = None;
        for (d, s) in states.iter().enumerate() {
            if !s.alive || tried.contains(&d) {
                continue;
            }
            if let Some(t) = s.health.cooldown_expiry() {
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((d, t));
                }
            }
        }
        let (d, t) = best?;
        // At t the breaker half-opens and must admit a probe; a refusal
        // here would mean the state machine deadlocked.
        assert!(
            states[d].health.admit(t),
            "breaker refused its own cooldown expiry"
        );
        Some((d, t))
    }

    /// Walk one device down the degradation ladder after an OOM.
    /// Returns whether a deeper rung fit; a device that exhausts the
    /// ladder is dead (its pending job re-enters the fleet queue).
    fn degrade_device(
        state: &mut DeviceState,
        plan: &Plan,
        work_group_size: usize,
        degradation_steps: &mut usize,
    ) -> bool {
        while state.level < MAX_DEGRADATION_LEVEL {
            state.level += 1;
            *degradation_steps += 1;
            idg_obs::add_degradation_steps(1);
            state.device.free(state.reserved);
            state.reserved = 0;
            if let Ok((reserved, host_adder)) =
                reserve_at_level(&mut state.device, plan, work_group_size, state.level)
            {
                state.reserved = reserved;
                state.host_adder = host_adder;
                let (_, nr_buffers) = level_shape(work_group_size, state.level);
                state.pipeline.set_nr_buffers(nr_buffers);
                return true;
            }
        }
        state.device.free(state.reserved);
        state.reserved = 0;
        state.alive = false;
        false
    }

    /// Split a group into the chunks the device's current rung can
    /// stage at once (one chunk at full strength).
    fn chunk_ranges(group_len: usize, w_eff: usize) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut lo = 0;
        while lo < group_len {
            let hi = (lo + w_eff).min(group_len);
            out.push(lo..hi);
            lo = hi;
        }
        out
    }

    /// Run a full gridding pass: visibilities → grid.
    ///
    /// Jobs the whole fleet failed are reported in
    /// [`FleetRunReport::failed_jobs`]; their subgrids are absent from
    /// the returned grid. The grid itself is **bit-identical** to a
    /// fault-free single-device pass over the completed jobs, because
    /// commits happen in global job order regardless of which device
    /// computed what.
    pub fn grid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
    ) -> Result<(Grid<f32>, FleetRunReport), IdgError> {
        let groups: Vec<&[WorkItem]> = plan.work_groups(self.work_group_size).collect();
        let nr_jobs = groups.len();
        let mut report = self.report_skeleton("gridding");
        let mut states = self.setup(plan, nr_jobs, &mut report.degradation_steps)?;

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let host_adder_bw = 40e9;
        let mut grid = Grid::<f32>::new(plan.grid_size());
        let observing = idg_obs::is_active();
        // computed (chunk range, subgrids) per job, committed in job
        // order after dispatch so f32 accumulation order matches the
        // sequential single-device reference
        let mut pending: Vec<Option<PendingChunks>> = vec![None; nr_jobs];
        let group_lens: Vec<usize> = groups.iter().map(|g| g.len()).collect();

        self.dispatch(
            &mut states,
            plan,
            &group_lens,
            &mut report,
            |st, job, stats| {
                let group = groups[job];
                let (w_eff, _) = level_shape(self.work_group_size, st.level);
                let chunks = Self::chunk_ranges(group.len(), w_eff);
                let group_counts = gridder_counts(group, n);
                let in_bytes = group
                    .iter()
                    .map(|i| (i.nr_timesteps * (nr_chan * 32 + 12)) as u64)
                    .sum::<u64>();
                let t_in = transfer_time(&st.device, in_bytes);
                let t_kernel = kernel_time(&st.device, &group_counts);
                let t_fft = subgrid_fft_time(&st.device, group.len(), n);
                let subgrid_bytes = (group.len() * 4 * n * n * 8) as u64;
                let (t_compute, t_out, t_add) = if st.host_adder {
                    let t_out = transfer_time(&st.device, subgrid_bytes);
                    (
                        t_kernel + t_fft,
                        t_out,
                        2.0 * subgrid_bytes as f64 / host_adder_bw,
                    )
                } else {
                    let t_add = adder_time(&st.device, group.len(), n);
                    (t_kernel + t_fft + t_add, 0.0, t_add)
                };
                if observing {
                    let mut breakdown = vec![("gridder", t_kernel), ("subgrid_fft", t_fft)];
                    if !st.host_adder {
                        breakdown.push(("adder", t_add));
                    }
                    st.compute_parts[job] = breakdown;
                }

                let mut computed: Vec<(Range<usize>, SubgridArray)> = Vec::new();
                let device = &st.device;
                let cache = &self.cache;
                let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                    match op {
                        JobOp::StageInput => {
                            Ok(staged_vis_bytes(data.visibilities, nr_time, nr_chan, group))
                        }
                        JobOp::Compute => {
                            computed.clear();
                            for r in &chunks {
                                let mut subgrids = SubgridArray::new(r.len(), n);
                                gridder_gpu(data, &group[r.clone()], &mut subgrids, device, cache)?;
                                fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
                                computed.push((r.clone(), subgrids));
                            }
                            Ok(Vec::new())
                        }
                        JobOp::StageOutput => {
                            let mut out = Vec::new();
                            for (_, subgrids) in &computed {
                                out.extend_from_slice(&staged_subgrid_bytes(subgrids));
                            }
                            Ok(out)
                        }
                        // committed later, in global job order
                        JobOp::Commit => Ok(Vec::new()),
                    }
                };
                let result = run_job(
                    &mut st.pipeline,
                    st.injector.as_ref(),
                    &self.retry,
                    stats.0,
                    job,
                    (t_in, t_compute, t_out),
                    stats.1,
                    &mut backend,
                );
                if matches!(result, JobRun::Done { .. }) {
                    pending[job] = Some(computed);
                }
                (result, group_counts, [t_kernel, t_fft, t_add, t_in, t_out])
            },
        )?;

        // ordered merge: same add_subgrids sequence as one device
        for (job, slot) in pending.iter_mut().enumerate() {
            if let Some(chunks) = slot.take() {
                for (r, subgrids) in &chunks {
                    add_subgrids(&mut grid, &groups[job][r.clone()], subgrids, &self.cache)?;
                }
            }
        }
        self.seal_report(&mut states, &mut report);
        Ok((grid, report))
    }

    /// Run a gridding pass across the fleet with *deferred* commits:
    /// identical dispatch, health gating, and fault machinery to
    /// [`FleetExecutor::grid`], but instead of merging subgrids into a
    /// grid the computed `(plan.items range, subgrids)` pairs are
    /// returned in global job order. The streaming proxy collects
    /// these across chunk passes and commits everything with one
    /// adder call in one-shot plan order, so the streamed grid stays
    /// bit-identical whatever device finished what, when.
    pub fn grid_deferred(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
    ) -> Result<(DeferredSubgrids, FleetRunReport), IdgError> {
        let groups: Vec<&[WorkItem]> = plan.work_groups(self.work_group_size).collect();
        let nr_jobs = groups.len();
        let mut report = self.report_skeleton("gridding");
        let mut states = self.setup(plan, nr_jobs, &mut report.degradation_steps)?;

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let host_adder_bw = 40e9;
        let observing = idg_obs::is_active();
        let mut pending: Vec<Option<PendingChunks>> = vec![None; nr_jobs];
        let group_lens: Vec<usize> = groups.iter().map(|g| g.len()).collect();

        self.dispatch(
            &mut states,
            plan,
            &group_lens,
            &mut report,
            |st, job, stats| {
                let group = groups[job];
                let (w_eff, _) = level_shape(self.work_group_size, st.level);
                let chunks = Self::chunk_ranges(group.len(), w_eff);
                let group_counts = gridder_counts(group, n);
                let in_bytes = group
                    .iter()
                    .map(|i| (i.nr_timesteps * (nr_chan * 32 + 12)) as u64)
                    .sum::<u64>();
                let t_in = transfer_time(&st.device, in_bytes);
                let t_kernel = kernel_time(&st.device, &group_counts);
                let t_fft = subgrid_fft_time(&st.device, group.len(), n);
                let subgrid_bytes = (group.len() * 4 * n * n * 8) as u64;
                let (t_compute, t_out, t_add) = if st.host_adder {
                    let t_out = transfer_time(&st.device, subgrid_bytes);
                    (
                        t_kernel + t_fft,
                        t_out,
                        2.0 * subgrid_bytes as f64 / host_adder_bw,
                    )
                } else {
                    let t_add = adder_time(&st.device, group.len(), n);
                    (t_kernel + t_fft + t_add, 0.0, t_add)
                };
                if observing {
                    let mut breakdown = vec![("gridder", t_kernel), ("subgrid_fft", t_fft)];
                    if !st.host_adder {
                        breakdown.push(("adder", t_add));
                    }
                    st.compute_parts[job] = breakdown;
                }

                let mut computed: Vec<(Range<usize>, SubgridArray)> = Vec::new();
                let device = &st.device;
                let cache = &self.cache;
                let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                    match op {
                        JobOp::StageInput => {
                            Ok(staged_vis_bytes(data.visibilities, nr_time, nr_chan, group))
                        }
                        JobOp::Compute => {
                            computed.clear();
                            for r in &chunks {
                                let mut subgrids = SubgridArray::new(r.len(), n);
                                gridder_gpu(data, &group[r.clone()], &mut subgrids, device, cache)?;
                                fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
                                computed.push((r.clone(), subgrids));
                            }
                            Ok(Vec::new())
                        }
                        JobOp::StageOutput => {
                            let mut out = Vec::new();
                            for (_, subgrids) in &computed {
                                out.extend_from_slice(&staged_subgrid_bytes(subgrids));
                            }
                            Ok(out)
                        }
                        // committed later, by the caller, in plan order
                        JobOp::Commit => Ok(Vec::new()),
                    }
                };
                let result = run_job(
                    &mut st.pipeline,
                    st.injector.as_ref(),
                    &self.retry,
                    stats.0,
                    job,
                    (t_in, t_compute, t_out),
                    stats.1,
                    &mut backend,
                );
                if matches!(result, JobRun::Done { .. }) {
                    pending[job] = Some(computed);
                }
                (result, group_counts, [t_kernel, t_fft, t_add, t_in, t_out])
            },
        )?;

        // flatten to global `plan.items` ranges, in global job order
        let mut out: Vec<(Range<usize>, SubgridArray)> = Vec::new();
        for (job, slot) in pending.iter_mut().enumerate() {
            let first = job * self.work_group_size;
            if let Some(chunks) = slot.take() {
                for (r, subgrids) in chunks {
                    out.push((first + r.start..first + r.end, subgrids));
                }
            }
        }
        self.seal_report(&mut states, &mut report);
        Ok((out, report))
    }

    /// Run a full degridding pass: grid → predicted visibilities.
    ///
    /// Visibility slots belonging to fleet-failed jobs are left zero.
    /// Slots are disjoint per job, so no ordered merge is needed: a
    /// re-dispatched job simply overwrites its slots with the same
    /// deterministic values.
    pub fn degrid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
    ) -> Result<(Vec<Visibility<f32>>, FleetRunReport), IdgError> {
        let groups: Vec<&[WorkItem]> = plan.work_groups(self.work_group_size).collect();
        let nr_jobs = groups.len();
        let mut report = self.report_skeleton("degridding");
        let mut states = self.setup(plan, nr_jobs, &mut report.degradation_steps)?;

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let mut vis_out = vec![Visibility::<f32>::zero(); data.obs.nr_visibilities()];
        let observing = idg_obs::is_active();
        let group_lens: Vec<usize> = groups.iter().map(|g| g.len()).collect();

        self.dispatch(
            &mut states,
            plan,
            &group_lens,
            &mut report,
            |st, job, stats| {
                let group = groups[job];
                let (w_eff, _) = level_shape(self.work_group_size, st.level);
                let chunks = Self::chunk_ranges(group.len(), w_eff);
                let group_counts = degridder_counts(group, n);
                let uvw_bytes = group
                    .iter()
                    .map(|i| (i.nr_timesteps * 12) as u64)
                    .sum::<u64>();
                let out_bytes = group
                    .iter()
                    .map(|i| (i.nr_timesteps * nr_chan * 32) as u64)
                    .sum::<u64>();
                let t_in = transfer_time(&st.device, uvw_bytes);
                let t_split = adder_time(&st.device, group.len(), n);
                let t_fft = subgrid_fft_time(&st.device, group.len(), n);
                let t_kernel = kernel_time(&st.device, &group_counts);
                let t_out = transfer_time(&st.device, out_bytes);
                if observing {
                    st.compute_parts[job] = vec![
                        ("splitter", t_split),
                        ("subgrid_ifft", t_fft),
                        ("degridder", t_kernel),
                    ];
                }

                let device = &st.device;
                let cache = &self.cache;
                let vis_ref = &mut vis_out;
                let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                    match op {
                        JobOp::StageInput => Ok(staged_uvw_bytes(data, group)),
                        JobOp::Compute => {
                            for r in &chunks {
                                let chunk = &group[r.clone()];
                                let mut subgrids = SubgridArray::new(r.len(), n);
                                split_subgrids(grid, chunk, &mut subgrids, cache)?;
                                fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
                                degridder_gpu(data, chunk, &subgrids, vis_ref, device, cache)?;
                            }
                            Ok(Vec::new())
                        }
                        JobOp::StageOutput => {
                            Ok(staged_vis_bytes(vis_ref, nr_time, nr_chan, group))
                        }
                        JobOp::Commit => Ok(Vec::new()),
                    }
                };
                let result = run_job(
                    &mut st.pipeline,
                    st.injector.as_ref(),
                    &self.retry,
                    stats.0,
                    job,
                    (t_in, t_split + t_fft + t_kernel, t_out),
                    stats.1,
                    &mut backend,
                );
                (
                    result,
                    group_counts,
                    [t_kernel, t_fft, t_split, t_in, t_out],
                )
            },
        )?;

        // zero the slots of jobs nobody completed (a faulted attempt
        // may have written them before its chain died)
        for failure in &report.failed_jobs {
            for item in groups[failure.job] {
                for dt in 0..item.nr_timesteps {
                    let row = (item.baseline_index * nr_time + item.time_offset + dt) * nr_chan;
                    for c in item.channel_offset..item.channel_offset + item.nr_channels {
                        vis_out[row + c] = Visibility::zero();
                    }
                }
            }
        }
        self.seal_report(&mut states, &mut report);
        Ok((vis_out, report))
    }

    /// Streamed-degrid twin of [`FleetExecutor::grid_deferred`]: the
    /// degrid dispatch loop, but the predicted visibilities stay in a
    /// chunk-local buffer with the completed jobs' `plan.items` ranges
    /// recorded in global job order for the caller's in-order commit.
    ///
    /// The degridder's values depend only on the plan and inputs, not
    /// on which device ran the job, so health-gated re-dispatch keeps
    /// the buffer bit-identical to a fault-free single-device pass.
    pub fn split_deferred(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
    ) -> Result<(DeferredVis, FleetRunReport), IdgError> {
        let groups: Vec<&[WorkItem]> = plan.work_groups(self.work_group_size).collect();
        let nr_jobs = groups.len();
        let mut report = self.report_skeleton("degridding");
        let mut states = self.setup(plan, nr_jobs, &mut report.degradation_steps)?;

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let mut vis_out = vec![Visibility::<f32>::zero(); data.obs.nr_visibilities()];
        let observing = idg_obs::is_active();
        let group_lens: Vec<usize> = groups.iter().map(|g| g.len()).collect();

        self.dispatch(
            &mut states,
            plan,
            &group_lens,
            &mut report,
            |st, job, stats| {
                let group = groups[job];
                let (w_eff, _) = level_shape(self.work_group_size, st.level);
                let chunks = Self::chunk_ranges(group.len(), w_eff);
                let group_counts = degridder_counts(group, n);
                let uvw_bytes = group
                    .iter()
                    .map(|i| (i.nr_timesteps * 12) as u64)
                    .sum::<u64>();
                let out_bytes = group
                    .iter()
                    .map(|i| (i.nr_timesteps * nr_chan * 32) as u64)
                    .sum::<u64>();
                let t_in = transfer_time(&st.device, uvw_bytes);
                let t_split = adder_time(&st.device, group.len(), n);
                let t_fft = subgrid_fft_time(&st.device, group.len(), n);
                let t_kernel = kernel_time(&st.device, &group_counts);
                let t_out = transfer_time(&st.device, out_bytes);
                if observing {
                    st.compute_parts[job] = vec![
                        ("splitter", t_split),
                        ("subgrid_ifft", t_fft),
                        ("degridder", t_kernel),
                    ];
                }

                let device = &st.device;
                let cache = &self.cache;
                let vis_ref = &mut vis_out;
                let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                    match op {
                        JobOp::StageInput => Ok(staged_uvw_bytes(data, group)),
                        JobOp::Compute => {
                            for r in &chunks {
                                let chunk = &group[r.clone()];
                                let mut subgrids = SubgridArray::new(r.len(), n);
                                split_subgrids(grid, chunk, &mut subgrids, cache)?;
                                fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
                                degridder_gpu(data, chunk, &subgrids, vis_ref, device, cache)?;
                            }
                            Ok(Vec::new())
                        }
                        JobOp::StageOutput => {
                            Ok(staged_vis_bytes(vis_ref, nr_time, nr_chan, group))
                        }
                        // committed later, by the caller, in plan order
                        JobOp::Commit => Ok(Vec::new()),
                    }
                };
                let result = run_job(
                    &mut st.pipeline,
                    st.injector.as_ref(),
                    &self.retry,
                    stats.0,
                    job,
                    (t_in, t_split + t_fft + t_kernel, t_out),
                    stats.1,
                    &mut backend,
                );
                (
                    result,
                    group_counts,
                    [t_kernel, t_fft, t_split, t_in, t_out],
                )
            },
        )?;

        // zero the slots of jobs nobody completed (a faulted attempt
        // may have written them before its chain died)
        for failure in &report.failed_jobs {
            for item in groups[failure.job] {
                for dt in 0..item.nr_timesteps {
                    let row = (item.baseline_index * nr_time + item.time_offset + dt) * nr_chan;
                    for c in item.channel_offset..item.channel_offset + item.nr_channels {
                        vis_out[row + c] = Visibility::zero();
                    }
                }
            }
        }
        // completed jobs' item ranges, in global job order
        // (`failed_jobs` is sealed in job order by `dispatch`)
        let mut ranges: Vec<Range<usize>> = Vec::new();
        for job in 0..nr_jobs {
            if report.failed_jobs.iter().any(|f| f.job == job) {
                continue;
            }
            let first = job * self.work_group_size;
            ranges.push(first..first + group_lens[job]);
        }
        self.seal_report(&mut states, &mut report);
        Ok((
            DeferredVis {
                ranges,
                vis: vis_out,
            },
            report,
        ))
    }

    /// An all-zero report for one pass.
    fn report_skeleton(&self, pass: &'static str) -> FleetRunReport {
        FleetRunReport {
            pass,
            counts: OpCounts::default(),
            kernel_seconds: 0.0,
            fft_seconds: 0.0,
            adder_seconds: 0.0,
            htod_seconds: 0.0,
            dtoh_seconds: 0.0,
            makespan: 0.0,
            device_energy_j: 0.0,
            host_energy_j: 0.0,
            nr_retries: 0,
            backoff_seconds: 0.0,
            redispatched_jobs: 0,
            degradation_steps: 0,
            breaker_trips: 0,
            per_device: Vec::new(),
            failed_jobs: Vec::new(),
        }
    }

    /// The health-gated dispatch loop shared by both passes.
    ///
    /// `execute` runs one job on one device and returns the retry-loop
    /// result, the job's operation counts, and its modeled stage times
    /// `[kernel, fft, adder, htod, dtoh]` (charged to the report only
    /// on success; faulted-attempt engine time is charged via
    /// [`RetryStats`] as in the single-device executor). The second
    /// element of the `stats` pair is the `(first_attempt,
    /// not_before)` resume point for [`run_job`].
    #[allow(clippy::type_complexity)]
    fn dispatch(
        &self,
        states: &mut [DeviceState],
        plan: &Plan,
        group_lens: &[usize],
        report: &mut FleetRunReport,
        mut execute: impl FnMut(
            &mut DeviceState,
            usize,
            (&mut RetryStats, (u32, f64)),
        ) -> (JobRun, OpCounts, [f64; 5]),
    ) -> Result<(), IdgError> {
        let nr_jobs = group_lens.len();
        let nr_members = states.len();
        // Each job may be offered to every device once, plus ladder
        // headroom; the cap is a deadlock backstop, not a tunable.
        let dispatch_cap = (2 * nr_members).max(4) as u32;
        let mut queue: VecDeque<usize> = (0..nr_jobs).collect();
        let mut tried: Vec<Vec<usize>> = vec![Vec::new(); nr_jobs];
        let mut dispatches: Vec<u32> = vec![0; nr_jobs];
        let mut attempts_total: Vec<u32> = vec![0; nr_jobs];
        let mut last_error: Vec<Option<IdgError>> = vec![None; nr_jobs];

        while let Some(job) = queue.pop_front() {
            let eligible = Self::choose_device(states, job, &tried[job]);
            let exhausted = dispatches[job] >= dispatch_cap;
            let Some((d, wait_until)) = eligible.filter(|_| !exhausted) else {
                report.failed_jobs.push(JobFailure {
                    job,
                    first_item: job * self.work_group_size,
                    nr_items: group_lens[job],
                    error: last_error[job].clone().unwrap_or(IdgError::Internal(
                        "no fleet device available for job".to_string(),
                    )),
                    attempts: attempts_total[job],
                });
                continue;
            };
            dispatches[job] += 1;
            if d != job % nr_members || dispatches[job] > 1 {
                report.redispatched_jobs += 1;
                idg_obs::add_redispatched_jobs(1);
            }

            // Ladder loop: an OOM-degraded device resumes the same job
            // past the faulted attempt instead of re-drawing it.
            let mut resume = (0u32, wait_until);
            loop {
                let mut stats = RetryStats::default();
                let st = &mut states[d];
                let (result, counts, times) = execute(st, job, (&mut stats, resume));
                let now = st.pipeline.makespan();
                st.nr_retries += stats.nr_retries;
                report.nr_retries += stats.nr_retries;
                report.backoff_seconds += stats.backoff_seconds;
                report.htod_seconds += stats.htod_seconds;
                report.kernel_seconds += stats.kernel_seconds;
                report.dtoh_seconds += stats.dtoh_seconds;
                match result {
                    JobRun::Done { attempts } => {
                        attempts_total[job] += attempts - resume.0;
                        st.jobs_completed += 1;
                        st.health
                            .record_outcome(JobOutcome::classify(attempts - 1, None), now);
                        report.counts.add(&counts);
                        report.kernel_seconds += times[0];
                        report.fft_seconds += times[1];
                        report.adder_seconds += times[2];
                        report.htod_seconds += times[3];
                        report.dtoh_seconds += times[4];
                        break;
                    }
                    JobRun::Failed { error, attempts } => {
                        attempts_total[job] += attempts - resume.0;
                        if error.is_degradable()
                            && Self::degrade_device(
                                st,
                                plan,
                                self.work_group_size,
                                &mut report.degradation_steps,
                            )
                        {
                            resume = (attempts, resume.1);
                            continue;
                        }
                        st.health.record_outcome(JobOutcome::Failed, now);
                        last_error[job] = Some(error);
                        tried[job].push(d);
                        queue.push_back(job);
                        break;
                    }
                }
            }
        }
        report.failed_jobs.sort_by_key(|f| f.job);
        Ok(())
    }

    /// Fold per-device state into the report: makespans, energies,
    /// breaker totals, span replay.
    fn seal_report(&self, states: &mut [DeviceState], report: &mut FleetRunReport) {
        idg_obs::add_retries(report.nr_retries as u64);
        for (d, st) in states.iter_mut().enumerate() {
            emit_modeled_spans(&st.pipeline.timeline, &st.compute_parts, 4 * d as u32);
            let makespan = st.pipeline.makespan();
            let energy = EnergyModel::new(st.device.arch.clone());
            let busy = st.pipeline.compute_busy();
            report.device_energy_j += energy.device_energy(busy, 1.0)
                + energy.device_energy((makespan - busy).max(0.0), 0.0);
            report.makespan = report.makespan.max(makespan);
            report.breaker_trips += st.health.trips();
            st.device.free(st.reserved);
            st.reserved = 0;
            report.per_device.push(DeviceReport {
                nickname: st.device.arch.nickname,
                jobs_completed: st.jobs_completed,
                nr_retries: st.nr_retries,
                breaker_trips: st.health.trips(),
                degradation_level: st.level,
                makespan,
                alive: st.alive,
            });
        }
        let host_arch = self.members[0].device.arch.clone();
        report.host_energy_j = EnergyModel::new(host_arch).host_energy(report.makespan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::GpuExecutor;
    use crate::fault::TargetedFault;
    use crate::fault::{FaultConfig, FaultKind};
    use idg_telescope::{Dataset, IdentityATerm, Layout, SkyModel};
    use idg_types::{FaultSite, Observation};

    fn dataset() -> Dataset {
        let obs = Observation::builder()
            .stations(6)
            .timesteps(64)
            .channels(8, 150e6, 1e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(64)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(6, 900.0, 51);
        let sky = SkyModel::random(&obs, 4, 0.6, 53);
        Dataset::simulate(obs, &layout, sky, &IdentityATerm)
    }

    fn kernel_data<'a>(ds: &'a Dataset, taper: &'a [f32]) -> KernelData<'a> {
        KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper,
        }
    }

    fn assert_bit_identical(a: &Grid<f32>, b: &Grid<f32>) {
        assert_eq!(a.as_slice().len(), b.as_slice().len());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "grids diverge at {i}: {x:?} vs {y:?}"
            );
        }
    }

    /// A chronically flaky device: roughly half of all attempts fault
    /// somewhere in the HtoD → kernel → DtoH chain.
    fn lemon_faults(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            transfer_corruption_rate: 0.25,
            kernel_fault_rate: 0.2,
            stall_rate: 0.1,
            ..FaultConfig::default()
        }
    }

    /// A breaker tuned for short test passes: two unhealthy outcomes
    /// in a window of four trip it.
    fn test_breaker() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            trip_unhealthy: 2,
            cooldown_seconds: 0.5,
            half_open_probes: 2,
        }
    }

    #[test]
    fn single_member_fleet_matches_the_single_device_executor() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);

        let single = GpuExecutor::new(Device::pascal(), 4);
        let (gold, gold_report) = single.grid(&data, &plan).unwrap();
        let fleet = FleetExecutor::uniform(Device::pascal(), 1, 4);
        let (grid, report) = fleet.grid(&data, &plan).unwrap();

        assert_bit_identical(&grid, &gold);
        assert!(report.complete());
        assert_eq!(report.counts.visibilities, gold_report.counts.visibilities);
        assert!((report.makespan - gold_report.makespan).abs() < 1e-12);
        assert_eq!(report.breaker_trips, 0);
        assert_eq!(report.redispatched_jobs, 0);
        assert_eq!(report.per_device.len(), 1);
        assert_eq!(
            report.per_device[0].jobs_completed,
            plan.work_groups(4).count()
        );
    }

    #[test]
    fn clean_multi_device_gridding_is_bit_identical_to_one_device() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);

        let single = GpuExecutor::new(Device::pascal(), 4);
        let (gold, gold_report) = single.grid(&data, &plan).unwrap();
        let fleet = FleetExecutor::uniform(Device::pascal(), 3, 4);
        let (grid, report) = fleet.grid(&data, &plan).unwrap();

        // f32 accumulation order is pinned by the ordered commit, so
        // splitting work across devices must not move a single bit
        assert_bit_identical(&grid, &gold);
        assert!(report.complete());
        // jobs spread round-robin across all members
        assert!(report.per_device.iter().all(|d| d.jobs_completed > 0));
        // devices overlap in (modeled) time: the fleet finishes faster
        assert!(report.makespan < gold_report.makespan);
    }

    #[test]
    fn clean_multi_device_degridding_matches_one_device() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);
        let single = GpuExecutor::new(Device::pascal(), 4);
        let (grid, _) = single.grid(&data, &plan).unwrap();

        let (gold, _) = single.degrid(&data, &plan, &grid).unwrap();
        let fleet = FleetExecutor::uniform(Device::pascal(), 3, 4);
        let (vis, report) = fleet.degrid(&data, &plan, &grid).unwrap();

        assert!(report.complete());
        assert_eq!(vis.len(), gold.len());
        for (a, b) in vis.iter().zip(&gold) {
            for (pa, pb) in a.pols.iter().zip(&b.pols) {
                assert_eq!(pa.re.to_bits(), pb.re.to_bits());
                assert_eq!(pa.im.to_bits(), pb.im.to_bits());
            }
        }
    }

    #[test]
    fn lemon_device_trips_its_breaker_and_the_fleet_still_delivers() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);

        let (gold, _) = GpuExecutor::new(Device::pascal(), 1)
            .grid(&data, &plan)
            .unwrap();
        let fleet = FleetExecutor::uniform(Device::pascal(), 4, 1)
            .with_member_faults(1, lemon_faults(8))
            .with_breaker(test_breaker());
        let (grid, report) = fleet.grid(&data, &plan).unwrap();

        assert_bit_identical(&grid, &gold);
        assert!(report.complete(), "failures: {:?}", report.failed_jobs);
        assert!(
            report.breaker_trips > 0,
            "a ~35% fault rate must trip the lemon's breaker"
        );
        assert_eq!(report.per_device[1].breaker_trips, report.breaker_trips);
        assert!(
            report.redispatched_jobs > 0,
            "tripped device's jobs must flow to peers"
        );
    }

    #[test]
    fn targeted_oom_takes_the_degradation_ladder_not_cpu_fallback() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);

        let (gold, _) = GpuExecutor::new(Device::pascal(), 4)
            .grid(&data, &plan)
            .unwrap();
        let oom = FaultConfig::targeted(vec![TargetedFault {
            job: 0,
            attempt: 0,
            site: FaultSite::Alloc,
            kind: FaultKind::OutOfMemory,
        }]);
        let fleet = FleetExecutor::uniform(Device::pascal(), 2, 4).with_member_faults(0, oom);
        let (grid, report) = fleet.grid(&data, &plan).unwrap();

        assert_bit_identical(&grid, &gold);
        assert!(report.complete(), "OOM must degrade, not fail the job");
        assert!(report.degradation_steps >= 1);
        assert!(report.per_device[0].degradation_level >= 1);
        assert!(report.per_device[0].alive);
        // the degraded job resumed on the same device: no re-dispatch
        assert_eq!(report.redispatched_jobs, 0);
    }

    #[test]
    fn memory_starved_member_starts_on_a_lower_rung() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);

        let (gold, _) = GpuExecutor::new(Device::pascal(), 4)
            .grid(&data, &plan)
            .unwrap();
        // Enough for half-batch buffers (~184 kB at wgs 4) but not the
        // full-strength buffer sets (~369 kB), let alone the grid.
        let mut starved = Device::pascal();
        starved.arch.mem_size_gb = Some(0.0003);
        let fleet = FleetExecutor::new(
            vec![
                FleetMember {
                    device: starved,
                    faults: None,
                },
                FleetMember {
                    device: Device::pascal(),
                    faults: None,
                },
            ],
            4,
        );
        let (grid, report) = fleet.grid(&data, &plan).unwrap();
        assert_bit_identical(&grid, &gold);
        assert!(report.complete());
        assert!(report.degradation_steps >= 1);
        assert!(report.per_device[0].degradation_level >= 1);
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        let data = kernel_data(&ds, &taper);
        let fleet = FleetExecutor::new(Vec::new(), 4);
        assert!(matches!(
            fleet.grid(&data, &plan),
            Err(IdgError::InvalidParameter(_))
        ));
    }
}
