//! Streaming-multiprocessor occupancy model.
//!
//! The paper tunes thread-block sizes per kernel and architecture
//! (Sec. V-C: 192/128 threads on PASCAL, 256/256 on FIJI) — choices that
//! trade register/shared-memory pressure against the number of resident
//! blocks per SM. This module reproduces the standard occupancy
//! calculation so the device model's `scheduling_efficiency` is grounded
//! rather than arbitrary: a kernel's occupancy bounds how well latencies
//! (sincos, shared-memory) can be hidden.

use crate::device::Device;

/// Per-launch resource usage of a kernel.
#[derive(Copy, Clone, Debug)]
pub struct KernelResources {
    /// Threads per block.
    pub threads_per_block: usize,
    /// Registers per thread.
    pub registers_per_thread: usize,
    /// Shared (LDS) bytes per block.
    pub shared_bytes_per_block: usize,
}

impl KernelResources {
    /// Resource profile of the IDG gridder on `device` (registers for
    /// the 4-pol pixel accumulators + geometry; shared buffer for the
    /// visibility batch).
    pub fn gridder(device: &Device) -> Self {
        Self {
            threads_per_block: device.gridder_block_size,
            registers_per_thread: 64,
            shared_bytes_per_block: device.gridder_batch_size() * 44,
        }
    }

    /// Resource profile of the IDG degridder (registers for the
    /// visibility accumulators; shared pixels + geometry batch).
    pub fn degridder(device: &Device) -> Self {
        Self {
            threads_per_block: device.degridder_block_size,
            registers_per_thread: 72,
            shared_bytes_per_block: device.degridder_batch_size() * 48,
        }
    }
}

/// Per-SM hardware limits.
#[derive(Copy, Clone, Debug)]
pub struct SmLimits {
    /// Maximum resident threads.
    pub max_threads: usize,
    /// Maximum resident blocks.
    pub max_blocks: usize,
    /// Register file size (32-bit registers).
    pub registers: usize,
    /// Shared memory capacity, bytes.
    pub shared_bytes: usize,
}

impl SmLimits {
    /// Limits for the modeled device (Pascal SM / GCN CU figures).
    pub fn of(device: &Device) -> Self {
        match device.arch.nickname {
            "PASCAL" => Self {
                max_threads: 2048,
                max_blocks: 32,
                registers: 65_536,
                shared_bytes: 96 * 1024,
            },
            _ => Self {
                // GCN compute unit (Fiji)
                max_threads: 2560,
                max_blocks: 40,
                registers: 65_536,
                shared_bytes: 64 * 1024,
            },
        }
    }
}

/// Result of the occupancy calculation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: usize,
    /// Resident threads per SM.
    pub threads_per_sm: usize,
    /// Fraction of the SM's maximum resident threads.
    pub fraction: f64,
    /// Which resource limits residency.
    pub limited_by: Limit,
}

/// The binding occupancy constraint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Limit {
    /// Thread count per SM.
    Threads,
    /// Block slots per SM.
    Blocks,
    /// Register file.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
}

/// Compute the occupancy of `res` on `device`.
pub fn occupancy(device: &Device, res: &KernelResources) -> Occupancy {
    let limits = SmLimits::of(device);
    let by_threads = limits.max_threads / res.threads_per_block.max(1);
    let by_blocks = limits.max_blocks;
    let by_registers = limits.registers / (res.registers_per_thread * res.threads_per_block).max(1);
    let by_shared = limits
        .shared_bytes
        .checked_div(res.shared_bytes_per_block)
        .unwrap_or(usize::MAX);

    let blocks = by_threads.min(by_blocks).min(by_registers).min(by_shared);
    let limited_by = if blocks == by_shared {
        Limit::SharedMemory
    } else if blocks == by_registers {
        Limit::Registers
    } else if blocks == by_threads {
        Limit::Threads
    } else {
        Limit::Blocks
    };
    let threads = blocks * res.threads_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        threads_per_sm: threads,
        fraction: threads as f64 / limits.max_threads as f64,
        limited_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn paper_gridder_configs_achieve_good_occupancy() {
        // Good latency hiding needs a healthy fraction of resident
        // threads — the paper's tuned block sizes must not starve the SM.
        for device in [Device::pascal(), Device::fiji()] {
            let occ = occupancy(&device, &KernelResources::gridder(&device));
            assert!(
                occ.fraction >= 0.25,
                "{}: gridder occupancy {:.2}",
                device.arch.nickname,
                occ.fraction
            );
            assert!(
                occ.blocks_per_sm >= 2,
                "multiple blocks to overlap barriers"
            );
        }
    }

    #[test]
    fn degridder_occupancy_is_positive_everywhere() {
        for device in [Device::pascal(), Device::fiji()] {
            let occ = occupancy(&device, &KernelResources::degridder(&device));
            assert!(occ.blocks_per_sm >= 1);
            assert!(occ.fraction > 0.0);
        }
    }

    #[test]
    fn oversized_shared_usage_limits_blocks() {
        let device = Device::pascal();
        let res = KernelResources {
            threads_per_block: 128,
            registers_per_thread: 32,
            shared_bytes_per_block: 50 * 1024, // > half the SM's LDS
        };
        let occ = occupancy(&device, &res);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limited_by, Limit::SharedMemory);
    }

    #[test]
    fn register_pressure_limits_blocks() {
        let device = Device::pascal();
        let res = KernelResources {
            threads_per_block: 1024,
            registers_per_thread: 255,
            shared_bytes_per_block: 0,
        };
        let occ = occupancy(&device, &res);
        assert_eq!(occ.limited_by, Limit::Registers);
        assert!(occ.fraction < 0.2);
    }

    #[test]
    fn tiny_blocks_hit_the_block_slot_limit() {
        let device = Device::pascal();
        let res = KernelResources {
            threads_per_block: 32,
            registers_per_thread: 16,
            shared_bytes_per_block: 0,
        };
        let occ = occupancy(&device, &res);
        assert_eq!(occ.limited_by, Limit::Blocks);
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.threads_per_sm, 1024);
    }

    #[test]
    fn occupancy_monotone_in_threads_per_block_until_limited() {
        let device = Device::pascal();
        let mut prev = 0.0;
        for tpb in [64usize, 128, 256] {
            let res = KernelResources {
                threads_per_block: tpb,
                registers_per_thread: 24,
                shared_bytes_per_block: 1024,
            };
            let occ = occupancy(&device, &res);
            assert!(occ.fraction >= prev, "non-monotone at {tpb}");
            prev = occ.fraction;
        }
    }
}
