//! The device descriptor: machine parameters + memory accounting.

use idg_perf::{ArchKind, Architecture};
use idg_types::IdgError;

/// A modeled GPU: architecture constants, launch configuration and a
/// device-memory allocator.
#[derive(Clone, Debug)]
pub struct Device {
    /// The underlying Table I architecture (must be a GPU).
    pub arch: Architecture,
    /// Threads per block for the gridder kernel (Sec. V-C b: 192 on
    /// PASCAL, 256 on FIJI).
    pub gridder_block_size: usize,
    /// Threads per block for the degridder kernel (Sec. V-C c: 128 on
    /// PASCAL, 256 on FIJI).
    pub degridder_block_size: usize,
    /// Shared memory per thread block, bytes (software-managed cache).
    pub shared_mem_per_block: usize,
    /// Fraction of the roofline-model ceiling a real launch achieves
    /// (occupancy, barriers, tail effects).
    pub scheduling_efficiency: f64,
    allocated_bytes: u64,
}

impl Device {
    /// Wrap a GPU architecture with its paper-tuned launch parameters.
    pub fn new(arch: Architecture) -> Self {
        assert_eq!(
            arch.kind,
            ArchKind::Gpu,
            "Device models GPUs; CPUs run natively"
        );
        let (g, d, shared) = match arch.nickname {
            "PASCAL" => (192, 128, 48 * 1024),
            "FIJI" => (256, 256, 64 * 1024),
            _ => (256, 256, 48 * 1024),
        };
        Self {
            arch,
            gridder_block_size: g,
            degridder_block_size: d,
            shared_mem_per_block: shared,
            scheduling_efficiency: 0.9,
            allocated_bytes: 0,
        }
    }

    /// The modeled GTX 1080.
    pub fn pascal() -> Self {
        Self::new(Architecture::pascal())
    }

    /// The modeled Fury X.
    pub fn fiji() -> Self {
        Self::new(Architecture::fiji())
    }

    /// Device memory capacity in bytes.
    pub fn memory_capacity(&self) -> u64 {
        (self.arch.mem_size_gb.unwrap_or(0.0) * 1e9) as u64
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated_bytes
    }

    /// Model an allocation; fails when device memory is exhausted —
    /// the condition that forces the "copy subgrids to host and add on
    /// the CPU" fallback of Sec. V-C e.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), IdgError> {
        let capacity = self.memory_capacity();
        if self.allocated_bytes + bytes > capacity {
            return Err(IdgError::DeviceOutOfMemory {
                requested: bytes,
                available: capacity - self.allocated_bytes,
            });
        }
        self.allocated_bytes += bytes;
        Ok(())
    }

    /// Release a previous allocation.
    pub fn free(&mut self, bytes: u64) {
        self.allocated_bytes = self.allocated_bytes.saturating_sub(bytes);
    }

    /// How many visibilities (4-pol complex f32 + uvw) fit in one
    /// block's staging buffer — the gridder's batch size (Sec. V-C b
    /// optimization 2). A quarter of the SM's shared memory per block
    /// keeps ≥4 blocks resident, which the occupancy model shows is
    /// needed to hide barrier and sincos latency.
    pub fn gridder_batch_size(&self) -> usize {
        let bytes_per_vis = 4 * 8 + 12;
        (self.shared_mem_per_block / 4) / bytes_per_vis
    }

    /// How many pixels (4-pol complex f32 + l/m/n/φ₀) fit in the
    /// degridder's shared pixel batches (Sec. V-C c), same residency
    /// budget as the gridder.
    pub fn degridder_batch_size(&self) -> usize {
        let bytes_per_pixel = 4 * 8 + 16;
        (self.shared_mem_per_block / 4) / bytes_per_pixel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_launch_configurations() {
        let p = Device::pascal();
        assert_eq!(p.gridder_block_size, 192);
        assert_eq!(p.degridder_block_size, 128);
        let f = Device::fiji();
        assert_eq!(f.gridder_block_size, 256);
        assert_eq!(f.degridder_block_size, 256);
    }

    #[test]
    fn memory_accounting() {
        let mut d = Device::pascal();
        assert_eq!(d.memory_capacity(), 8_000_000_000);
        d.allocate(6_000_000_000).unwrap();
        assert_eq!(d.allocated(), 6_000_000_000);
        let err = d.allocate(3_000_000_000).unwrap_err();
        assert!(matches!(err, IdgError::DeviceOutOfMemory { .. }));
        d.free(6_000_000_000);
        assert_eq!(d.allocated(), 0);
        d.allocate(7_900_000_000).unwrap();
    }

    #[test]
    fn fiji_has_less_memory_than_pascal() {
        assert!(Device::fiji().memory_capacity() < Device::pascal().memory_capacity());
    }

    #[test]
    fn batch_sizes_fit_shared_memory() {
        for d in [Device::pascal(), Device::fiji()] {
            assert!(d.gridder_batch_size() * (44) <= d.shared_mem_per_block);
            assert!(d.degridder_batch_size() * (48) <= d.shared_mem_per_block);
            assert!(
                d.gridder_batch_size() > 100,
                "batches large enough to amortize"
            );
        }
    }

    #[test]
    #[should_panic(expected = "Device models GPUs")]
    fn cpu_architecture_rejected() {
        Device::new(Architecture::haswell());
    }
}
