//! Per-device health tracking and a deterministic circuit breaker.
//!
//! A fleet survives a *bad device* — one whose fault rate is far above
//! its peers' — by noticing the pattern in job outcomes and routing
//! around it. This module provides the two pieces the
//! [`crate::fleet::FleetExecutor`] composes:
//!
//! - [`DeviceHealth`]: a sliding window over the most recent job
//!   outcomes on one device. Outcomes are classified from the existing
//!   fault-injection machinery: a job that completed without any fault
//!   is [`JobOutcome::Clean`], one that needed transient retries is
//!   [`JobOutcome::Recovered`], and a persistent failure is
//!   [`JobOutcome::Failed`]. `Recovered` counts as *unhealthy* for
//!   tripping purposes — a chronically flaky device that always limps
//!   through on retry still wastes makespan and should be benched.
//! - a circuit breaker (`Closed → Open → HalfOpen`) embedded in the
//!   tracker: when the unhealthy count inside the window reaches the
//!   configured threshold the breaker trips to [`BreakerState::Open`]
//!   and the device stops admitting work. The cooldown is measured on
//!   the *modeled* [`crate::PipelineSim`] clock, not wall time, so
//!   chaos runs replay bit-identically. After the cooldown the breaker
//!   half-opens and admits a limited number of probe jobs: enough
//!   clean probes re-close it, any unhealthy probe re-opens it with a
//!   fresh cooldown.
//!
//! Every recorded outcome and every trip increments the corresponding
//! self-validated observability counters
//! ([`idg_obs::add_health_outcomes`], [`idg_obs::add_breaker_trips`]),
//! so a metrics snapshot proves the breaker actually engaged.

use idg_types::IdgError;

/// Classification of one finished job on one device.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job completed on the first attempt with no injected fault.
    Clean,
    /// The job completed, but only after transient-fault retries.
    Recovered {
        /// Number of retried attempts the job needed.
        nr_retries: u32,
    },
    /// The job failed persistently on this device.
    Failed,
}

impl JobOutcome {
    /// Whether this outcome counts against the device's health.
    ///
    /// `Recovered` is unhealthy by design: a device that recovers from
    /// every fault still pays the retry makespan, and a lemon with a
    /// high *transient* fault rate would otherwise never trip.
    pub fn is_unhealthy(&self) -> bool {
        !matches!(self, JobOutcome::Clean)
    }

    /// Classify an executor-level result: retries and the final error
    /// (if any) map onto the outcome taxonomy.
    pub fn classify(nr_retries: u32, error: Option<&IdgError>) -> JobOutcome {
        match error {
            Some(_) => JobOutcome::Failed,
            None if nr_retries > 0 => JobOutcome::Recovered { nr_retries },
            None => JobOutcome::Clean,
        }
    }
}

/// Circuit-breaker state (the classic three-state machine).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: the device admits work normally.
    Closed,
    /// Tripped: the device admits nothing until the cooldown elapses.
    Open,
    /// Probing: a limited number of jobs are admitted to test recovery.
    HalfOpen,
}

/// Tuning knobs for [`DeviceHealth`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length in job outcomes.
    pub window: usize,
    /// Unhealthy outcomes within the window that trip the breaker.
    pub trip_unhealthy: usize,
    /// Modeled seconds the breaker stays `Open` before half-opening.
    pub cooldown_seconds: f64,
    /// Consecutive clean probes needed to close from `HalfOpen`.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            trip_unhealthy: 4,
            cooldown_seconds: 0.5,
            half_open_probes: 2,
        }
    }
}

impl BreakerConfig {
    /// Validate the knobs; degenerate values would deadlock the state
    /// machine (a zero-probe half-open could never close).
    pub fn validate(&self) -> Result<(), IdgError> {
        if self.window == 0 || self.trip_unhealthy == 0 {
            return Err(IdgError::InvalidParameter(
                "breaker window and trip threshold must be positive".into(),
            ));
        }
        if self.trip_unhealthy > self.window {
            return Err(IdgError::InvalidParameter(format!(
                "trip threshold {} exceeds window {}",
                self.trip_unhealthy, self.window
            )));
        }
        if self.half_open_probes == 0 {
            return Err(IdgError::InvalidParameter(
                "half-open probe count must be positive".into(),
            ));
        }
        if !self.cooldown_seconds.is_finite() || self.cooldown_seconds < 0.0 {
            return Err(IdgError::InvalidParameter(
                "breaker cooldown must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Sliding-window health tracker + circuit breaker for one device.
///
/// All time arguments are **modeled seconds** from the device fleet's
/// [`crate::PipelineSim`] clocks; the tracker never consults wall
/// time, so identical fault schedules produce identical state
/// trajectories.
#[derive(Clone, Debug)]
pub struct DeviceHealth {
    config: BreakerConfig,
    state: BreakerState,
    /// Most recent outcomes, oldest first, capped at `config.window`.
    window: Vec<JobOutcome>,
    /// Modeled time at which an `Open` breaker may half-open.
    open_until: f64,
    /// Clean probes seen so far while `HalfOpen`.
    clean_probes: u32,
    /// Probes admitted (but not yet recorded) while `HalfOpen`.
    probes_in_flight: u32,
    trips: u64,
    outcomes: u64,
}

impl DeviceHealth {
    /// Fresh tracker in the `Closed` state.
    ///
    /// Errors on degenerate configurations (see
    /// [`BreakerConfig::validate`]); construction-time validation keeps
    /// the per-job hot path assertion-free.
    pub fn new(config: BreakerConfig) -> Result<Self, IdgError> {
        config.validate()?;
        Ok(DeviceHealth {
            config,
            state: BreakerState::Closed,
            window: Vec::with_capacity(config.window),
            open_until: 0.0,
            clean_probes: 0,
            probes_in_flight: 0,
            trips: 0,
            outcomes: 0,
        })
    }

    /// Current breaker state (after any cooldown observable at the
    /// last `admit` call — `Open → HalfOpen` happens inside `admit`).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Number of `Closed → Open` (or `HalfOpen → Open`) trips so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Number of job outcomes recorded so far.
    pub fn outcomes(&self) -> u64 {
        self.outcomes
    }

    /// Unhealthy outcomes currently inside the sliding window.
    pub fn unhealthy_in_window(&self) -> usize {
        self.window.iter().filter(|o| o.is_unhealthy()).count()
    }

    /// Whether the device may take a job at modeled time `now`.
    ///
    /// `Open` breakers half-open here once the cooldown has elapsed;
    /// `HalfOpen` breakers admit at most `half_open_probes` jobs at a
    /// time so one bad probe cannot take a whole batch down with it.
    pub fn admit(&mut self, now: f64) -> bool {
        if self.state == BreakerState::Open && now >= self.open_until {
            self.state = BreakerState::HalfOpen;
            self.clean_probes = 0;
            self.probes_in_flight = 0;
        }
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_in_flight + self.clean_probes < self.config.half_open_probes {
                    self.probes_in_flight += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Earliest modeled time a currently-`Open` breaker will admit
    /// again, if any.
    pub fn cooldown_expiry(&self) -> Option<f64> {
        (self.state == BreakerState::Open).then_some(self.open_until)
    }

    /// Record one finished job's outcome at modeled time `now` and
    /// advance the breaker state machine.
    pub fn record_outcome(&mut self, outcome: JobOutcome, now: f64) {
        self.outcomes += 1;
        idg_obs::add_health_outcomes(1);
        if self.window.len() == self.config.window {
            self.window.remove(0);
        }
        self.window.push(outcome);
        match self.state {
            BreakerState::Closed => {
                if self.unhealthy_in_window() >= self.config.trip_unhealthy {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if outcome.is_unhealthy() {
                    // A failed probe re-opens with a fresh cooldown.
                    self.trip(now);
                } else {
                    self.clean_probes += 1;
                    if self.clean_probes >= self.config.half_open_probes {
                        self.state = BreakerState::Closed;
                        // A re-closed breaker starts from a clean
                        // slate; the pre-trip history already had its
                        // say.
                        self.window.clear();
                    }
                }
            }
            // Late results from jobs admitted before the trip may
            // still land while `Open`; they stay in the window but
            // cannot deepen an already-open breaker.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: f64) {
        self.state = BreakerState::Open;
        self.open_until = now + self.config.cooldown_seconds;
        self.clean_probes = 0;
        self.probes_in_flight = 0;
        self.trips += 1;
        idg_obs::add_breaker_trips(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            trip_unhealthy: 2,
            cooldown_seconds: 1.0,
            half_open_probes: 2,
        }
    }

    #[test]
    fn clean_outcomes_keep_the_breaker_closed() {
        let mut h = DeviceHealth::new(config()).unwrap();
        for i in 0..20 {
            assert!(h.admit(i as f64));
            h.record_outcome(JobOutcome::Clean, i as f64);
        }
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.trips(), 0);
        assert_eq!(h.outcomes(), 20);
    }

    #[test]
    fn recovered_outcomes_count_as_unhealthy_and_trip() {
        let mut h = DeviceHealth::new(config()).unwrap();
        h.record_outcome(JobOutcome::Recovered { nr_retries: 1 }, 0.0);
        assert_eq!(h.state(), BreakerState::Closed);
        h.record_outcome(JobOutcome::Recovered { nr_retries: 2 }, 0.5);
        assert_eq!(h.state(), BreakerState::Open);
        assert_eq!(h.trips(), 1);
        assert!(!h.admit(0.6), "open breaker admits nothing");
        assert_eq!(h.cooldown_expiry(), Some(1.5));
    }

    #[test]
    fn cooldown_runs_on_the_modeled_clock() {
        let mut h = DeviceHealth::new(config()).unwrap();
        h.record_outcome(JobOutcome::Failed, 0.0);
        h.record_outcome(JobOutcome::Failed, 0.0);
        assert_eq!(h.state(), BreakerState::Open);
        assert!(!h.admit(0.99), "cooldown not yet elapsed");
        assert!(h.admit(1.0), "half-opens exactly at open_until");
        assert_eq!(h.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_limits_probes_in_flight() {
        let mut h = DeviceHealth::new(config()).unwrap();
        h.record_outcome(JobOutcome::Failed, 0.0);
        h.record_outcome(JobOutcome::Failed, 0.0);
        assert!(h.admit(2.0));
        assert!(h.admit(2.0), "two probes allowed");
        assert!(!h.admit(2.0), "third concurrent probe refused");
        // One probe lands clean: a slot frees up, but the total
        // clean+in-flight budget still caps at half_open_probes.
        h.record_outcome(JobOutcome::Clean, 2.5);
        assert!(!h.admit(2.5));
    }

    #[test]
    fn clean_probes_reclose_and_clear_history() {
        let mut h = DeviceHealth::new(config()).unwrap();
        h.record_outcome(JobOutcome::Failed, 0.0);
        h.record_outcome(JobOutcome::Failed, 0.0);
        assert!(h.admit(2.0) && h.admit(2.0));
        h.record_outcome(JobOutcome::Clean, 2.5);
        assert_eq!(h.state(), BreakerState::HalfOpen);
        h.record_outcome(JobOutcome::Clean, 2.6);
        assert_eq!(h.state(), BreakerState::Closed);
        // Window cleared: one more unhealthy outcome does not re-trip.
        h.record_outcome(JobOutcome::Failed, 3.0);
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.trips(), 1);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut h = DeviceHealth::new(config()).unwrap();
        h.record_outcome(JobOutcome::Failed, 0.0);
        h.record_outcome(JobOutcome::Failed, 0.0);
        assert!(h.admit(5.0));
        h.record_outcome(JobOutcome::Failed, 5.5);
        assert_eq!(h.state(), BreakerState::Open);
        assert_eq!(h.trips(), 2);
        assert_eq!(h.cooldown_expiry(), Some(6.5));
        assert!(!h.admit(6.0));
        assert!(h.admit(6.5));
    }

    #[test]
    fn late_results_cannot_deepen_an_open_breaker() {
        let mut h = DeviceHealth::new(config()).unwrap();
        h.record_outcome(JobOutcome::Failed, 0.0);
        h.record_outcome(JobOutcome::Failed, 0.0);
        let deadline = h.cooldown_expiry().unwrap();
        // A straggler from before the trip lands while Open.
        h.record_outcome(JobOutcome::Failed, 0.5);
        assert_eq!(h.trips(), 1, "no double trip");
        assert_eq!(h.cooldown_expiry(), Some(deadline), "cooldown unchanged");
    }

    #[test]
    fn outcome_classification() {
        assert_eq!(JobOutcome::classify(0, None), JobOutcome::Clean);
        assert_eq!(
            JobOutcome::classify(3, None),
            JobOutcome::Recovered { nr_retries: 3 }
        );
        let oom = IdgError::DeviceOutOfMemory {
            requested: 1,
            available: 0,
        };
        assert_eq!(JobOutcome::classify(2, Some(&oom)), JobOutcome::Failed);
        assert!(!JobOutcome::Clean.is_unhealthy());
        assert!(JobOutcome::Recovered { nr_retries: 1 }.is_unhealthy());
        assert!(JobOutcome::Failed.is_unhealthy());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(BreakerConfig {
            window: 0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            trip_unhealthy: 5,
            window: 4,
            ..config()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            half_open_probes: 0,
            ..config()
        }
        .validate()
        .is_err());
        assert!(BreakerConfig {
            cooldown_seconds: f64::NAN,
            ..config()
        }
        .validate()
        .is_err());
        assert!(config().validate().is_ok());
    }
}
