//! CUDA-stream pipeline simulation — the triple-buffering of Fig. 7.
//!
//! The paper overlaps PCI-e transfers with kernel execution using three
//! host threads, three buffer sets and three CUDA streams (one per
//! engine: host-to-device copies, kernel execution, device-to-host
//! copies). This module reproduces that schedule as a discrete-event
//! simulation: each engine serializes its own operations, operations of
//! one job are chained HtoD → kernel → DtoH, and a job may only start
//! its HtoD once its buffer set (job index mod #buffers) has been
//! released by the previous occupant — exactly the dashed-arrow
//! constraint in Fig. 7.
//!
//! The simulator also models *faulted* schedules: an attempt of a job
//! may fault at any engine ([`OpStatus::Faulted`]), which truncates the
//! attempt's chain there, and a retry of the same job can be submitted
//! with a `not_before` release time so backoff delays show up in the
//! makespan. Every operation records which attempt it belongs to, so
//! the Fig. 7 timeline doubles as the fault/retry audit trail.

/// The three hardware engines of the pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Host-to-device copy engine.
    HtoD,
    /// Kernel execution engine.
    Compute,
    /// Device-to-host copy engine.
    DtoH,
}

/// Completion status of one scheduled operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpStatus {
    /// The operation completed normally.
    Completed,
    /// The operation faulted (injected device fault); later phases of
    /// the same attempt were not scheduled.
    Faulted,
}

/// One scheduled operation in the timeline.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Which engine executed the operation.
    pub engine: Engine,
    /// Job (work group) index.
    pub job: usize,
    /// Which attempt of the job this operation belongs to (0 = first
    /// execution, 1 = first retry, …).
    pub attempt: u32,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
    /// Whether the operation completed or faulted.
    pub status: OpStatus,
}

/// A fault point inside one attempt: the operation on `engine` runs for
/// its nominal duration plus `extra_seconds` (watchdog stall time, 0
/// for instant faults), is recorded as [`OpStatus::Faulted`], and the
/// rest of the attempt's chain is not scheduled.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultPoint {
    /// Engine whose operation faults.
    pub engine: Engine,
    /// Extra modeled seconds the faulted operation holds its engine.
    pub extra_seconds: f64,
}

/// Outcome of submitting one attempt.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AttemptOutcome {
    /// Time the attempt's last scheduled operation finished.
    pub end: f64,
    /// Whether the whole HtoD → kernel → DtoH chain completed.
    pub completed: bool,
}

/// The pipeline simulator.
#[derive(Clone, Debug)]
pub struct PipelineSim {
    nr_buffers: usize,
    htod_free: f64,
    compute_free: f64,
    dtoh_free: f64,
    /// When each buffer set becomes reusable.
    buffer_free: Vec<f64>,
    /// Completed operations.
    pub timeline: Vec<TraceEntry>,
    next_job: usize,
}

impl PipelineSim {
    /// Create a pipeline with `nr_buffers` buffer sets (3 in the
    /// paper). A degenerate request of 0 buffers is clamped to 1 — a
    /// bufferless pipeline cannot schedule anything, and clamping keeps
    /// the zero-configuration path total rather than panicking.
    pub fn new(nr_buffers: usize) -> Self {
        let nr_buffers = nr_buffers.max(1);
        Self {
            nr_buffers,
            htod_free: 0.0,
            compute_free: 0.0,
            dtoh_free: 0.0,
            buffer_free: vec![0.0; nr_buffers],
            timeline: Vec::new(),
            next_job: 0,
        }
    }

    /// Number of buffer sets in the pipeline.
    pub fn nr_buffers(&self) -> usize {
        self.nr_buffers
    }

    /// Shrink (or grow) the buffer-set count mid-run — the mechanism
    /// behind the OOM degradation ladder's "reduce `nr_buffers`" rung.
    ///
    /// The new buffer sets all become reusable at the latest release
    /// time of the old ones: a conservative barrier, since reshaping
    /// the buffer pool on real hardware requires the in-flight jobs to
    /// drain first. Requests of 0 are clamped to 1 as in [`Self::new`].
    pub fn set_nr_buffers(&mut self, nr_buffers: usize) {
        let nr_buffers = nr_buffers.max(1);
        if nr_buffers == self.nr_buffers {
            return;
        }
        let barrier = self.buffer_free.iter().copied().fold(0.0, f64::max);
        self.nr_buffers = nr_buffers;
        self.buffer_free = vec![barrier; nr_buffers];
    }

    /// The next job index `submit` would assign.
    pub fn next_job(&self) -> usize {
        self.next_job
    }

    /// Submit one job (work group) with the given phase durations;
    /// returns the job's completion time. Zero-duration phases are
    /// scheduled but keep their engines free.
    pub fn submit(&mut self, t_htod: f64, t_kernel: f64, t_dtoh: f64) -> f64 {
        let job = self.next_job;
        self.submit_attempt(job, 0, 0.0, t_htod, t_kernel, t_dtoh, None)
            .end
    }

    /// Submit one attempt of `job`, optionally faulting mid-chain.
    ///
    /// `not_before` delays the attempt's HtoD start (retry backoff);
    /// `fault` truncates the chain at the faulting engine. The job's
    /// buffer set is released when the attempt's last operation ends —
    /// faulted attempts release their buffer at the fault, so a retry
    /// (or the next job) can claim it.
    #[allow(clippy::too_many_arguments)] // mirrors the three-phase chain + scheduling controls
    pub fn submit_attempt(
        &mut self,
        job: usize,
        attempt: u32,
        not_before: f64,
        t_htod: f64,
        t_kernel: f64,
        t_dtoh: f64,
        fault: Option<FaultPoint>,
    ) -> AttemptOutcome {
        self.next_job = self.next_job.max(job + 1);
        let buffer = job % self.nr_buffers;
        let fault_on = |engine: Engine| fault.filter(|f| f.engine == engine);

        // HtoD may start when the copy engine AND the buffer are free.
        let h_start = self.htod_free.max(self.buffer_free[buffer]).max(not_before);
        let end;
        let completed;
        if let Some(f) = fault_on(Engine::HtoD) {
            end = h_start + t_htod + f.extra_seconds;
            self.htod_free = end;
            self.push(Engine::HtoD, job, attempt, h_start, end, OpStatus::Faulted);
            completed = false;
        } else {
            let h_end = h_start + t_htod;
            self.htod_free = h_end;
            self.push(
                Engine::HtoD,
                job,
                attempt,
                h_start,
                h_end,
                OpStatus::Completed,
            );

            // Kernel waits for its input and the compute engine.
            let k_start = self.compute_free.max(h_end);
            if let Some(f) = fault_on(Engine::Compute) {
                end = k_start + t_kernel + f.extra_seconds;
                self.compute_free = end;
                self.push(
                    Engine::Compute,
                    job,
                    attempt,
                    k_start,
                    end,
                    OpStatus::Faulted,
                );
                completed = false;
            } else {
                let k_end = k_start + t_kernel;
                self.compute_free = k_end;
                self.push(
                    Engine::Compute,
                    job,
                    attempt,
                    k_start,
                    k_end,
                    OpStatus::Completed,
                );

                // DtoH waits for the kernel and the copy-back engine.
                let d_start = self.dtoh_free.max(k_end);
                if let Some(f) = fault_on(Engine::DtoH) {
                    end = d_start + t_dtoh + f.extra_seconds;
                    self.dtoh_free = end;
                    self.push(Engine::DtoH, job, attempt, d_start, end, OpStatus::Faulted);
                    completed = false;
                } else {
                    end = d_start + t_dtoh;
                    self.dtoh_free = end;
                    self.push(
                        Engine::DtoH,
                        job,
                        attempt,
                        d_start,
                        end,
                        OpStatus::Completed,
                    );
                    completed = true;
                }
            }
        }

        // Buffer is reusable once the attempt's last operation ended.
        self.buffer_free[buffer] = end;
        AttemptOutcome { end, completed }
    }

    fn push(
        &mut self,
        engine: Engine,
        job: usize,
        attempt: u32,
        start: f64,
        end: f64,
        status: OpStatus,
    ) {
        self.timeline.push(TraceEntry {
            engine,
            job,
            attempt,
            start,
            end,
            status,
        });
    }

    /// Total makespan so far (0 for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.timeline.iter().map(|t| t.end).fold(0.0, f64::max)
    }

    /// Sum of kernel (compute-engine) busy time.
    pub fn compute_busy(&self) -> f64 {
        self.timeline
            .iter()
            .filter(|t| t.engine == Engine::Compute)
            .map(|t| t.end - t.start)
            .sum()
    }

    /// The time everything would take without any overlap (serial sum).
    pub fn serial_time(&self) -> f64 {
        self.timeline.iter().map(|t| t.end - t.start).sum()
    }

    /// Number of operations recorded as faulted.
    pub fn nr_faulted_ops(&self) -> usize {
        self.timeline
            .iter()
            .filter(|t| t.status == OpStatus::Faulted)
            .count()
    }

    /// Render the Fig. 7-style timeline as ASCII (one row per engine;
    /// faulted operations render as `x`).
    pub fn render(&self, width: usize) -> String {
        let makespan = self.makespan().max(1e-12);
        let mut rows = [vec![b'.'; width], vec![b'.'; width], vec![b'.'; width]];
        for t in &self.timeline {
            let row = match t.engine {
                Engine::HtoD => 0,
                Engine::Compute => 1,
                Engine::DtoH => 2,
            };
            let a = ((t.start / makespan) * width as f64) as usize;
            let b = (((t.end / makespan) * width as f64) as usize).min(width);
            let glyph = match t.status {
                OpStatus::Completed => b"0123456789"[t.job % 10],
                OpStatus::Faulted => b'x',
            };
            for cell in &mut rows[row][a..b] {
                *cell = glyph;
            }
        }
        format!(
            "HtoD    |{}|\ncompute |{}|\nDtoH    |{}|",
            String::from_utf8_lossy(&rows[0]),
            String::from_utf8_lossy(&rows[1]),
            String::from_utf8_lossy(&rows[2]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_is_serial() {
        let mut sim = PipelineSim::new(3);
        let end = sim.submit(1.0, 2.0, 0.5);
        assert!((end - 3.5).abs() < 1e-12);
        assert!((sim.makespan() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn steady_state_hides_transfers_behind_kernels() {
        // With kernels longer than transfers, the pipeline throughput is
        // kernel-bound: N jobs ≈ first HtoD + N kernels + last DtoH.
        let mut sim = PipelineSim::new(3);
        let n = 20;
        for _ in 0..n {
            sim.submit(0.3, 1.0, 0.3);
        }
        let expect = 0.3 + n as f64 * 1.0 + 0.3;
        assert!(
            (sim.makespan() - expect).abs() < 1e-9,
            "makespan {} vs {}",
            sim.makespan(),
            expect
        );
        // significant overlap achieved versus serial execution
        assert!(sim.makespan() < 0.7 * sim.serial_time());
    }

    #[test]
    fn transfer_bound_pipeline() {
        // When transfers dominate, the copy engine is the bottleneck.
        let mut sim = PipelineSim::new(3);
        for _ in 0..10 {
            sim.submit(2.0, 0.5, 0.1);
        }
        assert!((sim.makespan() - (10.0 * 2.0 + 0.5 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn single_buffer_forces_serialization() {
        // One buffer set = no overlap at all between consecutive jobs.
        let mut sim = PipelineSim::new(1);
        for _ in 0..5 {
            sim.submit(1.0, 1.0, 1.0);
        }
        assert!((sim.makespan() - 15.0).abs() < 1e-9);
        // three buffers overlap the same workload
        let mut sim3 = PipelineSim::new(3);
        for _ in 0..5 {
            sim3.submit(1.0, 1.0, 1.0);
        }
        assert!(
            sim3.makespan() < 8.0,
            "triple buffering helps: {}",
            sim3.makespan()
        );
    }

    #[test]
    fn engines_never_overlap_themselves() {
        let mut sim = PipelineSim::new(3);
        for i in 0..8 {
            sim.submit(0.5 + 0.1 * i as f64, 1.0, 0.4);
        }
        for engine in [Engine::HtoD, Engine::Compute, Engine::DtoH] {
            let mut spans: Vec<(f64, f64)> = sim
                .timeline
                .iter()
                .filter(|t| t.engine == engine)
                .map(|t| (t.start, t.end))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-12, "{engine:?} overlaps itself");
            }
        }
    }

    #[test]
    fn job_phases_are_ordered() {
        let mut sim = PipelineSim::new(3);
        for _ in 0..6 {
            sim.submit(0.2, 0.7, 0.3);
        }
        for job in 0..6 {
            let ops: Vec<&TraceEntry> = sim.timeline.iter().filter(|t| t.job == job).collect();
            assert_eq!(ops.len(), 3);
            assert!(ops[0].end <= ops[1].start + 1e-12);
            assert!(ops[1].end <= ops[2].start + 1e-12);
        }
    }

    #[test]
    fn render_produces_three_rows() {
        let mut sim = PipelineSim::new(3);
        sim.submit(1.0, 1.0, 1.0);
        sim.submit(1.0, 1.0, 1.0);
        let text = sim.render(60);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("compute"));
        assert!(text.contains('0') && text.contains('1'));
    }

    #[test]
    fn zero_jobs_is_a_valid_empty_schedule() {
        // Edge case: an empty plan submits nothing. The schedule must
        // stay well-defined — zero makespan, zero busy time, an empty
        // timeline and a renderable (blank) Fig. 7 chart — not NaN or
        // a panic.
        let sim = PipelineSim::new(3);
        assert_eq!(sim.makespan(), 0.0);
        assert_eq!(sim.compute_busy(), 0.0);
        assert_eq!(sim.serial_time(), 0.0);
        assert!(sim.timeline.is_empty());
        assert_eq!(sim.nr_faulted_ops(), 0);
        let text = sim.render(40);
        assert_eq!(text.lines().count(), 3);
        assert!(!text.contains("NaN"));
    }

    #[test]
    fn zero_buffers_clamps_to_one_instead_of_panicking() {
        let mut sim = PipelineSim::new(0);
        assert_eq!(sim.nr_buffers(), 1);
        // behaves exactly like an explicit single-buffer pipeline
        for _ in 0..3 {
            sim.submit(1.0, 1.0, 1.0);
        }
        assert!((sim.makespan() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn single_buffer_zero_job_combinations_are_valid() {
        // nr_buffers == 1 with zero jobs: valid empty timeline.
        let sim = PipelineSim::new(1);
        assert_eq!(sim.makespan(), 0.0);
        assert!(sim.timeline.is_empty());
        // …and with a single zero-duration job: degenerate but finite.
        let mut sim = PipelineSim::new(1);
        let end = sim.submit(0.0, 0.0, 0.0);
        assert_eq!(end, 0.0);
        assert_eq!(sim.timeline.len(), 3);
        assert!(sim.makespan().is_finite());
    }

    #[test]
    fn faulted_htod_truncates_the_chain_and_frees_the_buffer() {
        let mut sim = PipelineSim::new(3);
        let out = sim.submit_attempt(
            0,
            0,
            0.0,
            1.0,
            2.0,
            0.5,
            Some(FaultPoint {
                engine: Engine::HtoD,
                extra_seconds: 0.0,
            }),
        );
        assert!(!out.completed);
        assert!((out.end - 1.0).abs() < 1e-12);
        assert_eq!(sim.timeline.len(), 1, "kernel/DtoH not scheduled");
        assert_eq!(sim.timeline[0].status, OpStatus::Faulted);
        assert_eq!(sim.nr_faulted_ops(), 1);

        // the retry reuses the same buffer as soon as the fault ended
        let retry = sim.submit_attempt(0, 1, 0.0, 1.0, 2.0, 0.5, None);
        assert!(retry.completed);
        assert!((retry.end - (1.0 + 1.0 + 2.0 + 0.5)).abs() < 1e-12);
        let attempts: Vec<u32> = sim.timeline.iter().map(|t| t.attempt).collect();
        assert_eq!(attempts, vec![0, 1, 1, 1]);
    }

    #[test]
    fn stalled_kernel_holds_the_compute_engine_for_the_watchdog_time() {
        let mut sim = PipelineSim::new(3);
        let out = sim.submit_attempt(
            0,
            0,
            0.0,
            0.5,
            1.0,
            0.5,
            Some(FaultPoint {
                engine: Engine::Compute,
                extra_seconds: 3.0,
            }),
        );
        assert!(!out.completed);
        // HtoD 0.5, kernel runs 1.0 then stalls 3.0 to the watchdog
        assert!((out.end - 4.5).abs() < 1e-12);
        // the next job's kernel cannot start before the stall cleared
        sim.submit_attempt(1, 0, 0.0, 0.5, 1.0, 0.0, None);
        let k1 = sim
            .timeline
            .iter()
            .find(|t| t.job == 1 && t.engine == Engine::Compute)
            .unwrap();
        assert!(k1.start >= 4.5 - 1e-12);
    }

    #[test]
    fn not_before_delays_the_retry_start() {
        let mut sim = PipelineSim::new(3);
        sim.submit_attempt(0, 0, 0.0, 0.1, 0.1, 0.1, None);
        let out = sim.submit_attempt(1, 0, 5.0, 0.1, 0.1, 0.1, None);
        let htod = sim
            .timeline
            .iter()
            .find(|t| t.job == 1 && t.engine == Engine::HtoD)
            .unwrap();
        assert!((htod.start - 5.0).abs() < 1e-12, "backoff delays HtoD");
        assert!((out.end - 5.3).abs() < 1e-12);
    }

    #[test]
    fn render_marks_faulted_ops() {
        let mut sim = PipelineSim::new(3);
        sim.submit_attempt(
            0,
            0,
            0.0,
            1.0,
            1.0,
            1.0,
            Some(FaultPoint {
                engine: Engine::Compute,
                extra_seconds: 0.0,
            }),
        );
        sim.submit_attempt(0, 1, 0.0, 1.0, 1.0, 1.0, None);
        let text = sim.render(60);
        assert!(text.contains('x'), "faulted op rendered: {text}");
    }

    #[test]
    fn shrinking_buffers_drains_before_reuse() {
        let mut sim = PipelineSim::new(3);
        // Three jobs occupy all three buffer sets.
        for j in 0..3 {
            sim.submit_attempt(j, 0, 0.0, 1.0, 1.0, 1.0, None);
        }
        let drained = sim.buffer_free.iter().copied().fold(0.0, f64::max);
        sim.set_nr_buffers(1);
        assert_eq!(sim.nr_buffers(), 1);
        // The single surviving buffer set only becomes reusable once
        // every old occupant has released — the next HtoD waits.
        let out = sim.submit_attempt(3, 0, 0.0, 1.0, 1.0, 1.0, None);
        let htod = sim
            .timeline
            .iter()
            .find(|t| t.job == 3 && t.engine == Engine::HtoD)
            .unwrap();
        assert!(htod.start >= drained - 1e-12, "buffer pool drains first");
        assert!(out.completed);
        // Zero clamps to one, same-size is a no-op.
        sim.set_nr_buffers(0);
        assert_eq!(sim.nr_buffers(), 1);
    }
}
