//! CUDA-stream pipeline simulation — the triple-buffering of Fig. 7.
//!
//! The paper overlaps PCI-e transfers with kernel execution using three
//! host threads, three buffer sets and three CUDA streams (one per
//! engine: host-to-device copies, kernel execution, device-to-host
//! copies). This module reproduces that schedule as a discrete-event
//! simulation: each engine serializes its own operations, operations of
//! one job are chained HtoD → kernel → DtoH, and a job may only start
//! its HtoD once its buffer set (job index mod #buffers) has been
//! released by the previous occupant — exactly the dashed-arrow
//! constraint in Fig. 7.

/// The three hardware engines of the pipeline.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Host-to-device copy engine.
    HtoD,
    /// Kernel execution engine.
    Compute,
    /// Device-to-host copy engine.
    DtoH,
}

/// One scheduled operation in the timeline.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Which engine executed the operation.
    pub engine: Engine,
    /// Job (work group) index.
    pub job: usize,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// The pipeline simulator.
#[derive(Clone, Debug)]
pub struct PipelineSim {
    nr_buffers: usize,
    htod_free: f64,
    compute_free: f64,
    dtoh_free: f64,
    /// When each buffer set becomes reusable.
    buffer_free: Vec<f64>,
    /// Completed operations.
    pub timeline: Vec<TraceEntry>,
    next_job: usize,
}

impl PipelineSim {
    /// Create a pipeline with `nr_buffers` buffer sets (3 in the paper).
    pub fn new(nr_buffers: usize) -> Self {
        assert!(nr_buffers >= 1);
        Self {
            nr_buffers,
            htod_free: 0.0,
            compute_free: 0.0,
            dtoh_free: 0.0,
            buffer_free: vec![0.0; nr_buffers],
            timeline: Vec::new(),
            next_job: 0,
        }
    }

    /// Submit one job (work group) with the given phase durations;
    /// returns the job's completion time. Zero-duration phases are
    /// scheduled but keep their engines free.
    pub fn submit(&mut self, t_htod: f64, t_kernel: f64, t_dtoh: f64) -> f64 {
        let job = self.next_job;
        self.next_job += 1;
        let buffer = job % self.nr_buffers;

        // HtoD may start when the copy engine AND the buffer are free.
        let h_start = self.htod_free.max(self.buffer_free[buffer]);
        let h_end = h_start + t_htod;
        self.htod_free = h_end;
        self.timeline.push(TraceEntry {
            engine: Engine::HtoD,
            job,
            start: h_start,
            end: h_end,
        });

        // Kernel waits for its input and the compute engine.
        let k_start = self.compute_free.max(h_end);
        let k_end = k_start + t_kernel;
        self.compute_free = k_end;
        self.timeline.push(TraceEntry {
            engine: Engine::Compute,
            job,
            start: k_start,
            end: k_end,
        });

        // DtoH waits for the kernel and the copy-back engine.
        let d_start = self.dtoh_free.max(k_end);
        let d_end = d_start + t_dtoh;
        self.dtoh_free = d_end;
        self.timeline.push(TraceEntry {
            engine: Engine::DtoH,
            job,
            start: d_start,
            end: d_end,
        });

        // Buffer is reusable once the results left the device.
        self.buffer_free[buffer] = d_end;
        d_end
    }

    /// Total makespan so far.
    pub fn makespan(&self) -> f64 {
        self.timeline.iter().map(|t| t.end).fold(0.0, f64::max)
    }

    /// Sum of kernel (compute-engine) busy time.
    pub fn compute_busy(&self) -> f64 {
        self.timeline
            .iter()
            .filter(|t| t.engine == Engine::Compute)
            .map(|t| t.end - t.start)
            .sum()
    }

    /// The time everything would take without any overlap (serial sum).
    pub fn serial_time(&self) -> f64 {
        self.timeline.iter().map(|t| t.end - t.start).sum()
    }

    /// Render the Fig. 7-style timeline as ASCII (one row per engine).
    pub fn render(&self, width: usize) -> String {
        let makespan = self.makespan().max(1e-12);
        let mut rows = [vec![b'.'; width], vec![b'.'; width], vec![b'.'; width]];
        for t in &self.timeline {
            let row = match t.engine {
                Engine::HtoD => 0,
                Engine::Compute => 1,
                Engine::DtoH => 2,
            };
            let a = ((t.start / makespan) * width as f64) as usize;
            let b = (((t.end / makespan) * width as f64) as usize).min(width);
            let glyph = b"0123456789"[t.job % 10];
            for cell in rows[row][a..b].iter_mut() {
                *cell = glyph;
            }
        }
        format!(
            "HtoD    |{}|\ncompute |{}|\nDtoH    |{}|",
            String::from_utf8_lossy(&rows[0]),
            String::from_utf8_lossy(&rows[1]),
            String::from_utf8_lossy(&rows[2]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_job_is_serial() {
        let mut sim = PipelineSim::new(3);
        let end = sim.submit(1.0, 2.0, 0.5);
        assert!((end - 3.5).abs() < 1e-12);
        assert!((sim.makespan() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn steady_state_hides_transfers_behind_kernels() {
        // With kernels longer than transfers, the pipeline throughput is
        // kernel-bound: N jobs ≈ first HtoD + N kernels + last DtoH.
        let mut sim = PipelineSim::new(3);
        let n = 20;
        for _ in 0..n {
            sim.submit(0.3, 1.0, 0.3);
        }
        let expect = 0.3 + n as f64 * 1.0 + 0.3;
        assert!(
            (sim.makespan() - expect).abs() < 1e-9,
            "makespan {} vs {}",
            sim.makespan(),
            expect
        );
        // significant overlap achieved versus serial execution
        assert!(sim.makespan() < 0.7 * sim.serial_time());
    }

    #[test]
    fn transfer_bound_pipeline() {
        // When transfers dominate, the copy engine is the bottleneck.
        let mut sim = PipelineSim::new(3);
        for _ in 0..10 {
            sim.submit(2.0, 0.5, 0.1);
        }
        assert!((sim.makespan() - (10.0 * 2.0 + 0.5 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn single_buffer_forces_serialization() {
        // One buffer set = no overlap at all between consecutive jobs.
        let mut sim = PipelineSim::new(1);
        for _ in 0..5 {
            sim.submit(1.0, 1.0, 1.0);
        }
        assert!((sim.makespan() - 15.0).abs() < 1e-9);
        // three buffers overlap the same workload
        let mut sim3 = PipelineSim::new(3);
        for _ in 0..5 {
            sim3.submit(1.0, 1.0, 1.0);
        }
        assert!(
            sim3.makespan() < 8.0,
            "triple buffering helps: {}",
            sim3.makespan()
        );
    }

    #[test]
    fn engines_never_overlap_themselves() {
        let mut sim = PipelineSim::new(3);
        for i in 0..8 {
            sim.submit(0.5 + 0.1 * i as f64, 1.0, 0.4);
        }
        for engine in [Engine::HtoD, Engine::Compute, Engine::DtoH] {
            let mut spans: Vec<(f64, f64)> = sim
                .timeline
                .iter()
                .filter(|t| t.engine == engine)
                .map(|t| (t.start, t.end))
                .collect();
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-12, "{engine:?} overlaps itself");
            }
        }
    }

    #[test]
    fn job_phases_are_ordered() {
        let mut sim = PipelineSim::new(3);
        for _ in 0..6 {
            sim.submit(0.2, 0.7, 0.3);
        }
        for job in 0..6 {
            let ops: Vec<&TraceEntry> = sim.timeline.iter().filter(|t| t.job == job).collect();
            assert_eq!(ops.len(), 3);
            assert!(ops[0].end <= ops[1].start + 1e-12);
            assert!(ops[1].end <= ops[2].start + 1e-12);
        }
    }

    #[test]
    fn render_produces_three_rows() {
        let mut sim = PipelineSim::new(3);
        sim.submit(1.0, 1.0, 1.0);
        sim.submit(1.0, 1.0, 1.0);
        let text = sim.render(60);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("compute"));
        assert!(text.contains('0') && text.contains('1'));
    }
}
