//! Kernel and transfer timing model.
//!
//! A kernel's modeled duration is its most-binding ceiling:
//!
//! `t = max(t_fma, t_sincos, t_dram, t_shared) / scheduling_efficiency`
//!
//! where the first two terms follow the architecture's sincos model
//! (Sec. VI-C: concurrent SFU queue on PASCAL; ALU slots on FIJI) and
//! the last two are the bandwidth ceilings of the Fig. 11 / Fig. 13
//! rooflines. Transfers ride the PCI-e bus at its modeled bandwidth.

use crate::device::Device;
use idg_perf::mix::modeled_kernel_seconds;
use idg_perf::OpCounts;

/// Modeled execution time of a kernel described by `counts` on `device`
/// (delegates to the shared timing formula in `idg-perf`).
pub fn kernel_time(device: &Device, counts: &OpCounts) -> f64 {
    modeled_kernel_seconds(&device.arch, counts, device.scheduling_efficiency)
}

/// Modeled PCI-e transfer time for `bytes` (either direction).
pub fn transfer_time(device: &Device, bytes: u64) -> f64 {
    let bw = device.arch.pcie_bw_gbps.unwrap_or(12.0) * 1e9;
    // ~2 µs DMA setup latency per transfer
    2e-6 + bytes as f64 / bw
}

/// Modeled duration of the batched subgrid FFTs: `4·count` planes of
/// `n × n` at `5·N·log₂N` flops per 1-D transform, executed at a
/// conservative fraction of peak (vendor FFT libraries reach roughly a
/// third of peak on these sizes).
pub fn subgrid_fft_time(device: &Device, nr_subgrids: usize, n: usize) -> f64 {
    let n_f = n as f64;
    let flops_per_plane = 2.0 * n_f * 5.0 * n_f * n_f.log2(); // rows+cols
    let total = 4.0 * nr_subgrids as f64 * flops_per_plane;
    let rate = device.arch.peak_tops() * 1e12 / 3.0;
    total / rate
}

/// Modeled duration of the GPU adder/splitter: device-memory bound over
/// subgrid reads plus atomic grid updates (Sec. V-C e).
pub fn adder_time(device: &Device, nr_subgrids: usize, n: usize) -> f64 {
    let bytes = nr_subgrids as u64 * (4 * n * n) as u64 * 8 * 2; // read + RMW
    bytes as f64 / (device.arch.mem_bw_gbps * 1e9) / device.scheduling_efficiency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use idg_perf::gridder_counts;
    use idg_plan::WorkItem;
    use idg_types::Baseline;

    fn items(count: usize, timesteps: usize) -> Vec<WorkItem> {
        (0..count)
            .map(|i| WorkItem {
                baseline_index: i,
                baseline: Baseline::new(0, 1),
                time_offset: 0,
                nr_timesteps: timesteps,
                channel_offset: 0,
                nr_channels: 16,
                aterm_index: 0,
                coord_x: 0,
                coord_y: 0,
                w_plane: 0,
            })
            .collect()
    }

    #[test]
    fn pascal_gridder_lands_near_paper_fraction() {
        // Fig. 11: PASCAL gridder at 74 % of peak. Our model: the
        // shared-memory ceiling (OI ≈ 0.82 ops/B) times the scheduling
        // efficiency.
        let device = Device::pascal();
        let work = items(64, 128);
        let counts = gridder_counts(&work, 24);
        let t = kernel_time(&device, &counts);
        let achieved = counts.total_ops() as f64 / t;
        let fraction = achieved / (device.arch.peak_tops() * 1e12);
        assert!(
            (0.6..0.85).contains(&fraction),
            "PASCAL modeled gridder fraction {fraction}"
        );
    }

    #[test]
    fn fiji_is_sincos_limited() {
        let device = Device::fiji();
        let work = items(64, 128);
        let counts = gridder_counts(&work, 24);
        let t = kernel_time(&device, &counts);
        let achieved = counts.total_ops() as f64 / t;
        let fraction = achieved / (device.arch.peak_tops() * 1e12);
        assert!(
            (0.3..0.55).contains(&fraction),
            "FIJI modeled gridder fraction {fraction}"
        );
    }

    #[test]
    fn pascal_beats_fiji_in_efficiency_but_both_are_fast() {
        let work = items(32, 64);
        let counts = gridder_counts(&work, 24);
        let tp = kernel_time(&Device::pascal(), &counts);
        let tf = kernel_time(&Device::fiji(), &counts);
        let fp = counts.total_ops() as f64 / tp / (9.22e12);
        let ff = counts.total_ops() as f64 / tf / (8.60e12);
        assert!(fp > ff, "PASCAL more efficient: {fp} vs {ff}");
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let d = Device::pascal();
        let t1 = transfer_time(&d, 12_000_000);
        let t2 = transfer_time(&d, 24_000_000);
        assert!(t2 > t1);
        // 12 MB at 12 GB/s ≈ 1 ms + latency
        assert!((t1 - 0.001).abs() < 2e-4);
    }

    #[test]
    fn kernel_time_is_additive_in_work() {
        let d = Device::pascal();
        let c1 = gridder_counts(&items(10, 64), 24);
        let c2 = gridder_counts(&items(20, 64), 24);
        let t1 = kernel_time(&d, &c1);
        let t2 = kernel_time(&d, &c2);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fft_and_adder_are_fast_relative_to_gridder() {
        // Fig. 9: "runtime is dominated by the gridder and degridder
        // kernels (more than 93 %)".
        let d = Device::pascal();
        let work = items(256, 128);
        let counts = gridder_counts(&work, 24);
        let t_grid = kernel_time(&d, &counts);
        let t_fft = subgrid_fft_time(&d, 256, 24);
        let t_add = adder_time(&d, 256, 24);
        assert!(
            (t_fft + t_add) < 0.07 * t_grid,
            "fft {t_fft} + adder {t_add} vs gridder {t_grid}"
        );
    }
}
