//! GPU-mapped gridder and degridder kernels, executed by the device
//! model.
//!
//! These functions execute the *exact parallel decomposition* of
//! Sec. V-C on host threads:
//!
//! * **gridder** — one thread block per work item; threads are mapped
//!   onto pixels (collapsed y/x loops); the visibility batch is staged
//!   into a shared-memory buffer bounded by the device's per-block
//!   shared capacity; every thread accumulates its pixel's four
//!   polarizations in registers and writes once at the end (coalesced);
//! * **degridder** — threads take two roles: in the *pixel role* they
//!   cooperatively produce a batch of corrected pixels (A-term sandwich,
//!   taper, geometry) in shared memory; in the *visibility role* each
//!   thread folds the staged batch into its visibility's register
//!   accumulators; the role switch repeats per pixel batch.
//!
//! Arithmetic uses `Accuracy::Fast` — the `--use_fast_math` analogue —
//! and accumulates in the same order as the reference kernels, so the
//! results are directly comparable (tests assert closeness to
//! `idg-kernels`' reference output).

use crate::device::Device;
use idg_kernels::buffers::{pixel_index, SubgridArray};
use idg_kernels::cache::{GeometryKey, KernelCache};
use idg_kernels::geometry::KernelGeometry;
use idg_kernels::KernelData;
use idg_math::{sincos, Accuracy};
use idg_obs::{KernelCounters, KernelStage};
use idg_perf::{degridder_counts, gridder_counts, OpCounts};
use idg_plan::WorkItem;
use idg_types::{Cf32, IdgError, Jones, Uvw, Visibility};
use rayon::prelude::*;

/// Bytes of one 4-pol complex-f32 quantity (visibility or pixel).
const BYTES_POL4: u64 = 32;
/// Bytes of one staged uvw coordinate (3 × f32).
const BYTES_UVW: u64 = 12;

/// One staged visibility in the gridder's shared buffer.
#[derive(Copy, Clone)]
struct SharedVis {
    uvw: Uvw,
    freq_scale: f32,
    pols: [Cf32; 4],
    phase_ref: f32, // reserved: per-channel φ-offset base (unused; offsets are per-pixel)
}

/// Per-thread gridder state, reused across work items (`for_each_init`):
/// register accumulators, per-item phase offsets and the shared-memory
/// staging buffer.
struct GridderScratch {
    regs: Vec<[Cf32; 4]>,
    offs: Vec<f32>,
    shared: Vec<SharedVis>,
}

/// Per-thread degridder state, reused across work items: register
/// accumulators plus the shared-memory pixel/geometry batch.
struct DegridderScratch {
    regs: Vec<[Cf32; 4]>,
    sh_pix: Vec<[Cf32; 4]>,
    sh_geo: Vec<(f32, f32, f32, f32)>,
}

/// Execute the gridder with the GPU thread-block mapping; returns the
/// operation counters of the launch, or a typed error when the launch
/// configuration is inconsistent with its inputs.
pub fn gridder_gpu(
    data: &KernelData<'_>,
    items: &[WorkItem],
    subgrids: &mut SubgridArray,
    device: &Device,
    cache: &KernelCache,
) -> Result<OpCounts, IdgError> {
    if subgrids.count() != items.len() {
        return Err(IdgError::ShapeMismatch {
            what: "subgrids (one per work item)",
            expected: items.len(),
            actual: subgrids.count(),
        });
    }
    data.validate()?;

    let geom = KernelGeometry::new(data.obs);
    let n = geom.subgrid_size;
    let n2 = n * n;
    let nr_time = data.obs.nr_timesteps;
    let nr_chan = data.obs.nr_channels();
    let block_size = device.gridder_block_size;
    let batch_size = device.gridder_batch_size();
    let planes = cache.geometry(GeometryKey::new(n, geom.image_size));
    let scales: Vec<f32> = data
        .obs
        .frequencies
        .iter()
        .map(|f| KernelGeometry::phase_scale(*f) as f32)
        .collect();

    // one thread block per work item; blocks are independent
    items
        .par_iter()
        .zip(subgrids.as_mut_slice().par_chunks_exact_mut(4 * n2))
        .for_each_init(
            || GridderScratch {
                regs: Vec::new(),
                offs: Vec::new(),
                shared: Vec::new(),
            },
            |scr, (item, subgrid)| {
                let (u0, v0, w0) = geom.subgrid_center_uvw(item);
                let base = item.baseline_index * nr_time + item.time_offset;
                let item_chan = item.nr_channels;
                let tc = item.nr_timesteps * item_chan;

                // Measured op tally for this block, incremented beside the
                // staging and inner sincos/accumulate loops with their real
                // trip counts; the uvw track is read once per timestep.
                let mut tally = KernelCounters {
                    invocations: 1,
                    dram_bytes: item.nr_timesteps as u64 * BYTES_UVW,
                    ..KernelCounters::default()
                };

                // "registers": per-pixel accumulators held across batches
                scr.regs.resize(n2, [Cf32::zero(); 4]);
                scr.regs[..n2].fill([Cf32::zero(); 4]);
                // per-item phase offsets (l/m/n come from the cached planes)
                scr.offs.resize(n2, 0.0);
                for i in 0..n2 {
                    scr.offs[i] = (2.0
                        * std::f64::consts::PI
                        * (u0 * planes.l[i] + v0 * planes.m[i] + w0 * planes.n_term[i]))
                        as f32;
                }

                // shared-memory staging buffer, capacity-limited
                let shared = &mut scr.shared;
                shared.clear();
                shared.reserve(batch_size.min(tc));

                let mut k0 = 0usize;
                while k0 < tc {
                    let k1 = (k0 + batch_size).min(tc);
                    // cooperative load + transpose into shared memory
                    shared.clear();
                    for k in k0..k1 {
                        let (dt, ci) = (k / item_chan, k % item_chan);
                        let c = item.channel_offset + ci;
                        shared.push(SharedVis {
                            uvw: data.uvw[base + dt],
                            freq_scale: scales[c],
                            pols: data.visibilities[(base + dt) * nr_chan + c].pols,
                            phase_ref: 0.0,
                        });
                    }
                    // each visibility is staged exactly once across batches
                    tally.visibilities += shared.len() as u64;
                    tally.dram_bytes += shared.len() as u64 * BYTES_POL4;

                    // __syncthreads(); threads iterate the staged batch
                    for tid in 0..block_size {
                        let mut i = tid;
                        while i < n2 {
                            let (l, m, nt, off) =
                                (planes.lf[i], planes.mf[i], planes.nf[i], scr.offs[i]);
                            let acc = &mut scr.regs[i];
                            for sv in shared.iter() {
                                let phase_index =
                                    sv.uvw.u.mul_add(l, sv.uvw.v.mul_add(m, sv.uvw.w * nt));
                                let phase = sv.freq_scale.mul_add(phase_index, -off) + sv.phase_ref;
                                let (s, c) = sincos(phase, Accuracy::Fast);
                                let phasor = Cf32::new(c, s);
                                for p in 0..4 {
                                    acc[p].mul_acc(phasor, sv.pols[p]);
                                }
                            }
                            tally.sincos_pairs += shared.len() as u64;
                            tally.fmas += 17 * shared.len() as u64; // phase + 4 cmul-acc
                            tally.shared_bytes += shared.len() as u64 * (BYTES_POL4 + BYTES_UVW);
                            i += block_size;
                        }
                    }
                    k0 = k1;
                }

                // epilogue: A-term sandwich + taper, coalesced store
                let ap_plane = data.aterms.plane(item.aterm_index, item.baseline.station1);
                let aq_plane = data.aterms.plane(item.aterm_index, item.baseline.station2);
                tally.dram_bytes += (ap_plane.len() + aq_plane.len()) as u64 * BYTES_POL4;
                for i in 0..n2 {
                    let (y, x) = (i / n, i % n);
                    let pix = Jones::from_pols(scr.regs[i]);
                    let corrected = ap_plane[i]
                        .hermitian()
                        .mul(pix)
                        .mul(aq_plane[i])
                        .scale(data.taper[i]);
                    for (p, v) in corrected.to_pols().into_iter().enumerate() {
                        subgrid[pixel_index(n, p, y, x)] = v;
                    }
                    tally.dram_bytes += BYTES_POL4; // output pixel written once
                }
                idg_obs::add_kernel(KernelStage::Gridder, &tally);
            },
        );

    Ok(gridder_counts(items, n))
}

/// Execute the degridder with the dual-role GPU mapping; returns the
/// operation counters of the launch, or a typed error when the launch
/// configuration is inconsistent with its inputs.
pub fn degridder_gpu(
    data: &KernelData<'_>,
    items: &[WorkItem],
    subgrids: &SubgridArray,
    vis_out: &mut [Visibility<f32>],
    device: &Device,
    cache: &KernelCache,
) -> Result<OpCounts, IdgError> {
    if subgrids.count() != items.len() {
        return Err(IdgError::ShapeMismatch {
            what: "subgrids (one per work item)",
            expected: items.len(),
            actual: subgrids.count(),
        });
    }
    if vis_out.len() != data.obs.nr_visibilities() {
        return Err(IdgError::ShapeMismatch {
            what: "visibility output buffer",
            expected: data.obs.nr_visibilities(),
            actual: vis_out.len(),
        });
    }
    data.validate()?;

    let geom = KernelGeometry::new(data.obs);
    let n = geom.subgrid_size;
    let n2 = n * n;
    let nr_time = data.obs.nr_timesteps;
    let nr_chan = data.obs.nr_channels();
    let block_size = device.degridder_block_size;
    let batch_size = device.degridder_batch_size().min(n2);
    let planes = cache.geometry(GeometryKey::new(n, geom.image_size));
    let scales: Vec<f32> = data
        .obs
        .frequencies
        .iter()
        .map(|f| KernelGeometry::phase_scale(*f) as f32)
        .collect();

    let results: Vec<(&WorkItem, Vec<Visibility<f32>>)> = items
        .par_iter()
        .enumerate()
        .map_init(
            || DegridderScratch {
                regs: Vec::new(),
                sh_pix: Vec::new(),
                sh_geo: Vec::new(),
            },
            |scr, (s_idx, item)| {
                let subgrid = subgrids.subgrid(s_idx);
                let (u0, v0, w0) = geom.subgrid_center_uvw(item);
                let base = item.baseline_index * nr_time + item.time_offset;
                let item_chan = item.nr_channels;
                let tc = item.nr_timesteps * item_chan;
                let ap_plane = data.aterms.plane(item.aterm_index, item.baseline.station1);
                let aq_plane = data.aterms.plane(item.aterm_index, item.baseline.station2);

                // Measured op tally (see gridder_gpu). The uvw track and
                // both A-term planes are read once per item.
                let mut tally = KernelCounters {
                    invocations: 1,
                    dram_bytes: item.nr_timesteps as u64 * BYTES_UVW
                        + (ap_plane.len() + aq_plane.len()) as u64 * BYTES_POL4,
                    ..KernelCounters::default()
                };

                // "registers": per-visibility accumulators across batches
                scr.regs.resize(tc, [Cf32::zero(); 4]);
                scr.regs[..tc].fill([Cf32::zero(); 4]);
                // shared memory: one batch of corrected pixels + geometry
                scr.sh_pix.resize(batch_size, [Cf32::zero(); 4]);
                scr.sh_geo.resize(batch_size, (0.0, 0.0, 0.0, 0.0));

                let mut i0 = 0usize;
                while i0 < n2 {
                    let i1 = (i0 + batch_size).min(n2);
                    // pixel role: threads fill the shared batch (second
                    // mapping of Sec. V-C c: collapse y/x, apply Lines 2–3;
                    // l/m/n come from the cached planes)
                    for (slot, i) in (i0..i1).enumerate() {
                        let (y, x) = (i / n, i % n);
                        let off = (2.0
                            * std::f64::consts::PI
                            * (u0 * planes.l[i] + v0 * planes.m[i] + w0 * planes.n_term[i]))
                            as f32;
                        scr.sh_geo[slot] = (planes.lf[i], planes.mf[i], planes.nf[i], off);
                        let raw = Jones::from_pols([
                            subgrid[pixel_index(n, 0, y, x)],
                            subgrid[pixel_index(n, 1, y, x)],
                            subgrid[pixel_index(n, 2, y, x)],
                            subgrid[pixel_index(n, 3, y, x)],
                        ]);
                        scr.sh_pix[slot] = ap_plane[i]
                            .sandwich(raw, aq_plane[i])
                            .scale(data.taper[i])
                            .to_pols();
                    }
                    // each pixel is staged exactly once across batches
                    tally.dram_bytes += (i1 - i0) as u64 * BYTES_POL4;

                    // __syncthreads(); visibility role: each thread folds the
                    // batch into its visibilities (first mapping)
                    for tid in 0..block_size {
                        let mut k = tid;
                        while k < tc {
                            let (dt, ci) = (k / item_chan, k % item_chan);
                            let uvw_m = data.uvw[base + dt];
                            let scale = scales[item.channel_offset + ci];
                            let acc = &mut scr.regs[k];
                            for slot in 0..(i1 - i0) {
                                let (l, m, nt, off) = scr.sh_geo[slot];
                                let phase_index =
                                    uvw_m.u.mul_add(l, uvw_m.v.mul_add(m, uvw_m.w * nt));
                                let phase = (-scale).mul_add(phase_index, off);
                                let (s, cc) = sincos(phase, Accuracy::Fast);
                                let phasor = Cf32::new(cc, s);
                                for p in 0..4 {
                                    acc[p].mul_acc(phasor, scr.sh_pix[slot][p]);
                                }
                            }
                            tally.sincos_pairs += (i1 - i0) as u64;
                            tally.fmas += 17 * (i1 - i0) as u64; // phase + 4 cmul-acc
                            tally.shared_bytes += (i1 - i0) as u64 * (BYTES_POL4 + 16 + BYTES_UVW);
                            k += block_size;
                        }
                    }
                    i0 = i1;
                }

                // every register accumulator becomes one predicted visibility
                tally.visibilities += tc as u64;
                tally.dram_bytes += tc as u64 * BYTES_POL4;
                idg_obs::add_kernel(KernelStage::Degridder, &tally);

                let out: Vec<Visibility<f32>> = scr.regs[..tc]
                    .iter()
                    .map(|pols| Visibility { pols: *pols })
                    .collect();
                (item, out)
            },
        )
        .collect();

    // scatter per (timestep, channel-group) — blocks are disjoint
    for (item, block) in results {
        let base = item.baseline_index * nr_time + item.time_offset;
        let item_chan = item.nr_channels;
        for dt in 0..item.nr_timesteps {
            let dst = (base + dt) * nr_chan + item.channel_offset;
            vis_out[dst..dst + item_chan]
                .copy_from_slice(&block[dt * item_chan..(dt + 1) * item_chan]);
        }
    }

    Ok(degridder_counts(items, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use idg_kernels::{degridder_reference, gridder_reference};
    use idg_plan::Plan;
    use idg_telescope::{Dataset, GaussianBeam, IdentityATerm, Layout, SkyModel};
    use idg_types::Observation;

    fn dataset(with_beam: bool) -> Dataset {
        let obs = Observation::builder()
            .stations(6)
            .timesteps(24)
            .channels(4, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(8)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(6, 900.0, 41);
        let sky = SkyModel::random(&obs, 5, 0.6, 43);
        if with_beam {
            let beam = GaussianBeam::new(&obs, 0.8, 47);
            Dataset::simulate(obs, &layout, sky, &beam)
        } else {
            Dataset::simulate(obs, &layout, sky, &IdentityATerm)
        }
    }

    fn close_subgrids(a: &SubgridArray, b: &SubgridArray, tol: f32) {
        let scale = b.as_slice().iter().map(|c| c.abs()).fold(1.0f32, f32::max);
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!((*x - *y).abs() / scale < tol, "pixel {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gpu_gridder_matches_reference_on_both_devices() {
        let ds = dataset(true);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut gold = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_reference(&data, &plan.items, &mut gold).expect("kernel run");

        for device in [Device::pascal(), Device::fiji()] {
            let mut sim = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
            let counts =
                gridder_gpu(&data, &plan.items, &mut sim, &device, &KernelCache::new()).unwrap();
            close_subgrids(&sim, &gold, 5e-4);
            assert_eq!(counts.rho(), 17.0);
            assert!(counts.visibilities > 0);
        }
    }

    #[test]
    fn gpu_degridder_matches_reference() {
        let ds = dataset(true);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");

        let mut gold = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        degridder_reference(&data, &plan.items, &subgrids, &mut gold).expect("kernel run");

        let device = Device::pascal();
        let mut sim = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        let counts = degridder_gpu(
            &data,
            &plan.items,
            &subgrids,
            &mut sim,
            &device,
            &KernelCache::new(),
        )
        .unwrap();
        assert_eq!(counts.rho(), 17.0);

        let scale = gold
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(1.0f32, f32::max);
        for (i, (a, b)) in sim.iter().zip(&gold).enumerate() {
            for p in 0..4 {
                assert!(
                    (a.pols[p] - b.pols[p]).abs() / scale < 1e-3,
                    "vis {i} pol {p}: {} vs {}",
                    a.pols[p],
                    b.pols[p]
                );
            }
        }
    }

    #[test]
    fn small_shared_memory_still_correct() {
        // Force multiple batches per work item: shrink shared memory so
        // the staging loop runs several rounds.
        let ds = dataset(false);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut tiny = Device::pascal();
        tiny.shared_mem_per_block = 1024; // ~11 visibilities per batch
        assert!(tiny.gridder_batch_size() < 16);

        let mut gold = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_reference(&data, &plan.items, &mut gold).expect("kernel run");
        let mut sim = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        gridder_gpu(&data, &plan.items, &mut sim, &tiny, &KernelCache::new()).unwrap();
        close_subgrids(&sim, &gold, 5e-4);
    }

    #[test]
    fn counts_match_perf_formulas() {
        let ds = dataset(false);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut sg = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        let counts = gridder_gpu(
            &data,
            &plan.items,
            &mut sg,
            &Device::pascal(),
            &KernelCache::new(),
        )
        .unwrap();
        let expect = idg_perf::gridder_counts(&plan.items, ds.obs.subgrid_size);
        assert_eq!(counts, expect);
    }

    /// The obs-measured counters (incremented at the real call sites)
    /// must equal the analytic model to the integer, for both kernels.
    #[test]
    fn measured_counters_match_analytic_model() {
        let ds = dataset(true);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let n = ds.obs.subgrid_size;
        let taper = idg_math::spheroidal_2d(n);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };

        let session = idg_obs::Session::begin("gridding");
        let mut sg = SubgridArray::new(plan.nr_subgrids(), n);
        gridder_gpu(
            &data,
            &plan.items,
            &mut sg,
            &Device::pascal(),
            &KernelCache::new(),
        )
        .unwrap();
        let mut vis = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        degridder_gpu(
            &data,
            &plan.items,
            &sg,
            &mut vis,
            &Device::pascal(),
            &KernelCache::new(),
        )
        .unwrap();
        let trace = session.finish();

        let g_expect = idg_perf::gridder_counts(&plan.items, n);
        let g = trace.metrics.gridder;
        assert_eq!(g.sincos_pairs, g_expect.sincos_pairs);
        assert_eq!(g.fmas, g_expect.fmas);
        assert_eq!(g.dram_bytes, g_expect.dram_bytes);
        assert_eq!(g.shared_bytes, g_expect.shared_bytes);
        assert_eq!(g.visibilities, g_expect.visibilities);
        assert_eq!(g.invocations, plan.items.len() as u64);

        let d_expect = idg_perf::degridder_counts(&plan.items, n);
        let d = trace.metrics.degridder;
        assert_eq!(d.sincos_pairs, d_expect.sincos_pairs);
        assert_eq!(d.fmas, d_expect.fmas);
        assert_eq!(d.dram_bytes, d_expect.dram_bytes);
        assert_eq!(d.shared_bytes, d_expect.shared_bytes);
        assert_eq!(d.visibilities, d_expect.visibilities);
    }
}
