//! Deterministic fault injection for the device model.
//!
//! Real devices throw faults the paper's Fig. 7 pipeline has to
//! survive in production: PCI-e transfers corrupt bits, allocations
//! fail under memory pressure, kernels fault, streams stall past the
//! driver watchdog. This module adds those faults to the device model
//! as a *seeded, deterministic* layer:
//!
//! * [`FaultConfig`] selects per-site fault **rates** (Bernoulli per
//!   pipeline operation, drawn from a splitmix64 hash of
//!   `(seed, job, attempt, site)`, so a schedule is a pure function of
//!   the seed — the same run replays bit-identically) and/or
//!   **targeted** faults pinned to an exact `(job, attempt, site)`;
//! * [`FaultInjector`] answers "does this operation fault, and how?"
//!   and performs the actual bit flips for transfer corruption;
//! * buffer integrity is enforced by real checksums ([`checksum_cf32`]
//!   / [`checksum_bytes`], FNV-1a over the raw bits): an injected
//!   bit flip is *detected*, not assumed — the executor hashes the
//!   staged copy and compares against the source hash;
//! * [`RetryPolicy`] caps re-execution attempts and models capped
//!   exponential backoff into the pipeline makespan, so execution
//!   reports show the robustness cost of every recovery.

use idg_types::{Cf32, FaultSite, IdgError};

/// The class of an injected fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit of the buffer in flight (caught by checksums).
    TransferCorruption,
    /// The kernel launch faults; its outputs are lost.
    KernelFault,
    /// The operation stalls until the watchdog timeout fires.
    StreamStall,
    /// The job's device allocation fails (persistent: retrying the
    /// same allocation on the same device cannot succeed).
    OutOfMemory,
}

impl FaultKind {
    /// The typed error this fault surfaces as when it hits `job` at
    /// `site` (`stall_seconds` only informs [`FaultKind::StreamStall`]).
    pub fn to_error(self, job: usize, site: FaultSite, stall_seconds: f64) -> IdgError {
        match self {
            FaultKind::TransferCorruption => IdgError::TransferCorruption { job, site },
            FaultKind::KernelFault => IdgError::KernelFault { job },
            FaultKind::StreamStall => IdgError::StreamStall {
                job,
                site,
                seconds: stall_seconds,
            },
            FaultKind::OutOfMemory => IdgError::DeviceOutOfMemory {
                requested: 0,
                available: 0,
            },
        }
    }
}

/// One fault pinned to an exact point of the schedule.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TargetedFault {
    /// Job (work group) index to hit.
    pub job: usize,
    /// Attempt number to hit (0 = first execution, 1 = first retry …).
    pub attempt: u32,
    /// Pipeline site to hit.
    pub site: FaultSite,
    /// What happens there.
    pub kind: FaultKind,
}

/// Configuration of the fault-injecting layer.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic schedule.
    pub seed: u64,
    /// Probability a transfer (HtoD or DtoH) corrupts one bit.
    pub transfer_corruption_rate: f64,
    /// Probability a kernel launch faults.
    pub kernel_fault_rate: f64,
    /// Probability any engine operation stalls to the watchdog.
    pub stall_rate: f64,
    /// Probability a job's device allocation fails.
    pub oom_rate: f64,
    /// Modeled seconds an operation loses when it stalls.
    pub stall_seconds: f64,
    /// Faults pinned to exact `(job, attempt, site)` points, applied on
    /// top of (and before) the random rates.
    pub targeted: Vec<TargetedFault>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            transfer_corruption_rate: 0.0,
            kernel_fault_rate: 0.0,
            stall_rate: 0.0,
            oom_rate: 0.0,
            stall_seconds: 0.1,
            targeted: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A schedule consisting only of pinned faults (no random rates).
    pub fn targeted(faults: Vec<TargetedFault>) -> Self {
        Self {
            targeted: faults,
            ..Self::default()
        }
    }

    /// A seeded random schedule injecting every fault class at `rate`.
    pub fn chaos(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            transfer_corruption_rate: rate,
            kernel_fault_rate: rate,
            stall_rate: rate,
            oom_rate: rate,
            ..Self::default()
        }
    }
}

/// Splitmix64 — the standard 64-bit finalizing mixer; statistically
/// solid for hashing small tuples and fully deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn site_tag(site: FaultSite) -> u64 {
    match site {
        FaultSite::HtoD => 1,
        FaultSite::Kernel => 2,
        FaultSite::DtoH => 3,
        FaultSite::Alloc => 4,
    }
}

/// FNV-1a over raw bytes — the transfer-integrity checksum.
pub fn checksum_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Checksum of a complex buffer's raw bits.
pub fn checksum_cf32(data: &[Cf32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in data {
        for bits in [c.re.to_bits(), c.im.to_bits()] {
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
    }
    h
}

/// The seeded, deterministic fault layer of the device model.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
}

impl FaultInjector {
    /// Wrap a configuration.
    pub fn new(config: FaultConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Modeled seconds a stalled operation loses.
    pub fn stall_seconds(&self) -> f64 {
        self.config.stall_seconds
    }

    fn draw(&self, job: usize, attempt: u32, site: FaultSite, kind_tag: u64) -> f64 {
        let mut h = splitmix64(self.config.seed ^ 0x5851_f42d_4c95_7f2d);
        h = splitmix64(h ^ job as u64);
        h = splitmix64(h ^ ((attempt as u64) << 32) ^ site_tag(site));
        h = splitmix64(h ^ kind_tag);
        unit(h)
    }

    /// Whether (and how) the operation of `job`/`attempt` at `site`
    /// faults. Targeted faults take precedence; random rates are
    /// evaluated per fault class with independent deterministic draws.
    pub fn fault_at(&self, job: usize, attempt: u32, site: FaultSite) -> Option<FaultKind> {
        if let Some(t) = self
            .config
            .targeted
            .iter()
            .find(|t| t.job == job && t.attempt == attempt && t.site == site)
        {
            return Some(t.kind);
        }
        match site {
            FaultSite::Alloc => {
                if self.draw(job, attempt, site, 4) < self.config.oom_rate {
                    return Some(FaultKind::OutOfMemory);
                }
            }
            FaultSite::HtoD | FaultSite::DtoH => {
                if self.draw(job, attempt, site, 1) < self.config.transfer_corruption_rate {
                    return Some(FaultKind::TransferCorruption);
                }
            }
            FaultSite::Kernel => {
                if self.draw(job, attempt, site, 2) < self.config.kernel_fault_rate {
                    return Some(FaultKind::KernelFault);
                }
            }
        }
        if site != FaultSite::Alloc && self.draw(job, attempt, site, 3) < self.config.stall_rate {
            return Some(FaultKind::StreamStall);
        }
        None
    }

    /// Flip one deterministic bit of a raw byte buffer — the modeled
    /// in-flight corruption for non-complex payloads (uvw coordinates).
    pub fn corrupt_bytes(&self, buffer: &mut [u8], job: usize, attempt: u32) {
        if buffer.is_empty() {
            return;
        }
        let h = splitmix64(self.config.seed ^ splitmix64((job as u64) << 32 | attempt as u64));
        let bit = (h as usize) % (buffer.len() * 8);
        buffer[bit / 8] ^= 1 << (bit % 8);
    }

    /// Flip one deterministic bit of `buffer` — the modeled in-flight
    /// corruption. The flipped position is a function of the seed and
    /// the `(job, attempt)` point, so runs replay identically.
    pub fn corrupt(&self, buffer: &mut [Cf32], job: usize, attempt: u32) {
        if buffer.is_empty() {
            return;
        }
        let h = splitmix64(self.config.seed ^ splitmix64((job as u64) << 32 | attempt as u64));
        let bit = (h as usize) % (buffer.len() * 64);
        let (idx, part, shift) = (bit / 64, (bit % 64) / 32, bit % 32);
        let c = &mut buffer[idx];
        if part == 0 {
            c.re = f32::from_bits(c.re.to_bits() ^ (1 << shift));
        } else {
            c.im = f32::from_bits(c.im.to_bits() ^ (1 << shift));
        }
    }
}

/// Retry policy for transient device faults.
///
/// A failed job's whole HtoD → kernel → DtoH chain is re-enqueued, at
/// most `max_attempts` times in total, each retry delayed by capped
/// exponential backoff. The backoff is *modeled into the makespan* —
/// robustness is not free and the reports must show its cost.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total executions allowed per job (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, modeled seconds.
    pub backoff_base: f64,
    /// Multiplier applied per further retry.
    pub backoff_factor: f64,
    /// Ceiling on a single backoff interval, modeled seconds.
    pub backoff_cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base: 1e-3,
            backoff_factor: 2.0,
            backoff_cap: 0.1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The modeled delay before executing `attempt` (0-based): 0 for
    /// the first execution, then `base · factor^(k−1)` capped.
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        let raw = self.backoff_base * self.backoff_factor.powi(attempt as i32 - 1);
        raw.min(self.backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let a = FaultInjector::new(FaultConfig::chaos(42, 0.3));
        let b = FaultInjector::new(FaultConfig::chaos(42, 0.3));
        let c = FaultInjector::new(FaultConfig::chaos(43, 0.3));
        let mut differs = false;
        for job in 0..50 {
            for site in [FaultSite::HtoD, FaultSite::Kernel, FaultSite::DtoH] {
                assert_eq!(a.fault_at(job, 0, site), b.fault_at(job, 0, site));
                differs |= a.fault_at(job, 0, site) != c.fault_at(job, 0, site);
            }
        }
        assert!(differs, "different seeds produce different schedules");
    }

    #[test]
    fn rates_are_respected_statistically() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 7,
            transfer_corruption_rate: 0.25,
            ..FaultConfig::default()
        });
        let hits = (0..4000)
            .filter(|&job| inj.fault_at(job, 0, FaultSite::HtoD).is_some())
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "measured rate {rate}");
        // kernel site never produces transfer corruption at rate 0
        assert!((0..4000).all(|job| inj.fault_at(job, 0, FaultSite::Kernel).is_none()));
    }

    #[test]
    fn targeted_faults_hit_exactly_their_point() {
        let inj = FaultInjector::new(FaultConfig::targeted(vec![TargetedFault {
            job: 3,
            attempt: 1,
            site: FaultSite::Kernel,
            kind: FaultKind::KernelFault,
        }]));
        assert_eq!(
            inj.fault_at(3, 1, FaultSite::Kernel),
            Some(FaultKind::KernelFault)
        );
        assert_eq!(inj.fault_at(3, 0, FaultSite::Kernel), None);
        assert_eq!(inj.fault_at(3, 1, FaultSite::HtoD), None);
        assert_eq!(inj.fault_at(2, 1, FaultSite::Kernel), None);
    }

    #[test]
    fn corruption_flips_exactly_one_bit_and_checksums_catch_it() {
        let inj = FaultInjector::new(FaultConfig::chaos(11, 1.0));
        let original = vec![Cf32::new(1.5, -2.5); 64];
        let before = checksum_cf32(&original);
        let mut corrupted = original.clone();
        inj.corrupt(&mut corrupted, 0, 0);
        assert_ne!(checksum_cf32(&corrupted), before, "checksum must differ");
        let flipped: u32 = corrupted
            .iter()
            .zip(&original)
            .map(|(a, b)| {
                (a.re.to_bits() ^ b.re.to_bits()).count_ones()
                    + (a.im.to_bits() ^ b.im.to_bits()).count_ones()
            })
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
        // corruption point is deterministic
        let mut again = original.clone();
        inj.corrupt(&mut again, 0, 0);
        assert_eq!(again, corrupted);
        // empty buffers are a no-op, not a panic
        inj.corrupt(&mut [], 0, 0);
    }

    #[test]
    fn checksum_bytes_detects_any_single_flip() {
        let data = [0u8, 1, 2, 3, 255, 254, 17];
        let base = checksum_bytes(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut copy = data;
                copy[i] ^= 1 << bit;
                assert_ne!(checksum_bytes(&copy), base, "flip at {i}:{bit}");
            }
        }
    }

    #[test]
    fn backoff_sequence_is_capped_exponential() {
        let p = RetryPolicy {
            max_attempts: 6,
            backoff_base: 0.01,
            backoff_factor: 2.0,
            backoff_cap: 0.05,
        };
        assert_eq!(p.backoff_before(0), 0.0);
        assert!((p.backoff_before(1) - 0.01).abs() < 1e-12);
        assert!((p.backoff_before(2) - 0.02).abs() < 1e-12);
        assert!((p.backoff_before(3) - 0.04).abs() < 1e-12);
        assert!((p.backoff_before(4) - 0.05).abs() < 1e-12, "capped");
        assert!((p.backoff_before(5) - 0.05).abs() < 1e-12, "stays capped");
    }

    #[test]
    fn fault_kinds_map_to_classified_errors() {
        let e = FaultKind::TransferCorruption.to_error(4, FaultSite::DtoH, 0.1);
        assert!(e.is_transient());
        assert_eq!(e.job(), Some(4));
        let e = FaultKind::StreamStall.to_error(1, FaultSite::Kernel, 0.25);
        assert!(matches!(e, IdgError::StreamStall { seconds, .. } if seconds == 0.25));
        let e = FaultKind::OutOfMemory.to_error(0, FaultSite::Alloc, 0.0);
        assert!(!e.is_transient());
    }
}
