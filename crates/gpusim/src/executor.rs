//! The GPU executor: whole gridding/degridding passes on the device
//! model, with triple-buffered transfer/compute overlap, fault-tolerant
//! retry, and an execution/energy report.
//!
//! Results are *real* (computed by the simulated kernels and verified
//! against the CPU reference); times and energies are *modeled* from the
//! Table I machine parameters — the substitution documented in
//! DESIGN.md.
//!
//! ## Fault tolerance
//!
//! When a [`FaultConfig`] is attached ([`GpuExecutor::with_faults`]),
//! every job (work group) runs through a retry loop:
//!
//! * transfer corruption is detected by *real* checksums — the executor
//!   stages a copy of the payload, the injector flips one bit, and the
//!   FNV-1a hashes disagree;
//! * transient faults (corruption, kernel faults, stream stalls)
//!   re-enqueue the job's whole HtoD → kernel → DtoH chain, delayed by
//!   the [`RetryPolicy`]'s capped exponential backoff — both the faulted
//!   attempts and the backoff gaps are modeled into the makespan;
//! * persistent faults (device OOM, or a transient fault that exhausts
//!   `max_attempts`) land the job in [`GpuRunReport::failed_jobs`] with
//!   its classified [`IdgError`]; the pass itself still succeeds, and
//!   the proxy layer re-executes exactly those jobs on the CPU.

use crate::device::Device;
use crate::fault::{checksum_bytes, FaultConfig, FaultInjector, FaultKind, RetryPolicy};
use crate::kernels::{degridder_gpu, gridder_gpu};
use crate::stream::{Engine, FaultPoint, OpStatus, PipelineSim, TraceEntry};
use crate::timing::{adder_time, kernel_time, subgrid_fft_time, transfer_time};
use idg_fft::Direction;
use idg_kernels::{
    add_subgrids, fft_subgrids, split_subgrids, FftNorm, KernelCache, KernelData, SubgridArray,
};
use idg_perf::{degridder_counts, gridder_counts, EnergyModel, OpCounts};
use idg_plan::{Plan, WorkItem};
use idg_types::{FaultSite, Grid, IdgError, Visibility};
use std::ops::Range;
use std::sync::Arc;

/// Deferred-commit payload of a streamed chunk pass: each entry pairs
/// a `plan.items` range with the subgrids computed for it, in job
/// order, ready for the caller's single in-order adder commit.
pub type DeferredSubgrids = Vec<(Range<usize>, SubgridArray)>;

/// Deferred-commit payload of a streamed degrid chunk pass: the
/// chunk-local predicted visibilities plus the `plan.items` ranges the
/// completed jobs covered, in job order. The caller copies each item's
/// rows into the full observation buffer in one-shot plan order, so
/// the streamed result stays bit-identical to the one-shot pass.
#[derive(Clone, Debug)]
pub struct DeferredVis {
    /// `plan.items` ranges of the jobs that completed, in job order.
    pub ranges: Vec<Range<usize>>,
    /// Chunk-local visibility buffer (full observation extent, zeros
    /// outside the completed items' slots).
    pub vis: Vec<Visibility<f32>>,
}

/// A job that failed persistently: its outputs are absent from the pass
/// result and the proxy layer may re-execute it on the CPU backend.
#[derive(Clone, Debug, PartialEq)]
pub struct JobFailure {
    /// Job (work group) index in submission order.
    pub job: usize,
    /// Index of the job's first work item in `plan.items`.
    pub first_item: usize,
    /// Number of work items the job covers.
    pub nr_items: usize,
    /// The classified error that ended the job.
    pub error: IdgError,
    /// How many attempts were made before giving up.
    pub attempts: u32,
}

/// Outcome of one executor pass.
#[derive(Clone, Debug)]
pub struct GpuRunReport {
    /// "gridding" or "degridding".
    pub pass: &'static str,
    /// Aggregate gridder/degridder operation counters (successful jobs).
    pub counts: OpCounts,
    /// Modeled main-kernel busy time, s (including faulted attempts).
    pub kernel_seconds: f64,
    /// Modeled subgrid-FFT time, s.
    pub fft_seconds: f64,
    /// Modeled adder/splitter time, s.
    pub adder_seconds: f64,
    /// Modeled host-to-device transfer time, s (including faulted
    /// attempts).
    pub htod_seconds: f64,
    /// Modeled device-to-host transfer time, s (including faulted
    /// attempts).
    pub dtoh_seconds: f64,
    /// Pipeline makespan with triple buffering, s.
    pub makespan: f64,
    /// The per-operation timeline (Fig. 7 material). Faulted attempts
    /// appear with `OpStatus::Faulted`; retries carry `attempt > 0`.
    pub timeline: Vec<TraceEntry>,
    /// Modeled device energy over the makespan, J.
    pub device_energy_j: f64,
    /// Modeled host (package + DRAM) energy over the makespan, J.
    pub host_energy_j: f64,
    /// Number of re-enqueued attempts across all jobs.
    pub nr_retries: usize,
    /// Total modeled backoff delay inserted before retries, s.
    pub backoff_seconds: f64,
    /// Jobs that failed persistently (their work is *not* in the
    /// result); empty on a fault-free pass.
    pub failed_jobs: Vec<JobFailure>,
}

impl GpuRunReport {
    /// Achieved operation rate over kernel busy time, TOps/s — the
    /// quantity plotted in Fig. 11. Zero (not NaN) for empty passes.
    pub fn kernel_tops(&self) -> f64 {
        if self.kernel_seconds <= 0.0 {
            return 0.0;
        }
        self.counts.total_ops() as f64 / self.kernel_seconds / 1e12
    }

    /// Visibility throughput over the whole pass, MVisibilities/s — the
    /// Fig. 10 metric. Zero (not NaN) for empty passes.
    pub fn mvis_per_sec(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.counts.visibilities as f64 / self.makespan / 1e6
    }

    /// Energy efficiency of the main kernel, GFlops/W (Fig. 15).
    pub fn gflops_per_watt(&self, model: &EnergyModel) -> f64 {
        model.gflops_per_watt(&self.counts, self.kernel_seconds, 1.0)
    }

    /// Whether every job's outputs made it into the result.
    pub fn complete(&self) -> bool {
        self.failed_jobs.is_empty()
    }
}

/// Engine time consumed by faulted attempts plus retry bookkeeping.
#[derive(Default)]
pub(crate) struct RetryStats {
    pub(crate) nr_retries: usize,
    pub(crate) backoff_seconds: f64,
    pub(crate) htod_seconds: f64,
    pub(crate) kernel_seconds: f64,
    pub(crate) dtoh_seconds: f64,
}

/// What the retry loop asks the pass-specific backend to do. `Stage*`
/// return a copy of the transfer payload's raw bytes (checksummed to
/// detect injected corruption); `Compute` runs the real kernels (and
/// must be idempotent — a retry re-runs it from scratch); `Commit`
/// merges the computed outputs into the pass result.
pub(crate) enum JobOp {
    StageInput,
    Compute,
    StageOutput,
    Commit,
}

/// How one trip through the fault/retry loop ended: the job either
/// completed (after `attempts` tries) or exhausted its chances on a
/// classified error. Every failure carries an [`IdgError`]; the
/// attempt count rides alongside so callers can account retries.
pub(crate) enum JobRun {
    Done { attempts: u32 },
    Failed { error: IdgError, attempts: u32 },
}

/// Run one job through the fault/retry loop.
///
/// `start` is `(first_attempt, not_before)`: the single-device executor
/// always passes `(0, 0.0)`, while the fleet resumes a job past an
/// OOM-degraded attempt (so the same injected fault is not re-drawn)
/// and delays jobs that waited out a breaker cooldown.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_job(
    pipeline: &mut PipelineSim,
    injector: Option<&FaultInjector>,
    retry: &RetryPolicy,
    stats: &mut RetryStats,
    job: usize,
    times: (f64, f64, f64),
    start: (u32, f64),
    run: &mut dyn FnMut(JobOp) -> Result<Vec<u8>, IdgError>,
) -> JobRun {
    match run_job_inner(pipeline, injector, retry, stats, job, times, start, run) {
        Ok(attempts) => JobRun::Done { attempts },
        Err((error, attempts)) => JobRun::Failed { error, attempts },
    }
}

#[allow(clippy::too_many_arguments)]
fn run_job_inner(
    pipeline: &mut PipelineSim,
    injector: Option<&FaultInjector>,
    retry: &RetryPolicy,
    stats: &mut RetryStats,
    job: usize,
    times: (f64, f64, f64),
    start: (u32, f64),
    run: &mut dyn FnMut(JobOp) -> Result<Vec<u8>, IdgError>,
) -> Result<u32, (IdgError, u32)> {
    let (t_in, t_compute, t_out) = times;
    let (mut attempt, mut not_before) = start;
    loop {
        let hard = |e: IdgError| (e, attempt + 1);
        // what does the injector throw at this attempt? (sites probed
        // in chain order; DtoH only exists when the job transfers out)
        let mut fault = injector.and_then(|inj| {
            [
                FaultSite::Alloc,
                FaultSite::HtoD,
                FaultSite::Kernel,
                FaultSite::DtoH,
            ]
            .into_iter()
            .filter(|&s| s != FaultSite::DtoH || t_out > 0.0)
            .find_map(|s| inj.fault_at(job, attempt, s).map(|k| (inj, s, k)))
        });
        // transfer corruption is *detected*, never assumed: checksum a
        // staged copy of the payload, flip one bit, compare hashes
        if let Some((inj, site, FaultKind::TransferCorruption)) = fault {
            let mut staged = match site {
                FaultSite::HtoD => run(JobOp::StageInput).map_err(hard)?,
                _ => {
                    run(JobOp::Compute).map_err(hard)?;
                    run(JobOp::StageOutput).map_err(hard)?
                }
            };
            let want = checksum_bytes(&staged);
            inj.corrupt_bytes(&mut staged, job, attempt);
            if checksum_bytes(&staged) == want {
                fault = None; // undetectable flip: delivered as clean
            }
        }
        match fault {
            None => {
                run(JobOp::Compute).map_err(hard)?;
                pipeline.submit_attempt(job, attempt, not_before, t_in, t_compute, t_out, None);
                run(JobOp::Commit).map_err(hard)?;
                return Ok(attempt + 1);
            }
            // allocation faults never reach the stream engines and
            // retrying the same allocation cannot succeed: persistent
            Some((_, FaultSite::Alloc, kind)) => {
                return Err((kind.to_error(job, FaultSite::Alloc, 0.0), attempt + 1));
            }
            Some((inj, site, kind)) => {
                let extra = if kind == FaultKind::StreamStall {
                    inj.stall_seconds()
                } else {
                    0.0
                };
                let engine = match site {
                    FaultSite::HtoD => Engine::HtoD,
                    FaultSite::Kernel => Engine::Compute,
                    FaultSite::DtoH => Engine::DtoH,
                    // alloc faults take the persistent-failure return
                    // above; classify an escapee as an internal error
                    // rather than panicking mid-pass
                    FaultSite::Alloc => {
                        return Err((
                            IdgError::Internal(
                                "allocation fault reached the stream path".to_string(),
                            ),
                            attempt + 1,
                        ));
                    }
                };
                let outcome = pipeline.submit_attempt(
                    job,
                    attempt,
                    not_before,
                    t_in,
                    t_compute,
                    t_out,
                    Some(FaultPoint {
                        engine,
                        extra_seconds: extra,
                    }),
                );
                // the chain truncates at the faulting engine; charge
                // the engine time the faulted attempt actually held
                match engine {
                    Engine::HtoD => stats.htod_seconds += t_in + extra,
                    Engine::Compute => {
                        stats.htod_seconds += t_in;
                        stats.kernel_seconds += t_compute + extra;
                    }
                    Engine::DtoH => {
                        stats.htod_seconds += t_in;
                        stats.kernel_seconds += t_compute;
                        stats.dtoh_seconds += t_out + extra;
                    }
                }
                let err = kind.to_error(job, site, extra);
                attempt += 1;
                if !err.is_transient() || attempt >= retry.max_attempts {
                    return Err((err, attempt));
                }
                stats.nr_retries += 1;
                let backoff = retry.backoff_before(attempt);
                stats.backoff_seconds += backoff;
                not_before = outcome.end + backoff;
            }
        }
    }
}

/// Replay the pipeline timeline into the active observability session
/// as modeled spans: one `job` span per job covering all of its
/// operations, one `stage` span per scheduled operation (faulted
/// attempts keep their engine name but carry a `!` suffix), and
/// `kernel` sub-spans subdividing each *completed* Compute interval
/// into its constituent kernels. `parts[job]` lists `(name, seconds)`
/// in execution order and sums to the job's compute time; it is empty
/// when the session was inactive while the pass ran.
///
/// `base_lane` offsets every lane: the single-device executor replays
/// into lanes 0–3, the fleet replays device `d` into lanes
/// `4d .. 4d + 3` so per-device timelines render side by side.
pub(crate) fn emit_modeled_spans(
    timeline: &[TraceEntry],
    parts: &[Vec<(&'static str, f64)>],
    base_lane: u32,
) {
    if !idg_obs::is_active() {
        return;
    }
    let nr_jobs = timeline.iter().map(|e| e.job + 1).max().unwrap_or(0);
    let mut extents: Vec<Option<(f64, f64)>> = vec![None; nr_jobs];
    for e in timeline {
        let ext = extents[e.job].get_or_insert((e.start, e.end));
        ext.0 = ext.0.min(e.start);
        ext.1 = ext.1.max(e.end);
    }
    for (job, ext) in extents.iter().enumerate() {
        if let Some((start, end)) = ext {
            idg_obs::modeled_span(
                "job",
                "job",
                Some(job as u32),
                base_lane,
                *start,
                end - start,
            );
        }
    }
    for e in timeline {
        let (name, faulted_name, lane) = match e.engine {
            Engine::HtoD => ("HtoD", "HtoD!", base_lane + 1),
            Engine::Compute => ("Compute", "Compute!", base_lane + 2),
            Engine::DtoH => ("DtoH", "DtoH!", base_lane + 3),
        };
        let completed = e.status == OpStatus::Completed;
        idg_obs::modeled_span(
            if completed { name } else { faulted_name },
            "stage",
            Some(e.job as u32),
            lane,
            e.start,
            e.end - e.start,
        );
        if e.engine == Engine::Compute && completed {
            let mut t = e.start;
            for (kernel, dur) in parts.get(e.job).map_or(&[] as &[_], Vec::as_slice) {
                idg_obs::modeled_span(kernel, "kernel", Some(e.job as u32), lane, t, *dur);
                t += dur;
            }
        }
    }
}

/// Raw bytes of the visibilities a group transfers (HtoD payload of a
/// gridding job, DtoH payload of a degridding job).
pub(crate) fn staged_vis_bytes(
    vis: &[Visibility<f32>],
    nr_timesteps: usize,
    nr_channels: usize,
    group: &[WorkItem],
) -> Vec<u8> {
    let mut out = Vec::new();
    for item in group {
        for dt in 0..item.nr_timesteps {
            let row = (item.baseline_index * nr_timesteps + item.time_offset + dt) * nr_channels;
            for c in item.channel_offset..item.channel_offset + item.nr_channels {
                for p in &vis[row + c].pols {
                    out.extend_from_slice(&p.re.to_le_bytes());
                    out.extend_from_slice(&p.im.to_le_bytes());
                }
            }
        }
    }
    out
}

/// Raw bytes of the uvw coordinates a group transfers (degridding HtoD).
pub(crate) fn staged_uvw_bytes(data: &KernelData<'_>, group: &[WorkItem]) -> Vec<u8> {
    let nr_time = data.obs.nr_timesteps;
    let mut out = Vec::new();
    for item in group {
        let base = item.baseline_index * nr_time + item.time_offset;
        for uvw in &data.uvw[base..base + item.nr_timesteps] {
            for f in [uvw.u, uvw.v, uvw.w] {
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
    }
    out
}

/// Raw bytes of a subgrid buffer (DtoH payload of host-adder gridding).
pub(crate) fn staged_subgrid_bytes(subgrids: &SubgridArray) -> Vec<u8> {
    let mut out = Vec::with_capacity(subgrids.as_slice().len() * 8);
    for c in subgrids.as_slice() {
        out.extend_from_slice(&c.re.to_le_bytes());
        out.extend_from_slice(&c.im.to_le_bytes());
    }
    out
}

/// Drives gridding / degridding passes on a modeled device.
pub struct GpuExecutor {
    /// The device model.
    pub device: Device,
    /// Work items per work group (kernel launch).
    pub work_group_size: usize,
    /// Optional fault-injection schedule (None = fault-free device).
    pub faults: Option<FaultConfig>,
    /// Retry policy for transient device faults.
    pub retry: RetryPolicy,
    /// Pass-level kernel cache (geometry planes, adder/splitter phasor
    /// tables), shared with the owning proxy so tables persist across
    /// passes.
    pub cache: Arc<KernelCache>,
}

impl GpuExecutor {
    /// Create an executor with the given work-group granularity (a
    /// fault-free device; see [`GpuExecutor::with_faults`]). A zero
    /// group size is clamped to one.
    pub fn new(device: Device, work_group_size: usize) -> Self {
        Self {
            device,
            work_group_size: work_group_size.max(1),
            faults: None,
            retry: RetryPolicy::default(),
            cache: Arc::new(KernelCache::new()),
        }
    }

    /// Attach a fault-injection schedule to the device model.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Share a pass-level kernel cache (normally the proxy's) instead of
    /// the executor's own fresh one.
    pub fn with_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Override the retry policy for transient faults.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Model the device-resident allocations of a pass. Preferred: grid +
    /// three buffer sets resident on the device. When the grid alone no
    /// longer fits ("when dealing with large images that no longer fit
    /// into GPU device memory", Sec. V-C e), fall back to the paper's
    /// option (2): keep only the buffers on the device, copy subgrids to
    /// the host and run the adder there. Returns
    /// `(reserved_bytes, host_adder)`; errors only when even the buffer
    /// sets do not fit.
    fn reserve_memory(&self, device: &mut Device, plan: &Plan) -> Result<(u64, bool), IdgError> {
        let n = plan.subgrid_size();
        let grid_bytes = (4 * plan.grid_size() * plan.grid_size() * 8) as u64;
        let subgrid_bytes = (self.work_group_size * 4 * n * n * 8) as u64;
        let io_bytes = (self.work_group_size * 512 * 44) as u64; // vis+uvw staging
        let buffers = 3 * (subgrid_bytes + io_bytes);
        if device.allocate(grid_bytes + buffers).is_ok() {
            return Ok((grid_bytes + buffers, false));
        }
        device.allocate(buffers)?;
        Ok((buffers, true))
    }

    /// Run a full gridding pass: visibilities → grid.
    ///
    /// Jobs that fail persistently are reported in
    /// [`GpuRunReport::failed_jobs`] and their subgrids are absent from
    /// the returned grid; only whole-pass setup failures (e.g. the
    /// buffer sets not fitting in device memory) error out.
    pub fn grid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
    ) -> Result<(Grid<f32>, GpuRunReport), IdgError> {
        let mut device = self.device.clone();
        let (reserved, host_adder) = self.reserve_memory(&mut device, plan)?;
        // host-side adder: subgrids stream back over PCI-e and the host
        // memory system (~40 GB/s effective) performs the row-parallel add
        let host_adder_bw = 40e9;
        let injector = self.faults.clone().map(FaultInjector::new);

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let mut grid = Grid::<f32>::new(plan.grid_size());
        let mut pipeline = PipelineSim::new(3);
        let mut counts = OpCounts::default();
        let mut kernel_seconds = 0.0;
        let mut fft_seconds = 0.0;
        let mut adder_seconds = 0.0;
        let mut htod_seconds = 0.0;
        let mut dtoh_seconds = 0.0;
        let mut stats = RetryStats::default();
        let mut failed_jobs = Vec::new();
        let observing = idg_obs::is_active();
        let mut compute_parts: Vec<Vec<(&'static str, f64)>> = Vec::new();

        for (job, group) in plan.work_groups(self.work_group_size).enumerate() {
            let group_counts = gridder_counts(group, n);
            let in_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * (nr_chan * 32 + 12)) as u64)
                .sum::<u64>();
            let t_in = transfer_time(&device, in_bytes);
            let t_kernel = kernel_time(&device, &group_counts);
            let t_fft = subgrid_fft_time(&device, group.len(), n);
            let subgrid_bytes = (group.len() * 4 * n * n * 8) as u64;
            let (t_compute, t_out, t_add) = if host_adder {
                // option (2): subgrids stream to the host (DtoH engine)
                // and the host adds them while the GPU computes on
                let t_out = transfer_time(&device, subgrid_bytes);
                (
                    t_kernel + t_fft,
                    t_out,
                    2.0 * subgrid_bytes as f64 / host_adder_bw,
                )
            } else {
                // option (1): atomic adder on the device
                let t_add = adder_time(&device, group.len(), n);
                (t_kernel + t_fft + t_add, 0.0, t_add)
            };
            if observing {
                let mut breakdown = vec![("gridder", t_kernel), ("subgrid_fft", t_fft)];
                if !host_adder {
                    breakdown.push(("adder", t_add));
                }
                compute_parts.push(breakdown);
            }

            let mut subgrids = SubgridArray::new(group.len(), n);
            let grid_ref = &mut grid;
            let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                match op {
                    JobOp::StageInput => {
                        Ok(staged_vis_bytes(data.visibilities, nr_time, nr_chan, group))
                    }
                    JobOp::Compute => {
                        subgrids = SubgridArray::new(group.len(), n);
                        gridder_gpu(data, group, &mut subgrids, &device, &self.cache)?;
                        fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
                        Ok(Vec::new())
                    }
                    JobOp::StageOutput => Ok(staged_subgrid_bytes(&subgrids)),
                    JobOp::Commit => {
                        add_subgrids(grid_ref, group, &subgrids, &self.cache)?;
                        Ok(Vec::new())
                    }
                }
            };
            match run_job(
                &mut pipeline,
                injector.as_ref(),
                &self.retry,
                &mut stats,
                job,
                (t_in, t_compute, t_out),
                (0, 0.0),
                &mut backend,
            ) {
                JobRun::Done { .. } => {
                    counts.add(&group_counts);
                    kernel_seconds += t_kernel;
                    fft_seconds += t_fft;
                    adder_seconds += t_add;
                    htod_seconds += t_in;
                    dtoh_seconds += t_out;
                }
                JobRun::Failed { error, attempts } => failed_jobs.push(JobFailure {
                    job,
                    first_item: job * self.work_group_size,
                    nr_items: group.len(),
                    error,
                    attempts,
                }),
            }
        }
        htod_seconds += stats.htod_seconds;
        kernel_seconds += stats.kernel_seconds;
        dtoh_seconds += stats.dtoh_seconds;
        idg_obs::add_retries(stats.nr_retries as u64);
        emit_modeled_spans(&pipeline.timeline, &compute_parts, 0);

        device.free(reserved);
        let makespan = pipeline.makespan();
        let energy = EnergyModel::new(device.arch.clone());
        let busy = pipeline.compute_busy();
        let device_energy_j =
            energy.device_energy(busy, 1.0) + energy.device_energy((makespan - busy).max(0.0), 0.0);
        let host_energy_j = energy.host_energy(makespan);

        Ok((
            grid,
            GpuRunReport {
                pass: "gridding",
                counts,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                htod_seconds,
                dtoh_seconds,
                makespan,
                timeline: pipeline.timeline,
                device_energy_j,
                host_energy_j,
                nr_retries: stats.nr_retries,
                backoff_seconds: stats.backoff_seconds,
                failed_jobs,
            },
        ))
    }

    /// Run a gridding pass with *deferred* commits: compute and FFT
    /// every job's subgrids on the modeled device, but never touch a
    /// grid — return the subgrids with their `plan.items` ranges
    /// instead, in job order.
    ///
    /// This is the streamed-chunk entry point: chunk passes run
    /// concurrently, so none of them may own the shared grid;
    /// `Proxy::grid_streamed` collects every chunk's pending subgrids
    /// and commits them in the one-shot plan order with a single
    /// adder call, which keeps the f32 accumulation order — and so
    /// every output bit — identical to [`GpuExecutor::grid`]. One
    /// kernel-cache lookup per job (the gridder geometry); the adder
    /// phasor lookup happens at the caller's single commit.
    ///
    /// No device-resident grid is modeled, so subgrids always stream
    /// back to the host: the reservation and timing follow the
    /// host-adder shape of [`GpuExecutor::grid`] (option (2) of
    /// Sec. V-C e), with the host-side add itself accounted by the
    /// caller's commit.
    pub fn grid_deferred(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
    ) -> Result<(DeferredSubgrids, GpuRunReport), IdgError> {
        let mut device = self.device.clone();
        let n = plan.subgrid_size();
        // buffers only: the grid never lives on the device here
        let subgrid_bytes_rsv = (self.work_group_size * 4 * n * n * 8) as u64;
        let io_bytes = (self.work_group_size * 512 * 44) as u64;
        let reserved = 3 * (subgrid_bytes_rsv + io_bytes);
        device.allocate(reserved)?;
        let injector = self.faults.clone().map(FaultInjector::new);

        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let mut pending: Vec<(Range<usize>, SubgridArray)> = Vec::new();
        let mut pipeline = PipelineSim::new(3);
        let mut counts = OpCounts::default();
        let mut kernel_seconds = 0.0;
        let mut fft_seconds = 0.0;
        let mut htod_seconds = 0.0;
        let mut dtoh_seconds = 0.0;
        let mut stats = RetryStats::default();
        let mut failed_jobs = Vec::new();
        let observing = idg_obs::is_active();
        let mut compute_parts: Vec<Vec<(&'static str, f64)>> = Vec::new();

        for (job, group) in plan.work_groups(self.work_group_size).enumerate() {
            let group_counts = gridder_counts(group, n);
            let in_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * (nr_chan * 32 + 12)) as u64)
                .sum::<u64>();
            let t_in = transfer_time(&device, in_bytes);
            let t_kernel = kernel_time(&device, &group_counts);
            let t_fft = subgrid_fft_time(&device, group.len(), n);
            let subgrid_bytes = (group.len() * 4 * n * n * 8) as u64;
            let t_out = transfer_time(&device, subgrid_bytes);
            if observing {
                compute_parts.push(vec![("gridder", t_kernel), ("subgrid_fft", t_fft)]);
            }

            let mut subgrids = SubgridArray::new(group.len(), n);
            let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                match op {
                    JobOp::StageInput => {
                        Ok(staged_vis_bytes(data.visibilities, nr_time, nr_chan, group))
                    }
                    JobOp::Compute => {
                        subgrids = SubgridArray::new(group.len(), n);
                        gridder_gpu(data, group, &mut subgrids, &device, &self.cache)?;
                        fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
                        Ok(Vec::new())
                    }
                    JobOp::StageOutput => Ok(staged_subgrid_bytes(&subgrids)),
                    // committed later, by the caller, in plan order
                    JobOp::Commit => Ok(Vec::new()),
                }
            };
            match run_job(
                &mut pipeline,
                injector.as_ref(),
                &self.retry,
                &mut stats,
                job,
                (t_in, t_kernel + t_fft, t_out),
                (0, 0.0),
                &mut backend,
            ) {
                JobRun::Done { .. } => {
                    counts.add(&group_counts);
                    kernel_seconds += t_kernel;
                    fft_seconds += t_fft;
                    htod_seconds += t_in;
                    dtoh_seconds += t_out;
                    let first = job * self.work_group_size;
                    pending.push((first..first + group.len(), subgrids));
                }
                JobRun::Failed { error, attempts } => failed_jobs.push(JobFailure {
                    job,
                    first_item: job * self.work_group_size,
                    nr_items: group.len(),
                    error,
                    attempts,
                }),
            }
        }
        htod_seconds += stats.htod_seconds;
        kernel_seconds += stats.kernel_seconds;
        dtoh_seconds += stats.dtoh_seconds;
        idg_obs::add_retries(stats.nr_retries as u64);
        emit_modeled_spans(&pipeline.timeline, &compute_parts, 0);

        device.free(reserved);
        let makespan = pipeline.makespan();
        let energy = EnergyModel::new(device.arch.clone());
        let busy = pipeline.compute_busy();
        let device_energy_j =
            energy.device_energy(busy, 1.0) + energy.device_energy((makespan - busy).max(0.0), 0.0);
        let host_energy_j = energy.host_energy(makespan);

        Ok((
            pending,
            GpuRunReport {
                pass: "gridding",
                counts,
                kernel_seconds,
                fft_seconds,
                adder_seconds: 0.0,
                htod_seconds,
                dtoh_seconds,
                makespan,
                timeline: pipeline.timeline,
                device_energy_j,
                host_energy_j,
                nr_retries: stats.nr_retries,
                backoff_seconds: stats.backoff_seconds,
                failed_jobs,
            },
        ))
    }

    /// Run a full degridding pass: grid → predicted visibilities.
    ///
    /// Visibility slots belonging to persistently failed jobs are left
    /// zero (see [`GpuRunReport::failed_jobs`]).
    pub fn degrid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
    ) -> Result<(Vec<Visibility<f32>>, GpuRunReport), IdgError> {
        let mut device = self.device.clone();
        let (reserved, host_splitter) = self.reserve_memory(&mut device, plan)?;
        let _ = host_splitter; // splitter reads are modeled identically
        let injector = self.faults.clone().map(FaultInjector::new);

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let mut vis_out = vec![Visibility::<f32>::zero(); data.obs.nr_visibilities()];
        let mut pipeline = PipelineSim::new(3);
        let mut counts = OpCounts::default();
        let mut kernel_seconds = 0.0;
        let mut fft_seconds = 0.0;
        let mut adder_seconds = 0.0;
        let mut htod_seconds = 0.0;
        let mut dtoh_seconds = 0.0;
        let mut stats = RetryStats::default();
        let mut failed_jobs = Vec::new();
        let observing = idg_obs::is_active();
        let mut compute_parts: Vec<Vec<(&'static str, f64)>> = Vec::new();

        for (job, group) in plan.work_groups(self.work_group_size).enumerate() {
            let group_counts = degridder_counts(group, n);
            let uvw_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * 12) as u64)
                .sum::<u64>();
            let out_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * nr_chan * 32) as u64)
                .sum::<u64>();
            let t_in = transfer_time(&device, uvw_bytes);
            let t_split = adder_time(&device, group.len(), n);
            let t_fft = subgrid_fft_time(&device, group.len(), n);
            let t_kernel = kernel_time(&device, &group_counts);
            let t_out = transfer_time(&device, out_bytes);
            if observing {
                compute_parts.push(vec![
                    ("splitter", t_split),
                    ("subgrid_ifft", t_fft),
                    ("degridder", t_kernel),
                ]);
            }

            let mut subgrids = SubgridArray::new(group.len(), n);
            let vis_ref = &mut vis_out;
            let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                match op {
                    JobOp::StageInput => Ok(staged_uvw_bytes(data, group)),
                    JobOp::Compute => {
                        subgrids = SubgridArray::new(group.len(), n);
                        split_subgrids(grid, group, &mut subgrids, &self.cache)?;
                        fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
                        degridder_gpu(data, group, &subgrids, vis_ref, &device, &self.cache)?;
                        Ok(Vec::new())
                    }
                    JobOp::StageOutput => Ok(staged_vis_bytes(vis_ref, nr_time, nr_chan, group)),
                    // the degridder writes its slots of `vis_out` in
                    // place; a completed chain needs no extra merge
                    JobOp::Commit => Ok(Vec::new()),
                }
            };
            match run_job(
                &mut pipeline,
                injector.as_ref(),
                &self.retry,
                &mut stats,
                job,
                (t_in, t_split + t_fft + t_kernel, t_out),
                (0, 0.0),
                &mut backend,
            ) {
                JobRun::Done { .. } => {
                    counts.add(&group_counts);
                    kernel_seconds += t_kernel;
                    fft_seconds += t_fft;
                    adder_seconds += t_split;
                    htod_seconds += t_in;
                    dtoh_seconds += t_out;
                }
                JobRun::Failed { error, attempts } => {
                    // a faulted attempt may have computed these slots
                    // before the chain died — failed jobs leave zeros
                    for item in group {
                        for dt in 0..item.nr_timesteps {
                            let row =
                                (item.baseline_index * nr_time + item.time_offset + dt) * nr_chan;
                            for c in item.channel_offset..item.channel_offset + item.nr_channels {
                                vis_out[row + c] = Visibility::zero();
                            }
                        }
                    }
                    failed_jobs.push(JobFailure {
                        job,
                        first_item: job * self.work_group_size,
                        nr_items: group.len(),
                        error,
                        attempts,
                    });
                }
            }
        }
        htod_seconds += stats.htod_seconds;
        kernel_seconds += stats.kernel_seconds;
        dtoh_seconds += stats.dtoh_seconds;
        idg_obs::add_retries(stats.nr_retries as u64);
        emit_modeled_spans(&pipeline.timeline, &compute_parts, 0);

        device.free(reserved);
        let makespan = pipeline.makespan();
        let energy = EnergyModel::new(device.arch.clone());
        let busy = pipeline.compute_busy();
        let device_energy_j =
            energy.device_energy(busy, 1.0) + energy.device_energy((makespan - busy).max(0.0), 0.0);
        let host_energy_j = energy.host_energy(makespan);

        Ok((
            vis_out,
            GpuRunReport {
                pass: "degridding",
                counts,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                htod_seconds,
                dtoh_seconds,
                makespan,
                timeline: pipeline.timeline,
                device_energy_j,
                host_energy_j,
                nr_retries: stats.nr_retries,
                backoff_seconds: stats.backoff_seconds,
                failed_jobs,
            },
        ))
    }

    /// Streamed-degrid twin of [`GpuExecutor::grid_deferred`]: run the
    /// splitter → inverse FFT → degridder chain for every job, but
    /// leave the predicted visibilities in a chunk-local buffer for
    /// the caller to commit in one-shot plan order. The degridder
    /// writes disjoint per-item slots and never accumulates, so the
    /// caller's plain copies preserve bit-identity with
    /// [`GpuExecutor::degrid`].
    ///
    /// Like `grid_deferred`, no device-resident grid is modeled — the
    /// reservation covers triple-buffered subgrid and I/O staging
    /// only, and the host-side commit is accounted by the caller.
    pub fn split_deferred(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
    ) -> Result<(DeferredVis, GpuRunReport), IdgError> {
        let mut device = self.device.clone();
        let n = plan.subgrid_size();
        // buffers only: the model grid stays on the host
        let subgrid_bytes_rsv = (self.work_group_size * 4 * n * n * 8) as u64;
        let io_bytes = (self.work_group_size * 512 * 44) as u64;
        let reserved = 3 * (subgrid_bytes_rsv + io_bytes);
        device.allocate(reserved)?;
        let injector = self.faults.clone().map(FaultInjector::new);

        let nr_chan = data.obs.nr_channels();
        let nr_time = data.obs.nr_timesteps;
        let mut vis_out = vec![Visibility::<f32>::zero(); data.obs.nr_visibilities()];
        let mut ranges: Vec<Range<usize>> = Vec::new();
        let mut pipeline = PipelineSim::new(3);
        let mut counts = OpCounts::default();
        let mut kernel_seconds = 0.0;
        let mut fft_seconds = 0.0;
        let mut adder_seconds = 0.0;
        let mut htod_seconds = 0.0;
        let mut dtoh_seconds = 0.0;
        let mut stats = RetryStats::default();
        let mut failed_jobs = Vec::new();
        let observing = idg_obs::is_active();
        let mut compute_parts: Vec<Vec<(&'static str, f64)>> = Vec::new();

        for (job, group) in plan.work_groups(self.work_group_size).enumerate() {
            let group_counts = degridder_counts(group, n);
            let uvw_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * 12) as u64)
                .sum::<u64>();
            let out_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * nr_chan * 32) as u64)
                .sum::<u64>();
            let t_in = transfer_time(&device, uvw_bytes);
            let t_split = adder_time(&device, group.len(), n);
            let t_fft = subgrid_fft_time(&device, group.len(), n);
            let t_kernel = kernel_time(&device, &group_counts);
            let t_out = transfer_time(&device, out_bytes);
            if observing {
                compute_parts.push(vec![
                    ("splitter", t_split),
                    ("subgrid_ifft", t_fft),
                    ("degridder", t_kernel),
                ]);
            }

            let mut subgrids = SubgridArray::new(group.len(), n);
            let vis_ref = &mut vis_out;
            let mut backend = |op: JobOp| -> Result<Vec<u8>, IdgError> {
                match op {
                    JobOp::StageInput => Ok(staged_uvw_bytes(data, group)),
                    JobOp::Compute => {
                        subgrids = SubgridArray::new(group.len(), n);
                        split_subgrids(grid, group, &mut subgrids, &self.cache)?;
                        fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
                        degridder_gpu(data, group, &subgrids, vis_ref, &device, &self.cache)?;
                        Ok(Vec::new())
                    }
                    JobOp::StageOutput => Ok(staged_vis_bytes(vis_ref, nr_time, nr_chan, group)),
                    // committed later, by the caller, in plan order
                    JobOp::Commit => Ok(Vec::new()),
                }
            };
            match run_job(
                &mut pipeline,
                injector.as_ref(),
                &self.retry,
                &mut stats,
                job,
                (t_in, t_split + t_fft + t_kernel, t_out),
                (0, 0.0),
                &mut backend,
            ) {
                JobRun::Done { .. } => {
                    counts.add(&group_counts);
                    kernel_seconds += t_kernel;
                    fft_seconds += t_fft;
                    adder_seconds += t_split;
                    htod_seconds += t_in;
                    dtoh_seconds += t_out;
                    let first = job * self.work_group_size;
                    ranges.push(first..first + group.len());
                }
                JobRun::Failed { error, attempts } => {
                    // a faulted attempt may have computed these slots
                    // before the chain died — failed jobs leave zeros
                    for item in group {
                        for dt in 0..item.nr_timesteps {
                            let row =
                                (item.baseline_index * nr_time + item.time_offset + dt) * nr_chan;
                            for c in item.channel_offset..item.channel_offset + item.nr_channels {
                                vis_out[row + c] = Visibility::zero();
                            }
                        }
                    }
                    failed_jobs.push(JobFailure {
                        job,
                        first_item: job * self.work_group_size,
                        nr_items: group.len(),
                        error,
                        attempts,
                    });
                }
            }
        }
        htod_seconds += stats.htod_seconds;
        kernel_seconds += stats.kernel_seconds;
        dtoh_seconds += stats.dtoh_seconds;
        idg_obs::add_retries(stats.nr_retries as u64);
        emit_modeled_spans(&pipeline.timeline, &compute_parts, 0);

        device.free(reserved);
        let makespan = pipeline.makespan();
        let energy = EnergyModel::new(device.arch.clone());
        let busy = pipeline.compute_busy();
        let device_energy_j =
            energy.device_energy(busy, 1.0) + energy.device_energy((makespan - busy).max(0.0), 0.0);
        let host_energy_j = energy.host_energy(makespan);

        Ok((
            DeferredVis {
                ranges,
                vis: vis_out,
            },
            GpuRunReport {
                pass: "degridding",
                counts,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                htod_seconds,
                dtoh_seconds,
                makespan,
                timeline: pipeline.timeline,
                device_energy_j,
                host_energy_j,
                nr_retries: stats.nr_retries,
                backoff_seconds: stats.backoff_seconds,
                failed_jobs,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::TargetedFault;
    use crate::stream::OpStatus;
    use idg_plan::Plan;
    use idg_telescope::{Dataset, IdentityATerm, Layout, SkyModel};
    use idg_types::Observation;

    fn dataset() -> Dataset {
        // Realistic per-item occupancy (many timesteps × channels per
        // subgrid) so the kernels are compute/shared-bound as in the
        // paper's configuration, not dominated by per-item A-term I/O.
        let obs = Observation::builder()
            .stations(6)
            .timesteps(64)
            .channels(8, 150e6, 1e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(64)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(6, 900.0, 51);
        let sky = SkyModel::random(&obs, 4, 0.6, 53);
        Dataset::simulate(obs, &layout, sky, &IdentityATerm)
    }

    fn kernel_data<'a>(ds: &'a Dataset, taper: &'a [f32]) -> KernelData<'a> {
        KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper,
        }
    }

    #[test]
    fn full_gridding_pass_produces_grid_and_report() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let exec = GpuExecutor::new(Device::pascal(), 8);
        let (grid, report) = exec.grid(&data, &plan).unwrap();
        assert!(grid.power() > 0.0, "grid received energy");
        assert!(report.makespan > 0.0);
        assert!(report.kernel_seconds > 0.0);
        assert_eq!(
            report.counts.visibilities as usize,
            plan.nr_gridded_visibilities()
        );
        // kernel dominates the modeled runtime (Fig. 9 shape)
        assert!(report.kernel_seconds > 5.0 * (report.fft_seconds + report.adder_seconds));
        // throughput metric is finite and positive
        assert!(report.mvis_per_sec() > 0.0);
        // fault-free pass: nothing retried, nothing failed
        assert_eq!(report.nr_retries, 0);
        assert_eq!(report.backoff_seconds, 0.0);
        assert!(report.complete());
    }

    #[test]
    fn gpu_grid_matches_cpu_grid() {
        // The executor's grid must equal the pure-CPU pipeline's grid.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);

        let exec = GpuExecutor::new(Device::pascal(), 4);
        let (gpu_grid, _) = exec.grid(&data, &plan).unwrap();

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        idg_kernels::gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");
        fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
        let mut cpu_grid = Grid::<f32>::new(ds.obs.grid_size);
        add_subgrids(&mut cpu_grid, &plan.items, &subgrids, &KernelCache::new()).unwrap();

        let scale = cpu_grid
            .as_slice()
            .iter()
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for (a, b) in gpu_grid.as_slice().iter().zip(cpu_grid.as_slice()) {
            assert!((*a - *b).abs() / scale < 2e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn gpu_degrid_pass_matches_cpu_pipeline() {
        // The executor's degridding pass must equal the pure-CPU
        // pipeline (splitter → inverse FFT → reference degridder) on the
        // same model grid.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        // build a model grid by gridding the data first
        let exec = GpuExecutor::new(Device::fiji(), 4);
        let (grid, _) = exec.grid(&data, &plan).unwrap();
        let (pred, report) = exec.degrid(&data, &plan, &grid).unwrap();
        assert_eq!(report.pass, "degridding");
        assert!(report.dtoh_seconds > 0.0);

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        split_subgrids(&grid, &plan.items, &mut subgrids, &KernelCache::new()).unwrap();
        fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
        let mut gold = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        idg_kernels::degridder_reference(&data, &plan.items, &subgrids, &mut gold)
            .expect("kernel run");

        let scale = gold
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for (i, (a, b)) in pred.iter().zip(&gold).enumerate() {
            for p in 0..4 {
                assert!(
                    (a.pols[p] - b.pols[p]).abs() / scale < 2e-3,
                    "vis {i} pol {p}: {} vs {}",
                    a.pols[p],
                    b.pols[p]
                );
            }
        }
    }

    #[test]
    fn large_grid_falls_back_to_host_adder() {
        // Sec. V-C e option (2): when the grid no longer fits in device
        // memory, subgrids are copied to the host and added there. The
        // result must be identical; the report shows DtoH traffic.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        // the grid (4·256²·8 B = 2 MB) doesn't fit, the buffers do
        let mut device = Device::fiji();
        device.arch.mem_size_gb = Some(0.001); // 1 MB device
        let exec_small = GpuExecutor::new(device, 8);
        let (grid_fallback, report) = exec_small.grid(&data, &plan).unwrap();
        assert!(report.dtoh_seconds > 0.0, "subgrids streamed to the host");

        let exec_full = GpuExecutor::new(Device::fiji(), 8);
        let (grid_resident, _) = exec_full.grid(&data, &plan).unwrap();
        assert_eq!(grid_fallback.as_slice(), grid_resident.as_slice());
    }

    #[test]
    fn out_of_memory_is_reported_when_even_buffers_do_not_fit() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let mut device = Device::fiji();
        device.arch.mem_size_gb = Some(0.0001); // 100 kB device
        let exec = GpuExecutor::new(device, 8);
        assert!(matches!(
            exec.grid(&data, &plan),
            Err(IdgError::DeviceOutOfMemory { .. })
        ));
    }

    #[test]
    fn pascal_is_modeled_faster_than_fiji() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let (_, rp) = GpuExecutor::new(Device::pascal(), 8)
            .grid(&data, &plan)
            .unwrap();
        let (_, rf) = GpuExecutor::new(Device::fiji(), 8)
            .grid(&data, &plan)
            .unwrap();
        assert!(
            rp.kernel_seconds < rf.kernel_seconds,
            "pascal {} vs fiji {}",
            rp.kernel_seconds,
            rf.kernel_seconds
        );
    }

    #[test]
    fn transient_faults_retry_to_a_bit_identical_grid() {
        // A kernel fault, a corrupted HtoD transfer and a stall on
        // three different jobs: every one retries and the final grid is
        // bit-identical to the fault-free run. The recovery cost shows
        // up as faulted timeline ops, retries, and backoff makespan.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);

        let (gold, gold_report) = GpuExecutor::new(Device::pascal(), 4)
            .grid(&data, &plan)
            .unwrap();

        let faults = FaultConfig::targeted(vec![
            TargetedFault {
                job: 0,
                attempt: 0,
                site: FaultSite::Kernel,
                kind: FaultKind::KernelFault,
            },
            TargetedFault {
                job: 1,
                attempt: 0,
                site: FaultSite::HtoD,
                kind: FaultKind::TransferCorruption,
            },
            TargetedFault {
                job: 2,
                attempt: 0,
                site: FaultSite::Kernel,
                kind: FaultKind::StreamStall,
            },
        ]);
        let exec = GpuExecutor::new(Device::pascal(), 4).with_faults(faults);
        let (grid, report) = exec.grid(&data, &plan).unwrap();

        assert_eq!(grid.as_slice(), gold.as_slice(), "recovery is exact");
        assert!(report.complete());
        assert_eq!(report.nr_retries, 3);
        assert!(report.backoff_seconds > 0.0);
        assert!(
            report.makespan > gold_report.makespan,
            "recovery costs time"
        );
        let faulted: Vec<_> = report
            .timeline
            .iter()
            .filter(|t| t.status == OpStatus::Faulted)
            .collect();
        assert_eq!(faulted.len(), 3);
        // the retries appear in the timeline as attempt-1 operations
        assert!(report.timeline.iter().any(|t| t.job == 0 && t.attempt == 1));
        assert!(report.timeline.iter().any(|t| t.job == 1 && t.attempt == 1));
    }

    #[test]
    fn exhausted_retries_report_the_job_as_failed() {
        // Job 1 faults on every attempt: the executor gives up after
        // max_attempts, excludes the job's subgrids from the grid, and
        // reports the classified error.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);

        let m = 4;
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let faults = FaultConfig::targeted(
            (0..retry.max_attempts)
                .map(|attempt| TargetedFault {
                    job: 1,
                    attempt,
                    site: FaultSite::Kernel,
                    kind: FaultKind::KernelFault,
                })
                .collect(),
        );
        let exec = GpuExecutor::new(Device::pascal(), m)
            .with_faults(faults)
            .with_retry_policy(retry);
        let (grid, report) = exec.grid(&data, &plan).unwrap();

        assert_eq!(report.failed_jobs.len(), 1);
        let failure = &report.failed_jobs[0];
        assert_eq!(failure.job, 1);
        assert_eq!(failure.first_item, m);
        assert_eq!(failure.attempts, 3);
        assert!(matches!(failure.error, IdgError::KernelFault { job: 1 }));
        assert_eq!(report.nr_retries, 2, "two re-enqueues before giving up");

        // the failed job's visibilities are not counted and its
        // subgrids are absent from the grid
        let full = gridder_counts(&plan.items, plan.subgrid_size());
        assert!(report.counts.visibilities < full.visibilities);
        let (gold, _) = GpuExecutor::new(Device::pascal(), m)
            .grid(&data, &plan)
            .unwrap();
        assert_ne!(grid.as_slice(), gold.as_slice());
    }

    #[test]
    fn injected_oom_is_persistent_and_skips_retry() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);

        let faults = FaultConfig::targeted(vec![TargetedFault {
            job: 0,
            attempt: 0,
            site: FaultSite::Alloc,
            kind: FaultKind::OutOfMemory,
        }]);
        let exec = GpuExecutor::new(Device::pascal(), 4).with_faults(faults);
        let (_, report) = exec.grid(&data, &plan).unwrap();
        assert_eq!(report.nr_retries, 0, "OOM is not retried");
        assert_eq!(report.failed_jobs.len(), 1);
        assert_eq!(report.failed_jobs[0].attempts, 1);
        assert!(!report.failed_jobs[0].error.is_transient());
    }

    #[test]
    fn degrid_retries_recover_bit_identical_visibilities() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let exec = GpuExecutor::new(Device::pascal(), 4);
        let (grid, _) = exec.grid(&data, &plan).unwrap();
        let (gold, _) = exec.degrid(&data, &plan, &grid).unwrap();

        // corrupt the DtoH transfer of job 0 and stall job 2's kernel
        let faults = FaultConfig::targeted(vec![
            TargetedFault {
                job: 0,
                attempt: 0,
                site: FaultSite::DtoH,
                kind: FaultKind::TransferCorruption,
            },
            TargetedFault {
                job: 2,
                attempt: 0,
                site: FaultSite::Kernel,
                kind: FaultKind::StreamStall,
            },
        ]);
        let faulty = GpuExecutor::new(Device::pascal(), 4).with_faults(faults);
        let (pred, report) = faulty.degrid(&data, &plan, &grid).unwrap();
        assert!(report.complete());
        assert_eq!(report.nr_retries, 2);
        assert_eq!(pred, gold, "recovered visibilities are bit-identical");
    }

    #[test]
    fn instrumented_pass_emits_one_stage_span_per_engine_per_job() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let exec = GpuExecutor::new(Device::pascal(), 8);

        let session = idg_obs::Session::begin("gridding");
        let (_, report) = exec.grid(&data, &plan).unwrap();
        let trace = session.finish();

        let nr_jobs = plan.work_groups(8).count();
        assert!(nr_jobs > 1, "want a multi-job schedule");
        assert!(report.complete());
        for job in 0..nr_jobs as u32 {
            let stages: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.cat == "stage" && s.job == Some(job))
                .collect();
            assert_eq!(stages.len(), 3, "HtoD/Compute/DtoH spans for job {job}");
            let jobs: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.cat == "job" && s.job == Some(job))
                .collect();
            assert_eq!(jobs.len(), 1);
            // the job span encloses its stage spans
            for s in &stages {
                assert!(jobs[0].start_us <= s.start_us);
                assert!(s.end_us() <= jobs[0].end_us());
            }
            // the device adder keeps everything on the GPU: the Compute
            // interval subdivides into gridder / subgrid_fft / adder
            let kernels: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.cat == "kernel" && s.job == Some(job))
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(kernels, ["gridder", "subgrid_fft", "adder"]);
        }
        assert_eq!(trace.metrics.nr_retries, 0);
    }

    #[test]
    fn split_deferred_matches_one_shot_degrid_bit_for_bit() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let exec = GpuExecutor::new(Device::pascal(), 8);

        // grid first so the model grid carries energy to predict from
        let (grid, _) = exec.grid(&data, &plan).unwrap();
        let (gold, _) = exec.degrid(&data, &plan, &grid).unwrap();
        let (deferred, report) = exec.split_deferred(&data, &plan, &grid).unwrap();

        assert!(report.complete());
        assert_eq!(report.pass, "degridding");
        assert!(report.adder_seconds > 0.0, "splitter time is accounted");
        // completed ranges tile plan.items in job order
        let covered: usize = deferred.ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, plan.items.len());
        let mut next = 0;
        for r in &deferred.ranges {
            assert_eq!(r.start, next, "ranges are contiguous in job order");
            next = r.end;
        }
        // the deferred buffer is bit-identical to the one-shot pass
        assert_eq!(deferred.vis.len(), gold.len());
        for (a, b) in deferred.vis.iter().zip(gold.iter()) {
            for (x, y) in a.pols.iter().zip(b.pols.iter()) {
                assert!(x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
            }
        }
    }

    #[test]
    fn split_deferred_zeroes_and_reports_exhausted_jobs() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = kernel_data(&ds, &taper);
        let exec = GpuExecutor::new(Device::pascal(), 8);
        let (grid, _) = exec.grid(&data, &plan).unwrap();

        // job 1 faults on every attempt and is given up on
        let faults = FaultConfig::targeted(
            (0..8)
                .map(|attempt| TargetedFault {
                    job: 1,
                    attempt,
                    site: FaultSite::Kernel,
                    kind: FaultKind::KernelFault,
                })
                .collect(),
        );
        let failing = GpuExecutor::new(Device::pascal(), 8).with_faults(faults);
        let (deferred, report) = failing.split_deferred(&data, &plan, &grid).unwrap();

        assert_eq!(report.failed_jobs.len(), 1);
        let failure = &report.failed_jobs[0];
        assert_eq!(failure.job, 1);
        // the failed job's slots are zero and its range is absent
        assert!(!deferred
            .ranges
            .iter()
            .any(|r| r.start == failure.first_item));
        let nr_time = ds.obs.nr_timesteps;
        let nr_chan = ds.obs.nr_channels();
        for item in &plan.items[failure.first_item..failure.first_item + failure.nr_items] {
            for dt in 0..item.nr_timesteps {
                let row = (item.baseline_index * nr_time + item.time_offset + dt) * nr_chan;
                for c in item.channel_offset..item.channel_offset + item.nr_channels {
                    for p in deferred.vis[row + c].pols {
                        assert_eq!(p.re, 0.0);
                        assert_eq!(p.im, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_plan_reports_zero_throughput_not_nan() {
        let report = GpuRunReport {
            pass: "gridding",
            counts: OpCounts::default(),
            kernel_seconds: 0.0,
            fft_seconds: 0.0,
            adder_seconds: 0.0,
            htod_seconds: 0.0,
            dtoh_seconds: 0.0,
            makespan: 0.0,
            timeline: Vec::new(),
            device_energy_j: 0.0,
            host_energy_j: 0.0,
            nr_retries: 0,
            backoff_seconds: 0.0,
            failed_jobs: Vec::new(),
        };
        assert_eq!(report.kernel_tops(), 0.0);
        assert_eq!(report.mvis_per_sec(), 0.0);
    }
}
