//! The GPU executor: whole gridding/degridding passes on the device
//! model, with triple-buffered transfer/compute overlap and an
//! execution/energy report.
//!
//! Results are *real* (computed by the simulated kernels and verified
//! against the CPU reference); times and energies are *modeled* from the
//! Table I machine parameters — the substitution documented in
//! DESIGN.md.

use crate::device::Device;
use crate::kernels::{degridder_gpu, gridder_gpu};
use crate::stream::{PipelineSim, TraceEntry};
use crate::timing::{adder_time, kernel_time, subgrid_fft_time, transfer_time};
use idg_fft::Direction;
use idg_kernels::{add_subgrids, fft_subgrids, split_subgrids, FftNorm, KernelData, SubgridArray};
use idg_perf::{EnergyModel, OpCounts};
use idg_plan::Plan;
use idg_types::{Grid, IdgError, Visibility};

/// Outcome of one executor pass.
#[derive(Clone, Debug)]
pub struct GpuRunReport {
    /// "gridding" or "degridding".
    pub pass: &'static str,
    /// Aggregate gridder/degridder operation counters.
    pub counts: OpCounts,
    /// Modeled main-kernel busy time, s.
    pub kernel_seconds: f64,
    /// Modeled subgrid-FFT time, s.
    pub fft_seconds: f64,
    /// Modeled adder/splitter time, s.
    pub adder_seconds: f64,
    /// Modeled host-to-device transfer time, s.
    pub htod_seconds: f64,
    /// Modeled device-to-host transfer time, s.
    pub dtoh_seconds: f64,
    /// Pipeline makespan with triple buffering, s.
    pub makespan: f64,
    /// The per-operation timeline (Fig. 7 material).
    pub timeline: Vec<TraceEntry>,
    /// Modeled device energy over the makespan, J.
    pub device_energy_j: f64,
    /// Modeled host (package + DRAM) energy over the makespan, J.
    pub host_energy_j: f64,
}

impl GpuRunReport {
    /// Achieved operation rate over kernel busy time, TOps/s — the
    /// quantity plotted in Fig. 11.
    pub fn kernel_tops(&self) -> f64 {
        self.counts.total_ops() as f64 / self.kernel_seconds / 1e12
    }

    /// Visibility throughput over the whole pass, MVisibilities/s — the
    /// Fig. 10 metric.
    pub fn mvis_per_sec(&self) -> f64 {
        self.counts.visibilities as f64 / self.makespan / 1e6
    }

    /// Energy efficiency of the main kernel, GFlops/W (Fig. 15).
    pub fn gflops_per_watt(&self, model: &EnergyModel) -> f64 {
        model.gflops_per_watt(&self.counts, self.kernel_seconds, 1.0)
    }
}

/// Drives gridding / degridding passes on a modeled device.
pub struct GpuExecutor {
    /// The device model.
    pub device: Device,
    /// Work items per work group (kernel launch).
    pub work_group_size: usize,
}

impl GpuExecutor {
    /// Create an executor with the given work-group granularity.
    pub fn new(device: Device, work_group_size: usize) -> Self {
        assert!(work_group_size > 0);
        Self {
            device,
            work_group_size,
        }
    }

    /// Model the device-resident allocations of a pass. Preferred: grid +
    /// three buffer sets resident on the device. When the grid alone no
    /// longer fits ("when dealing with large images that no longer fit
    /// into GPU device memory", Sec. V-C e), fall back to the paper's
    /// option (2): keep only the buffers on the device, copy subgrids to
    /// the host and run the adder there. Returns
    /// `(reserved_bytes, host_adder)`; errors only when even the buffer
    /// sets do not fit.
    fn reserve_memory(&self, device: &mut Device, plan: &Plan) -> Result<(u64, bool), IdgError> {
        let n = plan.subgrid_size();
        let grid_bytes = (4 * plan.grid_size() * plan.grid_size() * 8) as u64;
        let subgrid_bytes = (self.work_group_size * 4 * n * n * 8) as u64;
        let io_bytes = (self.work_group_size * 512 * 44) as u64; // vis+uvw staging
        let buffers = 3 * (subgrid_bytes + io_bytes);
        if device.allocate(grid_bytes + buffers).is_ok() {
            return Ok((grid_bytes + buffers, false));
        }
        device.allocate(buffers)?;
        Ok((buffers, true))
    }

    /// Run a full gridding pass: visibilities → grid.
    pub fn grid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
    ) -> Result<(Grid<f32>, GpuRunReport), IdgError> {
        let mut device = self.device.clone();
        let (reserved, host_adder) = self.reserve_memory(&mut device, plan)?;
        // host-side adder: subgrids stream back over PCI-e and the host
        // memory system (~40 GB/s effective) performs the row-parallel add
        let host_adder_bw = 40e9;

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let mut grid = Grid::<f32>::new(plan.grid_size());
        let mut pipeline = PipelineSim::new(3);
        let mut counts = OpCounts::default();
        let mut kernel_seconds = 0.0;
        let mut fft_seconds = 0.0;
        let mut adder_seconds = 0.0;
        let mut htod_seconds = 0.0;
        let mut dtoh_seconds = 0.0;

        for group in plan.work_groups(self.work_group_size) {
            let mut subgrids = SubgridArray::new(group.len(), n);
            let group_counts = gridder_gpu(data, group, &mut subgrids, &device);
            fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
            add_subgrids(&mut grid, group, &subgrids);

            // modeled schedule
            let in_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * (nr_chan * 32 + 12)) as u64)
                .sum::<u64>();
            let t_in = transfer_time(&device, in_bytes);
            let t_kernel = kernel_time(&device, &group_counts);
            let t_fft = subgrid_fft_time(&device, group.len(), n);
            let subgrid_bytes = (group.len() * 4 * n * n * 8) as u64;
            if host_adder {
                // option (2): subgrids stream to the host (DtoH engine)
                // and the host adds them while the GPU computes on
                let t_out = transfer_time(&device, subgrid_bytes);
                let t_add = 2.0 * subgrid_bytes as f64 / host_adder_bw;
                pipeline.submit(t_in, t_kernel + t_fft, t_out);
                adder_seconds += t_add;
                dtoh_seconds += t_out;
            } else {
                // option (1): atomic adder on the device
                let t_add = adder_time(&device, group.len(), n);
                pipeline.submit(t_in, t_kernel + t_fft + t_add, 0.0);
                adder_seconds += t_add;
            }

            counts.add(&group_counts);
            kernel_seconds += t_kernel;
            fft_seconds += t_fft;
            htod_seconds += t_in;
        }

        device.free(reserved);
        let makespan = pipeline.makespan();
        let energy = EnergyModel::new(device.arch.clone());
        let busy = pipeline.compute_busy();
        let device_energy_j =
            energy.device_energy(busy, 1.0) + energy.device_energy(makespan - busy, 0.0);
        let host_energy_j = energy.host_energy(makespan);

        Ok((
            grid,
            GpuRunReport {
                pass: "gridding",
                counts,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                htod_seconds,
                dtoh_seconds,
                makespan,
                timeline: pipeline.timeline,
                device_energy_j,
                host_energy_j,
            },
        ))
    }

    /// Run a full degridding pass: grid → predicted visibilities.
    pub fn degrid(
        &self,
        data: &KernelData<'_>,
        plan: &Plan,
        grid: &Grid<f32>,
    ) -> Result<(Vec<Visibility<f32>>, GpuRunReport), IdgError> {
        let mut device = self.device.clone();
        let (reserved, host_splitter) = self.reserve_memory(&mut device, plan)?;
        let _ = host_splitter; // splitter reads are modeled identically

        let n = plan.subgrid_size();
        let nr_chan = data.obs.nr_channels();
        let mut vis_out = vec![Visibility::<f32>::zero(); data.obs.nr_visibilities()];
        let mut pipeline = PipelineSim::new(3);
        let mut counts = OpCounts::default();
        let mut kernel_seconds = 0.0;
        let mut fft_seconds = 0.0;
        let mut adder_seconds = 0.0;
        let mut dtoh_seconds = 0.0;

        for group in plan.work_groups(self.work_group_size) {
            let mut subgrids = SubgridArray::new(group.len(), n);
            split_subgrids(grid, group, &mut subgrids);
            fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
            let group_counts = degridder_gpu(data, group, &subgrids, &mut vis_out, &device);

            let uvw_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * 12) as u64)
                .sum::<u64>();
            let out_bytes = group
                .iter()
                .map(|i| (i.nr_timesteps * nr_chan * 32) as u64)
                .sum::<u64>();
            let t_in = transfer_time(&device, uvw_bytes);
            let t_split = adder_time(&device, group.len(), n);
            let t_fft = subgrid_fft_time(&device, group.len(), n);
            let t_kernel = kernel_time(&device, &group_counts);
            let t_out = transfer_time(&device, out_bytes);
            pipeline.submit(t_in, t_split + t_fft + t_kernel, t_out);

            counts.add(&group_counts);
            kernel_seconds += t_kernel;
            fft_seconds += t_fft;
            adder_seconds += t_split;
            dtoh_seconds += t_out;
        }

        device.free(reserved);
        let makespan = pipeline.makespan();
        let energy = EnergyModel::new(device.arch.clone());
        let busy = pipeline.compute_busy();
        let device_energy_j =
            energy.device_energy(busy, 1.0) + energy.device_energy(makespan - busy, 0.0);
        let host_energy_j = energy.host_energy(makespan);

        Ok((
            vis_out,
            GpuRunReport {
                pass: "degridding",
                counts,
                kernel_seconds,
                fft_seconds,
                adder_seconds,
                htod_seconds: 0.0,
                dtoh_seconds,
                makespan,
                timeline: pipeline.timeline,
                device_energy_j,
                host_energy_j,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_plan::Plan;
    use idg_telescope::{Dataset, IdentityATerm, Layout, SkyModel};
    use idg_types::Observation;

    fn dataset() -> Dataset {
        // Realistic per-item occupancy (many timesteps × channels per
        // subgrid) so the kernels are compute/shared-bound as in the
        // paper's configuration, not dominated by per-item A-term I/O.
        let obs = Observation::builder()
            .stations(6)
            .timesteps(64)
            .channels(8, 150e6, 1e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(64)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(6, 900.0, 51);
        let sky = SkyModel::random(&obs, 4, 0.6, 53);
        Dataset::simulate(obs, &layout, sky, &IdentityATerm)
    }

    #[test]
    fn full_gridding_pass_produces_grid_and_report() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let exec = GpuExecutor::new(Device::pascal(), 8);
        let (grid, report) = exec.grid(&data, &plan).unwrap();
        assert!(grid.power() > 0.0, "grid received energy");
        assert!(report.makespan > 0.0);
        assert!(report.kernel_seconds > 0.0);
        assert_eq!(
            report.counts.visibilities as usize,
            plan.nr_gridded_visibilities()
        );
        // kernel dominates the modeled runtime (Fig. 9 shape)
        assert!(report.kernel_seconds > 5.0 * (report.fft_seconds + report.adder_seconds));
        // throughput metric is finite and positive
        assert!(report.mvis_per_sec() > 0.0);
    }

    #[test]
    fn gpu_grid_matches_cpu_grid() {
        // The executor's grid must equal the pure-CPU pipeline's grid.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };

        let exec = GpuExecutor::new(Device::pascal(), 4);
        let (gpu_grid, _) = exec.grid(&data, &plan).unwrap();

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        idg_kernels::gridder_reference(&data, &plan.items, &mut subgrids);
        fft_subgrids(&mut subgrids, Direction::Forward, FftNorm::None);
        let mut cpu_grid = Grid::<f32>::new(ds.obs.grid_size);
        add_subgrids(&mut cpu_grid, &plan.items, &subgrids);

        let scale = cpu_grid
            .as_slice()
            .iter()
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for (a, b) in gpu_grid.as_slice().iter().zip(cpu_grid.as_slice()) {
            assert!((*a - *b).abs() / scale < 2e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn gpu_degrid_pass_matches_cpu_pipeline() {
        // The executor's degridding pass must equal the pure-CPU
        // pipeline (splitter → inverse FFT → reference degridder) on the
        // same model grid.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        // build a model grid by gridding the data first
        let exec = GpuExecutor::new(Device::fiji(), 4);
        let (grid, _) = exec.grid(&data, &plan).unwrap();
        let (pred, report) = exec.degrid(&data, &plan, &grid).unwrap();
        assert_eq!(report.pass, "degridding");
        assert!(report.dtoh_seconds > 0.0);

        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), ds.obs.subgrid_size);
        split_subgrids(&grid, &plan.items, &mut subgrids);
        fft_subgrids(&mut subgrids, Direction::Inverse, FftNorm::None);
        let mut gold = vec![Visibility::<f32>::zero(); ds.obs.nr_visibilities()];
        idg_kernels::degridder_reference(&data, &plan.items, &subgrids, &mut gold);

        let scale = gold
            .iter()
            .flat_map(|v| v.pols.iter())
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for (i, (a, b)) in pred.iter().zip(&gold).enumerate() {
            for p in 0..4 {
                assert!(
                    (a.pols[p] - b.pols[p]).abs() / scale < 2e-3,
                    "vis {i} pol {p}: {} vs {}",
                    a.pols[p],
                    b.pols[p]
                );
            }
        }
    }

    #[test]
    fn large_grid_falls_back_to_host_adder() {
        // Sec. V-C e option (2): when the grid no longer fits in device
        // memory, subgrids are copied to the host and added there. The
        // result must be identical; the report shows DtoH traffic.
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        // the grid (4·256²·8 B = 2 MB) doesn't fit, the buffers do
        let mut device = Device::fiji();
        device.arch.mem_size_gb = Some(0.001); // 1 MB device
        let exec_small = GpuExecutor::new(device, 8);
        let (grid_fallback, report) = exec_small.grid(&data, &plan).unwrap();
        assert!(report.dtoh_seconds > 0.0, "subgrids streamed to the host");

        let exec_full = GpuExecutor::new(Device::fiji(), 8);
        let (grid_resident, _) = exec_full.grid(&data, &plan).unwrap();
        assert_eq!(grid_fallback.as_slice(), grid_resident.as_slice());
    }

    #[test]
    fn out_of_memory_is_reported_when_even_buffers_do_not_fit() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut device = Device::fiji();
        device.arch.mem_size_gb = Some(0.0001); // 100 kB device
        let exec = GpuExecutor::new(device, 8);
        assert!(matches!(
            exec.grid(&data, &plan),
            Err(IdgError::DeviceOutOfMemory { .. })
        ));
    }

    #[test]
    fn pascal_is_modeled_faster_than_fiji() {
        let ds = dataset();
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = idg_math::spheroidal_2d(ds.obs.subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let (_, rp) = GpuExecutor::new(Device::pascal(), 8)
            .grid(&data, &plan)
            .unwrap();
        let (_, rf) = GpuExecutor::new(Device::fiji(), 8)
            .grid(&data, &plan)
            .unwrap();
        assert!(
            rp.kernel_seconds < rf.kernel_seconds,
            "pascal {} vs fiji {}",
            rp.kernel_seconds,
            rf.kernel_seconds
        );
    }
}
