//! Model-checked breaker liveness for [`DeviceHealth`] behind the
//! `idg-sync` facade (DESIGN.md §13): under every interleaving of
//! concurrent outcome recorders up to the bound, the breaker trips
//! exactly once at the threshold, refuses work while open, and — the
//! liveness half — always re-admits after the cooldown and re-closes
//! on clean probes. `DeviceHealth` itself is caller-synchronized by
//! design; this suite pins the fleet's actual usage shape, a facade
//! mutex shared by per-device worker threads.
//!
//! Compiled only under `RUSTFLAGS="--cfg idg_model_check"`; an empty
//! test binary otherwise.

#![cfg(idg_model_check)]

use idg_gpusim::health::{BreakerConfig, BreakerState, DeviceHealth, JobOutcome};
use idg_mc::{thread, Config, Explorer};
use idg_sync::Mutex;

fn explorer() -> Explorer {
    Explorer::new(Config::default()).expect("valid config")
}

fn tracker() -> DeviceHealth {
    DeviceHealth::new(BreakerConfig {
        window: 4,
        trip_unhealthy: 2,
        cooldown_seconds: 1.0,
        half_open_probes: 1,
    })
    .expect("valid breaker config")
}

#[test]
fn breaker_trips_exactly_once_under_concurrent_failures() {
    let report = explorer().explore(|| {
        let health = Mutex::new(tracker());
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| health.lock().record_outcome(JobOutcome::Failed, 0.0));
            }
        });
        let h = health.lock();
        assert_eq!(h.outcomes(), 2, "every recorder's outcome lands");
        assert_eq!(h.unhealthy_in_window(), 2);
        assert_eq!(
            h.state(),
            BreakerState::Open,
            "threshold reached in every interleaving"
        );
        assert_eq!(h.trips(), 1, "the trip fires exactly once");
    });
    assert!(report.proved(), "report: {report:?}");
}

#[test]
fn tripped_breaker_recovers_after_cooldown() {
    // Liveness: whatever order the failures landed in, the breaker
    // must refuse during cooldown, half-open after it, and re-close on
    // a clean probe — the fleet's guarantee that a benched device is
    // never benched forever.
    let report = explorer().explore(|| {
        let health = Mutex::new(tracker());
        thread::scope(|s| {
            s.spawn(|| health.lock().record_outcome(JobOutcome::Failed, 0.0));
            s.spawn(|| {
                health
                    .lock()
                    .record_outcome(JobOutcome::Recovered { nr_retries: 1 }, 0.0);
            });
        });
        let mut h = health.lock();
        assert_eq!(h.state(), BreakerState::Open);
        assert!(!h.admit(0.5), "cooldown must hold the device out");
        assert!(h.admit(1.5), "after cooldown the breaker half-opens");
        assert_eq!(h.state(), BreakerState::HalfOpen);
        h.record_outcome(JobOutcome::Clean, 1.5);
        assert_eq!(
            h.state(),
            BreakerState::Closed,
            "a clean probe re-closes the breaker"
        );
        assert!(h.admit(1.6));
    });
    assert!(report.proved(), "report: {report:?}");
}

#[test]
fn mixed_clean_and_failed_recorders_converge() {
    // One clean + one failed outcome stays under the trip threshold in
    // every interleaving; the breaker must remain closed and admitting.
    let report = explorer().explore(|| {
        let health = Mutex::new(tracker());
        thread::scope(|s| {
            s.spawn(|| health.lock().record_outcome(JobOutcome::Clean, 0.0));
            s.spawn(|| health.lock().record_outcome(JobOutcome::Failed, 0.0));
        });
        let mut h = health.lock();
        assert_eq!(h.outcomes(), 2);
        assert_eq!(h.unhealthy_in_window(), 1);
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.trips(), 0);
        assert!(h.admit(0.1));
    });
    assert!(report.proved(), "report: {report:?}");
}
