//! Property tests for the fleet executor's delivery invariants.
//!
//! Whatever a random fault schedule does to a random fleet shape, two
//! things must hold: (1) every work group lands in the pass result
//! *exactly once* — completed on some device XOR reported in
//! `failed_jobs`, never lost, never double-added — and (2) the
//! breaker state machine stays live: a breaker that refuses work
//! always names the modeled time at which it will admit again.

use idg_gpusim::{
    BreakerConfig, Device, DeviceHealth, FaultConfig, FleetExecutor, GpuExecutor, JobOutcome,
};
use idg_kernels::KernelData;
use idg_plan::Plan;
use idg_telescope::{Dataset, IdentityATerm, Layout, SkyModel};
use idg_types::Observation;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small deterministic dataset shared by every proptest case (the
/// simulation is the expensive part; the fault schedule and fleet
/// shape are what vary).
fn dataset() -> &'static (Dataset, Plan, Vec<f32>) {
    static DATA: OnceLock<(Dataset, Plan, Vec<f32>)> = OnceLock::new();
    DATA.get_or_init(|| {
        let obs = Observation::builder()
            .stations(5)
            .timesteps(16)
            .channels(3, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(16)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(5, 900.0, 71);
        let sky = SkyModel::random(&obs, 3, 0.6, 73);
        let ds = Dataset::simulate(obs, &layout, sky, &IdentityATerm);
        let plan = Plan::create(&ds.obs, &ds.uvw).unwrap();
        let taper = vec![1.0f32; ds.obs.subgrid_size * ds.obs.subgrid_size];
        (ds, plan, taper)
    })
}

fn kernel_data<'a>(ds: &'a Dataset, taper: &'a [f32]) -> KernelData<'a> {
    KernelData {
        obs: &ds.obs,
        uvw: &ds.uvw,
        visibilities: &ds.visibilities,
        aterms: &ds.aterms,
        taper,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn every_job_lands_in_the_merged_grid_exactly_once(
        seed in 1u64..10_000,
        nr_devices in 1usize..5,
        wgs in 1usize..5,
        lemon_slot in 0usize..4,
        corruption in 0.0..0.4f64,
        kernel in 0.0..0.4f64,
        stall in 0.0..0.2f64,
        oom in 0.0..0.3f64,
    ) {
        let (ds, plan, taper) = dataset();
        let data = kernel_data(ds, taper);
        let faults = FaultConfig {
            seed,
            transfer_corruption_rate: corruption,
            kernel_fault_rate: kernel,
            stall_rate: stall,
            oom_rate: oom,
            ..FaultConfig::default()
        };
        let fleet = FleetExecutor::uniform(Device::pascal(), nr_devices, wgs)
            .with_member_faults(lemon_slot % nr_devices, faults)
            .with_breaker(BreakerConfig {
                window: 4,
                trip_unhealthy: 2,
                cooldown_seconds: 0.25,
                half_open_probes: 1,
            });
        let (grid, report) = fleet.grid(&data, plan).unwrap();
        let nr_jobs = plan.work_groups(wgs).count();

        // Exactly-once accounting: completed on some device XOR failed.
        let completed: usize = report.per_device.iter().map(|d| d.jobs_completed).sum();
        prop_assert!(
            completed + report.failed_jobs.len() == nr_jobs,
            "jobs lost or duplicated: {} completed + {} failed != {} total",
            completed,
            report.failed_jobs.len(),
            nr_jobs
        );
        let mut failed: Vec<usize> = report.failed_jobs.iter().map(|f| f.job).collect();
        let before = failed.len();
        failed.sort_unstable();
        failed.dedup();
        prop_assert!(failed.len() == before, "a job failed twice");
        prop_assert!(failed.iter().all(|&j| j < nr_jobs));

        // Exactly-once numerically: a complete pass is bit-identical
        // to the fault-free single-device reference — one double-add
        // or dropped commit would move bits.
        if report.complete() {
            let (gold, _) = GpuExecutor::new(Device::pascal(), wgs)
                .grid(&data, plan)
                .unwrap();
            for (x, y) in grid.as_slice().iter().zip(gold.as_slice()) {
                prop_assert_eq!(x.re.to_bits(), y.re.to_bits());
                prop_assert_eq!(x.im.to_bits(), y.im.to_bits());
            }
        }
    }

    #[test]
    fn breaker_state_machine_never_deadlocks(
        schedule_seed in 0u64..u64::MAX,
        nr_outcomes in 1usize..80,
        window in 1usize..8,
        trip in 1usize..8,
        probes in 1u32..4,
        cooldown in 0.01..2.0f64,
    ) {
        let config = BreakerConfig {
            window: window.max(trip),
            trip_unhealthy: trip,
            cooldown_seconds: cooldown,
            half_open_probes: probes,
        };
        let mut health = DeviceHealth::new(config).unwrap();
        let mut now = 0.0;
        // Derive the outcome sequence from the drawn seed with a
        // splitmix64 walk (the shim has no Vec strategy).
        let mut word = schedule_seed;
        for _ in 0..nr_outcomes {
            word = word.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = word;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let outcome = match (z ^ (z >> 31)) % 3 {
                0 => JobOutcome::Clean,
                1 => JobOutcome::Recovered { nr_retries: 1 },
                _ => JobOutcome::Failed,
            };
            // Liveness: at every point there is a modeled time at
            // which the breaker admits — either right now, or at the
            // cooldown expiry it must be able to name.
            let admitted_at = if health.admit(now) {
                now
            } else {
                let t = health.cooldown_expiry().expect(
                    "a breaker that refuses work without a cooldown deadline is deadlocked",
                );
                prop_assert!(
                    health.admit(t),
                    "breaker refused its own cooldown expiry"
                );
                t
            };
            health.record_outcome(outcome, admitted_at);
            now = admitted_at + 0.05;
        }
    }
}
