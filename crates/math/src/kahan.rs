//! Compensated (Kahan–Babuška) summation.
//!
//! The reference kernels accumulate millions of terms; plain f32
//! summation loses ~√N·ε of accuracy while compensated summation keeps
//! the error at O(ε). Used by accuracy-critical reductions in tests and
//! by the energy/statistics accumulators, and exposed publicly as part
//! of the numerics toolbox.

/// A running compensated sum.
#[derive(Copy, Clone, Debug, Default)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Start from zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term (Neumaier's variant: handles terms larger than the
    /// running sum, unlike textbook Kahan).
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated total.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = KahanSum::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

/// Compensated sum of a slice.
pub fn kahan_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<KahanSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_on_small_inputs() {
        assert_eq!(kahan_sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(kahan_sum(&[]), 0.0);
    }

    #[test]
    fn recovers_catastrophic_cancellation() {
        // 1 + 1e100 − 1e100 = 1: naive f64 summation returns 0 for the
        // ordering below; Neumaier keeps the 1.
        let values = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = values.iter().sum();
        assert_eq!(naive, 0.0, "naive sum loses the small terms");
        assert_eq!(kahan_sum(&values), 2.0);
    }

    #[test]
    fn beats_naive_on_long_alternating_sums() {
        // Σ (x − x) interleaved with tiny terms: exact answer n·tiny.
        let n = 100_000;
        let tiny = 1e-10f64;
        let mut values = Vec::with_capacity(3 * n);
        for i in 0..n {
            let big = 1e8 + i as f64;
            values.push(big);
            values.push(tiny);
            values.push(-big);
        }
        let exact = n as f64 * tiny;
        let compensated = kahan_sum(&values);
        assert!(
            (compensated - exact).abs() < 1e-18 * n as f64,
            "compensated {compensated} vs exact {exact}"
        );
    }

    #[test]
    fn from_iterator_matches_add_loop() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.1).sin()).collect();
        let a = kahan_sum(&values);
        let mut b = KahanSum::new();
        for v in &values {
            b.add(*v);
        }
        assert_eq!(a, b.value());
    }
}
