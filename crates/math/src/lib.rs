//! # idg-math — the supporting mathematical software, built from scratch
//!
//! A central point of the paper is that the gridder/degridder throughput is
//! bounded not only by the hardware but by the *supporting mathematical
//! software*: the batched sine/cosine routines (Intel SVML/VML on the CPU,
//! `--use_fast_math` intrinsics on the GPU). This crate plays that role for
//! the Rust reproduction:
//!
//! * [`mod@sincos`] — a vectorizable polynomial `sincos` with the paper's two
//!   accuracy settings: *medium* (≈4 ulp, the SVML setting used on
//!   HASWELL) and *fast* (≈2 ulp, the CUDA `--use_fast_math` setting used
//!   on PASCAL), plus a libm-backed *high* reference;
//! * [`spheroidal`] — the prolate-spheroidal tapering function used to
//!   suppress aliasing from neighbouring subgrids;
//! * [`mix`] — the FMA/sincos instruction-mix microkernel behind the
//!   paper's Fig. 12 (throughput as a function of ρ = #FMA / #sincos).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod kahan;
pub mod mix;
pub mod sincos;
pub mod spheroidal;

pub use kahan::{kahan_sum, KahanSum};
pub use sincos::{sincos, sincos_batch, Accuracy};
pub use spheroidal::{spheroidal_1d, spheroidal_2d, spheroidal_eta, spheroidal_gridding_eta};
