//! FMA/sincos instruction-mix microkernel (paper Fig. 12).
//!
//! The paper benchmarks operation throughput for various ratios
//! ρ = #FMAs / #sincos to derive the *effective* compute ceiling of each
//! architecture: the IDG kernels perform 17 real FMAs per sincos pair
//! (ρ = 17), and on architectures that evaluate sine/cosine in software
//! (HASWELL, FIJI) the attainable Ops/s at ρ = 17 is far below the FMA
//! peak. This module is the measurable analogue: a tight loop executing
//! `ρ` FMAs per `sincos` evaluation whose runtime, combined with the
//! operation definition op ∈ {+, −, ×, sin, cos}, yields the same curve.

use crate::sincos::{sincos, Accuracy};

/// Result of one mix-kernel execution.
#[derive(Copy, Clone, Debug)]
pub struct MixResult {
    /// Total operations executed, with one FMA = 2 ops and one
    /// sincos pair = 2 ops (sin + cos), the paper's definition.
    pub total_ops: u64,
    /// FMA operations executed (counted as instructions, not ops).
    pub fmas: u64,
    /// sincos pair evaluations executed.
    pub sincos_pairs: u64,
    /// Checksum to defeat dead-code elimination.
    pub checksum: f32,
}

/// Execute `iterations` rounds of (1 sincos + `rho` FMAs) and return the
/// operation counts plus a live checksum.
///
/// The loop body mirrors the accumulation structure of Algorithm 1: the
/// sincos result feeds the FMA chain, so neither can be optimized away and
/// the dependency structure matches the real kernel.
pub fn mix_kernel(rho: u32, iterations: u64, accuracy: Accuracy) -> MixResult {
    // Four independent accumulator pairs keep the FMA pipelines busy, as
    // the four polarizations do in the real kernel.
    let mut acc = [[0.1f32, 0.2], [0.3, 0.4], [0.5, 0.6], [0.7, 0.8]];
    let mut phase = 0.123_456_7f32;

    for _ in 0..iterations {
        let (s, c) = sincos(phase, accuracy);
        phase += 0.618_034; // irrational step: exercises all quadrants
        if phase > 1e4 {
            phase -= 1e4;
        }
        // `rho` FMAs distributed round-robin over the accumulators.
        let mut k = 0u32;
        while k + 8 <= rho {
            // unrolled by 8 (2 FMAs per accumulator pair)
            acc[0][0] = s.mul_add(c, acc[0][0]);
            acc[0][1] = c.mul_add(s, acc[0][1]);
            acc[1][0] = s.mul_add(s, acc[1][0]);
            acc[1][1] = c.mul_add(c, acc[1][1]);
            acc[2][0] = s.mul_add(0.5, acc[2][0]);
            acc[2][1] = c.mul_add(0.5, acc[2][1]);
            acc[3][0] = s.mul_add(-0.25, acc[3][0]);
            acc[3][1] = c.mul_add(-0.25, acc[3][1]);
            k += 8;
        }
        while k < rho {
            let i = (k % 4) as usize;
            acc[i][0] = s.mul_add(c, acc[i][0]);
            k += 1;
        }
        // Keep accumulators bounded so the loop cannot saturate to inf.
        if acc[0][0].abs() > 1e6 {
            for a in &mut acc {
                a[0] *= 1e-6;
                a[1] *= 1e-6;
            }
        }
    }

    let checksum = acc.iter().map(|a| a[0] + a[1]).sum::<f32>() + phase;
    let fmas = iterations * rho as u64;
    MixResult {
        total_ops: 2 * fmas + 2 * iterations,
        fmas,
        sincos_pairs: iterations,
        checksum,
    }
}

/// The ρ value of the IDG gridder/degridder kernels: 17 FMAs per sincos
/// (1 in the phase computation `f()`, 16 in the 4-polarization complex
/// accumulation), per Algorithm 1's caption.
pub const IDG_RHO: u32 = 17;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counting_follows_paper_definition() {
        let r = mix_kernel(17, 100, Accuracy::Medium);
        assert_eq!(r.fmas, 1700);
        assert_eq!(r.sincos_pairs, 100);
        // 2 ops per FMA + 2 ops per sincos pair.
        assert_eq!(r.total_ops, 2 * 1700 + 2 * 100);
    }

    #[test]
    fn rho_zero_is_pure_sincos() {
        let r = mix_kernel(0, 50, Accuracy::Fast);
        assert_eq!(r.fmas, 0);
        assert_eq!(r.total_ops, 100);
    }

    #[test]
    fn checksum_is_finite_and_nonzero() {
        for rho in [0, 1, 3, 8, 17, 64] {
            let r = mix_kernel(rho, 10_000, Accuracy::Medium);
            assert!(r.checksum.is_finite(), "rho={rho}");
            assert!(r.checksum != 0.0, "rho={rho}");
        }
    }

    #[test]
    fn deterministic() {
        let a = mix_kernel(17, 1000, Accuracy::Medium);
        let b = mix_kernel(17, 1000, Accuracy::Medium);
        assert_eq!(a.checksum, b.checksum);
    }

    #[test]
    fn remainder_path_exercised() {
        // rho not a multiple of 8 exercises the tail loop.
        let r = mix_kernel(11, 64, Accuracy::Medium);
        assert_eq!(r.fmas, 11 * 64);
    }

    #[test]
    fn idg_rho_constant() {
        assert_eq!(IDG_RHO, 17);
    }
}
