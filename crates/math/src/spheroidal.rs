//! Prolate-spheroidal tapering function.
//!
//! IDG multiplies each subgrid by a tapering window in the image domain to
//! suppress aliasing from sources outside the subgrid's footprint (Sec. IV:
//! "the tapering function that \[is\] used to reduce aliasing (such as a
//! spheroidal, which is used in our case)"). The de-facto standard in
//! radio astronomy is the zeroth-order prolate spheroidal wave function
//! with support m = 6, α = 1, evaluated with F. Schwab's rational
//! approximation (the `grdsf` routine that CASA/WSClean also use).

use idg_types::Float;

/// Schwab's rational approximation of the prolate spheroidal wave function
/// ψ(η) for m = 6, α = 1, on η ∈ [−1, 1]; returns 0 outside.
///
/// The approximation splits the domain at |η| = 0.75 and uses a degree-4 /
/// degree-2 rational in `η² − η₀²` on each part.
pub fn spheroidal_eta(eta: f64) -> f64 {
    let eta = eta.abs();
    if eta > 1.0 {
        return 0.0;
    }

    // Coefficients from F. Schwab, "Optimal gridding of visibility data in
    // radio interferometry", Indirect Imaging (1984).
    const P: [[f64; 5]; 2] = [
        [
            8.203_343e-2,
            -3.644_705e-1,
            6.278_660e-1,
            -5.335_581e-1,
            2.312_756e-1,
        ],
        [
            4.028_559e-3,
            -3.697_768e-2,
            1.021_332e-1,
            -1.201_436e-1,
            6.412_774e-2,
        ],
    ];
    const Q: [[f64; 3]; 2] = [
        [1.0, 8.212_018e-1, 2.078_043e-1],
        [1.0, 9.599_102e-1, 2.918_724e-1],
    ];

    let (part, eta0) = if eta <= 0.75 { (0, 0.75) } else { (1, 1.0) };
    let d = eta * eta - eta0 * eta0;

    let num = P[part][4]
        .mul_add(d, P[part][3])
        .mul_add(d, P[part][2])
        .mul_add(d, P[part][1])
        .mul_add(d, P[part][0]);
    let den = Q[part][2].mul_add(d, Q[part][1]).mul_add(d, Q[part][0]);
    num / den
}

/// Sample the spheroidal taper on `n` image-domain points.
///
/// Point `i` sits at `η = 2·(i + 0.5 − n/2)/n ∈ (−1, 1)`, i.e. pixel
/// centers of an `n`-pixel subgrid axis — the same convention as the
/// `compute_l` pixel mapping of the kernels.
pub fn spheroidal_1d(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let eta = 2.0 * (i as f64 + 0.5 - n as f64 / 2.0) / n as f64;
            f32::from_f64(spheroidal_eta(eta))
        })
        .collect()
}

/// Separable 2-D taper for an `n × n` subgrid (row-major).
pub fn spheroidal_2d(n: usize) -> Vec<f32> {
    let d1 = spheroidal_1d(n);
    let mut out = Vec::with_capacity(n * n);
    for y in 0..n {
        for x in 0..n {
            out.push(d1[y] * d1[x]);
        }
    }
    out
}

/// The gridding-domain correction function `(1 − η²)·ψ(η)`; dividing the
/// final image by (the FFT-domain image of) this removes the taper that
/// gridding imposed. Exposed for the imaging crate and the W-projection
/// baseline, which use the same family of functions as the convolution
/// kernel envelope.
pub fn spheroidal_gridding_eta(eta: f64) -> f64 {
    let e = eta.abs();
    if e > 1.0 {
        0.0
    } else {
        (1.0 - e * e) * spheroidal_eta(eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn peak_is_at_center() {
        assert!((spheroidal_eta(0.0) - 1.0).abs() < 0.2, "near-unit peak");
        for i in 1..=10 {
            let eta = i as f64 / 10.0;
            assert!(spheroidal_eta(eta) <= spheroidal_eta(0.0));
        }
    }

    #[test]
    fn monotonically_decreasing_from_center() {
        let mut prev = spheroidal_eta(0.0);
        for i in 1..=100 {
            let v = spheroidal_eta(i as f64 / 100.0);
            assert!(
                v <= prev + 1e-12,
                "not monotone at eta={}",
                i as f64 / 100.0
            );
            prev = v;
        }
    }

    #[test]
    fn zero_outside_support() {
        assert_eq!(spheroidal_eta(1.5), 0.0);
        assert_eq!(spheroidal_eta(-2.0), 0.0);
        assert_eq!(spheroidal_gridding_eta(1.01), 0.0);
    }

    #[test]
    fn known_boundary_values() {
        // At eta=1 the part-1 rational evaluates at d=0: P[1][0]/Q[1][0].
        assert!((spheroidal_eta(1.0) - 4.028_559e-3).abs() < 1e-9);
        // Continuity across the 0.75 split point.
        let lo = spheroidal_eta(0.749_999_9);
        let hi = spheroidal_eta(0.750_000_1);
        assert!(
            (lo - hi).abs() < 1e-4,
            "discontinuity at 0.75: {lo} vs {hi}"
        );
    }

    #[test]
    fn taper_1d_is_symmetric_and_positive() {
        for n in [8, 24, 25, 32] {
            let t = spheroidal_1d(n);
            assert_eq!(t.len(), n);
            for i in 0..n {
                assert!(t[i] > 0.0, "taper must be strictly positive on-grid");
                assert!((t[i] - t[n - 1 - i]).abs() < 1e-6, "symmetry at {i}");
            }
        }
    }

    #[test]
    fn taper_2d_is_separable() {
        let n = 24;
        let d1 = spheroidal_1d(n);
        let d2 = spheroidal_2d(n);
        assert_eq!(d2.len(), n * n);
        for y in 0..n {
            for x in 0..n {
                assert_eq!(d2[y * n + x], d1[y] * d1[x]);
            }
        }
    }

    #[test]
    fn gridding_function_vanishes_at_edge() {
        assert!(spheroidal_gridding_eta(1.0).abs() < 1e-12);
        assert!(spheroidal_gridding_eta(0.0) > 0.5);
    }

    proptest! {
        #[test]
        fn prop_even_function(eta in 0.0..1.0f64) {
            prop_assert_eq!(spheroidal_eta(eta), spheroidal_eta(-eta));
        }

        #[test]
        fn prop_bounded(eta in -1.2..1.2f64) {
            let v = spheroidal_eta(eta);
            prop_assert!((0.0..=1.2).contains(&v));
        }
    }
}
