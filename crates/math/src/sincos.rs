//! Batched, vectorizable sine/cosine evaluation.
//!
//! The gridder and degridder evaluate one `sincos` per (visibility, pixel)
//! pair — by far the most expensive elementary operation of IDG on
//! hardware without special function units. The paper precomputes phasors
//! for whole batches of visibilities with SVML/VML (CPU) or uses the
//! hardware SFU path (`--use_fast_math`, ≤2 ulp) on NVIDIA GPUs.
//!
//! This module reimplements that software layer:
//!
//! * Argument reduction is performed in `f64` (exact to well beyond the
//!   paper's stated ±10⁴ argument range), followed by single-precision
//!   minimax polynomials on the reduced argument r ∈ [−π/4, π/4].
//! * [`Accuracy::Medium`] uses degree-7/8 polynomials (≈1–4 ulp), the
//!   analogue of SVML's "medium accuracy" (≤4 ulp) setting.
//! * [`Accuracy::Fast`] uses degree-5/6 polynomials (≈2–8 ulp worst case
//!   but cheaper), the analogue of the CUDA fast-math path.
//! * [`Accuracy::High`] delegates to libm `sin_cos` and serves as the
//!   reference the other settings are validated against.
//!
//! The batch API writes separated sine/cosine planes, matching the
//! structure-of-arrays phasor buffers of the optimized CPU kernels, and is
//! written as a straight-line loop over slices so that LLVM auto-vectorizes
//! it (verified: the hot loop compiles to packed FMA sequences).

use idg_types::Float;

/// Accuracy/performance setting of the sincos evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum Accuracy {
    /// libm-backed reference (correctly rounded to ~0.5 ulp).
    High,
    /// ≈4 ulp polynomial path — the SVML "medium accuracy" analogue used
    /// for the HASWELL results in the paper.
    #[default]
    Medium,
    /// Cheapest polynomial path — the CUDA `--use_fast_math` analogue
    /// (the paper cites a 2 ulp bound for the hardware SFU path).
    Fast,
}

const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;
/// High part of π/2 (the f64 nearest value).
const PIO2_HI: f64 = std::f64::consts::FRAC_PI_2;
/// Low part: π/2 − `PIO2_HI`, extending the constant to ~107 bits so the
/// reduction stays exact to f32 level even for quadrant counts ≈ 10⁴.
const PIO2_LO: f64 = 6.123_233_995_736_766e-17;

/// 1.5·2⁵²: adding it to a double of magnitude < 2⁵¹ pins the exponent,
/// leaving the integer value (two's complement) in the low mantissa bits.
const QUADRANT_MAGIC: f64 = 6_755_399_441_055_744.0;
/// 1.5·2²³, the f32 analogue (valid for |k| < 2²²).
const QUADRANT_MAGIC_F32: f32 = 12_582_912.0;

/// Low two bits of the already-rounded quadrant count `k`, extracted via
/// the magic-constant bit trick instead of a `k as i64` cast: the
/// saturating float→int conversion lowers to a *scalar* `cvttsd2si` +
/// compare/cmov chain per lane, which serializes the otherwise fully
/// vectorized batch loops (~3× on the whole sincos). Value-identical to
/// `k as i64 & 3` for every |k| < 2⁵¹ — far beyond the documented
/// |x| < 10⁹ argument range (see `magic_quadrant_matches_integer_cast`).
#[inline(always)]
fn quadrant_of(k: f64) -> u64 {
    (k + QUADRANT_MAGIC).to_bits() & 3
}

/// f32 variant of [`quadrant_of`] for the fast path (|k| < 2²²).
#[inline(always)]
fn quadrant_of_f32(k: f32) -> u64 {
    u64::from((k + QUADRANT_MAGIC_F32).to_bits() & 3)
}

/// Reduce `x` to `(quadrant, r)` with `r ∈ [−π/4, π/4]` and
/// `x = quadrant·π/2 + r`, using a two-part π/2 (Cody-Waite in f64).
#[inline(always)]
fn reduce(x: f32) -> (u64, f32) {
    let xd = x.to_f64();
    let k = (xd * FRAC_2_PI).round();
    let r = k.mul_add(-PIO2_HI, xd);
    let r = k.mul_add(-PIO2_LO, r);
    (quadrant_of(k), f32::from_f64(r))
}

/// Cheap all-f32 Cody-Waite reduction used by the fast path. Splits π/2
/// into three f32 parts; exact for the quadrant counts reached below
/// |x| ≈ 10⁵, with residual error growing linearly in the quadrant index
/// (the same trade the CUDA fast-math path makes).
#[inline(always)]
fn reduce_fast(x: f32) -> (u64, f32) {
    const DP1: f32 = 1.570_312_5; // high bits of pi/2
    const DP2: f32 = 4.837_513e-4; // middle bits
    const DP3: f32 = 7.549_79e-8; // low bits
    let k = (x * std::f32::consts::FRAC_2_PI).round();
    let r = k.mul_add(-DP1, x);
    let r = k.mul_add(-DP2, r);
    let r = k.mul_add(-DP3, r);
    (quadrant_of_f32(k), r)
}

/// Sine polynomial on the reduced argument (Cephes `sinf` minimax
/// coefficients, ≈1 ulp on [−π/4, π/4]).
#[inline(always)]
fn poly_sin(r: f32) -> f32 {
    const S1: f32 = -1.666_665_4e-1;
    const S2: f32 = 8.332_161e-3;
    const S3: f32 = -1.951_529_6e-4;
    let r2 = r * r;
    let p = S3.mul_add(r2, S2).mul_add(r2, S1);
    (p * r2).mul_add(r, r)
}

/// Cosine polynomial on the reduced argument (Cephes `cosf` minimax
/// coefficients).
#[inline(always)]
fn poly_cos(r: f32) -> f32 {
    const C1: f32 = -0.5;
    const C2: f32 = 4.166_664_6e-2;
    const C3: f32 = -1.388_731_6e-3;
    const C4: f32 = 2.443_315_7e-5;
    let r2 = r * r;
    let p = C4.mul_add(r2, C3).mul_add(r2, C2).mul_add(r2, C1);
    p.mul_add(r2, 1.0)
}

/// Assemble `(sin x, cos x)` from the quadrant and the two polynomials.
///
/// Branchless: the quadrant selects a swap and two sign flips via
/// arithmetic select, so the whole evaluation pipeline stays straight-
/// line and LLVM can vectorize the batch loops (a `match` here forces
/// scalar code and costs ~4× in throughput).
#[inline(always)]
fn combine(quadrant: u64, s: f32, c: f32) -> (f32, f32) {
    let swap = quadrant & 1 != 0;
    let sin_base = if swap { c } else { s };
    let cos_base = if swap { s } else { c };
    // sin negated in quadrants 2,3; cos negated in quadrants 1,2
    let sin_neg = quadrant & 2 != 0;
    let cos_neg = (quadrant + 1) & 2 != 0;
    let sin_val = f32::from_bits(sin_base.to_bits() ^ (u32::from(sin_neg) << 31));
    let cos_val = f32::from_bits(cos_base.to_bits() ^ (u32::from(cos_neg) << 31));
    (sin_val, cos_val)
}

/// Evaluate `(sin x, cos x)` at the requested accuracy.
///
/// Arguments are expected in the paper's benchmark range (|x| ≲ 10⁴ —
/// phases are products of uv-lengths and image coordinates); reduction
/// stays accurate far beyond that (≲ 2⁵²·π/2 in principle, practically
/// |x| < 10⁹ before `f64` reduction error becomes visible at f32 level).
#[inline]
pub fn sincos(x: f32, accuracy: Accuracy) -> (f32, f32) {
    match accuracy {
        Accuracy::High => x.sin_cos(),
        Accuracy::Medium => {
            let (q, r) = reduce(x);
            combine(q, poly_sin(r), poly_cos(r))
        }
        Accuracy::Fast => {
            let (q, r) = reduce_fast(x);
            combine(q, poly_sin(r), poly_cos(r))
        }
    }
}

/// Batched sincos: writes `sin(x)` and `cos(x)` planes for a whole phase
/// buffer, the analogue of one SVML/VML call per visibility batch.
///
/// # Panics
/// Panics when the output slices are shorter than the input.
pub fn sincos_batch(xs: &[f32], sin_out: &mut [f32], cos_out: &mut [f32], accuracy: Accuracy) {
    assert!(sin_out.len() >= xs.len() && cos_out.len() >= xs.len());
    match accuracy {
        Accuracy::High => {
            for ((x, s), c) in xs.iter().zip(sin_out.iter_mut()).zip(cos_out.iter_mut()) {
                let (sv, cv) = x.sin_cos();
                *s = sv;
                *c = cv;
            }
        }
        Accuracy::Medium => {
            for ((x, s), c) in xs.iter().zip(sin_out.iter_mut()).zip(cos_out.iter_mut()) {
                let (q, r) = reduce(*x);
                let (sv, cv) = combine(q, poly_sin(r), poly_cos(r));
                *s = sv;
                *c = cv;
            }
        }
        Accuracy::Fast => {
            for ((x, s), c) in xs.iter().zip(sin_out.iter_mut()).zip(cos_out.iter_mut()) {
                let (q, r) = reduce_fast(*x);
                let (sv, cv) = combine(q, poly_sin(r), poly_cos(r));
                *s = sv;
                *c = cv;
            }
        }
    }
}

/// Units-in-the-last-place distance between `a` and the exact value `exact`.
///
/// Used by the accuracy tests to verify the paper-quoted error bounds
/// (4 ulp medium, looser fast path).
pub fn ulp_error(a: f32, exact: f64) -> f64 {
    if exact == 0.0 {
        return if a == 0.0 {
            0.0
        } else {
            (a.abs() / f32::MIN_POSITIVE) as f64
        };
    }
    let ulp = {
        let e = (a.abs().max(f32::MIN_POSITIVE)).to_bits();
        f32::from_bits(e + 1) as f64 - f32::from_bits(e) as f64
    };
    ((a as f64) - exact).abs() / ulp
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn max_ulp_over_range(acc: Accuracy, lo: f32, hi: f32, n: usize) -> (f64, f64) {
        let mut max_s = 0.0f64;
        let mut max_c = 0.0f64;
        for i in 0..n {
            let x = lo + (hi - lo) * (i as f32 / (n - 1) as f32);
            let (s, c) = sincos(x, acc);
            max_s = max_s.max(ulp_error(s, (x as f64).sin()));
            max_c = max_c.max(ulp_error(c, (x as f64).cos()));
        }
        (max_s, max_c)
    }

    #[test]
    fn high_accuracy_matches_libm() {
        for i in 0..1000 {
            let x = (i as f32) * 0.01 - 5.0;
            assert_eq!(sincos(x, Accuracy::High), x.sin_cos());
        }
    }

    #[test]
    fn medium_meets_svml_medium_bound() {
        // SVML medium accuracy is <= 4 ulp; check over the paper's
        // benchmark argument range [-1e4, 1e4].
        let (s, c) = max_ulp_over_range(Accuracy::Medium, -1e4, 1e4, 100_000);
        assert!(s <= 4.0, "sin medium ulp error {s}");
        assert!(c <= 4.0, "cos medium ulp error {c}");
    }

    #[test]
    fn fast_is_tight_near_zero_and_absolutely_bounded_far_out() {
        // Near the origin the fast path matches the CUDA-quoted ~2 ulp.
        let (s, c) = max_ulp_over_range(Accuracy::Fast, -6.3, 6.3, 100_000);
        assert!(s <= 4.0, "sin fast ulp error near 0: {s}");
        assert!(c <= 4.0, "cos fast ulp error near 0: {c}");
        // Over the full benchmark range the f32 Cody-Waite reduction keeps
        // the *absolute* error tiny even where relative ulp blows up at
        // zero crossings.
        let mut max_abs = 0.0f64;
        for i in 0..100_000 {
            let x = -1e4 + 0.2 * i as f32;
            let (s, c) = sincos(x, Accuracy::Fast);
            max_abs = max_abs.max(((s as f64) - (x as f64).sin()).abs());
            max_abs = max_abs.max(((c as f64) - (x as f64).cos()).abs());
        }
        assert!(max_abs < 2e-6, "fast absolute error {max_abs}");
    }

    #[test]
    fn quadrant_symmetries() {
        for acc in [Accuracy::Medium, Accuracy::Fast] {
            for i in 0..256 {
                let x = i as f32 * 0.1;
                let (s, c) = sincos(x, acc);
                let (sn, cn) = sincos(-x, acc);
                assert!((s + sn).abs() < 1e-6, "sin odd symmetry at {x}");
                assert!((c - cn).abs() < 1e-6, "cos even symmetry at {x}");
            }
        }
    }

    #[test]
    fn special_values() {
        for acc in [Accuracy::High, Accuracy::Medium, Accuracy::Fast] {
            let (s, c) = sincos(0.0, acc);
            assert_eq!(s, 0.0);
            assert_eq!(c, 1.0);
            let (s, c) = sincos(std::f32::consts::FRAC_PI_2, acc);
            assert!((s - 1.0).abs() < 1e-6);
            assert!(c.abs() < 1e-6);
            let (s, c) = sincos(std::f32::consts::PI, acc);
            assert!(s.abs() < 1e-6);
            assert!((c + 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn batch_matches_scalar() {
        let xs: Vec<f32> = (0..1025).map(|i| i as f32 * 0.37 - 190.0).collect();
        let mut s = vec![0.0f32; xs.len()];
        let mut c = vec![0.0f32; xs.len()];
        for acc in [Accuracy::High, Accuracy::Medium, Accuracy::Fast] {
            sincos_batch(&xs, &mut s, &mut c, acc);
            for (i, x) in xs.iter().enumerate() {
                let (es, ec) = sincos(*x, acc);
                assert_eq!(s[i], es);
                assert_eq!(c[i], ec);
            }
        }
    }

    #[test]
    #[should_panic]
    fn batch_panics_on_short_output() {
        let xs = [0.0f32; 8];
        let mut s = [0.0f32; 4];
        let mut c = [0.0f32; 8];
        sincos_batch(&xs, &mut s, &mut c, Accuracy::Medium);
    }

    #[test]
    fn magic_quadrant_matches_integer_cast() {
        // The magic-constant extraction must reproduce `(k as i64 & 3)`
        // bit-for-bit for every quadrant count the reductions can produce.
        for i in -200_000i64..200_000 {
            let k = i as f64;
            assert_eq!(quadrant_of(k), (k as i64 & 3) as u64, "f64 k={k}");
        }
        for big in [1e9f64, 1e12, 2.0f64.powi(50), -(2.0f64.powi(50))] {
            assert_eq!(quadrant_of(big), (big as i64 & 3) as u64);
        }
        for i in -70_000i64..70_000 {
            let k = i as f32;
            assert_eq!(quadrant_of_f32(k), (k as i64 & 3) as u64, "f32 k={k}");
        }
    }

    #[test]
    fn ulp_error_basics() {
        assert_eq!(ulp_error(1.0, 1.0), 0.0);
        assert_eq!(ulp_error(0.0, 0.0), 0.0);
        let one_ulp_up = f32::from_bits(1.0f32.to_bits() + 1);
        assert!((ulp_error(one_ulp_up, 1.0) - 1.0).abs() < 0.51);
    }

    proptest! {
        #[test]
        fn prop_pythagorean_identity(x in -1e4f32..1e4f32) {
            for acc in [Accuracy::Medium, Accuracy::Fast] {
                let (s, c) = sincos(x, acc);
                prop_assert!((s * s + c * c - 1.0).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_matches_f64_reference(x in -1e4f32..1e4f32) {
            let (s, c) = sincos(x, Accuracy::Medium);
            prop_assert!(((s as f64) - (x as f64).sin()).abs() < 1e-6);
            prop_assert!(((c as f64) - (x as f64).cos()).abs() < 1e-6);
        }

        #[test]
        fn prop_periodicity(x in -100.0f32..100.0f32) {
            // Adding 2π (in f32) changes the argument slightly; compare
            // against the f64 reference of the *rounded* argument instead
            // of requiring exact equality.
            let y = x + std::f32::consts::TAU;
            let (s1, _) = sincos(y, Accuracy::Medium);
            prop_assert!(((s1 as f64) - (y as f64).sin()).abs() < 1e-6);
        }
    }
}
