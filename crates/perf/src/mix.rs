//! The FMA/sincos instruction-mix throughput model — Fig. 12.
//!
//! For a workload executing ρ FMAs per sincos pair, the attainable
//! operation rate depends on where the sincos is evaluated:
//!
//! * **software library** (HASWELL): the pair occupies the FMA pipes for
//!   `s` FMA-equivalent slots ⇒ rate = `(2ρ+2)/(ρ+s) × fma_rate`;
//! * **ALU at 1/d rate** (FIJI): the pair costs `2d` ALU slots ⇒
//!   rate = `(2ρ+2)/(ρ+2d) × fma_rate`;
//! * **hardware SFU** (PASCAL): sincos issues to a separate queue with
//!   throughput `f × fma_rate` per evaluation, so the two pipes overlap:
//!   time = `max(ρ, 2/f) / fma_rate` per group (2 SFU ops per pair) ⇒
//!   rate = `(2ρ+2)/max(ρ, 2/f) × fma_rate`, capped at the architecture
//!   peak.
//!
//! The dashed "new upper bound" ceilings of Fig. 11 are these curves at
//! ρ = 17.

use crate::arch::{Architecture, SincosUnit};

/// The ρ of the IDG gridder/degridder kernels (Algorithm 1's caption).
pub const IDG_RHO: f64 = 17.0;

/// Attainable operation rate (Ops/s, paper definition) for a workload of
/// ρ FMAs per sincos pair on `arch`.
pub fn attainable_ops_per_sec(arch: &Architecture, rho: f64) -> f64 {
    assert!(rho >= 0.0);
    let fma_rate = arch.fma_rate();
    let ops_per_group = 2.0 * rho + 2.0;
    let rate = match arch.sincos {
        SincosUnit::SoftwareLibrary { fma_equivalents } => {
            ops_per_group / (rho + fma_equivalents) * fma_rate
        }
        SincosUnit::Alu {
            slots_per_evaluation,
        } => ops_per_group / (rho + 2.0 * slots_per_evaluation) * fma_rate,
        SincosUnit::HardwareSfu {
            throughput_fraction,
        } => {
            let sfu_slots = 2.0 / throughput_fraction; // two evaluations
            ops_per_group / rho.max(sfu_slots) * fma_rate
        }
    };
    rate.min(arch.peak_tops() * 1e12)
}

/// Modeled execution time of a kernel described by `counts` on `arch`:
/// the most-binding of the FMA-pipe, sincos, device-memory and
/// shared-memory ceilings, divided by a scheduling-efficiency factor
/// (occupancy, barriers, tails). This is the single timing formula
/// behind every modeled architecture row in the figures; `idg-gpusim`
/// wraps it for its device model.
pub fn modeled_kernel_seconds(
    arch: &Architecture,
    counts: &crate::ops::OpCounts,
    scheduling_efficiency: f64,
) -> f64 {
    let fma_rate = arch.fma_rate();
    let (t_fma, t_sincos) = match arch.sincos {
        SincosUnit::HardwareSfu {
            throughput_fraction,
        } => {
            let t_fma = counts.fmas as f64 / fma_rate;
            let sfu_rate = fma_rate * throughput_fraction;
            (t_fma, (2 * counts.sincos_pairs) as f64 / sfu_rate)
        }
        SincosUnit::Alu {
            slots_per_evaluation,
        } => {
            let slots =
                counts.fmas as f64 + 2.0 * slots_per_evaluation * counts.sincos_pairs as f64;
            (slots / fma_rate, 0.0)
        }
        SincosUnit::SoftwareLibrary { fma_equivalents } => {
            let slots = counts.fmas as f64 + fma_equivalents * counts.sincos_pairs as f64;
            (slots / fma_rate, 0.0)
        }
    };
    let t_dram = counts.dram_bytes as f64 / (arch.mem_bw_gbps * 1e9);
    let t_shared = counts.shared_bytes as f64 / (arch.shared_bw_gbps * 1e9);
    t_fma.max(t_sincos).max(t_dram).max(t_shared) / scheduling_efficiency
}

/// The full Fig. 12 curve: `(ρ, TOps/s)` samples for the standard sweep.
pub fn mix_curve(arch: &Architecture, rhos: &[f64]) -> Vec<(f64, f64)> {
    rhos.iter()
        .map(|&r| (r, attainable_ops_per_sec(arch, r) / 1e12))
        .collect()
}

/// The ρ values the paper sweeps (powers of two plus the IDG point).
pub fn standard_rhos() -> Vec<f64> {
    vec![
        0.0, 1.0, 2.0, 4.0, 8.0, 16.0, IDG_RHO, 32.0, 64.0, 128.0, 256.0,
    ]
}

/// Measure the host CPU's real mix curve with the `idg-math` microkernel
/// (wall-clock). Returns Ops/s.
pub fn measure_host_mix(rho: u32, iterations: u64) -> f64 {
    use idg_math::mix::mix_kernel;
    use idg_math::Accuracy;
    let start = std::time::Instant::now();
    let result = mix_kernel(rho, iterations, Accuracy::Medium);
    let elapsed = start.elapsed().as_secs_f64();
    assert!(result.checksum.is_finite());
    result.total_ops as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;

    #[test]
    fn pure_fma_reaches_peak() {
        // ρ → ∞ approaches the FMA peak on every architecture.
        for a in Architecture::all() {
            let r = attainable_ops_per_sec(&a, 1e6);
            assert!(
                (r / (a.peak_tops() * 1e12) - 1.0).abs() < 1e-3,
                "{} at huge rho: {r}",
                a.nickname
            );
        }
    }

    #[test]
    fn pascal_stays_high_at_low_rho() {
        // "the performance of PASCAL stays high when ρ decreases" —
        // at ρ = 8 the SFU pipe fully hides the sincos latency.
        let p = Architecture::pascal();
        let at_8 = attainable_ops_per_sec(&p, 8.0);
        assert!(at_8 / (p.peak_tops() * 1e12) > 0.9, "{at_8}");
    }

    #[test]
    fn fiji_and_haswell_degrade_at_low_rho() {
        // "a more significant performance degradation is observed for
        // small values of ρ" on FIJI (and similarly HASWELL).
        for a in [Architecture::fiji(), Architecture::haswell()] {
            let lo = attainable_ops_per_sec(&a, 1.0);
            let hi = attainable_ops_per_sec(&a, 256.0);
            assert!(lo < 0.5 * hi, "{}: {lo} vs {hi}", a.nickname);
        }
    }

    #[test]
    fn idg_rho_ceilings_reproduce_fig11_dashed_lines() {
        // At ρ = 17: PASCAL close to peak; HASWELL and FIJI far below —
        // the dashed ceilings of Fig. 11.
        let p = Architecture::pascal();
        let frac_p = attainable_ops_per_sec(&p, IDG_RHO) / (p.peak_tops() * 1e12);
        assert!(frac_p > 0.85, "PASCAL ceiling fraction {frac_p}");

        let h = Architecture::haswell();
        let frac_h = attainable_ops_per_sec(&h, IDG_RHO) / (h.peak_tops() * 1e12);
        assert!(
            (0.1..0.35).contains(&frac_h),
            "HASWELL ceiling fraction {frac_h}"
        );

        let f = Architecture::fiji();
        let frac_f = attainable_ops_per_sec(&f, IDG_RHO) / (f.peak_tops() * 1e12);
        assert!(
            (0.35..0.65).contains(&frac_f),
            "FIJI ceiling fraction {frac_f}"
        );

        // ordering: PASCAL > FIJI > HASWELL in ceiling fraction
        assert!(frac_p > frac_f && frac_f > frac_h);
    }

    #[test]
    fn curve_is_monotone_in_rho() {
        for a in Architecture::all() {
            let mut prev = 0.0;
            for rho in [0.0, 1.0, 2.0, 4.0, 8.0, 17.0, 64.0, 256.0] {
                let frac = attainable_ops_per_sec(&a, rho) / (a.peak_tops() * 1e12);
                assert!(
                    frac >= prev - 1e-9,
                    "{} non-monotone at rho={rho}",
                    a.nickname
                );
                prev = frac;
            }
        }
    }

    #[test]
    fn mix_curve_matches_pointwise() {
        let a = Architecture::pascal();
        let rhos = standard_rhos();
        let curve = mix_curve(&a, &rhos);
        assert_eq!(curve.len(), rhos.len());
        for (rho, tops) in curve {
            assert!((tops * 1e12 - attainable_ops_per_sec(&a, rho)).abs() < 1.0);
        }
    }

    #[test]
    fn host_measurement_is_positive() {
        let rate = measure_host_mix(17, 200_000);
        assert!(rate > 1e6, "host mix rate {rate} ops/s");
    }
}
