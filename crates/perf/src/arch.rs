//! Architecture descriptors — Table I of the paper, plus the
//! sincos-evaluation and shared-memory characteristics of Sec. VI-C.

/// How an architecture evaluates sine/cosine.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum SincosUnit {
    /// Evaluated in software by a vector math library; `fma_equivalents`
    /// is the cost of one sin+cos *pair* expressed in FMA-instruction
    /// slots (HASWELL + SVML medium accuracy).
    SoftwareLibrary {
        /// Cost of one sincos pair in FMA slots.
        fma_equivalents: f64,
    },
    /// Evaluated by the regular ALUs (FIJI): `V_SIN_F32`/`V_COS_F32`
    /// issue at a quarter of the FMA rate \[29\], and the fast-math sincos
    /// additionally expands into a short range-reduction sequence, so the
    /// *effective* cost per evaluation is several FMA slots. The value is
    /// calibrated so the ρ = 17 ceiling matches the paper's measured
    /// FIJI numbers (≈45 % of peak; 13 GFlops/W in Fig. 15).
    Alu {
        /// Effective FMA slots per single sin or cos evaluation.
        slots_per_evaluation: f64,
    },
    /// Dedicated special function units operating concurrently with the
    /// FMA pipelines (PASCAL: "sine/cosine is handled in a separate
    /// processing queue"); `throughput_fraction` is the SFU issue rate
    /// relative to the FMA rate (¼ on Pascal: 32 SFUs per 128-core SM).
    HardwareSfu {
        /// SFU ops per cycle relative to FMA ops per cycle.
        throughput_fraction: f64,
    },
}

/// CPU or GPU — drives which execution back-end and which memory levels
/// apply.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArchKind {
    /// Host processor (measured execution).
    Cpu,
    /// Accelerator behind PCI-e (modeled execution via `idg-gpusim`).
    Gpu,
}

/// One row of Table I, extended with the Sec. VI-C model parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Architecture {
    /// Marketing name ("NVIDIA GTX 1080").
    pub model: &'static str,
    /// Short benchmark name used in the paper ("PASCAL").
    pub nickname: &'static str,
    /// Microarchitecture ("Pascal").
    pub microarchitecture: &'static str,
    /// CPU or GPU.
    pub kind: ArchKind,
    /// Core clock in GHz (turbo where the paper notes it).
    pub clock_ghz: f64,
    /// Number of ICs (sockets / boards).
    pub nr_ics: usize,
    /// Compute units per IC (cores / SMs / CUs).
    pub nr_compute_units: usize,
    /// FPU instructions per cycle per compute unit.
    pub fpu_per_cycle: usize,
    /// SIMD vector width (single-precision lanes).
    pub vector_size: usize,
    /// Peak single-precision TFlop/s (FMA counted as 2 flops).
    pub peak_tflops: f64,
    /// Device/main memory size in GB (`None` ⇒ host-limited).
    pub mem_size_gb: Option<f64>,
    /// Device/main memory bandwidth, GB/s.
    pub mem_bw_gbps: f64,
    /// Shared-memory (GPU) / L1 (CPU) aggregate bandwidth, GB/s.
    pub shared_bw_gbps: f64,
    /// PCI-e bandwidth to the host, GB/s (GPUs only).
    pub pcie_bw_gbps: Option<f64>,
    /// Thermal design power, W.
    pub tdp_w: f64,
    /// Sincos evaluation model.
    pub sincos: SincosUnit,
}

impl Architecture {
    /// Total single-precision FPU lanes (`#ICs × units × instr/cycle ×
    /// vector size` — the "core config" column of Table I).
    pub fn total_fpus(&self) -> usize {
        self.nr_ics * self.nr_compute_units * self.fpu_per_cycle * self.vector_size
    }

    /// Peak operation rate in TOps/s under the paper's definition. Since
    /// peak is only attained with FMAs exclusively (2 ops each), this
    /// equals the peak TFlop/s.
    pub fn peak_tops(&self) -> f64 {
        self.peak_tflops
    }

    /// Peak FMA instruction rate (instructions/s).
    pub fn fma_rate(&self) -> f64 {
        self.peak_tflops * 1e12 / 2.0
    }

    /// Intel Xeon E5-2697v3 dual-socket system — "HASWELL".
    ///
    /// 2 × 14 cores × 2 FMA ports × 8 lanes = 448 FPUs; 2.6 GHz base
    /// (Table I footnote: turbo enabled for the 2.78 TFlops peak);
    /// 136 GB/s over two sockets; 290 W combined package TDP. The SVML
    /// sincos cost is calibrated so the ρ = 17 ceiling reproduces the
    /// paper's measured HASWELL efficiency (≈20 % of peak ops/s;
    /// ≈1.5 GFlops/W in Fig. 15): one 8-lane medium-accuracy
    /// sincos-pair call occupies ≈75 FMA slots (~19 port-cycles).
    pub fn haswell() -> Self {
        Self {
            model: "Intel Xeon E5-2697v3",
            nickname: "HASWELL",
            microarchitecture: "Haswell-EP",
            kind: ArchKind::Cpu,
            clock_ghz: 2.60,
            nr_ics: 2,
            nr_compute_units: 14,
            fpu_per_cycle: 2,
            vector_size: 8,
            peak_tflops: 2.78,
            mem_size_gb: None, // ≤ 1536 GB host memory
            mem_bw_gbps: 136.0,
            shared_bw_gbps: 3000.0, // aggregate L1 (~96 B/cycle/core)
            pcie_bw_gbps: None,
            tdp_w: 290.0,
            sincos: SincosUnit::SoftwareLibrary {
                fma_equivalents: 75.0,
            },
        }
    }

    /// AMD R9 Fury X — "FIJI".
    ///
    /// 64 CUs × 64 lanes at 1.05 GHz = 8.6 TFlops; 512 GB/s HBM;
    /// transcendental ops execute on the ALUs at ¼ rate
    /// (\[29\], Southern/Volcanic Islands ISA).
    pub fn fiji() -> Self {
        Self {
            model: "AMD R9 Fury X",
            nickname: "FIJI",
            microarchitecture: "Fiji",
            kind: ArchKind::Gpu,
            clock_ghz: 1.050,
            nr_ics: 1,
            nr_compute_units: 64,
            fpu_per_cycle: 1,
            vector_size: 64,
            peak_tflops: 8.60,
            mem_size_gb: Some(4.0),
            mem_bw_gbps: 512.0,
            // LDS: 64 CUs × 128 B/cycle × 1.05 GHz ≈ 8.6 TB/s
            shared_bw_gbps: 8600.0,
            pcie_bw_gbps: Some(12.0),
            tdp_w: 275.0,
            sincos: SincosUnit::Alu {
                slots_per_evaluation: 10.0,
            },
        }
    }

    /// NVIDIA GTX 1080 — "PASCAL".
    ///
    /// 40 SMs (20 TPCs × 2) of 128 cores at 1.80 GHz turbo = 9.22
    /// TFlops; 320 GB/s GDDR5X; 32 SFUs per 128-core SM evaluate
    /// transcendentals in hardware, concurrently with the FMA pipes
    /// (\[25\], \[28\]).
    pub fn pascal() -> Self {
        Self {
            model: "NVIDIA GTX 1080",
            nickname: "PASCAL",
            microarchitecture: "Pascal",
            kind: ArchKind::Gpu,
            clock_ghz: 1.80,
            nr_ics: 1,
            nr_compute_units: 40,
            fpu_per_cycle: 2,
            vector_size: 32,
            peak_tflops: 9.22,
            mem_size_gb: Some(8.0),
            mem_bw_gbps: 320.0,
            // shared memory: 40 SMs × 128 B/cycle × 1.8 GHz ≈ 9.2 TB/s
            shared_bw_gbps: 9200.0,
            pcie_bw_gbps: Some(12.0),
            tdp_w: 180.0,
            sincos: SincosUnit::HardwareSfu {
                throughput_fraction: 0.25,
            },
        }
    }

    /// The three benchmark systems in the paper's order.
    pub fn all() -> [Architecture; 3] {
        [Self::haswell(), Self::fiji(), Self::pascal()]
    }

    /// Render this row in the layout of Table I.
    pub fn table_row(&self) -> String {
        let mem = match self.mem_size_gb {
            Some(gb) => format!("{gb:.0}"),
            None => "host".to_string(),
        };
        format!(
            "{:<22} {:<4} {:<11} {:>5.2}  {}x{}x{}x{:02}={:<5} {:>5.2}  {:>5}  {:>6.0}  {:>4.0}",
            self.model,
            match self.kind {
                ArchKind::Cpu => "CPU",
                ArchKind::Gpu => "GPU",
            },
            self.microarchitecture,
            self.clock_ghz,
            self.nr_ics,
            self.nr_compute_units,
            self.fpu_per_cycle,
            self.vector_size,
            self.total_fpus(),
            self.peak_tflops,
            mem,
            self.mem_bw_gbps,
            self.tdp_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_configs() {
        // The "core config = #FPUs" column of Table I.
        assert_eq!(Architecture::haswell().total_fpus(), 448);
        assert_eq!(Architecture::fiji().total_fpus(), 4096);
        assert_eq!(Architecture::pascal().total_fpus(), 2560);
    }

    #[test]
    fn table1_peaks_match() {
        assert!((Architecture::haswell().peak_tflops - 2.78).abs() < 1e-9);
        assert!((Architecture::fiji().peak_tflops - 8.60).abs() < 1e-9);
        assert!((Architecture::pascal().peak_tflops - 9.22).abs() < 1e-9);
    }

    #[test]
    fn peak_is_consistent_with_core_config() {
        // peak ≈ FPUs × 2 flops × clock; Table I quotes turbo-mode peaks
        // for HASWELL and PASCAL against base-ish clock listings, so
        // allow the turbo headroom (the paper's footnote b).
        for a in Architecture::all() {
            let derived = a.total_fpus() as f64 * 2.0 * a.clock_ghz * 1e9 / 1e12;
            let ratio = derived / a.peak_tflops;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "{}: derived {derived:.2} vs quoted {:.2}",
                a.nickname,
                a.peak_tflops
            );
        }
    }

    #[test]
    fn table1_memory_rows() {
        assert_eq!(Architecture::fiji().mem_size_gb, Some(4.0));
        assert_eq!(Architecture::pascal().mem_size_gb, Some(8.0));
        assert_eq!(Architecture::haswell().mem_size_gb, None);
        assert_eq!(Architecture::haswell().mem_bw_gbps, 136.0);
        assert_eq!(Architecture::fiji().mem_bw_gbps, 512.0);
        assert_eq!(Architecture::pascal().mem_bw_gbps, 320.0);
    }

    #[test]
    fn tdp_rows() {
        assert_eq!(Architecture::haswell().tdp_w, 290.0);
        assert_eq!(Architecture::fiji().tdp_w, 275.0);
        assert_eq!(Architecture::pascal().tdp_w, 180.0);
    }

    #[test]
    fn sincos_units_match_section_vi_c() {
        assert!(matches!(
            Architecture::haswell().sincos,
            SincosUnit::SoftwareLibrary { .. }
        ));
        assert!(matches!(
            Architecture::fiji().sincos,
            SincosUnit::Alu { slots_per_evaluation } if slots_per_evaluation >= 4.0
        ));
        assert!(matches!(
            Architecture::pascal().sincos,
            SincosUnit::HardwareSfu { .. }
        ));
    }

    #[test]
    fn fma_rate_is_half_peak_flops() {
        let p = Architecture::pascal();
        assert!((p.fma_rate() - 9.22e12 / 2.0).abs() < 1.0);
    }

    #[test]
    fn table_rows_render() {
        for a in Architecture::all() {
            let row = a.table_row();
            assert!(row.contains(a.microarchitecture));
        }
    }
}
