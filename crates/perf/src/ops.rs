//! Operation and data-movement counting.
//!
//! The paper defines an *operation* as one of `{+, −, ×, sin(), cos()}`
//! and observes that Algorithms 1 and 2 execute **17 real-valued FMAs
//! per sincos-pair evaluation** (1 in the phase computation, 16 in the
//! four-polarization complex accumulation). One (visibility, pixel) pair
//! therefore costs `17·2 + 2 = 36 ops`. Operational intensity is
//! ops / bytes moved, with byte counts itemized per memory level so the
//! same counts back both Fig. 11 (device memory) and Fig. 13 (shared
//! memory).

use idg_plan::WorkItem;

/// FMAs per sincos pair in the gridder/degridder inner loop
/// (Algorithm 1's caption).
pub const FMAS_PER_SINCOS: u64 = 17;

/// Bytes of one 4-polarization complex-f32 visibility.
pub const BYTES_PER_VISIBILITY: u64 = 4 * 8;

/// Bytes of one uvw coordinate (3 × f32).
pub const BYTES_PER_UVW: u64 = 12;

/// Bytes of one complex-f32 subgrid pixel (4 polarizations).
pub const BYTES_PER_SUBGRID_PIXEL: u64 = 4 * 8;

/// Bytes of one sampled A-term entry (2×2 complex f32).
pub const BYTES_PER_ATERM: u64 = 4 * 8;

/// Operation and byte counters of one kernel execution.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Real-valued fused multiply-add instructions.
    pub fmas: u64,
    /// sin+cos pair evaluations.
    pub sincos_pairs: u64,
    /// Bytes moved from/to device (main) memory.
    pub dram_bytes: u64,
    /// Bytes moved through shared memory / L1.
    pub shared_bytes: u64,
    /// Visibilities processed.
    pub visibilities: u64,
}

impl OpCounts {
    /// Total operations under the paper's definition
    /// (FMA = 2 ops, sincos pair = 2 ops).
    pub fn total_ops(&self) -> u64 {
        2 * self.fmas + 2 * self.sincos_pairs
    }

    /// Floating-point operations only (excludes sin/cos) — the basis of
    /// the GFlops/W numbers in Fig. 15.
    pub fn flops(&self) -> u64 {
        2 * self.fmas
    }

    /// ρ = #FMAs / #sincos — 17 for the IDG kernels.
    pub fn rho(&self) -> f64 {
        if self.sincos_pairs == 0 {
            f64::INFINITY
        } else {
            self.fmas as f64 / self.sincos_pairs as f64
        }
    }

    /// Operational intensity w.r.t. device memory (Fig. 11 x-axis).
    pub fn intensity_dram(&self) -> f64 {
        self.total_ops() as f64 / self.dram_bytes as f64
    }

    /// Operational intensity w.r.t. shared memory (Fig. 13 x-axis).
    pub fn intensity_shared(&self) -> f64 {
        self.total_ops() as f64 / self.shared_bytes as f64
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &OpCounts) {
        self.fmas += other.fmas;
        self.sincos_pairs += other.sincos_pairs;
        self.dram_bytes += other.dram_bytes;
        self.shared_bytes += other.shared_bytes;
        self.visibilities += other.visibilities;
    }
}

/// Count one work item of the gridder.
///
/// Inner loop: `T̃·C̃·Ñ²` (visibility, pixel) pairs at 17 FMAs + 1
/// sincos each. Device traffic: visibilities + uvw in, subgrid out,
/// A-terms of both stations in. Shared traffic (GPU staging pattern,
/// Sec. V-C b): every pair re-reads the visibility (32 B) and the uvw
/// (12 B) from the staged shared buffers.
pub fn gridder_item_counts(item: &WorkItem, subgrid_size: usize) -> OpCounts {
    let pairs = (item.nr_visibilities() * subgrid_size * subgrid_size) as u64;
    let vis = item.nr_visibilities() as u64;
    let n2 = (subgrid_size * subgrid_size) as u64;
    OpCounts {
        fmas: pairs * FMAS_PER_SINCOS,
        sincos_pairs: pairs,
        dram_bytes: vis * BYTES_PER_VISIBILITY
            + item.nr_timesteps as u64 * BYTES_PER_UVW
            + n2 * BYTES_PER_SUBGRID_PIXEL // subgrid store
            + 2 * n2 * BYTES_PER_ATERM, // A-terms of both stations
        shared_bytes: pairs * (BYTES_PER_VISIBILITY + BYTES_PER_UVW),
        visibilities: vis,
    }
}

/// Count one work item of the degridder.
///
/// Same pair count; device traffic reverses (subgrid in, visibilities
/// out); shared traffic re-reads the staged *pixels* per pair
/// (32 B pixel + 16 B of l/m/n/φ₀ geometry + 12 B uvw), per the
/// dual-role mapping of Sec. V-C c — the extra geometry traffic is why
/// the degridder sits at a lower shared-memory intensity than the
/// gridder in Fig. 13 (and at 55 % vs 74 % of peak in Fig. 11).
pub fn degridder_item_counts(item: &WorkItem, subgrid_size: usize) -> OpCounts {
    let pairs = (item.nr_visibilities() * subgrid_size * subgrid_size) as u64;
    let vis = item.nr_visibilities() as u64;
    let n2 = (subgrid_size * subgrid_size) as u64;
    OpCounts {
        fmas: pairs * FMAS_PER_SINCOS,
        sincos_pairs: pairs,
        dram_bytes: vis * BYTES_PER_VISIBILITY
            + item.nr_timesteps as u64 * BYTES_PER_UVW
            + n2 * BYTES_PER_SUBGRID_PIXEL // subgrid load
            + 2 * n2 * BYTES_PER_ATERM,
        shared_bytes: pairs * (BYTES_PER_SUBGRID_PIXEL + 16 + BYTES_PER_UVW),
        visibilities: vis,
    }
}

/// Aggregate gridder counts over a whole plan.
pub fn gridder_counts(items: &[WorkItem], subgrid_size: usize) -> OpCounts {
    let mut total = OpCounts::default();
    for item in items {
        total.add(&gridder_item_counts(item, subgrid_size));
    }
    total
}

/// Aggregate degridder counts over a whole plan.
pub fn degridder_counts(items: &[WorkItem], subgrid_size: usize) -> OpCounts {
    let mut total = OpCounts::default();
    for item in items {
        total.add(&degridder_item_counts(item, subgrid_size));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Baseline;

    fn item_ch(nr_timesteps: usize, nr_channels: usize) -> WorkItem {
        WorkItem {
            baseline_index: 0,
            baseline: Baseline::new(0, 1),
            time_offset: 0,
            nr_timesteps,
            channel_offset: 0,
            nr_channels,
            aterm_index: 0,
            coord_x: 0,
            coord_y: 0,
            w_plane: 0,
        }
    }

    #[test]
    fn rho_is_17_for_idg_kernels() {
        let c = gridder_item_counts(&item_ch(16, 8), 24);
        assert_eq!(c.rho(), 17.0);
        let d = degridder_item_counts(&item_ch(16, 8), 24);
        assert_eq!(d.rho(), 17.0);
    }

    #[test]
    fn pair_counts() {
        let c = gridder_item_counts(&item_ch(10, 16), 24);
        let pairs = 10 * 16 * 24 * 24;
        assert_eq!(c.sincos_pairs, pairs as u64);
        assert_eq!(c.fmas, 17 * pairs as u64);
        assert_eq!(c.total_ops(), 36 * pairs as u64);
        assert_eq!(c.visibilities, 160);
    }

    #[test]
    fn flops_exclude_sincos() {
        let c = gridder_item_counts(&item_ch(1, 1), 8);
        assert_eq!(c.flops(), 2 * c.fmas);
        assert!(c.flops() < c.total_ops());
    }

    #[test]
    fn kernels_are_compute_bound_in_dram_intensity() {
        // Sec. VI-B: "On all architectures, both kernels are compute
        // bound" — the benchmark configuration's OI must exceed every
        // machine balance point (peak_ops / mem_bw ≈ 29 for PASCAL).
        let c = gridder_item_counts(&item_ch(128, 16), 24);
        assert!(
            c.intensity_dram() > 100.0,
            "gridder OI_dram = {}",
            c.intensity_dram()
        );
        let d = degridder_item_counts(&item_ch(128, 16), 24);
        assert!(d.intensity_dram() > 100.0);
    }

    #[test]
    fn shared_intensity_is_order_one() {
        // Fig. 13: the kernels sit near OI ≈ 1 op/byte w.r.t. shared
        // memory (36 ops per 44 staged bytes).
        let c = gridder_item_counts(&item_ch(64, 16), 24);
        let oi = c.intensity_shared();
        assert!((0.5..2.0).contains(&oi), "OI_shared = {oi}");
    }

    #[test]
    fn aggregation_sums_items() {
        let items = vec![item_ch(4, 4), item_ch(8, 4), item_ch(12, 4)];
        let total = gridder_counts(&items, 16);
        let manual: u64 = [4u64, 8, 12]
            .iter()
            .map(|t| t * 4 * 16 * 16 * FMAS_PER_SINCOS)
            .sum();
        assert_eq!(total.fmas, manual);
        assert_eq!(total.visibilities, (4 + 8 + 12) * 4);
    }

    #[test]
    fn rho_infinite_without_sincos() {
        let c = OpCounts {
            fmas: 10,
            ..Default::default()
        };
        assert!(c.rho().is_infinite());
    }
}
