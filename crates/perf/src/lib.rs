//! # idg-perf — the modified roofline, instruction-mix and energy models
//!
//! The paper's performance analysis rests on four quantitative pillars,
//! all reproduced here:
//!
//! * [`arch`] — the three architecture descriptors of **Table I**
//!   (Intel Xeon E5-2697v3 "HASWELL", AMD R9 Fury X "FIJI", NVIDIA
//!   GTX 1080 "PASCAL") extended with the sincos-evaluation
//!   characteristics Sec. VI-C identifies (software library vs ALU at a
//!   quarter rate vs hardware SFU) and shared-memory bandwidth.
//! * [`ops`] — exact operation and data-movement counting for the
//!   gridder/degridder under the paper's operation definition
//!   (op ∈ {+, −, ×, sin, cos}; one FMA = 2 ops; 17 FMAs per sincos
//!   pair, Algorithm 1's caption).
//! * [`mix`] — the throughput-vs-ρ model behind **Fig. 12** (analytic per
//!   architecture) plus a measured curve for the host CPU via
//!   `idg-math::mix`.
//! * [`roofline`] — the modified roofline of **Figs. 11 and 13**: device-
//!   memory and shared-memory operational intensities against the
//!   hardware ceilings and the ρ = 17 mix ceiling (the dashed lines).
//! * [`energy`] — the TDP-based energy model behind **Figs. 14 and 15**
//!   (joules per kernel, GFlops/W).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arch;
pub mod energy;
pub mod mix;
pub mod ops;
pub mod roofline;

pub use arch::{ArchKind, Architecture, SincosUnit};
pub use energy::EnergyModel;
pub use mix::{attainable_ops_per_sec, mix_curve, modeled_kernel_seconds, IDG_RHO};
pub use ops::{
    degridder_counts, degridder_item_counts, gridder_counts, gridder_item_counts, OpCounts,
};
pub use roofline::{Roofline, RooflinePoint};
