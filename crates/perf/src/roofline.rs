//! The modified roofline model — Figs. 11 and 13.
//!
//! A classic roofline bounds attainable performance by
//! `min(peak, OI × bandwidth)`. The paper's *modification* adds a second
//! compute ceiling derived from the instruction mix: with ρ = 17 FMAs
//! per sincos, architectures that evaluate sincos in software cannot
//! reach the FMA peak regardless of OI (the dashed lines of Fig. 11).
//! Fig. 13 re-plots the same kernels against the *shared-memory*
//! bandwidth, revealing that the GPU kernels sit at that bound.

use crate::arch::Architecture;
use crate::mix::{attainable_ops_per_sec, IDG_RHO};
use crate::ops::OpCounts;

/// Which memory level the roofline is drawn against.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemoryLevel {
    /// Device / main memory (Fig. 11).
    Dram,
    /// Shared memory / L1 (Fig. 13).
    Shared,
}

/// A measured or modeled kernel placed on a roofline.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    /// Kernel label ("gridder", "degridder").
    pub name: String,
    /// Operational intensity (ops / byte) at the chosen memory level.
    pub intensity: f64,
    /// Achieved performance, TOps/s.
    pub achieved_tops: f64,
}

impl RooflinePoint {
    /// Build a point from op counts and an execution time.
    pub fn from_counts(name: &str, counts: &OpCounts, seconds: f64, level: MemoryLevel) -> Self {
        let intensity = match level {
            MemoryLevel::Dram => counts.intensity_dram(),
            MemoryLevel::Shared => counts.intensity_shared(),
        };
        Self {
            name: name.to_string(),
            intensity,
            achieved_tops: counts.total_ops() as f64 / seconds / 1e12,
        }
    }
}

/// A roofline for one architecture and memory level.
#[derive(Clone, Debug)]
pub struct Roofline {
    /// The architecture.
    pub arch: Architecture,
    /// Memory level the bandwidth ceiling refers to.
    pub level: MemoryLevel,
    /// Kernels placed on the plot.
    pub points: Vec<RooflinePoint>,
}

impl Roofline {
    /// Create an empty roofline.
    pub fn new(arch: Architecture, level: MemoryLevel) -> Self {
        Self {
            arch,
            level,
            points: Vec::new(),
        }
    }

    /// Bandwidth of the selected memory level, GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        match self.level {
            MemoryLevel::Dram => self.arch.mem_bw_gbps,
            MemoryLevel::Shared => self.arch.shared_bw_gbps,
        }
    }

    /// The hardware ceiling at operational intensity `oi`:
    /// `min(peak, oi × bandwidth)`, TOps/s.
    pub fn hardware_ceiling(&self, oi: f64) -> f64 {
        let bw_tops = oi * self.bandwidth_gbps() * 1e9 / 1e12;
        bw_tops.min(self.arch.peak_tops())
    }

    /// The paper's *modified* ceiling: hardware ceiling additionally
    /// clipped by the ρ = 17 instruction-mix bound (the dashed line).
    pub fn mix_ceiling(&self, oi: f64) -> f64 {
        let mix = attainable_ops_per_sec(&self.arch, IDG_RHO) / 1e12;
        self.hardware_ceiling(oi).min(mix)
    }

    /// The ridge point: the OI where the bandwidth ceiling meets peak.
    pub fn ridge_intensity(&self) -> f64 {
        self.arch.peak_tops() * 1e12 / (self.bandwidth_gbps() * 1e9)
    }

    /// Add a kernel point.
    pub fn push(&mut self, point: RooflinePoint) {
        self.points.push(point);
    }

    /// Fraction of the *modified* ceiling a point achieves — "close to
    /// optimal, given the limitations of hardware *and* the supporting
    /// mathematical library" means this is near 1.
    pub fn efficiency(&self, point: &RooflinePoint) -> f64 {
        point.achieved_tops / self.mix_ceiling(point.intensity)
    }

    /// Fraction of the raw hardware ceiling (Fig. 11's solid line).
    pub fn hardware_efficiency(&self, point: &RooflinePoint) -> f64 {
        point.achieved_tops / self.hardware_ceiling(point.intensity)
    }

    /// Render a text summary (one line per point).
    pub fn render(&self) -> String {
        let mut out = format!(
            "roofline [{}] ({:?}): peak {:.2} TOps/s, bw {:.0} GB/s, ridge OI {:.1}, mix ceiling {:.2} TOps/s\n",
            self.arch.nickname,
            self.level,
            self.arch.peak_tops(),
            self.bandwidth_gbps(),
            self.ridge_intensity(),
            attainable_ops_per_sec(&self.arch, IDG_RHO) / 1e12,
        );
        for p in &self.points {
            out.push_str(&format!(
                "  {:<12} OI {:>8.2} ops/B  achieved {:>6.3} TOps/s  ({:>5.1}% of hw, {:>5.1}% of mix ceiling)\n",
                p.name,
                p.intensity,
                p.achieved_tops,
                100.0 * self.hardware_efficiency(p),
                100.0 * self.efficiency(p),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;

    #[test]
    fn ceiling_shapes() {
        let r = Roofline::new(Architecture::pascal(), MemoryLevel::Dram);
        // memory-bound region grows linearly
        assert!(r.hardware_ceiling(0.1) < r.hardware_ceiling(1.0));
        // compute-bound region is flat at peak
        assert_eq!(r.hardware_ceiling(1e6), 9.22);
        // ridge where they meet
        let ridge = r.ridge_intensity();
        assert!((r.hardware_ceiling(ridge) - 9.22).abs() < 1e-9);
        assert!((ridge - 9.22e12 / 320e9).abs() < 1e-3);
    }

    #[test]
    fn mix_ceiling_clips_haswell_but_not_pascal() {
        let h = Roofline::new(Architecture::haswell(), MemoryLevel::Dram);
        assert!(h.mix_ceiling(1e6) < 0.6 * h.arch.peak_tops());

        let p = Roofline::new(Architecture::pascal(), MemoryLevel::Dram);
        assert!(p.mix_ceiling(1e6) > 0.85 * p.arch.peak_tops());
    }

    #[test]
    fn efficiency_of_point_on_the_ceiling_is_one() {
        let mut r = Roofline::new(Architecture::fiji(), MemoryLevel::Dram);
        let oi = 200.0;
        let pt = RooflinePoint {
            name: "gridder".into(),
            intensity: oi,
            achieved_tops: r.mix_ceiling(oi),
        };
        r.push(pt.clone());
        assert!((r.efficiency(&pt) - 1.0).abs() < 1e-12);
        assert!(r.hardware_efficiency(&pt) <= 1.0);
    }

    #[test]
    fn shared_level_uses_shared_bandwidth() {
        let r = Roofline::new(Architecture::pascal(), MemoryLevel::Shared);
        assert_eq!(r.bandwidth_gbps(), 9200.0);
        // at OI ≈ 0.8 ops/B the shared roofline bounds well below peak
        assert!(r.hardware_ceiling(0.8) < 9.22);
    }

    #[test]
    fn from_counts_computes_intensity_and_rate() {
        let counts = OpCounts {
            fmas: 1700,
            sincos_pairs: 100,
            dram_bytes: 36,
            shared_bytes: 3600,
            visibilities: 10,
        };
        let p = RooflinePoint::from_counts("k", &counts, 1e-9, MemoryLevel::Dram);
        assert!((p.intensity - counts.intensity_dram()).abs() < 1e-12);
        // 3600 ops in 1 ns = 3.6 TOps/s
        assert!((p.achieved_tops - 3.6).abs() < 1e-9);
        let q = RooflinePoint::from_counts("k", &counts, 1e-9, MemoryLevel::Shared);
        assert!(q.intensity < p.intensity);
    }

    #[test]
    fn render_contains_points() {
        let mut r = Roofline::new(Architecture::haswell(), MemoryLevel::Dram);
        r.push(RooflinePoint {
            name: "gridder".into(),
            intensity: 100.0,
            achieved_tops: 0.4,
        });
        let text = r.render();
        assert!(text.contains("HASWELL"));
        assert!(text.contains("gridder"));
    }
}
