//! Energy model — Figs. 14 and 15.
//!
//! The paper measures energy with RAPL (LIKWID) on the CPU and
//! PowerSensor on the GPUs. We model the same quantities from Table I's
//! TDP figures: a kernel running for `t` seconds at utilization `u`
//! consumes `t · (P_idle + u·(TDP − P_idle))` joules on the device, plus
//! host package+DRAM power while a GPU kernel runs (Fig. 14 stacks the
//! host contribution on top of the device bars).

use crate::arch::{ArchKind, Architecture};
use crate::ops::OpCounts;

/// Energy model parameters for one architecture.
#[derive(Clone, Debug)]
pub struct EnergyModel {
    /// The device.
    pub arch: Architecture,
    /// Idle power as a fraction of TDP (device held at base clocks).
    pub idle_fraction: f64,
    /// Host package + DRAM power while driving a GPU, W (0 for CPUs —
    /// there the package *is* the device).
    pub host_power_w: f64,
}

impl EnergyModel {
    /// Default model: 15 % idle fraction; 60 W of host package+DRAM
    /// activity while a GPU computes (the paper measures host power
    /// separately for FIJI/PASCAL, Sec. VI-D).
    pub fn new(arch: Architecture) -> Self {
        let host_power_w = match arch.kind {
            ArchKind::Cpu => 0.0,
            ArchKind::Gpu => 60.0,
        };
        Self {
            arch,
            idle_fraction: 0.15,
            host_power_w,
        }
    }

    /// Device power at utilization `u ∈ [0, 1]`, W.
    pub fn device_power(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        let idle = self.idle_fraction * self.arch.tdp_w;
        idle + u * (self.arch.tdp_w - idle)
    }

    /// Device energy of a kernel running `seconds` at `utilization`, J.
    pub fn device_energy(&self, seconds: f64, utilization: f64) -> f64 {
        seconds * self.device_power(utilization)
    }

    /// Host energy accrued while the device runs for `seconds`, J.
    pub fn host_energy(&self, seconds: f64) -> f64 {
        seconds * self.host_power_w
    }

    /// Total (device + host) energy, J.
    pub fn total_energy(&self, seconds: f64, utilization: f64) -> f64 {
        self.device_energy(seconds, utilization) + self.host_energy(seconds)
    }

    /// Energy efficiency in GFlops/W for a kernel described by `counts`
    /// running `seconds` at `utilization` — the Fig. 15 metric (flops
    /// exclude the sin/cos evaluations).
    pub fn gflops_per_watt(&self, counts: &OpCounts, seconds: f64, utilization: f64) -> f64 {
        let gflops = counts.flops() as f64 / seconds / 1e9;
        gflops / self.device_power(utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::{attainable_ops_per_sec, IDG_RHO};

    fn busy_counts(ops_per_sec: f64, seconds: f64) -> OpCounts {
        // an IDG-shaped workload achieving ops_per_sec for `seconds`
        let total_ops = ops_per_sec * seconds;
        let groups = total_ops / 36.0;
        OpCounts {
            fmas: (groups * 17.0) as u64,
            sincos_pairs: groups as u64,
            dram_bytes: 1,
            shared_bytes: 1,
            visibilities: 0,
        }
    }

    #[test]
    fn power_interpolates_between_idle_and_tdp() {
        let m = EnergyModel::new(Architecture::pascal());
        assert!((m.device_power(0.0) - 27.0).abs() < 1e-9); // 15% of 180
        assert!((m.device_power(1.0) - 180.0).abs() < 1e-9);
        let half = m.device_power(0.5);
        assert!(half > 27.0 && half < 180.0);
        // clamped outside [0,1]
        assert_eq!(m.device_power(2.0), 180.0);
    }

    #[test]
    fn cpu_has_no_separate_host_power() {
        let m = EnergyModel::new(Architecture::haswell());
        assert_eq!(m.host_energy(10.0), 0.0);
        let g = EnergyModel::new(Architecture::pascal());
        assert!(g.host_energy(10.0) > 0.0);
    }

    #[test]
    fn fig15_shape_pascal_vs_haswell() {
        // PASCAL gridder at the modeled ρ=17 rate and full utilization
        // should land in the tens of GFlops/W; HASWELL in the ~1-2 range —
        // the order-of-magnitude gap of Fig. 15.
        let pascal = Architecture::pascal();
        let rate_p = attainable_ops_per_sec(&pascal, IDG_RHO);
        let m_p = EnergyModel::new(pascal);
        let eff_p = m_p.gflops_per_watt(&busy_counts(rate_p, 1.0), 1.0, 1.0);
        assert!((20.0..60.0).contains(&eff_p), "PASCAL {eff_p} GFlops/W");

        let haswell = Architecture::haswell();
        let rate_h = attainable_ops_per_sec(&haswell, IDG_RHO);
        let m_h = EnergyModel::new(haswell);
        let eff_h = m_h.gflops_per_watt(&busy_counts(rate_h, 1.0), 1.0, 1.0);
        assert!((0.5..4.0).contains(&eff_h), "HASWELL {eff_h} GFlops/W");

        assert!(
            eff_p / eff_h > 8.0,
            "order-of-magnitude gap: {eff_p} vs {eff_h}"
        );
    }

    #[test]
    fn fiji_sits_between() {
        let fiji = Architecture::fiji();
        let rate = attainable_ops_per_sec(&fiji, IDG_RHO);
        let m = EnergyModel::new(fiji);
        let eff = m.gflops_per_watt(&busy_counts(rate, 1.0), 1.0, 1.0);
        assert!((5.0..25.0).contains(&eff), "FIJI {eff} GFlops/W");
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let m = EnergyModel::new(Architecture::fiji());
        let e1 = m.total_energy(1.0, 0.8);
        let e2 = m.total_energy(2.0, 0.8);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }
}
