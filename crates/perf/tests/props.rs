//! Property tests for the analytic operation model.
//!
//! Two families: algebraic invariants of [`OpCounts`] over random
//! counter values, and the cross-validation contract — the analytic
//! per-item counts must equal what the *instrumented kernels* actually
//! measure at their call sites, for randomly drawn observation shapes.

use idg_perf::{
    degridder_counts, degridder_item_counts, gridder_counts, gridder_item_counts, OpCounts,
};
use idg_types::{Baseline, Observation};
use proptest::prelude::*;

/// Random-but-valid counter register contents.
fn counts_from(v: [u64; 5]) -> OpCounts {
    OpCounts {
        fmas: v[0],
        sincos_pairs: v[1],
        dram_bytes: v[2],
        shared_bytes: v[3],
        visibilities: v[4],
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn add_is_commutative(
        a in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        b in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
    ) {
        let a = counts_from([a.0, a.1, a.2, a.3, a.4]);
        let b = counts_from([b.0, b.1, b.2, b.3, b.4]);
        let mut ab = a;
        ab.add(&b);
        let mut ba = b;
        ba.add(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn add_is_associative(
        a in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        b in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
        c in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
    ) {
        let a = counts_from([a.0, a.1, a.2, a.3, a.4]);
        let b = counts_from([b.0, b.1, b.2, b.3, b.4]);
        let c = counts_from([c.0, c.1, c.2, c.3, c.4]);
        // (a + b) + c
        let mut left = a;
        left.add(&b);
        left.add(&c);
        // a + (b + c)
        let mut bc = b;
        bc.add(&c);
        let mut right = a;
        right.add(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn flops_never_exceed_total_ops(
        v in (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40),
    ) {
        let c = counts_from([v.0, v.1, v.2, v.3, v.4]);
        prop_assert!(c.flops() <= c.total_ops());
    }

    #[test]
    fn derived_ratios_are_finite_and_non_negative_for_real_items(
        nr_timesteps in 1usize..256,
        nr_channels in 1usize..32,
        subgrid_size in 4usize..40,
    ) {
        let item = work_item(nr_timesteps, nr_channels);
        for counts in [
            gridder_item_counts(&item, subgrid_size),
            degridder_item_counts(&item, subgrid_size),
        ] {
            prop_assert!(counts.rho().is_finite() && counts.rho() >= 0.0);
            prop_assert!((counts.rho() - 17.0).abs() < 1e-12, "rho = {}", counts.rho());
            prop_assert!(
                counts.intensity_dram().is_finite() && counts.intensity_dram() >= 0.0
            );
            prop_assert!(
                counts.intensity_shared().is_finite() && counts.intensity_shared() >= 0.0
            );
        }
    }
}

fn work_item(nr_timesteps: usize, nr_channels: usize) -> idg_plan::WorkItem {
    idg_plan::WorkItem {
        baseline_index: 0,
        baseline: Baseline::new(0, 1),
        time_offset: 0,
        nr_timesteps,
        channel_offset: 0,
        nr_channels,
        aterm_index: 0,
        coord_x: 0,
        coord_y: 0,
        w_plane: 0,
    }
}

proptest! {
    // Each case simulates a small observation and runs both reference
    // kernels under an observability session — keep the count modest.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    #[test]
    fn analytic_counts_equal_instrumented_measurements(
        subgrid_size in (4usize..13).prop_map(|h| 2 * h), // 8..=24, even
        seed in 1u64..1000,
    ) {
        use idg_kernels::{KernelData, SubgridArray};
        use idg_telescope::{Dataset, IdentityATerm, Layout, SkyModel};

        let obs = Observation::builder()
            .stations(4)
            .timesteps(16)
            .channels(2, 150e6, 2e6)
            .grid_size(128)
            .subgrid_size(subgrid_size)
            .kernel_size(5)
            .aterm_interval(16)
            .image_size(0.05)
            .build()
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;
        let layout = Layout::uniform(4, 700.0, seed);
        let sky = SkyModel::random(&obs, 2, 0.5, seed);
        let ds = Dataset::simulate(obs, &layout, sky, &IdentityATerm);
        let plan = idg_plan::Plan::create(&ds.obs, &ds.uvw)
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;
        prop_assume!(!plan.items.is_empty());

        let taper = idg_math::spheroidal_2d(subgrid_size);
        let data = KernelData {
            obs: &ds.obs,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
            taper: &taper,
        };
        let mut subgrids = SubgridArray::new(plan.nr_subgrids(), subgrid_size);
        let mut vis = vec![idg_types::Visibility::<f32>::zero(); ds.obs.nr_visibilities()];

        let session = idg_obs::Session::begin("props");
        idg_kernels::gridder_reference(&data, &plan.items, &mut subgrids).expect("kernel run");
        idg_kernels::degridder_reference(&data, &plan.items, &subgrids, &mut vis).expect("kernel run");
        let trace = session.finish();

        let analytic_g = gridder_counts(&plan.items, subgrid_size);
        let analytic_d = degridder_counts(&plan.items, subgrid_size);
        let (mg, md) = (&trace.metrics.gridder, &trace.metrics.degridder);
        prop_assert_eq!(mg.invocations, plan.items.len() as u64);
        prop_assert_eq!(mg.visibilities, analytic_g.visibilities);
        prop_assert_eq!(mg.sincos_pairs, analytic_g.sincos_pairs);
        prop_assert_eq!(mg.fmas, analytic_g.fmas);
        prop_assert_eq!(mg.dram_bytes, analytic_g.dram_bytes);
        prop_assert_eq!(mg.shared_bytes, analytic_g.shared_bytes);
        prop_assert_eq!(md.invocations, plan.items.len() as u64);
        prop_assert_eq!(md.visibilities, analytic_d.visibilities);
        prop_assert_eq!(md.sincos_pairs, analytic_d.sincos_pairs);
        prop_assert_eq!(md.fmas, analytic_d.fmas);
        prop_assert_eq!(md.dram_bytes, analytic_d.dram_bytes);
        prop_assert_eq!(md.shared_bytes, analytic_d.shared_bytes);
    }
}
