//! Grid ⇄ image conversions.
//!
//! Conventions (derived from the kernel/adder conventions pinned in
//! `idg-kernels`):
//!
//! * image pixel `X` sees direction `l = (X − G/2)·image_size/G`
//!   (FFT bins are integral, so no half-pixel offset at grid scale);
//! * a dirty image is `F⁻¹(grid)·G²/W` divided by the grid-scale
//!   spheroidal (the taper the gridder imposed in the image domain),
//!   where `W` is the sum of gridding weights (here: the number of
//!   gridded visibilities) — this normalization makes a `F` Jy point
//!   source peak at `F`;
//! * a model grid is `F(model/taper)` so that degridding it predicts
//!   the direct measurement-equation visibilities of the model.

use idg::fft::{fftshift2d, ifftshift2d, Direction, Fft2d};
use idg::types::{Cf32, Grid, Observation};
use idg_math::spheroidal_eta;

/// A real-valued Stokes-I image.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    size: usize,
    data: Vec<f32>,
}

impl Image {
    /// Allocate a zeroed image.
    pub fn new(size: usize) -> Self {
        Self {
            size,
            data: vec![0.0; size * size],
        }
    }

    /// Edge length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Pixel accessor.
    #[inline]
    pub fn at(&self, y: usize, x: usize) -> f32 {
        self.data[y * self.size + x]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn at_mut(&mut self, y: usize, x: usize) -> &mut f32 {
        &mut self.data[y * self.size + x]
    }

    /// Raw pixels (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Raw pixels, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `(x, y, value)` of the absolute-maximum pixel.
    pub fn peak(&self) -> (usize, usize, f32) {
        let mut best = (0, 0, 0.0f32);
        for y in 0..self.size {
            for x in 0..self.size {
                let v = self.at(y, x);
                if v.abs() > best.2.abs() {
                    best = (x, y, v);
                }
            }
        }
        best
    }

    /// Root-mean-square pixel value.
    pub fn rms(&self) -> f64 {
        let s: f64 = self.data.iter().map(|v| (*v as f64) * (*v as f64)).sum();
        (s / self.data.len() as f64).sqrt()
    }

    /// RMS over the inner region, excluding a border of
    /// `border_fraction × size` pixels on each side — the convergence
    /// metric of the imaging cycle (the rim is taper-noise dominated).
    pub fn rms_inner(&self, border_fraction: f64) -> f64 {
        let border = ((self.size as f64 * border_fraction) as usize).min(self.size / 2 - 1);
        let mut s = 0.0f64;
        let mut n = 0usize;
        for y in border..self.size - border {
            for x in border..self.size - border {
                let v = self.at(y, x) as f64;
                s += v * v;
                n += 1;
            }
        }
        (s / n as f64).sqrt()
    }

    /// Direction cosine of pixel index `i` (x or y axis).
    pub fn pixel_to_lm(obs: &Observation, i: usize) -> f64 {
        (i as f64 - obs.grid_size as f64 / 2.0) * obs.image_size / obs.grid_size as f64
    }

    /// Nearest pixel index for a direction cosine.
    pub fn lm_to_pixel(obs: &Observation, lm: f64) -> usize {
        let p = lm * obs.grid_size as f64 / obs.image_size + obs.grid_size as f64 / 2.0;
        p.round().clamp(0.0, obs.grid_size as f64 - 1.0) as usize
    }
}

/// The grid-scale taper the gridder imposed: `ψ(η_x)·ψ(η_y)` with
/// `η = 2(X − G/2)/G`, clamped below `floor` to avoid blowing up the
/// (astronomically uninteresting) image edge.
fn grid_taper(size: usize, floor: f32) -> Vec<f32> {
    let axis: Vec<f32> = (0..size)
        .map(|i| spheroidal_eta(2.0 * (i as f64 - size as f64 / 2.0) / size as f64) as f32)
        .collect();
    let mut out = Vec::with_capacity(size * size);
    for y in 0..size {
        for x in 0..size {
            out.push((axis[y] * axis[x]).max(floor));
        }
    }
    out
}

/// One polarization plane of the grid to the image domain:
/// ifftshift → inverse FFT → fftshift.
fn plane_to_image(plane: &[Cf32], size: usize) -> Vec<Cf32> {
    let mut data = plane.to_vec();
    ifftshift2d(&mut data, size);
    let fft = Fft2d::<f32>::new(size);
    fft.process_grid(&mut data, Direction::Inverse);
    fftshift2d(&mut data, size);
    data
}

/// Produce the Stokes-I dirty image from a gridded visibility grid.
///
/// `weight_sum` is the number of visibilities that were gridded (the
/// plan's `nr_gridded_visibilities()`).
pub fn dirty_image(grid: &Grid<f32>, obs: &Observation, weight_sum: usize) -> Image {
    image_from_grid(grid, obs, weight_sum, true)
}

/// Shared grid→image pipeline; `mask_edge` zeroes the low-sensitivity
/// rim (wanted for science images, NOT for the PSF, whose sidelobe
/// values must stay available at every offset so CLEAN can subtract
/// them).
fn image_from_grid(
    grid: &Grid<f32>,
    obs: &Observation,
    weight_sum: usize,
    mask_edge: bool,
) -> Image {
    let (xx, yy) = dirty_image_planes(grid);
    let raw: Vec<f32> = (0..xx.len()).map(|i| 0.5 * (xx[i].re + yy[i].re)).collect();
    finalize(raw, obs, weight_sum, mask_edge)
}

/// The raw (un-normalized, complex) image-domain XX and YY planes of a
/// grid — the building block W-stacking combines with per-plane screens
/// before normalization.
pub fn dirty_image_planes(grid: &Grid<f32>) -> (Vec<Cf32>, Vec<Cf32>) {
    let size = grid.size();
    (
        plane_to_image(grid.plane(0), size),
        plane_to_image(grid.plane(3), size),
    )
}

/// Normalize and taper-correct an accumulated raw Stokes-I plane into a
/// science image (see [`dirty_image`] for the conventions).
pub fn finalize_dirty(raw: Vec<f32>, obs: &Observation, weight_sum: usize) -> Image {
    finalize(raw, obs, weight_sum, true)
}

fn finalize(raw: Vec<f32>, obs: &Observation, weight_sum: usize, mask_edge: bool) -> Image {
    assert!(weight_sum > 0, "cannot normalize an empty grid");
    let size = obs.grid_size;
    assert_eq!(raw.len(), size * size);
    let taper = grid_taper(size, 1e-2);
    let scale = (size * size) as f32 / weight_sum as f32;
    let mut image = Image::new(size);
    for i in 0..size * size {
        // Near the taper edge the correction divides by small values,
        // amplifying the percent-level aliasing of the subgrid-sampled
        // taper. Production imagers avoid this zone by padding the grid
        // and keeping the inner fraction; science images mask it.
        if mask_edge && taper[i] < EDGE_MASK {
            continue;
        }
        image.data[i] = raw[i] * scale / taper[i];
    }
    image
}

/// Taper level below which dirty-image pixels are masked to zero
/// (ψ² ≈ 0.05 corresponds to |η| ≳ 0.85 along an axis).
const EDGE_MASK: f32 = 0.05;

/// Synthesize the point-spread function: the dirty image of unit
/// visibilities on the same uv sampling, *unmasked* so sidelobe values
/// exist at every offset CLEAN may need.
pub fn psf_image(
    proxy: &idg::Proxy,
    plan: &idg::Plan,
    uvw: &[idg::Uvw],
    aterms: &idg::telescope::ATerms,
) -> Result<Image, idg::types::IdgError> {
    let one = Cf32::new(1.0, 0.0);
    let unit = idg::Visibility {
        pols: [one, Cf32::zero(), Cf32::zero(), one],
    };
    let vis = vec![unit; proxy.observation().nr_visibilities()];
    let (grid, _) = proxy.grid(plan, uvw, &vis, aterms)?;
    Ok(image_from_grid(
        &grid,
        proxy.observation(),
        plan.nr_gridded_visibilities(),
        false,
    ))
}

/// The beam-weight image of a sampled A-term set at grid resolution.
///
/// A (real, scalar) beam `b` attenuates each visibility by `b_p·b_q ≈ b²`
/// in the measurement, and the gridder's *adjoint* A-term sandwich
/// applies the same factor again, so a unit point source responds with
/// `b⁴` in the dirty image. Recovering fluxes divides by this weight
/// map — the flat-gain correction every production imager applies. The
/// weight is `⟨A⟩⁴` with `⟨A⟩` the Stokes-I-projected Jones mean over
/// stations and A-term intervals (exact for identical scalar beams, an
/// approximation otherwise), bilinearly upsampled from subgrid to grid
/// resolution; values below `floor` are clamped (outside the beam the
/// image has no sensitivity to correct).
pub fn beam_weight_image(aterms: &idg::telescope::ATerms, obs: &Observation, floor: f32) -> Image {
    let n = aterms.subgrid_size();
    let count = (aterms.nr_intervals() * aterms.nr_stations()) as f32;
    // Stokes-I scalar response per subgrid pixel
    let mut mean = vec![0.0f32; n * n];
    for interval in 0..aterms.nr_intervals() {
        for station in 0..aterms.nr_stations() {
            let plane = aterms.plane(interval, station);
            for (i, j) in plane.iter().enumerate() {
                mean[i] += 0.5 * (j.xx.re + j.yy.re);
            }
        }
    }
    for v in &mut mean {
        *v /= count;
    }

    // bilinear upsample to grid resolution: grid pixel X sits at
    // subgrid coordinate x_f = l·Ñ/image + Ñ/2 − ½.
    let g = obs.grid_size;
    let mut weight = Image::new(g);
    for gy in 0..g {
        let m = Image::pixel_to_lm(obs, gy);
        let yf = (m / obs.image_size) * n as f64 + n as f64 / 2.0 - 0.5;
        let y0 = (yf.floor().clamp(0.0, (n - 1) as f64)) as usize;
        let y1 = (y0 + 1).min(n - 1);
        let ty = (yf - y0 as f64).clamp(0.0, 1.0) as f32;
        for gx in 0..g {
            let l = Image::pixel_to_lm(obs, gx);
            let xf = (l / obs.image_size) * n as f64 + n as f64 / 2.0 - 0.5;
            let x0 = (xf.floor().clamp(0.0, (n - 1) as f64)) as usize;
            let x1 = (x0 + 1).min(n - 1);
            let tx = (xf - x0 as f64).clamp(0.0, 1.0) as f32;
            let b = mean[y0 * n + x0] * (1.0 - ty) * (1.0 - tx)
                + mean[y0 * n + x1] * (1.0 - ty) * tx
                + mean[y1 * n + x0] * ty * (1.0 - tx)
                + mean[y1 * n + x1] * ty * tx;
            *weight.at_mut(gy, gx) = (b * b * b * b).max(floor);
        }
    }
    weight
}

/// Build a model grid whose degridding predicts the direct
/// measurement-equation visibilities of `model` (a Stokes-I image of
/// point-source fluxes): `grid = F(model/taper)` on XX and YY.
pub fn model_grid_from_image(model: &Image, obs: &Observation) -> Grid<f32> {
    assert_eq!(model.size(), obs.grid_size);
    let size = model.size();
    let taper = grid_taper(size, 1e-3);

    let mut plane: Vec<Cf32> = model
        .as_slice()
        .iter()
        .zip(taper.iter())
        .map(|(v, t)| Cf32::new(v / t, 0.0))
        .collect();
    ifftshift2d(&mut plane, size);
    let fft = Fft2d::<f32>::new(size);
    fft.process_grid(&mut plane, Direction::Forward);
    fftshift2d(&mut plane, size);

    let mut grid = Grid::<f32>::new(size);
    grid.plane_mut(0).copy_from_slice(&plane);
    grid.plane_mut(3).copy_from_slice(&plane);
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg::{Backend, Proxy};
    use idg_telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};

    fn obs() -> Observation {
        Observation::builder()
            .stations(8)
            .timesteps(64)
            .channels(4, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(32)
            .image_size(0.05)
            .build()
            .unwrap()
    }

    fn dataset(sky: SkyModel) -> Dataset {
        let o = obs();
        let layout = Layout::uniform(o.nr_stations, 1200.0, 97);
        Dataset::simulate(o, &layout, sky, &IdentityATerm)
    }

    #[test]
    fn image_accessors_and_peak() {
        let mut img = Image::new(8);
        *img.at_mut(3, 5) = -2.5;
        *img.at_mut(1, 1) = 1.0;
        assert_eq!(img.peak(), (5, 3, -2.5));
        assert!(img.rms() > 0.0);
        assert_eq!(img.size(), 8);
    }

    #[test]
    fn pixel_lm_round_trip() {
        let o = obs();
        for i in [0usize, 100, 128, 200, 255] {
            let lm = Image::pixel_to_lm(&o, i);
            assert_eq!(Image::lm_to_pixel(&o, lm), i);
        }
        assert_eq!(Image::pixel_to_lm(&o, 128), 0.0, "center pixel is l=0");
    }

    #[test]
    fn center_source_flux_is_recovered() {
        let flux = 2.5;
        let ds = dataset(SkyModel::single_center(flux));
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (grid, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let dirty = dirty_image(&grid, &ds.obs, plan.nr_gridded_visibilities());
        let (px, py, peak) = dirty.peak();
        assert_eq!((px, py), (128, 128), "peak at the phase center");
        assert!(
            (peak - flux as f32).abs() < 0.05 * flux as f32,
            "peak {peak} vs flux {flux}"
        );
    }

    #[test]
    fn off_center_source_localizes_correctly() {
        let src = PointSource {
            l: 0.008,
            m: -0.0115,
            flux: 1.0,
        };
        let ds = dataset(SkyModel { sources: vec![src] });
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let (grid, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let dirty = dirty_image(&grid, &ds.obs, plan.nr_gridded_visibilities());
        let (px, py, peak) = dirty.peak();
        let ex = Image::lm_to_pixel(&ds.obs, src.l);
        let ey = Image::lm_to_pixel(&ds.obs, src.m);
        assert!(
            (px as i64 - ex as i64).abs() <= 1 && (py as i64 - ey as i64).abs() <= 1,
            "peak at ({px},{py}), expected ({ex},{ey})"
        );
        assert!(peak > 0.7, "flux mostly recovered: {peak}");
    }

    #[test]
    fn psf_peaks_at_unity_at_center() {
        let ds = dataset(SkyModel::empty());
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let psf = psf_image(&proxy, &plan, &ds.uvw, &ds.aterms).expect("psf gridding");
        let (px, py, peak) = psf.peak();
        assert_eq!((px, py), (128, 128));
        assert!((peak - 1.0).abs() < 0.05, "psf peak {peak}");
    }

    #[test]
    fn model_grid_degrids_to_direct_prediction() {
        // delta model at an off-center pixel; degridding its model grid
        // must reproduce the measurement-equation visibilities of a
        // point source at that pixel's (l, m).
        let ds = dataset(SkyModel::empty());
        let proxy = Proxy::new(Backend::CpuReference, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();

        let (px, py) = (150usize, 110usize);
        let flux = 1.8f32;
        let mut model = Image::new(ds.obs.grid_size);
        *model.at_mut(py, px) = flux;
        let grid = model_grid_from_image(&model, &ds.obs);

        let (pred, _) = proxy.degrid(&plan, &grid, &ds.uvw, &ds.aterms).unwrap();

        // direct prediction at the pixel's exact (l, m)
        let src = PointSource {
            l: Image::pixel_to_lm(&ds.obs, px),
            m: Image::pixel_to_lm(&ds.obs, py),
            flux: flux as f64,
        };
        let direct = idg::telescope::predict_visibilities(
            &ds.obs,
            &ds.uvw,
            &IdentityATerm,
            &SkyModel { sources: vec![src] },
        );

        let mut err_acc = 0.0f64;
        let mut mag_acc = 0.0f64;
        for (a, b) in pred.iter().zip(&direct) {
            err_acc += (a.pols[0] - b.pols[0]).abs() as f64;
            mag_acc += b.pols[0].abs() as f64;
        }
        let rel = err_acc / mag_acc;
        assert!(rel < 0.02, "mean relative prediction error {rel}");
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn empty_weight_sum_panics() {
        let o = obs();
        let grid = Grid::<f32>::new(o.grid_size);
        dirty_image(&grid, &o, 0);
    }
}
