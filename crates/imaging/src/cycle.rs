//! The imaging major cycle (Fig. 2 of the paper).
//!
//! Starting from an empty sky model, each major cycle:
//!
//! 1. **images** the residual visibilities (gridding + inverse FFT),
//! 2. extracts bright components with CLEAN minor cycles,
//! 3. **predicts** the cumulative model (FFT + degridding), and
//! 4. subtracts the prediction from the input visibilities,
//!
//! "repeated until the sky model converges". The gridding and degridding
//! steps run through the `idg` proxy, so the whole cycle exercises the
//! paper's kernels end to end and yields the per-stage runtime
//! distribution of Fig. 9.

use crate::clean::{components_to_image, hogbom_clean, CleanComponent, CleanParams};
use crate::image::{dirty_image, model_grid_from_image, psf_image, Image};
use idg::telescope::ATerms;
use idg::{ExecutionReport, IdgError, Plan, Proxy, Uvw, Visibility};

/// Outcome of a full imaging run.
#[derive(Clone, Debug)]
pub struct MajorCycleReport {
    /// All extracted components (cumulative sky model).
    pub components: Vec<CleanComponent>,
    /// Residual-image RMS after each major cycle (index 0 = dirty map).
    pub residual_rms: Vec<f64>,
    /// Per-cycle gridding execution reports.
    pub gridding_reports: Vec<ExecutionReport>,
    /// Per-cycle degridding execution reports.
    pub degridding_reports: Vec<ExecutionReport>,
    /// The final residual image.
    pub residual: Image,
}

impl MajorCycleReport {
    /// Total recovered model flux.
    pub fn model_flux(&self) -> f64 {
        self.components.iter().map(|c| c.flux as f64).sum()
    }

    /// Aggregate time spent per stage across all cycles:
    /// `(gridder, degridder, fft, adder+splitter, transfers)` — the
    /// Fig. 9 decomposition.
    pub fn stage_totals(&self) -> (f64, f64, f64, f64, f64) {
        let mut gridder = 0.0;
        let mut degridder = 0.0;
        let mut fft = 0.0;
        let mut adder = 0.0;
        let mut transfer = 0.0;
        for r in &self.gridding_reports {
            gridder += r.kernel_seconds;
            fft += r.fft_seconds;
            adder += r.adder_seconds;
            transfer += r.transfer_seconds;
        }
        for r in &self.degridding_reports {
            degridder += r.kernel_seconds;
            fft += r.fft_seconds;
            adder += r.adder_seconds;
            transfer += r.transfer_seconds;
        }
        (gridder, degridder, fft, adder, transfer)
    }
}

/// Drives major cycles for one observation.
pub struct ImagingCycle<'a> {
    proxy: &'a Proxy,
    plan: &'a Plan,
    uvw: &'a [Uvw],
    aterms: &'a ATerms,
}

impl<'a> ImagingCycle<'a> {
    /// Bundle the static inputs of a run.
    pub fn new(proxy: &'a Proxy, plan: &'a Plan, uvw: &'a [Uvw], aterms: &'a ATerms) -> Self {
        Self {
            proxy,
            plan,
            uvw,
            aterms,
        }
    }

    /// Run `nr_major_cycles` against the observed `visibilities`.
    pub fn run(
        &self,
        visibilities: &[Visibility<f32>],
        nr_major_cycles: usize,
        clean: &CleanParams,
    ) -> Result<MajorCycleReport, IdgError> {
        let obs = self.proxy.observation();
        let weight = self.plan.nr_gridded_visibilities();
        let psf = psf_image(self.proxy, self.plan, self.uvw, self.aterms)?;

        let mut components: Vec<CleanComponent> = Vec::new();
        let mut residual_vis: Vec<Visibility<f32>> = visibilities.to_vec();
        let mut residual_rms = Vec::new();
        let mut gridding_reports = Vec::new();
        let mut degridding_reports = Vec::new();

        for _cycle in 0..nr_major_cycles {
            // (1) image the residual visibilities
            let (grid, g_report) =
                self.proxy
                    .grid(self.plan, self.uvw, &residual_vis, self.aterms)?;
            gridding_reports.push(g_report);
            let mut working = dirty_image(&grid, obs, weight);
            residual_rms.push(working.rms_inner(0.1));

            // (2) minor cycles (in place on this cycle's residual map)
            let new_components = hogbom_clean(&mut working, &psf, clean);
            if new_components.is_empty() {
                break;
            }
            for c in new_components {
                if let Some(existing) = components.iter_mut().find(|e| e.x == c.x && e.y == c.y) {
                    existing.flux += c.flux;
                } else {
                    components.push(c);
                }
            }

            // (3) predict the cumulative model
            let model = components_to_image(&components, obs.grid_size);
            let model_grid = model_grid_from_image(&model, obs);
            let (predicted, d_report) =
                self.proxy
                    .degrid(self.plan, &model_grid, self.uvw, self.aterms)?;
            degridding_reports.push(d_report);

            // (4) subtract from the *input* visibilities
            residual_vis = visibilities
                .iter()
                .zip(predicted.iter())
                .map(|(d, p)| d.sub(*p))
                .collect();
        }

        // final residual map
        let (grid, g_report) = self
            .proxy
            .grid(self.plan, self.uvw, &residual_vis, self.aterms)?;
        gridding_reports.push(g_report);
        let residual = dirty_image(&grid, obs, weight);
        residual_rms.push(residual.rms_inner(0.1));

        Ok(MajorCycleReport {
            components,
            residual_rms,
            gridding_reports,
            degridding_reports,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg::types::Observation;
    use idg::Backend;
    use idg_telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};

    fn dataset(sky: SkyModel) -> Dataset {
        let obs = Observation::builder()
            .stations(8)
            .timesteps(64)
            .channels(4, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(32)
            .image_size(0.05)
            .build()
            .unwrap();
        let layout = Layout::uniform(obs.nr_stations, 1200.0, 103);
        Dataset::simulate(obs, &layout, sky, &IdentityATerm)
    }

    #[test]
    fn major_cycles_reduce_residual_and_recover_flux() {
        let sky = SkyModel {
            sources: vec![
                PointSource {
                    l: 0.006,
                    m: 0.004,
                    flux: 3.0,
                },
                PointSource {
                    l: -0.009,
                    m: 0.002,
                    flux: 1.5,
                },
            ],
        };
        let total_flux = sky.total_flux();
        let ds = dataset(sky);
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let cycle = ImagingCycle::new(&proxy, &plan, &ds.uvw, &ds.aterms);

        let clean = CleanParams {
            gain: 0.2,
            max_iterations: 300,
            threshold: 0.05,
            ..CleanParams::default()
        };
        let report = cycle.run(&ds.visibilities, 3, &clean).unwrap();

        // residual RMS decreases monotonically (up to small jitter)
        let rms = &report.residual_rms;
        assert!(rms.len() >= 2);
        assert!(rms.last().unwrap() < &(0.5 * rms[0]), "rms history {rms:?}");
        // recovered flux close to injected flux
        let flux = report.model_flux();
        assert!(
            (flux - total_flux).abs() / total_flux < 0.15,
            "model flux {flux} vs injected {total_flux}"
        );
        // the two dominant components sit at the right pixels
        let mut sorted = report.components.clone();
        sorted.sort_by(|a, b| b.flux.total_cmp(&a.flux));
        let ex = crate::image::Image::lm_to_pixel(&ds.obs, 0.006);
        let ey = crate::image::Image::lm_to_pixel(&ds.obs, 0.004);
        assert!(sorted[0].x.abs_diff(ex) <= 1 && sorted[0].y.abs_diff(ey) <= 1);
    }

    #[test]
    fn empty_sky_converges_immediately() {
        let ds = dataset(SkyModel::empty());
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let cycle = ImagingCycle::new(&proxy, &plan, &ds.uvw, &ds.aterms);
        let clean = CleanParams {
            gain: 0.2,
            max_iterations: 100,
            threshold: 0.05,
            ..CleanParams::default()
        };
        let report = cycle.run(&ds.visibilities, 3, &clean).unwrap();
        assert!(report.components.is_empty());
        assert!(report.model_flux() == 0.0);
    }

    #[test]
    fn stage_totals_aggregate_reports() {
        let ds = dataset(SkyModel::single_center(1.0));
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let cycle = ImagingCycle::new(&proxy, &plan, &ds.uvw, &ds.aterms);
        let clean = CleanParams {
            gain: 0.3,
            max_iterations: 50,
            threshold: 0.05,
            ..CleanParams::default()
        };
        let report = cycle.run(&ds.visibilities, 1, &clean).unwrap();
        let (g, d, f, a, t) = report.stage_totals();
        assert!(g > 0.0 && f > 0.0 && a > 0.0);
        assert!(d >= 0.0 && t == 0.0, "CPU back-end has no transfers");
        assert_eq!(
            report.gridding_reports.len(),
            2,
            "initial + final residual map"
        );
    }
}
