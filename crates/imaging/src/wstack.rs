//! W-stacking imaging with IDG.
//!
//! IDG evaluates the `w·n` phase exactly per subgrid pixel, but a large
//! *residual* w bends the phase so strongly across the subgrid that its
//! effective Fourier support outgrows the planner's kernel margin —
//! aliasing. Two remedies, both from the paper (Sec. IV/VI-E):
//! larger subgrids, or **W-stacking**: partition the visibilities over
//! w-planes (`Observation::w_step`), grid each plane into its *own*
//! grid with the per-plane offset `w₀ = plane·w_step` removed inside the
//! kernels, and merge in the image domain after multiplying each plane's
//! image by its phase screen `e^{+2πi w₀ n(l,m)}`:
//!
//! `I(l,m) = Σ_p  e^{2πi w_p n} · F⁻¹(grid_p)`
//!
//! "larger subgrids (e.g. up to 64 × 64) can be used in connection with
//! W-stacking to dramatically limit the number of required W-planes" —
//! the `ablation_wstacking` bench quantifies that trade.

use crate::image::{dirty_image_planes, finalize_dirty, Image};
use idg::telescope::ATerms;
use idg::{ExecutionReport, IdgError, Plan, Proxy, Uvw, Visibility};

/// Result of a W-stacked imaging pass.
#[derive(Clone, Debug)]
pub struct WStackReport {
    /// Number of w-planes gridded.
    pub nr_planes: usize,
    /// Per-plane gridding reports.
    pub reports: Vec<ExecutionReport>,
    /// Peak grid memory the stack needed (one plane grid at a time here;
    /// a GPU implementation would hold several).
    pub grid_bytes_per_plane: usize,
}

/// Grid and image an observation with W-stacking: one gridding pass and
/// one FFT per w-plane, merged with the per-plane w screens.
///
/// Requires a plan built with `obs.w_step > 0` (each work item already
/// carries its plane index and the kernels already remove the plane
/// offset from the phases — this routine supplies the per-plane grids
/// and the image-domain screens the single-grid path lacks).
pub fn wstack_dirty_image(
    proxy: &Proxy,
    plan: &Plan,
    uvw: &[Uvw],
    visibilities: &[Visibility<f32>],
    aterms: &ATerms,
) -> Result<(Image, WStackReport), IdgError> {
    let obs = proxy.observation();
    assert!(obs.w_step > 0.0, "w-stacking needs obs.w_step > 0");
    let planes = plan.w_planes();
    let size = obs.grid_size;
    let weight = plan.nr_gridded_visibilities();

    let mut acc = vec![0.0f32; size * size];
    let mut reports = Vec::new();

    for &p in &planes {
        let sub_plan = plan.subset_for_w_plane(p);
        let (grid, report) = proxy.grid(&sub_plan, uvw, visibilities, aterms)?;
        reports.push(report);

        // per-plane image (complex Stokes-I plane, un-normalized)
        let (xx, yy) = dirty_image_planes(&grid);

        // apply the plane's w screen and accumulate
        let w0 = p as f64 * obs.w_step;
        for y in 0..size {
            let m = Image::pixel_to_lm(obs, y);
            for x in 0..size {
                let l = Image::pixel_to_lm(obs, x);
                let r2 = l * l + m * m;
                let n = r2 / (1.0 + (1.0 - r2).sqrt());
                let phase = 2.0 * std::f64::consts::PI * w0 * n;
                let (s, c) = (phase.sin() as f32, phase.cos() as f32);
                let i = y * size + x;
                // Re[(xx+yy)/2 · e^{iφ}]
                let re = 0.5 * (xx[i].re + yy[i].re);
                let im = 0.5 * (xx[i].im + yy[i].im);
                acc[i] += re * c - im * s;
            }
        }
    }

    let image = finalize_dirty(acc, obs, weight);
    Ok((
        image,
        WStackReport {
            nr_planes: planes.len(),
            reports,
            grid_bytes_per_plane: 4 * size * size * std::mem::size_of::<idg::Cf32>(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg::telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};
    use idg::types::Observation;
    use idg::Backend;

    fn obs(w_step: f64) -> Observation {
        Observation::builder()
            .stations(8)
            .timesteps(64)
            .channels(4, 150e6, 2e6)
            .grid_size(256)
            .subgrid_size(24)
            .kernel_size(9)
            .aterm_interval(32)
            .image_size(0.05)
            .w_step(w_step)
            .build()
            .unwrap()
    }

    #[test]
    fn wstacked_image_matches_single_grid_image() {
        // With IDG's exact per-pixel w phases, the single-grid and
        // w-stacked paths must agree when the margin suffices for both.
        let sky = SkyModel {
            sources: vec![
                PointSource {
                    l: 0.007,
                    m: 0.003,
                    flux: 2.0,
                },
                PointSource {
                    l: -0.005,
                    m: -0.009,
                    flux: 1.0,
                },
            ],
        };
        let layout = Layout::uniform(8, 1500.0, 401);
        let ds_plain = Dataset::simulate(obs(0.0), &layout, sky.clone(), &IdentityATerm);

        // single-grid reference image
        let proxy0 = Proxy::new(Backend::CpuOptimized, ds_plain.obs.clone()).unwrap();
        let plan0 = proxy0.plan(&ds_plain.uvw).unwrap();
        let (grid0, _) = proxy0
            .grid(
                &plan0,
                &ds_plain.uvw,
                &ds_plain.visibilities,
                &ds_plain.aterms,
            )
            .unwrap();
        let img0 =
            crate::image::dirty_image(&grid0, &ds_plain.obs, plan0.nr_gridded_visibilities());

        // w-stacked image on the same data (same uvw/vis, w_step on)
        let obs_w = obs(25.0);
        let proxy1 = Proxy::new(Backend::CpuOptimized, obs_w.clone()).unwrap();
        let plan1 = proxy1.plan(&ds_plain.uvw).unwrap();
        assert!(plan1.w_planes().len() > 1, "multiple w-planes in use");
        let (img1, report) = wstack_dirty_image(
            &proxy1,
            &plan1,
            &ds_plain.uvw,
            &ds_plain.visibilities,
            &ds_plain.aterms,
        )
        .unwrap();
        assert_eq!(report.nr_planes, plan1.w_planes().len());
        assert_eq!(report.reports.len(), report.nr_planes);

        // same peak pixel, same flux scale
        let p0 = img0.peak();
        let p1 = img1.peak();
        assert_eq!((p0.0, p0.1), (p1.0, p1.1), "peaks coincide");
        assert!(
            (p0.2 - p1.2).abs() < 0.05 * p0.2.abs(),
            "peak fluxes agree: {} vs {}",
            p0.2,
            p1.2
        );
        // whole-image agreement over the unmasked interior
        let mut max_diff = 0.0f32;
        for i in 0..img0.as_slice().len() {
            max_diff = max_diff.max((img0.as_slice()[i] - img1.as_slice()[i]).abs());
        }
        assert!(max_diff < 0.1 * p0.2.abs(), "max image diff {max_diff}");
    }

    #[test]
    fn plane_partition_covers_all_items() {
        let layout = Layout::uniform(8, 1500.0, 402);
        let ds = Dataset::simulate(obs(20.0), &layout, SkyModel::empty(), &IdentityATerm);
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let total: usize = plan
            .w_planes()
            .iter()
            .map(|p| plan.subset_for_w_plane(*p).nr_subgrids())
            .sum();
        assert_eq!(total, plan.nr_subgrids());
    }

    #[test]
    #[should_panic(expected = "w-stacking needs obs.w_step > 0")]
    fn requires_w_step() {
        let layout = Layout::uniform(8, 800.0, 403);
        let ds = Dataset::simulate(obs(0.0), &layout, SkyModel::empty(), &IdentityATerm);
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();
        let _ = wstack_dirty_image(&proxy, &plan, &ds.uvw, &ds.visibilities, &ds.aterms);
    }
}
