//! Högbom CLEAN minor cycles.
//!
//! After imaging, "one or more bright sources, which mask the more
//! interesting weak sources, are extracted using a variant of the CLEAN
//! algorithm and added to the sky model" (Sec. II). This is the classic
//! Högbom variant: repeatedly find the residual peak, subtract a
//! `gain`-scaled shifted copy of the PSF, and record the component.

use crate::image::Image;

/// Minor-cycle parameters.
#[derive(Copy, Clone, Debug)]
pub struct CleanParams {
    /// Loop gain (fraction of the peak removed per iteration).
    pub gain: f32,
    /// Maximum number of minor-cycle iterations.
    pub max_iterations: usize,
    /// Stop when the absolute residual peak drops below this.
    pub threshold: f32,
    /// Fraction of the image edge excluded from peak search (the CLEAN
    /// window): near the taper edge the IDG image is noise-amplified,
    /// so components are only sought in the inner region, like the
    /// clean boxes / padding of production imagers.
    pub search_border: f32,
}

impl Default for CleanParams {
    fn default() -> Self {
        Self {
            gain: 0.1,
            max_iterations: 200,
            threshold: 0.0,
            search_border: 0.25,
        }
    }
}

/// Find the absolute-maximum pixel within the clean window.
fn peak_within(image: &Image, border: usize) -> (usize, usize, f32) {
    let size = image.size();
    let mut best = (border, border, 0.0f32);
    for y in border..size - border {
        for x in border..size - border {
            let v = image.at(y, x);
            if v.abs() > best.2.abs() {
                best = (x, y, v);
            }
        }
    }
    best
}

/// One extracted CLEAN component.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CleanComponent {
    /// Pixel x.
    pub x: usize,
    /// Pixel y.
    pub y: usize,
    /// Component flux (image units).
    pub flux: f32,
}

/// Run Högbom CLEAN on `residual` in place; returns the component list.
///
/// `psf` must be the same size as `residual`, peaking at its center
/// pixel with value ≈ 1 (see [`crate::image::psf_image`]).
pub fn hogbom_clean(
    residual: &mut Image,
    psf: &Image,
    params: &CleanParams,
) -> Vec<CleanComponent> {
    assert_eq!(residual.size(), psf.size(), "psf/residual size mismatch");
    let size = residual.size();
    let center = size / 2;
    let border = ((size as f32 * params.search_border) as usize).min(size / 2 - 1);
    let mut components = Vec::new();

    for _ in 0..params.max_iterations {
        let (px, py, peak) = peak_within(residual, border);
        if peak.abs() <= params.threshold || peak == 0.0 {
            break;
        }
        let flux = params.gain * peak;

        // subtract flux × PSF shifted to (px, py)
        for y in 0..size {
            let psf_y = y as i64 - py as i64 + center as i64;
            if !(0..size as i64).contains(&psf_y) {
                continue;
            }
            for x in 0..size {
                let psf_x = x as i64 - px as i64 + center as i64;
                if !(0..size as i64).contains(&psf_x) {
                    continue;
                }
                *residual.at_mut(y, x) -= flux * psf.at(psf_y as usize, psf_x as usize);
            }
        }

        // merge with an existing component at the same pixel
        if let Some(existing) = components
            .iter_mut()
            .find(|c: &&mut CleanComponent| c.x == px && c.y == py)
        {
            existing.flux += flux;
        } else {
            components.push(CleanComponent { x: px, y: py, flux });
        }
    }
    components
}

/// Total flux of a component list.
pub fn total_component_flux(components: &[CleanComponent]) -> f64 {
    components.iter().map(|c| c.flux as f64).sum()
}

/// Render components into a model image.
pub fn components_to_image(components: &[CleanComponent], size: usize) -> Image {
    let mut image = Image::new(size);
    for c in components {
        *image.at_mut(c.y, c.x) += c.flux;
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic PSF: unit peak with small symmetric sidelobes.
    fn synthetic_psf(size: usize) -> Image {
        let mut psf = Image::new(size);
        let c = size / 2;
        for y in 0..size {
            for x in 0..size {
                let dy = y as f64 - c as f64;
                let dx = x as f64 - c as f64;
                let r2 = dx * dx + dy * dy;
                let main = (-r2 / 2.0).exp();
                let sidelobe = 0.05 * (-r2 / 200.0).exp() * (0.5 * (r2).sqrt()).cos();
                *psf.at_mut(y, x) = (main + sidelobe) as f32;
            }
        }
        *psf.at_mut(c, c) = 1.0;
        psf
    }

    /// Convolve a delta at (x, y) with the PSF into `img`.
    fn add_source(img: &mut Image, psf: &Image, x: usize, y: usize, flux: f32) {
        let size = img.size();
        let c = size / 2;
        for iy in 0..size {
            let py = iy as i64 - y as i64 + c as i64;
            if !(0..size as i64).contains(&py) {
                continue;
            }
            for ix in 0..size {
                let px = ix as i64 - x as i64 + c as i64;
                if !(0..size as i64).contains(&px) {
                    continue;
                }
                *img.at_mut(iy, ix) += flux * psf.at(py as usize, px as usize);
            }
        }
    }

    #[test]
    fn clean_recovers_a_single_source() {
        let psf = synthetic_psf(64);
        let mut dirty = Image::new(64);
        add_source(&mut dirty, &psf, 20, 40, 3.0);

        let params = CleanParams {
            gain: 0.2,
            max_iterations: 500,
            threshold: 0.01,
            search_border: 0.05,
        };
        let comps = hogbom_clean(&mut dirty, &psf, &params);

        assert!(!comps.is_empty());
        // dominant component at the source pixel
        let main = comps
            .iter()
            .max_by(|a, b| a.flux.total_cmp(&b.flux))
            .unwrap();
        assert_eq!((main.x, main.y), (20, 40));
        let flux = total_component_flux(&comps);
        assert!((flux - 3.0).abs() < 0.15, "recovered {flux}");
        // residual cleaned below threshold
        assert!(dirty.peak().2.abs() <= 0.011);
    }

    #[test]
    fn clean_separates_two_sources() {
        let psf = synthetic_psf(64);
        let mut dirty = Image::new(64);
        add_source(&mut dirty, &psf, 16, 16, 2.0);
        add_source(&mut dirty, &psf, 48, 50, 1.0);

        let params = CleanParams {
            gain: 0.2,
            max_iterations: 1000,
            threshold: 0.02,
            search_border: 0.05,
        };
        let comps = hogbom_clean(&mut dirty, &psf, &params);
        let near = |cx: usize, cy: usize| {
            comps
                .iter()
                .filter(|c| c.x.abs_diff(cx) <= 1 && c.y.abs_diff(cy) <= 1)
                .map(|c| c.flux as f64)
                .sum::<f64>()
        };
        assert!(
            (near(16, 16) - 2.0).abs() < 0.25,
            "source A {}",
            near(16, 16)
        );
        assert!(
            (near(48, 50) - 1.0).abs() < 0.25,
            "source B {}",
            near(48, 50)
        );
    }

    #[test]
    fn threshold_stops_early() {
        let psf = synthetic_psf(32);
        let mut dirty = Image::new(32);
        add_source(&mut dirty, &psf, 10, 10, 1.0);
        let params = CleanParams {
            gain: 0.5,
            max_iterations: 1000,
            threshold: 0.5,
            search_border: 0.05,
        };
        let comps = hogbom_clean(&mut dirty, &psf, &params);
        assert!(comps.len() <= 2, "stops once peak < threshold");
        assert!(dirty.peak().2.abs() <= 0.5);
    }

    #[test]
    fn max_iterations_bounds_work() {
        let psf = synthetic_psf(32);
        let mut dirty = Image::new(32);
        add_source(&mut dirty, &psf, 10, 10, 1.0);
        let params = CleanParams {
            gain: 0.01,
            max_iterations: 7,
            threshold: 0.0,
            search_border: 0.05,
        };
        let before = dirty.peak().2;
        let comps = hogbom_clean(&mut dirty, &psf, &params);
        // components merge per pixel, so count ≤ iterations
        assert!(total_component_flux(&comps) > 0.0);
        assert!(comps.len() <= 7);
        assert!(dirty.peak().2 < before);
    }

    #[test]
    fn negative_peaks_are_cleaned_too() {
        let psf = synthetic_psf(32);
        let mut dirty = Image::new(32);
        add_source(&mut dirty, &psf, 12, 20, -2.0);
        let params = CleanParams {
            gain: 0.2,
            max_iterations: 300,
            threshold: 0.05,
            search_border: 0.05,
        };
        let comps = hogbom_clean(&mut dirty, &psf, &params);
        let flux = total_component_flux(&comps);
        assert!((flux + 2.0).abs() < 0.2, "negative flux recovered: {flux}");
    }

    #[test]
    fn empty_image_yields_no_components() {
        let psf = synthetic_psf(16);
        let mut dirty = Image::new(16);
        let comps = hogbom_clean(&mut dirty, &psf, &CleanParams::default());
        assert!(comps.is_empty());
    }

    #[test]
    fn components_to_image_round_trip() {
        let comps = vec![
            CleanComponent {
                x: 3,
                y: 4,
                flux: 1.5,
            },
            CleanComponent {
                x: 3,
                y: 4,
                flux: 0.5,
            },
            CleanComponent {
                x: 7,
                y: 1,
                flux: -1.0,
            },
        ];
        let img = components_to_image(&comps, 16);
        assert_eq!(img.at(4, 3), 2.0);
        assert_eq!(img.at(1, 7), -1.0);
        assert_eq!(img.at(0, 0), 0.0);
    }
}
