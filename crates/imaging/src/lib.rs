//! # idg-imaging — the imaging cycle around the gridder
//!
//! The paper benchmarks "one full imaging cycle" (Fig. 2/Fig. 9): grid →
//! inverse FFT → CLEAN → FFT → degrid. This crate provides that cycle on
//! top of the `idg` proxy:
//!
//! * [`image`] — grid ⇄ image conversions with taper (grid) correction
//!   and flux normalization, plus PSF synthesis;
//! * [`clean`] — Högbom CLEAN minor cycles (the "variant of the CLEAN
//!   algorithm" of Sec. II);
//! * [`cycle`] — the major cycle: image the residual visibilities,
//!   extract components, predict them via degridding, subtract, repeat
//!   until the sky model converges.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clean;
pub mod cycle;
pub mod image;
pub mod mfs;
pub mod wstack;

pub use clean::{hogbom_clean, CleanComponent, CleanParams};
pub use cycle::{ImagingCycle, MajorCycleReport};
pub use image::{beam_weight_image, dirty_image, model_grid_from_image, psf_image, Image};
pub use mfs::{mfs_dirty_image, MfsReport, Subband};
pub use wstack::{wstack_dirty_image, WStackReport};
