//! Multi-subband (multi-frequency synthesis) imaging.
//!
//! The imaging step of Fig. 2 runs *per subband* ("the measured
//! visibilities are processed independently for different spectral
//! frequency ranges (so called subbands)"). Each subband grids into its
//! own uv-grid (whose wavelength scaling differs), and the per-subband
//! images are combined weighted by their visibility counts — classic
//! multi-frequency synthesis, which also improves uv-coverage because
//! every baseline samples a different |uv| per subband.

use crate::image::{dirty_image_planes, finalize_dirty, Image};
use idg::telescope::ATerms;
use idg::{ExecutionReport, IdgError, Plan, Proxy, Uvw, Visibility};

/// One subband's inputs: its own proxy/plan (per-subband frequencies)
/// plus data buffers.
pub struct Subband<'a> {
    /// Proxy configured with this subband's observation parameters.
    pub proxy: &'a Proxy,
    /// Plan for this subband's uvw sampling.
    pub plan: &'a Plan,
    /// uvw coordinates (meters).
    pub uvw: &'a [Uvw],
    /// Visibilities of this subband.
    pub visibilities: &'a [Visibility<f32>],
    /// A-terms of this subband.
    pub aterms: &'a ATerms,
}

/// Outcome of a multi-subband imaging pass.
#[derive(Clone, Debug)]
pub struct MfsReport {
    /// Number of subbands combined.
    pub nr_subbands: usize,
    /// Per-subband gridding reports.
    pub reports: Vec<ExecutionReport>,
    /// Total visibilities imaged.
    pub total_weight: usize,
}

/// Grid each subband independently and combine the images with
/// visibility-count weighting.
///
/// All subbands must share the grid geometry (`grid_size`,
/// `image_size`); frequencies may differ arbitrarily.
pub fn mfs_dirty_image(subbands: &[Subband<'_>]) -> Result<(Image, MfsReport), IdgError> {
    assert!(!subbands.is_empty(), "at least one subband");
    let obs0 = subbands[0].proxy.observation();
    let size = obs0.grid_size;

    let mut acc = vec![0.0f32; size * size];
    let mut reports = Vec::new();
    let mut total_weight = 0usize;

    for sb in subbands {
        let obs = sb.proxy.observation();
        assert_eq!(obs.grid_size, size, "subbands must share the grid size");
        assert!(
            (obs.image_size - obs0.image_size).abs() < 1e-12,
            "subbands must share the field of view"
        );
        let (grid, report) = sb.proxy.grid(sb.plan, sb.uvw, sb.visibilities, sb.aterms)?;
        reports.push(report);
        total_weight += sb.plan.nr_gridded_visibilities();

        let (xx, yy) = dirty_image_planes(&grid);
        for i in 0..size * size {
            acc[i] += 0.5 * (xx[i].re + yy[i].re);
        }
    }

    let image = finalize_dirty(acc, obs0, total_weight);
    Ok((
        image,
        MfsReport {
            nr_subbands: subbands.len(),
            reports,
            total_weight,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg::telescope::{Dataset, IdentityATerm, Layout, PointSource, SkyModel};
    use idg::types::Observation;
    use idg::Backend;

    fn obs_with_band(start: f64, nr_chan: usize) -> Observation {
        Observation::builder()
            .stations(8)
            .timesteps(48)
            .channels(nr_chan, start, 2e6)
            .grid_size(256)
            .subgrid_size(16)
            .kernel_size(5)
            .aterm_interval(24)
            .image_size(0.05)
            .build()
            .unwrap()
    }

    #[test]
    fn two_subbands_combine_into_one_image() {
        let sky = SkyModel {
            sources: vec![PointSource {
                l: 0.006,
                m: -0.004,
                flux: 2.5,
            }],
        };
        let layout = Layout::uniform(8, 1200.0, 801);

        // two adjacent 4-channel subbands
        let ds1 = Dataset::simulate(
            obs_with_band(150e6, 4),
            &layout,
            sky.clone(),
            &IdentityATerm,
        );
        let ds2 = Dataset::simulate(
            obs_with_band(158e6, 4),
            &layout,
            sky.clone(),
            &IdentityATerm,
        );

        let p1 = Proxy::new(Backend::CpuOptimized, ds1.obs.clone()).unwrap();
        let p2 = Proxy::new(Backend::CpuOptimized, ds2.obs.clone()).unwrap();
        let plan1 = p1.plan(&ds1.uvw).unwrap();
        let plan2 = p2.plan(&ds2.uvw).unwrap();

        let subbands = [
            Subband {
                proxy: &p1,
                plan: &plan1,
                uvw: &ds1.uvw,
                visibilities: &ds1.visibilities,
                aterms: &ds1.aterms,
            },
            Subband {
                proxy: &p2,
                plan: &plan2,
                uvw: &ds2.uvw,
                visibilities: &ds2.visibilities,
                aterms: &ds2.aterms,
            },
        ];
        let (image, report) = mfs_dirty_image(&subbands).unwrap();
        assert_eq!(report.nr_subbands, 2);
        assert_eq!(
            report.total_weight,
            plan1.nr_gridded_visibilities() + plan2.nr_gridded_visibilities()
        );

        let (px, py, peak) = image.peak();
        let ex = Image::lm_to_pixel(&ds1.obs, 0.006);
        let ey = Image::lm_to_pixel(&ds1.obs, -0.004);
        assert!(px.abs_diff(ex) <= 1 && py.abs_diff(ey) <= 1);
        assert!(
            (peak - 2.5).abs() < 0.15,
            "flux preserved across subbands: {peak}"
        );
    }

    #[test]
    fn mfs_of_one_subband_equals_plain_imaging() {
        let sky = SkyModel::single_center(1.5);
        let layout = Layout::uniform(8, 1000.0, 802);
        let ds = Dataset::simulate(obs_with_band(150e6, 4), &layout, sky, &IdentityATerm);
        let proxy = Proxy::new(Backend::CpuOptimized, ds.obs.clone()).unwrap();
        let plan = proxy.plan(&ds.uvw).unwrap();

        let (mfs_img, _) = mfs_dirty_image(&[Subband {
            proxy: &proxy,
            plan: &plan,
            uvw: &ds.uvw,
            visibilities: &ds.visibilities,
            aterms: &ds.aterms,
        }])
        .unwrap();

        let (grid, _) = proxy
            .grid(&plan, &ds.uvw, &ds.visibilities, &ds.aterms)
            .unwrap();
        let plain = crate::image::dirty_image(&grid, &ds.obs, plan.nr_gridded_visibilities());
        for (a, b) in mfs_img.as_slice().iter().zip(plain.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "share the grid size")]
    fn mismatched_grids_panic() {
        let layout = Layout::uniform(8, 1000.0, 803);
        let ds1 = Dataset::simulate(
            obs_with_band(150e6, 2),
            &layout,
            SkyModel::empty(),
            &IdentityATerm,
        );
        let mut obs2 = obs_with_band(160e6, 2);
        obs2.grid_size = 128;
        let ds2 = Dataset::simulate(obs2, &layout, SkyModel::empty(), &IdentityATerm);

        let p1 = Proxy::new(Backend::CpuOptimized, ds1.obs.clone()).unwrap();
        let p2 = Proxy::new(Backend::CpuOptimized, ds2.obs.clone()).unwrap();
        let plan1 = p1.plan(&ds1.uvw).unwrap();
        let plan2 = p2.plan(&ds2.uvw).unwrap();
        let _ = mfs_dirty_image(&[
            Subband {
                proxy: &p1,
                plan: &plan1,
                uvw: &ds1.uvw,
                visibilities: &ds1.visibilities,
                aterms: &ds1.aterms,
            },
            Subband {
                proxy: &p2,
                plan: &plan2,
                uvw: &ds2.uvw,
                visibilities: &ds2.visibilities,
                aterms: &ds2.aterms,
            },
        ]);
    }
}
