//! # idg-stream — chunked ingestion and concurrent pass scheduling
//!
//! The paper's proxy consumes a whole observation in one shot; a
//! serving system cannot. This crate is the streaming front-end that
//! sits between an arriving visibility stream and the batch pipeline:
//!
//! - [`ChunkPolicy`] / [`ChunkedDataset`] partition the observation's
//!   time axis into bounded chunks. Chunk boundaries snap to
//!   `aterm_interval` multiples, because the planner's greedy
//!   accumulation never crosses an A-term boundary — so a chunk-local
//!   plan started on one reproduces exactly the work items the
//!   one-shot plan emits there (see [`idg_plan::Plan::create_windowed`]).
//! - [`StreamScheduler::run_stream`] drives the chunks through a
//!   bounded submission queue with backpressure: the producer admits
//!   at most `max_inflight` un-completed chunks, worker threads
//!   execute them concurrently, and every chunk's result lands in its
//!   own slot exactly once, whatever order completions arrive in.
//!
//! The scheduler is deliberately generic over the per-chunk pass
//! (`Fn(&Chunk) -> Result<T, IdgError>`): the proxy plugs in CPU
//! kernels, the single-device GPU executor, or the fleet without this
//! crate depending on any of them. Bit-identity of the streamed grid
//! is then the *caller's* obligation — commit every chunk's subgrids
//! in the one-shot plan order after the stream drains (see
//! `Proxy::grid_streamed` in `idg`), never by summing per-chunk grids
//! (f32 addition is order-sensitive and `0.0 + (-0.0)` even flips a
//! sign bit).
//!
//! Both backpressure metrics are deterministic by construction, so
//! same-seed soak runs snapshot byte-identically:
//! `backpressure_waits` counts *window-constrained admissions* (chunk
//! `k` with `k ≥ max_inflight` must wait for completion `k −
//! max_inflight`, whether or not the wait blocks), which is
//! `max(0, nr_chunks − max_inflight)`; `passes_inflight_max` is
//! pinned at `min(max_inflight, nr_chunks)` because workers only
//! start once the admission window is pre-filled.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use idg_plan::{Plan, UvExtents};
use idg_sync::{thread, Condvar, Mutex};
use idg_types::{IdgError, Observation, Uvw};
use std::collections::VecDeque;
use std::ops::Range;

/// How to bound one ingestion chunk along the time axis.
///
/// Both limits apply together: a chunk covers at most
/// `max_timesteps` time steps *and* at most `max_visibilities`
/// visibilities (each time step carries `nr_baselines × nr_channels`
/// of them). The resulting stride additionally snaps **up** to a
/// whole number of A-term intervals so chunk-local plans stay
/// bit-compatible with the one-shot plan; a policy tighter than one
/// interval therefore still yields `aterm_interval`-sized chunks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChunkPolicy {
    /// Maximum time steps per chunk (before A-term snapping).
    pub max_timesteps: usize,
    /// Maximum visibilities per chunk (before A-term snapping).
    pub max_visibilities: usize,
}

impl ChunkPolicy {
    /// A policy bounded by time steps only.
    pub fn by_timesteps(max_timesteps: usize) -> Self {
        Self {
            max_timesteps,
            max_visibilities: usize::MAX,
        }
    }

    /// A policy bounded by visibility count only.
    pub fn by_visibilities(max_visibilities: usize) -> Self {
        Self {
            max_timesteps: usize::MAX,
            max_visibilities,
        }
    }

    /// Reject zero-sized chunk bounds (either limit at zero would
    /// admit no data at all and stall the stream forever).
    pub fn validate(&self) -> Result<(), IdgError> {
        if self.max_timesteps == 0 {
            return Err(IdgError::InvalidParameter(
                "chunk policy: max_timesteps must be positive".into(),
            ));
        }
        if self.max_visibilities == 0 {
            return Err(IdgError::InvalidParameter(
                "chunk policy: max_visibilities must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// One bounded slice of the observation's time axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// Position in ingestion order (0-based).
    pub index: usize,
    /// Global time-step range `[start, end)` this chunk covers.
    pub time_range: Range<usize>,
}

impl Chunk {
    /// Number of time steps covered.
    pub fn nr_timesteps(&self) -> usize {
        self.time_range.end - self.time_range.start
    }
}

/// The observation's time axis split into policy-bounded,
/// A-term-aligned chunks: a lossless, order-preserving,
/// non-overlapping cover of `0..nr_timesteps`.
#[derive(Clone, Debug)]
pub struct ChunkedDataset {
    chunks: Vec<Chunk>,
}

impl ChunkedDataset {
    /// Split `obs` under `policy`. The stride is the largest multiple
    /// of `aterm_interval` within the policy bounds (at least one
    /// interval); the final chunk keeps whatever remainder is left.
    pub fn split(obs: &Observation, policy: &ChunkPolicy) -> Result<ChunkedDataset, IdgError> {
        policy.validate()?;
        let chunks = chunk_observation(obs, policy)?;
        Ok(ChunkedDataset { chunks })
    }

    /// The chunks, in ingestion (time) order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the observation produced no chunks (zero time steps).
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }
}

/// Compute the policy-bounded, A-term-aligned chunk cover of the
/// observation's time axis (the work behind [`ChunkedDataset::split`]).
pub fn chunk_observation(obs: &Observation, policy: &ChunkPolicy) -> Result<Vec<Chunk>, IdgError> {
    policy.validate()?;
    let nr_time = obs.nr_timesteps;
    let vis_per_timestep = obs.nr_baselines() * obs.nr_channels();
    let by_vis = policy
        .max_visibilities
        .checked_div(vis_per_timestep)
        .unwrap_or(usize::MAX);
    let bound = policy.max_timesteps.min(by_vis).max(1);
    // snap the stride UP to whole A-term intervals: chunk-local plans
    // must start on the boundaries the one-shot planner breaks on
    let aterm = obs.aterm_interval.max(1);
    let stride = if bound < aterm {
        aterm
    } else {
        (bound / aterm) * aterm
    };
    let mut chunks = Vec::new();
    let mut t = 0usize;
    while t < nr_time {
        let end = (t + stride).min(nr_time);
        chunks.push(Chunk {
            index: chunks.len(),
            time_range: t..end,
        });
        t = end;
    }
    Ok(chunks)
}

/// Plan one chunk against the shared whole-observation uv extents —
/// the chunk-local planning entry point the streaming workers call.
/// Thin delegation to [`Plan::create_windowed`]; `uvw` is the full
/// buffer and the returned items carry global time offsets.
pub fn plan_chunk(
    obs: &Observation,
    uvw: &[Uvw],
    extents: &UvExtents,
    chunk: &Chunk,
) -> Result<Plan, IdgError> {
    Plan::create_windowed(obs, uvw, extents, chunk.time_range.clone())
}

/// Which data direction a streamed pass moved through the pipeline.
///
/// The scheduler itself is direction-agnostic — it drives opaque
/// per-chunk passes — so [`StreamScheduler::run_stream`] tags its
/// stats [`StreamDirection::Gridding`] and the degrid caller retags
/// them before publishing the report.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StreamDirection {
    /// Visibilities → grid (`Proxy::grid_streamed`).
    Gridding,
    /// Model grid → predicted visibilities (`Proxy::degrid_streamed`).
    Degridding,
}

impl StreamDirection {
    /// Human-readable pass label.
    pub fn label(&self) -> &'static str {
        match self {
            StreamDirection::Gridding => "gridding",
            StreamDirection::Degridding => "degridding",
        }
    }
}

/// Summary of one streamed pass, carried in
/// `ExecutionReport::stream`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamStats {
    /// Data direction of the streamed pass.
    pub direction: StreamDirection,
    /// Chunks the splitter produced (and the scheduler ingested).
    pub nr_chunks: usize,
    /// Worker threads the scheduler ran.
    pub nr_workers: usize,
    /// Admission-window bound (backpressure threshold).
    pub max_inflight: usize,
    /// Peak admitted-but-uncompleted chunks observed
    /// (`min(max_inflight, nr_chunks)` by construction).
    pub inflight_max: usize,
    /// Window-constrained admissions (`max(0, nr_chunks −
    /// max_inflight)` by construction).
    pub backpressure_waits: u64,
    /// Chunks whose pass returned `Ok`.
    pub completed_chunks: usize,
    /// Chunks whose pass returned `Err`.
    pub failed_chunks: usize,
}

/// Everything one [`StreamScheduler::run_stream`] call produced:
/// per-chunk results in chunk order, plus the scheduling stats.
#[derive(Debug)]
pub struct StreamRun<T> {
    /// `results[i]` is chunk `i`'s pass outcome — exactly one per
    /// chunk, whatever order the workers finished in.
    pub results: Vec<Result<T, IdgError>>,
    /// Scheduling summary.
    pub stats: StreamStats,
}

/// Bounded concurrent pass scheduler: a producer admits chunks into a
/// queue capped at `max_inflight`, `workers` threads drain it.
#[derive(Copy, Clone, Debug)]
pub struct StreamScheduler {
    workers: usize,
    max_inflight: usize,
}

/// Producer/worker shared state behind the scheduler's mutex.
struct SchedState {
    queue: VecDeque<usize>,
    admitted: usize,
    completed: usize,
    inflight_max: usize,
    waits: u64,
    /// Workers hold off until the admission window is pre-filled, so
    /// the observed `inflight_max` is deterministic.
    started: bool,
    producer_done: bool,
}

impl StreamScheduler {
    /// A scheduler with `workers` threads and an admission window of
    /// `max_inflight` chunks. Both must be positive.
    pub fn new(workers: usize, max_inflight: usize) -> Result<StreamScheduler, IdgError> {
        if workers == 0 {
            return Err(IdgError::InvalidParameter(
                "stream scheduler: workers must be positive".into(),
            ));
        }
        if max_inflight == 0 {
            return Err(IdgError::InvalidParameter(
                "stream scheduler: max_inflight must be positive".into(),
            ));
        }
        Ok(StreamScheduler {
            workers,
            max_inflight,
        })
    }

    /// Worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Admission-window bound.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Drive every chunk through `exec` across the worker pool, under
    /// the bounded admission window.
    ///
    /// The calling thread is the producer: it admits chunk `k` only
    /// once fewer than `max_inflight` admitted chunks remain
    /// uncompleted, counting each window-constrained admission in
    /// `backpressure_waits`. Results are delivered exactly once per
    /// chunk, in per-chunk slots — completion order never reorders
    /// them. A chunk whose pass fails does not abort the stream; its
    /// error is returned in its slot.
    pub fn run_stream<T, F>(&self, chunks: &[Chunk], exec: F) -> Result<StreamRun<T>, IdgError>
    where
        T: Send,
        F: Fn(&Chunk) -> Result<T, IdgError> + Sync,
    {
        let n = chunks.len();
        let cap = self.max_inflight;
        let prefill = cap.min(n);
        idg_obs::add_chunks_ingested(n as u64);

        let state = Mutex::new(SchedState {
            queue: VecDeque::new(),
            admitted: 0,
            completed: 0,
            inflight_max: 0,
            waits: 0,
            started: n == 0,
            producer_done: false,
        });
        let cond_work = Condvar::new();
        let cond_space = Condvar::new();
        let slots: Vec<Mutex<Option<Result<T, IdgError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    let job = {
                        let mut st = state.lock();
                        loop {
                            if st.started {
                                if let Some(j) = st.queue.pop_front() {
                                    break Some(j);
                                }
                                if st.producer_done {
                                    break None;
                                }
                            }
                            st = cond_work.wait(st);
                        }
                    };
                    let Some(job) = job else { return };
                    let out = {
                        let _span = idg_obs::wall_span("chunk", "stage", u32::try_from(job).ok());
                        exec(&chunks[job])
                    };
                    *slots[job].lock() = Some(out);
                    let mut st = state.lock();
                    st.completed += 1;
                    cond_space.notify_all();
                });
            }

            // producer: bounded-window admission on the calling thread
            for k in 0..n {
                let mut st = state.lock();
                if k >= cap {
                    st.waits += 1;
                    while st.completed + cap < k + 1 {
                        st = cond_space.wait(st);
                    }
                }
                st.queue.push_back(k);
                st.admitted = k + 1;
                let inflight = st.admitted - st.completed;
                st.inflight_max = st.inflight_max.max(inflight);
                if st.admitted == prefill {
                    st.started = true;
                }
                if st.started {
                    cond_work.notify_all();
                }
            }
            let mut st = state.lock();
            st.producer_done = true;
            cond_work.notify_all();
        });

        let (inflight_max, waits) = {
            let st = state.lock();
            (st.inflight_max, st.waits)
        };
        idg_obs::record_passes_inflight(inflight_max as u64);
        idg_obs::add_backpressure_waits(waits);

        let mut results = Vec::with_capacity(n);
        for slot in slots {
            let out = slot.into_inner().unwrap_or_else(|| {
                Err(IdgError::Internal(
                    "stream scheduler lost a chunk result".into(),
                ))
            });
            results.push(out);
        }
        let completed_chunks = results.iter().filter(|r| r.is_ok()).count();
        Ok(StreamRun {
            stats: StreamStats {
                // the scheduler cannot see the pass direction; degrid
                // callers retag before publishing (see StreamDirection)
                direction: StreamDirection::Gridding,
                nr_chunks: n,
                nr_workers: self.workers,
                max_inflight: cap,
                inflight_max,
                backpressure_waits: waits,
                completed_chunks,
                failed_chunks: n - completed_chunks,
            },
            results,
        })
    }
}

/// Exactly-once commit bookkeeping for the join phase of a streamed
/// pass: after the scheduler drains, the caller commits each chunk's
/// deferred output into the shared result exactly once, in chunk
/// order. The ledger turns any violation of that discipline — a chunk
/// committed twice, an unknown chunk index, or a chunk never
/// committed at all — into a typed [`IdgError::Internal`], which the
/// model-check suite relies on to catch a seeded double-commit mutant
/// on every interleaving.
///
/// Plain data with no interior synchronization: the production commit
/// loop runs single-threaded after the stream joins, and the model
/// tests wrap it in an `idg_sync` mutex where they need to share it.
#[derive(Clone, Debug)]
pub struct CommitLedger {
    committed: Vec<bool>,
}

impl CommitLedger {
    /// A ledger expecting exactly one commit for each of `nr_chunks`.
    pub fn new(nr_chunks: usize) -> CommitLedger {
        CommitLedger {
            committed: vec![false; nr_chunks],
        }
    }

    /// Record chunk `chunk`'s commit; rejects a second commit of the
    /// same chunk and indices beyond the ledger.
    pub fn commit(&mut self, chunk: usize) -> Result<(), IdgError> {
        let n = self.committed.len();
        match self.committed.get_mut(chunk) {
            None => Err(IdgError::Internal(format!(
                "commit ledger: chunk {chunk} out of range ({n} chunks)"
            ))),
            Some(slot) if *slot => Err(IdgError::Internal(format!(
                "commit ledger: chunk {chunk} committed twice"
            ))),
            Some(slot) => {
                *slot = true;
                Ok(())
            }
        }
    }

    /// Check that every chunk was committed.
    pub fn finish(&self) -> Result<(), IdgError> {
        match self.committed.iter().position(|c| !c) {
            Some(chunk) => Err(IdgError::Internal(format!(
                "commit ledger: chunk {chunk} was never committed"
            ))),
            None => Ok(()),
        }
    }
}

/// Seeded concurrency mutant, compiled only for model-check builds and
/// never part of the public API: [`StreamScheduler::run_stream`] with
/// the worker's predicate re-check loop around `Condvar::wait`
/// collapsed to a single unguarded wait — the exact shape lint L6
/// sub-rule (a) bans. A worker that reaches the wait after the
/// producer's notifications have already fired parks forever while the
/// producer parks on backpressure behind it; the model-check
/// regression suite proves the explorer reports this schedule as a
/// lost wakeup, demonstrating the static rule and the dynamic checker
/// guard the same invariant.
#[cfg(idg_model_check)]
impl StreamScheduler {
    #[doc(hidden)]
    pub fn run_stream_unguarded_wait_mutant<T, F>(
        &self,
        chunks: &[Chunk],
        exec: F,
    ) -> Result<StreamRun<T>, IdgError>
    where
        T: Send,
        F: Fn(&Chunk) -> Result<T, IdgError> + Sync,
    {
        let n = chunks.len();
        let cap = self.max_inflight;
        let prefill = cap.min(n);

        let state = Mutex::new(SchedState {
            queue: VecDeque::new(),
            admitted: 0,
            completed: 0,
            inflight_max: 0,
            waits: 0,
            started: n == 0,
            producer_done: false,
        });
        let cond_work = Condvar::new();
        let cond_space = Condvar::new();
        let slots: Vec<Mutex<Option<Result<T, IdgError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    let job = {
                        let mut st = state.lock();
                        // MUTANT: the re-check loop is gone — wait
                        // first, check once. A notification sent
                        // before this wait began is lost for good.
                        st = cond_work.wait(st);
                        if st.started {
                            st.queue.pop_front()
                        } else {
                            None
                        }
                    };
                    let Some(job) = job else { return };
                    let out = exec(&chunks[job]);
                    *slots[job].lock() = Some(out);
                    let mut st = state.lock();
                    st.completed += 1;
                    cond_space.notify_all();
                });
            }

            for k in 0..n {
                let mut st = state.lock();
                if k >= cap {
                    st.waits += 1;
                    while st.completed + cap < k + 1 {
                        st = cond_space.wait(st);
                    }
                }
                st.queue.push_back(k);
                st.admitted = k + 1;
                let inflight = st.admitted - st.completed;
                st.inflight_max = st.inflight_max.max(inflight);
                if st.admitted == prefill {
                    st.started = true;
                }
                if st.started {
                    cond_work.notify_all();
                }
            }
            let mut st = state.lock();
            st.producer_done = true;
            cond_work.notify_all();
        });

        let (inflight_max, waits) = {
            let st = state.lock();
            (st.inflight_max, st.waits)
        };
        let mut results = Vec::with_capacity(n);
        for slot in slots {
            let out = slot.into_inner().unwrap_or_else(|| {
                Err(IdgError::Internal(
                    "stream scheduler lost a chunk result".into(),
                ))
            });
            results.push(out);
        }
        let completed_chunks = results.iter().filter(|r| r.is_ok()).count();
        Ok(StreamRun {
            stats: StreamStats {
                direction: StreamDirection::Gridding,
                nr_chunks: n,
                nr_workers: self.workers,
                max_inflight: cap,
                inflight_max,
                backpressure_waits: waits,
                completed_chunks,
                failed_chunks: n - completed_chunks,
            },
            results,
        })
    }

    /// Seeded delivery mutant for the degrid direction: identical to
    /// [`StreamScheduler::run_stream`], except the first worker to
    /// finish chunk 0 re-enqueues it once, so the chunk's pass — and
    /// therefore the caller's commit — runs twice. A commit loop
    /// guarded by a [`CommitLedger`] must reject the redelivery on
    /// every schedule; the model-check regression suite proves the
    /// explorer reports it (as a panic from the ledger's typed error)
    /// and replays the failing schedule byte-identically.
    #[doc(hidden)]
    pub fn run_stream_double_commit_mutant<T, F>(
        &self,
        chunks: &[Chunk],
        exec: F,
    ) -> Result<StreamRun<T>, IdgError>
    where
        T: Send,
        F: Fn(&Chunk) -> Result<T, IdgError> + Sync,
    {
        let n = chunks.len();
        let cap = self.max_inflight;
        let prefill = cap.min(n);

        let state = Mutex::new(SchedState {
            queue: VecDeque::new(),
            admitted: 0,
            completed: 0,
            inflight_max: 0,
            waits: 0,
            started: n == 0,
            producer_done: false,
        });
        let cond_work = Condvar::new();
        let cond_space = Condvar::new();
        let redelivered = Mutex::new(false);
        let slots: Vec<Mutex<Option<Result<T, IdgError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| loop {
                    let job = {
                        let mut st = state.lock();
                        loop {
                            if st.started {
                                if let Some(j) = st.queue.pop_front() {
                                    break Some(j);
                                }
                                if st.producer_done {
                                    break None;
                                }
                            }
                            st = cond_work.wait(st);
                        }
                    };
                    let Some(job) = job else { return };
                    let out = exec(&chunks[job]);
                    *slots[job].lock() = Some(out);
                    let mut st = state.lock();
                    st.completed += 1;
                    // MUTANT: chunk 0 is fed back into the queue once
                    // after its first completion — a duplicate
                    // delivery the exactly-once commit must reject.
                    if job == 0 {
                        let mut seen = redelivered.lock();
                        if !*seen {
                            *seen = true;
                            st.queue.push_back(0);
                            cond_work.notify_all();
                        }
                    }
                    cond_space.notify_all();
                });
            }

            for k in 0..n {
                let mut st = state.lock();
                if k >= cap {
                    st.waits += 1;
                    while st.completed + cap < k + 1 {
                        st = cond_space.wait(st);
                    }
                }
                st.queue.push_back(k);
                st.admitted = k + 1;
                let inflight = st.admitted - st.completed;
                st.inflight_max = st.inflight_max.max(inflight);
                if st.admitted == prefill {
                    st.started = true;
                }
                if st.started {
                    cond_work.notify_all();
                }
            }
            let mut st = state.lock();
            st.producer_done = true;
            cond_work.notify_all();
        });

        let (inflight_max, waits) = {
            let st = state.lock();
            (st.inflight_max, st.waits)
        };
        let mut results = Vec::with_capacity(n);
        for slot in slots {
            let out = slot.into_inner().unwrap_or_else(|| {
                Err(IdgError::Internal(
                    "stream scheduler lost a chunk result".into(),
                ))
            });
            results.push(out);
        }
        let completed_chunks = results.iter().filter(|r| r.is_ok()).count();
        Ok(StreamRun {
            stats: StreamStats {
                direction: StreamDirection::Gridding,
                nr_chunks: n,
                nr_workers: self.workers,
                max_inflight: cap,
                inflight_max,
                backpressure_waits: waits,
                completed_chunks,
                failed_chunks: n - completed_chunks,
            },
            results,
        })
    }
}
