//! Exhaustive schedule exploration of the stream scheduler (DESIGN.md
//! §13): every interleaving up to the bound must deliver each chunk's
//! result exactly once, produce the closed-form backpressure metrics,
//! and never deadlock — and the seeded unguarded-wait mutant must be
//! caught as a lost wakeup with a byte-identically replayable
//! schedule.
//!
//! Compiled only under `RUSTFLAGS="--cfg idg_model_check"`, where the
//! `idg-sync` facade routes the scheduler's mutex/condvars/scope
//! through the `idg-mc` cooperative scheduler; in normal builds this
//! file is an empty test binary.

#![cfg(idg_model_check)]

use idg_mc::{Config, Explorer, FailureKind};
use idg_stream::{Chunk, CommitLedger, StreamScheduler};
use idg_types::IdgError;

fn chunks(n: usize) -> Vec<Chunk> {
    (0..n)
        .map(|index| Chunk {
            index,
            time_range: index..index + 1,
        })
        .collect()
}

fn explorer(cfg: Config) -> Explorer {
    Explorer::new(cfg).expect("valid config")
}

/// Drive one scheduler shape under the model and assert the full
/// contract: exactly-once ordered delivery plus the closed-form
/// metrics (`backpressure_waits = max(0, n − cap)`, `inflight_max =
/// min(cap, n)`).
fn assert_schedule_contract(workers: usize, cap: usize, n: usize) {
    let report = explorer(Config::default()).explore(move || {
        let sched = StreamScheduler::new(workers, cap).expect("valid scheduler");
        let cs = chunks(n);
        let run = sched
            .run_stream(&cs, |c| Ok(c.index * 10))
            .expect("stream runs");
        assert_eq!(run.results.len(), n, "one slot per chunk");
        for (i, r) in run.results.iter().enumerate() {
            assert_eq!(
                *r.as_ref().expect("chunk pass succeeded"),
                i * 10,
                "slot {i} must hold chunk {i}'s result"
            );
        }
        assert_eq!(
            run.stats.backpressure_waits,
            n.saturating_sub(cap) as u64,
            "window-constrained admissions are closed-form"
        );
        assert_eq!(
            run.stats.inflight_max,
            cap.min(n),
            "pre-filled window pins the in-flight peak"
        );
        assert_eq!(run.stats.completed_chunks, n);
        assert_eq!(run.stats.failed_chunks, 0);
    });
    assert!(
        report.proved(),
        "scheduler (workers={workers}, cap={cap}, n={n}) must prove under the bound: {report:?}"
    );
}

#[test]
fn exactly_once_and_metrics_single_worker() {
    assert_schedule_contract(1, 1, 2);
}

#[test]
fn exactly_once_and_metrics_two_workers() {
    assert_schedule_contract(2, 2, 3);
}

#[test]
fn exactly_once_and_metrics_backpressured() {
    // cap < n forces the producer through the cond_space wait path.
    assert_schedule_contract(2, 1, 3);
}

#[test]
fn failed_chunk_does_not_abort_the_stream() {
    let report = explorer(Config::default()).explore(|| {
        let sched = StreamScheduler::new(2, 2).expect("valid scheduler");
        let cs = chunks(3);
        let run = sched
            .run_stream(&cs, |c| {
                if c.index == 1 {
                    Err(IdgError::Internal("injected".into()))
                } else {
                    Ok(c.index)
                }
            })
            .expect("stream runs");
        assert!(run.results[0].is_ok() && run.results[2].is_ok());
        assert!(run.results[1].is_err(), "failure stays in its own slot");
        assert_eq!(run.stats.completed_chunks, 2);
        assert_eq!(run.stats.failed_chunks, 1);
    });
    assert!(report.proved(), "report: {report:?}");
}

#[test]
fn unguarded_wait_mutant_is_caught_as_lost_wakeup() {
    let body = || {
        let sched = StreamScheduler::new(1, 1).expect("valid scheduler");
        let cs = chunks(1);
        let _ = sched.run_stream_unguarded_wait_mutant(&cs, |c| Ok(c.index));
    };
    let report = explorer(Config::default()).explore(body);
    let failure = report
        .failure
        .expect("the unguarded wait must lose a wakeup on some schedule");
    assert_eq!(
        failure.kind,
        FailureKind::LostWakeup,
        "failure must be classified as a lost wakeup: {failure}"
    );

    // The failing schedule replays byte-identically — the debugging
    // contract for any failure the explorer ever reports.
    let replayed = explorer(Config::default())
        .replay(&failure.schedule, body)
        .expect("recorded schedule parses")
        .failure
        .expect("replay reproduces the failure");
    assert_eq!(failure, replayed);
}

/// The streamed-degrid commit discipline: each visibility chunk is
/// committed into the shared ledger exactly once, under **every**
/// interleaving at the preemption bound. The ledger is the same
/// plain-data `CommitLedger` the proxy's degrid aggregation loop uses
/// (single-threaded there; shared behind an `idg_sync` mutex here so
/// the workers themselves commit, which is the harder discipline).
#[test]
fn degrid_chunk_commit_is_exactly_once_under_every_interleaving() {
    let report = explorer(Config::default()).explore(|| {
        let sched = StreamScheduler::new(2, 2).expect("valid scheduler");
        let cs = chunks(3);
        let ledger = idg_sync::Mutex::new(CommitLedger::new(3));
        let run = sched
            .run_stream(&cs, |c| {
                ledger.lock().commit(c.index)?;
                Ok(c.index)
            })
            .expect("stream runs");
        assert_eq!(run.stats.completed_chunks, 3);
        assert_eq!(run.stats.failed_chunks, 0);
        ledger
            .into_inner()
            .finish()
            .expect("every visibility chunk committed exactly once");
    });
    assert!(
        report.proved(),
        "degrid commit discipline must prove under the bound: {report:?}"
    );
}

/// The seeded double-commit mutant redelivers chunk 0 to the worker
/// pool once; with the ledger enforcing the exactly-once discipline
/// the second delivery trips `CommitLedger::commit` and the explorer
/// must classify the failure as a panic — with a byte-identically
/// replayable schedule, like every failure it reports.
#[test]
fn double_commit_mutant_is_caught() {
    let body = || {
        let sched = StreamScheduler::new(1, 1).expect("valid scheduler");
        let cs = chunks(1);
        let ledger = idg_sync::Mutex::new(CommitLedger::new(1));
        let _ = sched.run_stream_double_commit_mutant(&cs, |c| {
            ledger
                .lock()
                .commit(c.index)
                .expect("exactly-once commit discipline");
            Ok(c.index)
        });
    };
    let report = explorer(Config::default()).explore(body);
    let failure = report
        .failure
        .expect("the redelivered chunk must double-commit on some schedule");
    assert_eq!(
        failure.kind,
        FailureKind::Panic,
        "failure must be classified as a panic: {failure}"
    );

    let replayed = explorer(Config::default())
        .replay(&failure.schedule, body)
        .expect("recorded schedule parses")
        .failure
        .expect("replay reproduces the failure");
    assert_eq!(failure, replayed);
}

/// Deeper-bound variant: preemption bound raised from CI's 2 to 4
/// over the backpressured two-worker shape (the schedule tree grows
/// superexponentially with the bound — fully unbounded exploration of
/// this model does not terminate in practical time). Run with
/// `cargo test -- --ignored` under the model-check cfg.
#[test]
#[ignore = "deeper bound for local/cron runs; CI uses the bounded suite"]
fn exactly_once_deeper_preemption_bound() {
    let cfg = Config {
        preemption_bound: Some(4),
        max_schedules: 5_000_000,
        max_steps: 50_000,
        ..Config::default()
    };
    let report = explorer(cfg).explore(|| {
        let sched = StreamScheduler::new(2, 1).expect("valid scheduler");
        let cs = chunks(2);
        let run = sched.run_stream(&cs, |c| Ok(c.index)).expect("stream runs");
        for (i, r) in run.results.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("pass succeeded"), i);
        }
    });
    assert!(report.proved(), "report: {report:?}");
}
