//! Property tests for the streaming front-end's two invariant sets.
//!
//! **Chunker cover.** For randomly drawn observation shapes and chunk
//! policies, `ChunkedDataset::split` must emit a lossless,
//! order-preserving, non-overlapping cover of `0..nr_timesteps` whose
//! every boundary (except the observation's own end) lands on an
//! A-term interval multiple — the property the streamed-vs-one-shot
//! bit-identity argument in `idg::proxy::streaming` rests on.
//!
//! **Scheduler exactly-once.** For random chunk counts, worker counts
//! and admission windows, every chunk's pass runs exactly once, its
//! result (success or failure) lands in its own slot, failures never
//! abort the stream, and the backpressure metrics take the
//! deterministic closed-form values the crate docs promise.

use idg_stream::{Chunk, ChunkPolicy, ChunkedDataset, StreamScheduler};
use idg_types::{IdgError, Observation};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn observation(
    nr_timesteps: usize,
    aterm_interval: usize,
) -> Result<Observation, proptest::test_runner::TestCaseError> {
    Observation::builder()
        .stations(4)
        .timesteps(nr_timesteps)
        .channels(2, 150e6, 2e6)
        .grid_size(128)
        .subgrid_size(16)
        .kernel_size(5)
        .aterm_interval(aterm_interval)
        .image_size(0.05)
        .build()
        .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn chunk_cover_is_lossless_ordered_nonoverlapping_and_aterm_aligned(
        nr_timesteps in 1usize..200,
        aterm_interval in 1usize..24,
        max_timesteps in 1usize..64,
        vis_budget_intervals in 0usize..6,
    ) {
        let obs = observation(nr_timesteps, aterm_interval)?;
        let vis_per_timestep = obs.nr_baselines() * obs.nr_channels();
        // 0 intervals → a budget tighter than one time step, which the
        // splitter must still round up to a whole A-term interval
        let policy = ChunkPolicy {
            max_timesteps,
            max_visibilities: (vis_budget_intervals * aterm_interval * vis_per_timestep).max(1),
        };
        let chunked = ChunkedDataset::split(&obs, &policy)
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;
        let chunks = chunked.chunks();
        prop_assert!(!chunks.is_empty());
        prop_assert_eq!(chunked.len(), chunks.len());

        // lossless + order-preserving + non-overlapping: consecutive
        // ranges tile 0..nr_timesteps exactly, with sequential indices
        let mut expected_start = 0usize;
        for (i, chunk) in chunks.iter().enumerate() {
            prop_assert_eq!(chunk.index, i);
            prop_assert_eq!(chunk.time_range.start, expected_start);
            prop_assert!(chunk.nr_timesteps() > 0);
            // every boundary except the observation's own tail end
            // snaps to an A-term interval multiple
            prop_assert_eq!(chunk.time_range.start % aterm_interval, 0);
            if chunk.time_range.end != nr_timesteps {
                prop_assert_eq!(chunk.time_range.end % aterm_interval, 0);
            }
            expected_start = chunk.time_range.end;
        }
        prop_assert_eq!(expected_start, nr_timesteps);

        // all non-tail chunks share one stride (the splitter is a
        // fixed-stride walk), so ingestion cost is uniform
        if chunks.len() > 2 {
            let stride = chunks[0].nr_timesteps();
            for chunk in &chunks[..chunks.len() - 1] {
                prop_assert_eq!(chunk.nr_timesteps(), stride);
            }
        }
    }

    #[test]
    fn scheduler_delivers_every_chunk_exactly_once_with_closed_form_metrics(
        nr_chunks in 0usize..40,
        workers in 1usize..6,
        max_inflight in 1usize..8,
        fail_stride in 2usize..9,
    ) {
        let chunks: Vec<Chunk> = (0..nr_chunks)
            .map(|i| Chunk { index: i, time_range: i..i + 1 })
            .collect();
        let scheduler = StreamScheduler::new(workers, max_inflight)
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;
        let executions = AtomicUsize::new(0);
        let run = scheduler
            .run_stream(&chunks, |chunk| {
                executions.fetch_add(1, Ordering::SeqCst);
                if chunk.index % fail_stride == 0 {
                    Err(IdgError::Internal(format!("injected on {}", chunk.index)))
                } else {
                    Ok(chunk.index)
                }
            })
            .map_err(|e| proptest::test_runner::TestCaseError::Fail(e.to_string()))?;

        // exactly once: one execution and one slot per chunk, each
        // slot holding its own chunk's outcome
        prop_assert_eq!(executions.load(Ordering::SeqCst), nr_chunks);
        prop_assert_eq!(run.results.len(), nr_chunks);
        for (i, result) in run.results.iter().enumerate() {
            match result {
                Ok(v) => {
                    prop_assert!(i % fail_stride != 0);
                    prop_assert_eq!(*v, i);
                }
                Err(IdgError::Internal(msg)) => {
                    prop_assert!(i % fail_stride == 0);
                    prop_assert_eq!(msg.clone(), format!("injected on {i}"));
                }
                Err(other) => {
                    return Err(proptest::test_runner::TestCaseError::Fail(format!(
                        "unexpected error kind in slot {i}: {other}"
                    )));
                }
            }
        }

        // failures never abort the stream, and the stats partition it
        let stats = run.stats;
        prop_assert_eq!(stats.nr_chunks, nr_chunks);
        prop_assert_eq!(stats.completed_chunks + stats.failed_chunks, nr_chunks);
        prop_assert_eq!(stats.failed_chunks, nr_chunks.div_ceil(fail_stride));

        // deterministic backpressure metrics (crate-doc contract)
        prop_assert_eq!(stats.nr_workers, workers);
        prop_assert_eq!(stats.max_inflight, max_inflight);
        prop_assert_eq!(stats.inflight_max, max_inflight.min(nr_chunks));
        prop_assert_eq!(
            stats.backpressure_waits,
            nr_chunks.saturating_sub(max_inflight) as u64
        );
    }
}
