//! Oversampled W-kernel computation.
//!
//! The W-projection kernel for a given w (in wavelengths) is the Fourier
//! transform of the *gridding function*: the image-domain anti-aliasing
//! taper multiplied by the w phase screen,
//!
//! `K_w(Δu, Δv) = FT[ ψ(l)·ψ(m) · e^{2πi w n(l,m)} ](Δu, Δv)`
//!
//! (FT in the inverse/`e^{+2πi}` convention, matching the workspace's
//! image convention). It is evaluated numerically: sample the screen
//! across the field of view on a padded grid (padding = oversampling in
//! uv), FFT, shift, and slice one `N_W × N_W` tap table per sub-pixel
//! offset — the "oversampling factor of 8" of Sec. VI-E. Storage grows
//! as `(N_W·O)²` per w value, which is exactly the memory overhead the
//! paper's Fig. 16 discussion is about.

use idg_fft::{fftshift2d, Direction, Fft2d};
use idg_math::spheroidal_gridding_eta;
use idg_types::Cf64;

/// An oversampled W-kernel: per-sub-pixel tap tables.
#[derive(Clone, Debug)]
pub struct WKernel {
    /// Support in grid pixels (`N_W`).
    pub support: usize,
    /// Oversampling factor (`O`).
    pub oversampling: usize,
    /// w of this kernel, wavelengths.
    pub w_lambda: f64,
    /// Tap tables, layout `[sub_y][sub_x][dy][dx]`.
    taps: Vec<Cf64>,
}

impl WKernel {
    /// Compute the kernel for `w_lambda` with the given support and
    /// oversampling, for a field of view of `image_size` radians.
    pub fn compute(support: usize, oversampling: usize, w_lambda: f64, image_size: f64) -> Self {
        assert!(support >= 1 && oversampling >= 1);
        let pad = (2 * support).next_power_of_two().max(16);
        let size = pad * oversampling;

        // Sample the gridding function over the FoV on the *central*
        // pad×pad region; the rest is zero padding (=> uv oversampling).
        // Symmetric sampling (no half-pixel offset): the screen is an
        // even function, so the kernel comes out even and peak-centered;
        // the unpaired edge sample sits at η = −1 where the gridding
        // function vanishes.
        let mut screen = vec![Cf64::zero(); size * size];
        let start = (size - pad) / 2;
        for py in 0..pad {
            let eta_m = 2.0 * (py as f64 - pad as f64 / 2.0) / pad as f64;
            let m = eta_m * image_size / 2.0;
            for px in 0..pad {
                let eta_l = 2.0 * (px as f64 - pad as f64 / 2.0) / pad as f64;
                let l = eta_l * image_size / 2.0;
                let taper = spheroidal_gridding_eta(eta_l) * spheroidal_gridding_eta(eta_m);
                let r2 = l * l + m * m;
                let n = r2 / (1.0 + (1.0 - r2).sqrt());
                let phase = 2.0 * std::f64::consts::PI * w_lambda * n;
                let v = Cf64::from_phase(phase).scale(taper);
                screen[(start + py) * size + (start + px)] = v;
            }
        }

        // image → uv with the workspace's e^{+2πi} image convention
        idg_fft::ifftshift2d(&mut screen, size);
        let fft = Fft2d::<f64>::new(size);
        fft.process(&mut screen, Direction::Inverse);
        fftshift2d(&mut screen, size);

        // Slice per-sub-pixel tap tables. A visibility at fractional
        // offset f' ∈ [−½, ½) from its nearest pixel uses taps
        //   K((dy − S/2)·O − r),  r = round(f'·O) ∈ [−O/2, O/2),
        // all of which live well inside the padded evaluation grid.
        let o2 = oversampling as i64 / 2;
        let center = (size / 2) as i64;
        let mut taps = Vec::with_capacity(oversampling * oversampling * support * support);
        for sub_y in 0..oversampling as i64 {
            let ry = sub_y - o2;
            for sub_x in 0..oversampling as i64 {
                let rx = sub_x - o2;
                for dy in 0..support as i64 {
                    let iy = center + (dy - support as i64 / 2) * oversampling as i64 - ry;
                    for dx in 0..support as i64 {
                        let ix = center + (dx - support as i64 / 2) * oversampling as i64 - rx;
                        taps.push(screen[(iy as usize) * size + ix as usize]);
                    }
                }
            }
        }

        let mut kernel = Self {
            support,
            oversampling,
            w_lambda,
            taps,
        };

        // Normalize so the on-pixel tap table sums to exactly 1 (unit
        // flux transfer), removing the FFT scaling and any global phase.
        let norm = kernel.tap_sum(oversampling / 2, oversampling / 2);
        let inv = 1.0 / norm.abs().max(1e-300);
        let phase_fix = norm.conj().scale(inv);
        for v in &mut kernel.taps {
            *v = (*v * phase_fix).scale(inv);
        }
        kernel
    }

    /// Kernel samples per axis (`support × oversampling`).
    pub fn sampled_size(&self) -> usize {
        self.support * self.oversampling
    }

    /// Bytes of kernel storage (`(N_W·O)²` complex values).
    pub fn storage_bytes(&self) -> usize {
        self.taps.len() * std::mem::size_of::<Cf64>()
    }

    /// The tap multiplying grid cell `round(pos) − S/2 + (dy, dx)` for a
    /// visibility whose sub-pixel index is `(sub_y, sub_x)`
    /// (`sub = round(f'·O) + O/2`, `f' = pos − round(pos)`).
    #[inline]
    pub fn tap(&self, dy: usize, dx: usize, sub_y: usize, sub_x: usize) -> Cf64 {
        debug_assert!(dy < self.support && dx < self.support);
        debug_assert!(sub_y < self.oversampling && sub_x < self.oversampling);
        let s = self.support;
        self.taps[((sub_y * self.oversampling + sub_x) * s + dy) * s + dx]
    }

    /// Full `S × S` tap table of one sub-pixel offset.
    #[inline]
    pub fn tap_table(&self, sub_y: usize, sub_x: usize) -> &[Cf64] {
        let s2 = self.support * self.support;
        let base = (sub_y * self.oversampling + sub_x) * s2;
        &self.taps[base..base + s2]
    }

    /// Sum of taps for a given sub-pixel offset (≈1 for all offsets).
    pub fn tap_sum(&self, sub_y: usize, sub_x: usize) -> Cf64 {
        self.tap_table(sub_y, sub_x).iter().copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_w_kernel_is_real_and_centered() {
        let k = WKernel::compute(8, 8, 0.0, 0.05);
        assert_eq!(k.sampled_size(), 64);
        // the on-pixel comb's central tap dominates
        let center = k.tap(4, 4, 4, 4);
        for dy in 0..8 {
            for dx in 0..8 {
                let tap = k.tap(dy, dx, 4, 4);
                assert!(tap.abs() <= center.abs() + 1e-12);
            }
        }
        assert!(center.re > 0.0);
        assert!(center.im.abs() < 0.05 * center.re);
    }

    #[test]
    fn taps_sum_to_unity_at_all_subpixels() {
        let k = WKernel::compute(8, 4, 0.0, 0.05);
        for sy in 0..4 {
            for sx in 0..4 {
                let s = k.tap_sum(sy, sx);
                assert!((s.abs() - 1.0).abs() < 0.05, "tap sum at ({sy},{sx}) = {s}");
            }
        }
    }

    #[test]
    fn on_pixel_table_is_normalized_exactly() {
        let k = WKernel::compute(8, 8, 300.0, 0.05);
        let s = k.tap_sum(4, 4);
        assert!((s.re - 1.0).abs() < 1e-9 && s.im.abs() < 1e-9, "{s}");
    }

    #[test]
    fn nonzero_w_broadens_the_kernel() {
        let image_size = 0.1;
        let k0 = WKernel::compute(16, 4, 0.0, image_size);
        let kw = WKernel::compute(16, 4, 2000.0, image_size);
        let spread = |k: &WKernel| {
            let mut num = 0.0;
            let mut den = 0.0;
            for dy in 0..16 {
                for dx in 0..16 {
                    let t = k.tap(dy, dx, 2, 2).norm_sqr();
                    let r2 = (dy as f64 - 8.0).powi(2) + (dx as f64 - 8.0).powi(2);
                    num += t * r2;
                    den += t;
                }
            }
            num / den
        };
        assert!(
            spread(&kw) > 2.0 * spread(&k0),
            "w-kernel spread {} vs {}",
            spread(&kw),
            spread(&k0)
        );
    }

    #[test]
    fn storage_scales_quadratically_with_support_and_oversampling() {
        let a = WKernel::compute(4, 4, 0.0, 0.05);
        let b = WKernel::compute(8, 4, 0.0, 0.05);
        let c = WKernel::compute(4, 8, 0.0, 0.05);
        assert_eq!(b.storage_bytes(), 4 * a.storage_bytes());
        assert_eq!(c.storage_bytes(), 4 * a.storage_bytes());
    }

    #[test]
    fn w_symmetry_magnitudes() {
        // |K_{-w}| = |K_w|.
        let kp = WKernel::compute(8, 4, 500.0, 0.05);
        let km = WKernel::compute(8, 4, -500.0, 0.05);
        for dy in 0..8 {
            for dx in 0..8 {
                let a = kp.tap(dy, dx, 2, 2);
                let b = km.tap(dy, dx, 2, 2);
                assert!((a.abs() - b.abs()).abs() < 1e-6, "magnitude symmetry");
            }
        }
    }

    #[test]
    fn subpixel_tables_interpolate_smoothly() {
        // neighbouring sub-pixel tables must be similar (the comb moves
        // by 1/O pixel) — a sanity check on the slicing arithmetic.
        let k = WKernel::compute(8, 8, 0.0, 0.05);
        let mut max_jump = 0.0f64;
        for sub in 0..7 {
            let a = k.tap(4, 4, 4, sub);
            let b = k.tap(4, 4, 4, sub + 1);
            max_jump = max_jump.max((a - b).abs());
        }
        assert!(max_jump < 0.2, "tap discontinuity {max_jump}");
    }
}
