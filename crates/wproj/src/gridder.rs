//! Convolutional (W-projection) gridding and degridding.
//!
//! The classic scatter/gather pair IDG replaces: every visibility is
//! convolved onto the grid with its W-kernel (gridding) or predicted as
//! the kernel-weighted sum of grid cells (degridding). The parallel
//! gridder follows the standard CPU strategy of per-thread partial grids
//! merged afterwards (scatter conflicts otherwise need atomics — the
//! problem Romein's GPU work-distribution strategy \[19\] addresses).

use crate::wkernel::WKernel;
use idg_types::{Cf32, Grid, Visibility, NR_POLARIZATIONS};
use rayon::prelude::*;

/// One input sample for the W-projection kernels: uv in *wavelengths*
/// plus the 4-polarization visibility.
#[derive(Copy, Clone, Debug)]
pub struct WpgSample {
    /// u in wavelengths.
    pub u: f64,
    /// v in wavelengths.
    pub v: f64,
    /// w in wavelengths.
    pub w: f64,
    /// The visibility.
    pub vis: Visibility<f32>,
}

/// A set of W-kernels indexed by |w| plane.
#[derive(Clone, Debug)]
pub struct WKernelCache {
    kernels: Vec<WKernel>,
    /// w distance between adjacent kernels, wavelengths.
    pub w_step: f64,
}

impl WKernelCache {
    /// Precompute kernels for w-planes `0, ±w_step, …` up to `w_max`.
    /// Negative w uses the conjugate of the |w| kernel.
    pub fn build(
        support: usize,
        oversampling: usize,
        w_step: f64,
        w_max: f64,
        image_size: f64,
    ) -> Self {
        assert!(w_step > 0.0);
        let nr_planes = (w_max / w_step).ceil() as usize + 1;
        let kernels = (0..nr_planes)
            .into_par_iter()
            .map(|i| WKernel::compute(support, oversampling, i as f64 * w_step, image_size))
            .collect();
        Self { kernels, w_step }
    }

    /// The kernel for a given w; `(kernel, conjugate?)`.
    pub fn lookup(&self, w: f64) -> (&WKernel, bool) {
        let idx = ((w.abs() / self.w_step).round() as usize).min(self.kernels.len() - 1);
        (&self.kernels[idx], w < 0.0)
    }

    /// Number of stored planes.
    pub fn nr_planes(&self) -> usize {
        self.kernels.len()
    }

    /// Total storage of all kernels, bytes.
    pub fn storage_bytes(&self) -> usize {
        self.kernels.iter().map(|k| k.storage_bytes()).sum()
    }
}

/// Map a uv coordinate (wavelengths) to `(base_cell, sub_pixel)` for a
/// kernel of the given support/oversampling; `None` when the stamp falls
/// off the grid.
#[inline]
fn locate(
    uv: f64,
    image_size: f64,
    grid_size: usize,
    support: usize,
    oversampling: usize,
) -> Option<(usize, usize)> {
    let pos = uv * image_size + grid_size as f64 / 2.0;
    let nearest = pos.round();
    let frac = pos - nearest; // [−0.5, 0.5)
    let r = (frac * oversampling as f64).round() as i64;
    let o2 = oversampling as i64 / 2;
    let sub = (r + o2).clamp(0, oversampling as i64 - 1) as usize;
    let base = nearest as i64 - support as i64 / 2;
    if base < 0 || base + support as i64 > grid_size as i64 {
        return None;
    }
    Some((base as usize, sub))
}

/// Grid all samples onto `grid` (parallel, per-thread partial grids).
/// Returns the number of samples skipped as out of range.
pub fn wpg_grid(
    grid: &mut Grid<f32>,
    samples: &[WpgSample],
    kernels: &WKernelCache,
    image_size: f64,
) -> usize {
    let gsize = grid.size();
    let support = kernels.kernels[0].support;
    let oversampling = kernels.kernels[0].oversampling;

    let nr_threads = rayon::current_num_threads().max(1);
    let chunk = samples.len().div_ceil(nr_threads).max(1);

    let partials: Vec<(Grid<f32>, usize)> = samples
        .par_chunks(chunk)
        .map(|chunk_samples| {
            let mut partial = Grid::<f32>::new(gsize);
            let mut skipped = 0usize;
            for s in chunk_samples {
                let Some((bx, sub_x)) = locate(s.u, image_size, gsize, support, oversampling)
                else {
                    skipped += 1;
                    continue;
                };
                let Some((by, sub_y)) = locate(s.v, image_size, gsize, support, oversampling)
                else {
                    skipped += 1;
                    continue;
                };
                let (kernel, conj) = kernels.lookup(s.w);
                let table = kernel.tap_table(sub_y, sub_x);
                for dy in 0..support {
                    for dx in 0..support {
                        let t64 = table[dy * support + dx];
                        let t64 = if conj { t64.conj() } else { t64 };
                        let tap = Cf32::new(t64.re as f32, t64.im as f32);
                        for pol in 0..NR_POLARIZATIONS {
                            *partial.at_mut(pol, by + dy, bx + dx) += tap * s.vis.pols[pol];
                        }
                    }
                }
            }
            (partial, skipped)
        })
        .collect();

    let mut skipped = 0usize;
    for (partial, sk) in partials {
        grid.accumulate(&partial);
        skipped += sk;
    }
    skipped
}

/// Degrid (predict) all samples from `grid` (parallel, read-only).
/// Out-of-range samples predict zero.
pub fn wpg_degrid(
    grid: &Grid<f32>,
    samples: &mut [WpgSample],
    kernels: &WKernelCache,
    image_size: f64,
) {
    let gsize = grid.size();
    let support = kernels.kernels[0].support;
    let oversampling = kernels.kernels[0].oversampling;

    samples.par_iter_mut().for_each(|s| {
        let located = locate(s.u, image_size, gsize, support, oversampling).zip(locate(
            s.v,
            image_size,
            gsize,
            support,
            oversampling,
        ));
        let Some(((bx, sub_x), (by, sub_y))) = located else {
            s.vis = Visibility::zero();
            return;
        };
        // degridding uses the conjugate kernel (the adjoint of gridding)
        let (kernel, conj) = kernels.lookup(s.w);
        let table = kernel.tap_table(sub_y, sub_x);
        let mut acc = [Cf32::zero(); 4];
        for dy in 0..support {
            for dx in 0..support {
                let t64 = table[dy * support + dx];
                let t64 = if conj { t64 } else { t64.conj() };
                let tap = Cf32::new(t64.re as f32, t64.im as f32);
                for pol in 0..NR_POLARIZATIONS {
                    acc[pol].mul_acc(tap, grid.at(pol, by + dy, bx + dx));
                }
            }
        }
        s.vis = Visibility { pols: acc };
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_fft::{fftshift2d, Direction, Fft2d};

    fn cache(support: usize) -> WKernelCache {
        WKernelCache::build(support, 8, 100.0, 400.0, 0.05)
    }

    fn unit_sample(u: f64, v: f64, w: f64) -> WpgSample {
        let one = Cf32::new(1.0, 0.0);
        WpgSample {
            u,
            v,
            w,
            vis: Visibility {
                pols: [one, Cf32::zero(), Cf32::zero(), one],
            },
        }
    }

    /// pixel ↔ uv helper matching `locate`'s convention.
    fn pixel_to_uv(pix: f64, image_size: f64, grid_size: usize) -> f64 {
        (pix - grid_size as f64 / 2.0) / image_size
    }

    #[test]
    fn on_pixel_sample_sums_to_unit_flux() {
        let kernels = cache(8);
        let image_size = 0.05;
        let mut grid = Grid::<f32>::new(128);
        let u = pixel_to_uv(70.0, image_size, 128);
        let v = pixel_to_uv(45.0, image_size, 128);
        let skipped = wpg_grid(&mut grid, &[unit_sample(u, v, 0.0)], &kernels, image_size);
        assert_eq!(skipped, 0);
        // flux conservation: taps sum to 1
        let total: Cf32 = grid.plane(0).iter().copied().sum();
        assert!((total.re - 1.0).abs() < 1e-3, "total {total}");
        assert!(total.im.abs() < 1e-3);
        // energy concentrated at the stamp center (the 2-D spheroidal
        // gridding kernel spreads over ~3 px; its central tap carries
        // ≈15 % of the unit flux)
        let peak = grid.at(0, 45, 70);
        assert!(peak.abs() > 0.1, "peak {peak}");
        for y in 40..50 {
            for x in 65..75 {
                assert!(grid.at(0, y, x).abs() <= peak.abs() + 1e-6);
            }
        }
        // nothing outside the stamp
        assert_eq!(grid.at(0, 45, 90), Cf32::zero());
    }

    #[test]
    fn out_of_range_sample_is_skipped() {
        let kernels = cache(8);
        let mut grid = Grid::<f32>::new(64);
        let far = unit_sample(1e6, 0.0, 0.0);
        let skipped = wpg_grid(&mut grid, &[far], &kernels, 0.05);
        assert_eq!(skipped, 1);
        assert_eq!(grid.power(), 0.0);
    }

    #[test]
    fn grid_degrid_round_trip_on_pixel() {
        // grid one on-pixel visibility, degrid at the same position:
        // recovers Σ|tap|² ≈ the kernel's autocorrelation peak; with a
        // *smooth* grid (single vis → its own stamp) we instead verify
        // via a constant grid below. Here: degridding a unit-impulse
        // grid cell returns the central tap.
        let kernels = cache(8);
        let image_size = 0.05;
        let mut grid = Grid::<f32>::new(128);
        *grid.at_mut(0, 45, 70) = Cf32::new(1.0, 0.0);
        let u = pixel_to_uv(70.0, image_size, 128);
        let v = pixel_to_uv(45.0, image_size, 128);
        let mut samples = [unit_sample(u, v, 0.0)];
        wpg_degrid(&grid, &mut samples, &kernels, image_size);
        let got = samples[0].vis.pols[0];
        let center = kernels.lookup(0.0).0.tap(4, 4, 4, 4);
        assert!(
            (got.re as f64 - center.re).abs() < 1e-3 && (got.im as f64).abs() < 1e-3,
            "got {got}, center tap {center}"
        );
    }

    #[test]
    fn degridding_constant_grid_returns_tap_sum() {
        // A locally constant grid degrids to ≈ grid value × Σ conj(taps)
        // ≈ grid value (taps normalized to unit sum).
        let kernels = cache(8);
        let image_size = 0.05;
        let mut grid = Grid::<f32>::new(128);
        for y in 0..128 {
            for x in 0..128 {
                *grid.at_mut(0, y, x) = Cf32::new(0.7, -0.2);
            }
        }
        let u = pixel_to_uv(64.3, image_size, 128);
        let v = pixel_to_uv(60.8, image_size, 128);
        let mut samples = [unit_sample(u, v, 0.0)];
        wpg_degrid(&grid, &mut samples, &kernels, image_size);
        let got = samples[0].vis.pols[0];
        assert!((got.re - 0.7).abs() < 0.05, "{got}");
        assert!((got.im + 0.2).abs() < 0.05, "{got}");
    }

    #[test]
    fn dirty_image_of_center_source_peaks_at_center() {
        // Visibilities of a unit source at the phase center are all 1;
        // gridding them and inverse-FFT'ing must peak at the image
        // center regardless of per-sample w (w-correction works).
        let kernels = cache(8);
        let image_size = 0.05;
        let gsize = 128usize;
        let mut grid = Grid::<f32>::new(gsize);
        let mut samples = Vec::new();
        for i in 0..200 {
            let ang = i as f64 * 0.21;
            let r = 150.0 + 2.5 * i as f64; // stays within the 128² grid
            samples.push(unit_sample(
                r * ang.cos(),
                r * ang.sin(),
                (i % 5) as f64 * 80.0,
            ));
        }
        let skipped = wpg_grid(&mut grid, &samples, &kernels, image_size);
        assert_eq!(skipped, 0);

        // image = shifted inverse FFT of the grid plane
        let mut plane: Vec<Cf32> = grid.plane(0).to_vec();
        idg_fft::ifftshift2d(&mut plane, gsize);
        let fft = Fft2d::<f32>::new(gsize);
        fft.process(&mut plane, Direction::Inverse);
        fftshift2d(&mut plane, gsize);

        let mut best = (0usize, 0usize, 0.0f32);
        for y in 0..gsize {
            for x in 0..gsize {
                let a = plane[y * gsize + x].abs();
                if a > best.2 {
                    best = (x, y, a);
                }
            }
        }
        assert_eq!(
            (best.0, best.1),
            (gsize / 2, gsize / 2),
            "dirty image peak at {best:?}"
        );
    }

    #[test]
    fn parallel_grid_matches_well_against_two_chunk_split() {
        // determinism across thread counts is not guaranteed bit-exact
        // (f32 merge order), but the result must be very close.
        let kernels = cache(4);
        let image_size = 0.05;
        let samples: Vec<WpgSample> = (0..500)
            .map(|i| {
                let ang = i as f64 * 0.37;
                unit_sample(600.0 * ang.cos(), 600.0 * ang.sin(), 0.0)
            })
            .collect();
        let mut g1 = Grid::<f32>::new(128);
        wpg_grid(&mut g1, &samples, &kernels, image_size);
        let mut g2 = Grid::<f32>::new(128);
        for chunk in samples.chunks(100) {
            wpg_grid(&mut g2, chunk, &kernels, image_size);
        }
        let scale = g1
            .as_slice()
            .iter()
            .map(|c| c.abs())
            .fold(1e-9f32, f32::max);
        for (a, b) in g1.as_slice().iter().zip(g2.as_slice()) {
            assert!((*a - *b).abs() / scale < 1e-4);
        }
    }

    #[test]
    fn cache_lookup_and_storage() {
        let kernels = cache(8);
        assert_eq!(kernels.nr_planes(), 5);
        let (k0, c0) = kernels.lookup(0.0);
        assert_eq!(k0.w_lambda, 0.0);
        assert!(!c0);
        let (k2, c2) = kernels.lookup(-210.0);
        assert_eq!(k2.w_lambda, 200.0);
        assert!(c2);
        // beyond range clamps to the last plane
        let (kmax, _) = kernels.lookup(10_000.0);
        assert_eq!(kmax.w_lambda, 400.0);
        assert!(kernels.storage_bytes() > 0);
    }
}
