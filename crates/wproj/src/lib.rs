//! # idg-wproj — the W-projection gridding baseline
//!
//! The paper compares IDG against the W-projection gridder of Romein
//! (ICS 2012), "WPG" (Sec. VI-E, Fig. 16). This crate reimplements that
//! baseline algorithm:
//!
//! * [`wkernel`] — numeric computation of the oversampled W-kernels:
//!   the Fourier transform of the anti-aliasing taper multiplied by the
//!   w phase screen `e^{2πi w n(l,m)}`, truncated to an `N_W × N_W`
//!   support and oversampled by a configurable factor (8 in the paper's
//!   tests);
//! * [`gridder`] — convolutional gridding and degridding with those
//!   kernels (scalar and rayon-parallel paths);
//! * [`wstack`] — the W-stacking driver that partitions visibilities
//!   over w-planes to bound the required kernel support (Sec. III and
//!   VI-E: "In practice, WPG and IDG are used in conjunction with
//!   W-stacking").
//!
//! Unlike IDG, the whole cost of the w correction sits in the size of
//! these kernels: support scales with the w-range and the kernels must
//! be precomputed, stored and streamed — exactly the overhead Fig. 16
//! quantifies.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the classic gridder

pub mod gridder;
pub mod wkernel;
pub mod wstack;

pub use gridder::{wpg_degrid, wpg_grid};
pub use wkernel::WKernel;
pub use wstack::WStack;
