//! W-stacking: bounding the W-kernel support with multiple grid copies.
//!
//! W-projection alone needs kernels whose support grows with the w-range
//! (up to 500×500 pixels for LOFAR, Sec. VI-E). W-stacking trades that
//! for memory: visibilities are partitioned over `P` w-planes, each
//! plane is gridded with kernels covering only the *residual* w around
//! its plane center (so `N_W` stays small), and after the per-plane
//! inverse FFT each image is multiplied by the plane's phase screen
//! `e^{+2πi w_p n(l,m)}` before summation.

use crate::gridder::{wpg_grid, WKernelCache, WpgSample};
use idg_types::{Cf32, Grid};

/// A W-stacking gridder: per-plane grids plus residual-w kernels.
pub struct WStack {
    /// Plane spacing in wavelengths.
    pub plane_step: f64,
    /// Per-plane grids, index `p` covering `w ≈ (p − P/2)·plane_step`.
    planes: Vec<Grid<f32>>,
    /// Center w of each plane, wavelengths.
    centers: Vec<f64>,
    /// Residual-w kernels (small support).
    kernels: WKernelCache,
    image_size: f64,
    skipped: usize,
}

impl WStack {
    /// Create a stack of `nr_planes` grids of `grid_size` pixels
    /// covering `w ∈ [−w_max, w_max]`, with residual kernels of
    /// `support` pixels.
    pub fn new(
        nr_planes: usize,
        grid_size: usize,
        w_max: f64,
        support: usize,
        oversampling: usize,
        image_size: f64,
    ) -> Self {
        assert!(nr_planes >= 1);
        let plane_step = if nr_planes > 1 {
            2.0 * w_max / (nr_planes as f64 - 1.0)
        } else {
            2.0 * w_max
        };
        let centers: Vec<f64> = (0..nr_planes)
            .map(|p| -w_max + p as f64 * plane_step)
            .collect();
        // residual |w| ≤ plane_step/2 ⇒ small kernels suffice
        let kernels = WKernelCache::build(
            support,
            oversampling,
            (plane_step / 4.0).max(1.0),
            plane_step / 2.0 + 1.0,
            image_size,
        );
        Self {
            plane_step,
            planes: (0..nr_planes).map(|_| Grid::new(grid_size)).collect(),
            centers,
            kernels,
            image_size,
            skipped: 0,
        }
    }

    /// Number of w-planes.
    pub fn nr_planes(&self) -> usize {
        self.planes.len()
    }

    /// The plane index for a w value.
    pub fn plane_of(&self, w: f64) -> usize {
        if self.planes.len() == 1 {
            return 0;
        }
        let p = ((w - self.centers[0]) / self.plane_step).round();
        (p.max(0.0) as usize).min(self.planes.len() - 1)
    }

    /// Memory held by the plane grids, bytes — the cost W-stacking pays
    /// ("which can be prohibitively memory consuming for high-resolution
    /// images", Sec. VI-E).
    pub fn plane_storage_bytes(&self) -> usize {
        self.planes
            .iter()
            .map(|g| 4 * g.size() * g.size() * std::mem::size_of::<Cf32>())
            .sum()
    }

    /// Grid a batch of samples: each goes to its plane with the residual
    /// w left to the small convolution kernel.
    pub fn grid(&mut self, samples: &[WpgSample]) {
        // bucket per plane (scatter); per-plane gridding is parallel
        let mut buckets: Vec<Vec<WpgSample>> = vec![Vec::new(); self.planes.len()];
        for s in samples {
            let p = self.plane_of(s.w);
            let mut residual = *s;
            residual.w = s.w - self.centers[p];
            buckets[p].push(residual);
        }
        for (p, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                self.skipped +=
                    wpg_grid(&mut self.planes[p], &bucket, &self.kernels, self.image_size);
            }
        }
    }

    /// Samples dropped as out of range so far.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Produce the combined *image-domain* result: per-plane inverse
    /// FFT, per-plane w screen, sum. Returns the polarization-0 image
    /// (row-major `grid_size²`).
    pub fn image(&self) -> Vec<Cf32> {
        use idg_fft::{fftshift2d, ifftshift2d, Direction, Fft2d};
        let gsize = self.planes[0].size();
        let fft = Fft2d::<f32>::new(gsize);
        let mut out = vec![Cf32::zero(); gsize * gsize];
        for (p, grid) in self.planes.iter().enumerate() {
            let mut plane: Vec<Cf32> = grid.plane(0).to_vec();
            ifftshift2d(&mut plane, gsize);
            fft.process(&mut plane, Direction::Inverse);
            fftshift2d(&mut plane, gsize);
            let w_p = self.centers[p];
            for y in 0..gsize {
                let m = (y as f64 + 0.5 - gsize as f64 / 2.0) * self.image_size / gsize as f64;
                for x in 0..gsize {
                    let l = (x as f64 + 0.5 - gsize as f64 / 2.0) * self.image_size / gsize as f64;
                    let r2 = l * l + m * m;
                    let n = r2 / (1.0 + (1.0 - r2).sqrt());
                    let phase = 2.0 * std::f64::consts::PI * w_p * n;
                    let screen = Cf32::new(phase.cos() as f32, phase.sin() as f32);
                    out[y * gsize + x] += plane[y * gsize + x] * screen;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idg_types::Visibility;

    fn unit_sample(u: f64, v: f64, w: f64) -> WpgSample {
        let one = Cf32::new(1.0, 0.0);
        WpgSample {
            u,
            v,
            w,
            vis: Visibility {
                pols: [one, Cf32::zero(), Cf32::zero(), one],
            },
        }
    }

    #[test]
    fn plane_assignment_covers_range() {
        let stack = WStack::new(5, 64, 1000.0, 4, 4, 0.05);
        assert_eq!(stack.nr_planes(), 5);
        assert_eq!(stack.plane_of(-1000.0), 0);
        assert_eq!(stack.plane_of(0.0), 2);
        assert_eq!(stack.plane_of(1000.0), 4);
        assert_eq!(stack.plane_of(1e9), 4, "clamps above");
        assert_eq!(stack.plane_of(-1e9), 0, "clamps below");
    }

    #[test]
    fn storage_scales_with_planes() {
        let a = WStack::new(2, 64, 500.0, 4, 4, 0.05);
        let b = WStack::new(8, 64, 500.0, 4, 4, 0.05);
        assert_eq!(b.plane_storage_bytes(), 4 * a.plane_storage_bytes());
    }

    #[test]
    fn center_source_with_large_w_range_images_correctly() {
        // Visibilities of a center source are 1 for any w; a 3-plane
        // stack with small kernels must still peak at the center.
        let mut stack = WStack::new(3, 128, 600.0, 8, 8, 0.05);
        let samples: Vec<WpgSample> = (0..240)
            .map(|i| {
                let ang = i as f64 * 0.26;
                let r = 200.0 + 3.0 * i as f64; // max ~917λ → pixel 110
                unit_sample(r * ang.cos(), r * ang.sin(), -600.0 + 5.0 * i as f64)
            })
            .collect();
        stack.grid(&samples);
        assert_eq!(stack.skipped(), 0);

        let image = stack.image();
        let gsize = 128;
        let mut best = (0usize, 0usize, 0.0f32);
        for y in 0..gsize {
            for x in 0..gsize {
                let a = image[y * gsize + x].abs();
                if a > best.2 {
                    best = (x, y, a);
                }
            }
        }
        assert_eq!((best.0, best.1), (64, 64), "peak at {best:?}");
    }
}
