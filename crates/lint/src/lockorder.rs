//! The declared lock-order hierarchy (`tools/lock-order.toml`).
//!
//! L6 sub-rule (c) needs to know which locks the workspace considers
//! ordered and in what order. That policy is data, not code: it lives
//! in a committed config file in the same hand-rolled TOML subset as
//! the allowlist, one `[[class]]` table per hierarchy level,
//! outermost-first:
//!
//! ```toml
//! [[class]]
//! name = "session-gate"
//! idents = ["SESSION_GATE"]
//!
//! [[class]]
//! name = "collector"
//! idents = ["COLLECTOR", "lock_collector"]
//! ```
//!
//! A lock in a *later* class may be acquired while one from an
//! *earlier* class is held, never the reverse. `idents` are the
//! spelled acquisition sites the rule recognizes: static/field names
//! acquired as `IDENT.lock()` (or `.read()`/`.write()`), and helper
//! functions called as `ident()` that acquire the class's lock on the
//! caller's behalf.

use crate::LintError;

/// One level of the declared hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockClass {
    /// Human-readable class name used in diagnostics.
    pub name: String,
    /// Identifiers whose acquisition belongs to this class.
    pub idents: Vec<String>,
}

/// Parse the committed lock-order file. Classes come back in file
/// order, which *is* the hierarchy order.
pub fn parse_lock_order(text: &str) -> Result<Vec<LockClass>, LintError> {
    let mut classes: Vec<LockClass> = Vec::new();
    let mut cur: Option<(Option<String>, Option<Vec<String>>)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let bad = |msg: &str| LintError::LockOrder {
            line: lineno + 1,
            message: msg.to_string(),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[class]]" {
            finish_class(&mut cur, &mut classes, lineno)?;
            cur = Some((None, None));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(bad("expected `key = value`"));
        };
        let entry = cur.as_mut().ok_or_else(|| bad("value outside [[class]]"))?;
        let value = value.trim();
        match key.trim() {
            "name" => entry.0 = Some(unquote(value).ok_or_else(|| bad("bad name string"))?),
            "idents" => {
                entry.1 = Some(parse_string_array(value).ok_or_else(|| bad("bad idents array"))?);
            }
            _ => return Err(bad("unknown key")),
        }
    }
    let last_line = text.lines().count();
    finish_class(&mut cur, &mut classes, last_line)?;
    Ok(classes)
}

fn finish_class(
    cur: &mut Option<(Option<String>, Option<Vec<String>>)>,
    classes: &mut Vec<LockClass>,
    lineno: usize,
) -> Result<(), LintError> {
    let Some((name, idents)) = cur.take() else {
        return Ok(());
    };
    match (name, idents) {
        (Some(name), Some(idents)) if !idents.is_empty() => {
            classes.push(LockClass { name, idents });
            Ok(())
        }
        _ => Err(LintError::LockOrder {
            line: lineno,
            message: "incomplete [[class]] entry (need name and non-empty idents)".to_string(),
        }),
    }
}

fn unquote(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('\\') || inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let inner = v.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner
        .split(',')
        .map(|item| unquote(item.trim()))
        .collect::<Option<Vec<_>>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_classes_in_hierarchy_order() {
        let classes = parse_lock_order(
            "# order\n[[class]]\nname = \"a\"\nidents = [\"A\"]\n\n[[class]]\n\
             name = \"b\"\nidents = [\"B\", \"lock_b\"]\n",
        )
        .expect("parses");
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].name, "a");
        assert_eq!(
            classes[1].idents,
            vec!["B".to_string(), "lock_b".to_string()]
        );
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(parse_lock_order("name = \"a\"\n").is_err());
        assert!(parse_lock_order("[[class]]\nname = \"a\"\n").is_err());
        assert!(parse_lock_order("[[class]]\nname = \"a\"\nidents = []\n").is_err());
        assert!(parse_lock_order("[[class]]\nname = \"a\"\nidents = [A]\n").is_err());
    }
}
