//! Workspace source discovery.
//!
//! The lint scope is every *library* source file: `crates/*/src/**/*.rs`
//! plus the root package's `src/**/*.rs`. Exempt by policy (as under the
//! old `tools/panic_audit.sh` ratchet):
//!
//! * `crates/bench` — the figure/bench harness (binaries, not library);
//! * `shims/*` — offline stand-ins for external dependencies (you don't
//!   lint your dependencies);
//! * `tests/`, `benches/`, `examples/` everywhere.

use crate::LintError;
use std::path::{Path, PathBuf};

/// Crate directories under `crates/` that are exempt from the scan.
pub const EXEMPT_CRATES: &[&str] = &["bench"];

/// Discover all lintable sources under `root`, returned as
/// repo-relative, `/`-separated paths in deterministic sorted order.
pub fn workspace_sources(root: &Path) -> Result<Vec<String>, LintError> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    for entry in read_dir_sorted(&crates_dir)? {
        let name = entry
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if EXEMPT_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = entry.join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut out)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, root, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|e| LintError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let mut s = String::new();
            for comp in rel.components() {
                if !s.is_empty() {
                    s.push('/');
                }
                s.push_str(&comp.as_os_str().to_string_lossy());
            }
            out.push(s);
        }
    }
    Ok(())
}
