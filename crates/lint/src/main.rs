//! `idg-lint` CLI: the workspace static-analysis gate.
//!
//! ```text
//! cargo run -p idg-lint                         # CI mode: exit 1 on drift
//! cargo run -p idg-lint -- --update-allowlist   # regenerate the ratchet
//! cargo run -p idg-lint -- --list               # print every diagnostic
//! ```
//!
//! Exit codes: 0 clean (modulo allowlist), 1 rule drift in either
//! direction, 2 the pass itself failed (unreadable file, parse error,
//! malformed allowlist).

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut update = false;
    let mut list = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update-allowlist" => update = true,
            "--list" => list = true,
            "--help" | "-h" => {
                println!(
                    "idg-lint — workspace static analysis (rules L1–L7, DESIGN.md §9, §13)\n\n\
                     USAGE: cargo run -p idg-lint [-- --update-allowlist | --list]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("idg-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("idg-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = idg_lint::find_workspace_root(&cwd) else {
        eprintln!("idg-lint: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };

    if list {
        let cfg = match idg_lint::workspace_config(&root) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("idg-lint: {e}");
                return ExitCode::from(2);
            }
        };
        return match idg_lint::lint_workspace(&root, &cfg) {
            Ok(diags) => {
                for d in &diags {
                    println!("{d}");
                }
                println!("idg-lint: {} diagnostic(s)", diags.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("idg-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let result = if update {
        idg_lint::run_update(&root)
    } else {
        idg_lint::run_check(&root)
    };
    match result {
        Ok(report) => {
            print!("{}", report.text);
            if report.status == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("idg-lint: {e}");
            ExitCode::from(2)
        }
    }
}
