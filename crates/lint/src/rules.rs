//! The seven workspace invariants (L1–L7).
//!
//! Each rule is a pure function from a parsed file (plus the scope
//! [`Config`](crate::Config)) to diagnostics. All rules are
//! test-module-aware: nothing fires inside `#[cfg(test)]` items,
//! `#[test]`/`#[should_panic]` functions, or after an inner
//! `#![cfg(test)]` — the exemption the old grep ratchet approximated by
//! truncating files at the first `#[cfg(test)]` line.

use crate::lockorder::LockClass;
use crate::model::{collect_fns, contains_ident, for_each_token, Cx, FnItem};
use crate::{Config, Diagnostic, Rule};
use syn::{Delimiter, LitKind, TokenTree};

/// Run every applicable rule on one parsed file.
pub fn lint_file(path: &str, file: &syn::File, cfg: &Config) -> Vec<Diagnostic> {
    let krate = crate_of(path);
    let mut diags = Vec::new();
    let fns = collect_fns(&file.tokens);
    // L1, L2 float-equality and L4 cover every walked crate by default,
    // so a freshly added crate is in scope before anyone remembers it.
    l1_panic_freedom(path, file, cfg, &mut diags);
    l2_float_eq(path, file, &mut diags);
    if cfg.l2_cast_crates.iter().any(|c| c == krate) {
        l2_narrowing_casts(path, file, cfg, &mut diags);
    }
    if cfg.l3_crates.iter().any(|c| c == krate) {
        l3_kernel_counters(path, &fns, cfg, &mut diags);
    }
    if !cfg.l4_exempt_crates.iter().any(|c| c == krate) {
        l4_typed_errors(path, &fns, cfg, &mut diags);
    }
    if is_crate_root(path) {
        l5_forbid_unsafe(path, file, &mut diags);
    }
    // L6/L7 everywhere except the facade crates: `idg-sync` and
    // `idg-mc` are the one sanctioned home of the std primitives.
    if !cfg.sync_exempt_crates.iter().any(|c| c == krate) {
        l6_wait_in_loop(path, file, &mut diags);
        l6_raw_acquisition(path, file, &mut diags);
        l6_lock_order(path, &fns, cfg, &mut diags);
        l6_guard_liveness(path, &fns, &mut diags);
        l7_sync_facade(path, file, &mut diags);
    }
    diags
}

/// Is this path a library crate root (`src/lib.rs` of the root package
/// or of any `crates/*` member)?
pub fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// The crate directory name a repo-relative source path belongs to
/// (`crates/<name>/src/...` → `<name>`; the root package → `idg-repro`).
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some("src") => "idg-repro",
        _ => "",
    }
}

fn diag(path: &str, t: &TokenTree, rule: Rule, message: String) -> Diagnostic {
    let span = t.span();
    Diagnostic {
        rule,
        path: path.to_string(),
        line: span.start().line,
        column: span.start().column + 1,
        message,
    }
}

// ---------------------------------------------------------------------------
// L1 — panic freedom
// ---------------------------------------------------------------------------

/// Macros whose expansion is an unconditional panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that put a following `[...]` group in pattern/type position
/// rather than index position.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "return", "if", "else", "match", "where", "impl", "dyn",
    "move", "pub", "fn", "use", "mod", "crate", "super", "static", "const", "type", "struct",
    "enum", "union", "break", "continue", "while", "loop", "for", "unsafe", "await", "yield",
];

fn l1_panic_freedom(path: &str, file: &syn::File, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let boundary = cfg.boundary_index_files.iter().any(|p| p == path);
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        match &toks[i] {
            TokenTree::Ident(id) if id.text == "unwrap" || id.text == "expect" => {
                let after_dot =
                    matches!(toks.get(i.wrapping_sub(1)), Some(TokenTree::Punct(p)) if p.ch == '.');
                let called = matches!(
                    toks.get(i + 1),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                );
                if after_dot && called {
                    diags.push(diag(
                        path,
                        &toks[i],
                        Rule::L1,
                        format!(
                            ".{}() in library code — return a typed IdgError instead (DESIGN.md §9)",
                            id.text
                        ),
                    ));
                }
            }
            TokenTree::Ident(id) if PANIC_MACROS.contains(&id.text.as_str()) => {
                if matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.ch == '!') {
                    diags.push(diag(
                        path,
                        &toks[i],
                        Rule::L1,
                        format!(
                            "{}! in library code — return a typed IdgError instead (DESIGN.md §9)",
                            id.text
                        ),
                    ));
                }
            }
            TokenTree::Group(g) if boundary && g.delimiter == Delimiter::Bracket => {
                // Index expression on externally-controlled data: a
                // bracket group directly following an expression.
                let indexes = match toks.get(i.wrapping_sub(1)) {
                    Some(TokenTree::Ident(prev)) => {
                        !NON_INDEX_KEYWORDS.contains(&prev.text.as_str())
                    }
                    Some(TokenTree::Group(prev)) => prev.delimiter != Delimiter::Brace,
                    _ => false,
                };
                if indexes && !g.tokens.is_empty() {
                    diags.push(diag(
                        path,
                        &toks[i],
                        Rule::L1,
                        "unchecked indexing in an input-boundary module — use .get() and return \
                         a typed IdgError on miss"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    });
}

// ---------------------------------------------------------------------------
// L2 — numeric discipline
// ---------------------------------------------------------------------------

fn l2_float_eq(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Punct(p) = &toks[i] else {
            return;
        };
        // `==` is ('=' joint, '='); `!=` is ('!' joint, '='). Detect at
        // the first character so the second never double-reports; a
        // preceding joint punct would make this the tail of `<=`, `+=`…
        let op = match (p.ch, p.joint, toks.get(i + 1)) {
            ('=', true, Some(TokenTree::Punct(q))) if q.ch == '=' => {
                let prev_joint = matches!(
                    toks.get(i.wrapping_sub(1)),
                    Some(TokenTree::Punct(r)) if r.joint
                );
                // `x === y` is not Rust; `a <== b` neither. The only
                // legal joint-prev case is `!=`, handled below.
                if prev_joint {
                    return;
                }
                "=="
            }
            ('!', true, Some(TokenTree::Punct(q))) if q.ch == '=' => "!=",
            _ => return,
        };
        let float_lhs = matches!(
            toks.get(i.wrapping_sub(1)),
            Some(TokenTree::Literal(l)) if l.kind == LitKind::Float
        );
        let float_rhs = matches!(
            toks.get(i + 2),
            Some(TokenTree::Literal(l)) if l.kind == LitKind::Float
        );
        if float_lhs || float_rhs {
            diags.push(diag(
                path,
                &toks[i],
                Rule::L2,
                format!(
                    "float `{op}` against a literal — compare with an explicit tolerance \
                     or bit-pattern (DESIGN.md §6)"
                ),
            ));
        }
    });
}

/// Cast targets that lose precision from the workspace's working types
/// (`f64`, `usize`, `u64`, `i64`).
const NARROW_TARGETS: &[&str] = &["f32", "u32", "u16", "u8", "i32", "i16", "i8"];

fn l2_narrowing_casts(path: &str, file: &syn::File, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            return;
        };
        if id.text != "as" {
            return;
        }
        let Some(TokenTree::Ident(target)) = toks.get(i + 1) else {
            return;
        };
        if !NARROW_TARGETS.contains(&target.text.as_str()) {
            return;
        }
        if let Some(f) = cx.current_fn() {
            if cfg.narrowing_helpers.iter().any(|h| h == f) {
                return;
            }
        }
        diags.push(diag(
            path,
            &toks[i + 1],
            Rule::L2,
            format!(
                "precision-losing `as {}` outside a named narrowing helper — go through \
                 one of [{}] (DESIGN.md §9)",
                target.text,
                cfg.narrowing_helpers.join(", ")
            ),
        ));
    });
}

// ---------------------------------------------------------------------------
// L3 — kernel ↔ observability contract
// ---------------------------------------------------------------------------

/// A kernel-entry-point naming contract: a `pub fn` whose name matches
/// `name_prefix` (exactly, or prefix + `_…`) and whose signature
/// mentions `signature_marker` must increment one of `required_any`.
pub struct KernelContract {
    /// Entry-point name prefix (`gridder` matches `gridder_cpu`…).
    pub name_prefix: &'static str,
    /// Type that must appear in the argument list for the contract to
    /// apply (filters out unrelated helpers sharing the prefix).
    pub signature_marker: &'static str,
    /// `idg-obs` counter calls, any one of which satisfies the contract.
    pub required_any: &'static [&'static str],
}

/// The kernel naming contracts enforced in `crates/kernels`/`crates/gpusim`.
pub const KERNEL_CONTRACTS: &[KernelContract] = &[
    KernelContract {
        name_prefix: "gridder",
        signature_marker: "KernelData",
        required_any: &["add_kernel"],
    },
    KernelContract {
        name_prefix: "degridder",
        signature_marker: "KernelData",
        required_any: &["add_kernel"],
    },
    KernelContract {
        name_prefix: "fft_subgrids",
        signature_marker: "SubgridArray",
        required_any: &["add_subgrids_fft", "add_subgrids_ifft"],
    },
    KernelContract {
        name_prefix: "add_subgrids",
        signature_marker: "SubgridArray",
        required_any: &["add_subgrids_added"],
    },
    KernelContract {
        name_prefix: "split_subgrids",
        signature_marker: "SubgridArray",
        required_any: &["add_subgrids_split"],
    },
    // the pass-level kernel cache: every lookup must surface as a
    // hit or a miss in the observability counters, or the proxy's
    // expected-lookup self-validation rots silently
    KernelContract {
        name_prefix: "geometry",
        signature_marker: "GeometryKey",
        required_any: &["add_cache_hits", "add_cache_misses"],
    },
    KernelContract {
        name_prefix: "phasors",
        signature_marker: "PhasorKey",
        required_any: &["add_cache_hits", "add_cache_misses"],
    },
    // the fleet health tracker: every job outcome fed to a breaker
    // must surface in the health counters, or a silent tracker makes
    // the chaos suite's "breaker observably trips" assertion vacuous
    KernelContract {
        name_prefix: "record_outcome",
        signature_marker: "JobOutcome",
        required_any: &["add_health_outcomes", "add_breaker_trips"],
    },
    // the streaming scheduler: every chunk it ingests (and every
    // window-constrained admission) must surface in the stream
    // counters, or the soak suite's backpressure assertions go blind
    KernelContract {
        name_prefix: "run_stream",
        signature_marker: "Chunk",
        required_any: &["add_chunks_ingested", "add_backpressure_waits"],
    },
];

fn matches_prefix(name: &str, prefix: &str) -> bool {
    name == prefix
        || name
            .strip_prefix(prefix)
            .is_some_and(|r| r.starts_with('_'))
}

fn l3_kernel_counters(path: &str, fns: &[FnItem], _cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.is_pub || f.in_test {
            continue;
        }
        let Some(contract) = KERNEL_CONTRACTS.iter().find(|c| {
            matches_prefix(&f.name, c.name_prefix)
                && contains_ident(&f.arg_tokens, c.signature_marker)
        }) else {
            continue;
        };
        let Some(body) = &f.body else { continue };
        let direct = contract
            .required_any
            .iter()
            .any(|r| contains_ident(&body.tokens, r));
        // One level of delegation: the body calls a sibling fn in this
        // file that performs the increment (e.g. a shared `record_fft`).
        let delegated = !direct
            && fns.iter().any(|g| {
                g.name != f.name
                    && contains_ident(&body.tokens, &g.name)
                    && g.body.as_ref().is_some_and(|b| {
                        contract
                            .required_any
                            .iter()
                            .any(|r| contains_ident(&b.tokens, r))
                    })
            });
        if !direct && !delegated {
            diags.push(Diagnostic {
                rule: Rule::L3,
                path: path.to_string(),
                line: f.line,
                column: f.column + 1,
                message: format!(
                    "kernel entry point `{}` lacks its idg-obs counter increment (one of [{}]) \
                     — the analytic≡measured contract of DESIGN.md §8 would rot silently",
                    f.name,
                    contract.required_any.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L4 — typed fallibility
// ---------------------------------------------------------------------------

/// Verb prefixes that mark a function as fallible by intent: returning
/// `Option`/`bool` from these is error-signaling without an error type.
const FALLIBLE_VERBS: &[&str] = &["try", "parse", "load", "read", "open", "write", "validate"];

fn l4_typed_errors(path: &str, fns: &[FnItem], _cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.is_pub || f.in_test || f.ret_tokens.is_empty() {
            continue;
        }
        let mut push = |message: String| {
            diags.push(Diagnostic {
                rule: Rule::L4,
                path: path.to_string(),
                line: f.line,
                column: f.column + 1,
                message,
            });
        };
        match outer_type(&f.ret_tokens) {
            Outer::Result { error_last_ident } => {
                if error_last_ident.as_deref() != Some("IdgError") {
                    push(format!(
                        "pub fn `{}` returns Result<_, {}> — library errors must be IdgError",
                        f.name,
                        error_last_ident.as_deref().unwrap_or("?")
                    ));
                }
            }
            Outer::BareResult { fmt_alias } => {
                if !fmt_alias {
                    push(format!(
                        "pub fn `{}` returns a bare `Result` alias — spell the error type \
                         (IdgError) out",
                        f.name
                    ));
                }
            }
            Outer::Option | Outer::Bool => {
                let fallible = FALLIBLE_VERBS.iter().any(|v| matches_prefix(&f.name, v));
                if fallible {
                    push(format!(
                        "pub fn `{}` signals failure via {} — return Result<_, IdgError>",
                        f.name,
                        if matches!(outer_type(&f.ret_tokens), Outer::Bool) {
                            "bool"
                        } else {
                            "Option"
                        }
                    ));
                }
            }
            Outer::Other => {}
        }
    }
}

enum Outer {
    Result { error_last_ident: Option<String> },
    BareResult { fmt_alias: bool },
    Option,
    Bool,
    Other,
}

/// Classify the outermost type of a return-type token run.
fn outer_type(ret: &[TokenTree]) -> Outer {
    // Path head: idents separated by `::` up to the first `<` (or end).
    let mut head: Vec<&str> = Vec::new();
    let mut lt = None;
    for (i, t) in ret.iter().enumerate() {
        match t {
            TokenTree::Ident(id) if id.text == "dyn" || id.text == "impl" => return Outer::Other,
            TokenTree::Ident(id) => head.push(id.text.as_str()),
            TokenTree::Punct(p) if p.ch == ':' => {}
            TokenTree::Punct(p) if p.ch == '<' => {
                lt = Some(i);
                break;
            }
            TokenTree::Punct(p) if p.ch == '&' => {} // references to the payload
            _ => return Outer::Other,
        }
    }
    let Some(name) = head.last() else {
        return Outer::Other;
    };
    match (*name, lt) {
        ("bool", None) => Outer::Bool,
        ("Result", None) => Outer::BareResult {
            fmt_alias: head.contains(&"fmt"),
        },
        ("Option", Some(_)) => Outer::Option,
        ("Result", Some(open)) => {
            // Find the last top-level comma inside the angle brackets.
            let mut depth = 0i32;
            let mut last_comma = None;
            let mut end = ret.len();
            for (i, t) in ret.iter().enumerate().skip(open) {
                match t {
                    TokenTree::Punct(p) if p.ch == '<' => depth += 1,
                    TokenTree::Punct(p) if p.ch == '>' => {
                        let arrow = matches!(
                            ret.get(i.wrapping_sub(1)),
                            Some(TokenTree::Punct(d)) if d.ch == '-' && d.joint
                        );
                        if !arrow {
                            depth -= 1;
                            if depth == 0 {
                                end = i;
                                break;
                            }
                        }
                    }
                    TokenTree::Punct(p) if p.ch == ',' && depth == 1 => last_comma = Some(i),
                    _ => {}
                }
            }
            let error_last_ident = last_comma.and_then(|c| {
                ret[c + 1..end].iter().rev().find_map(|t| match t {
                    TokenTree::Ident(id) => Some(id.text.clone()),
                    _ => None,
                })
            });
            Outer::Result { error_last_ident }
        }
        _ => Outer::Other,
    }
}

// ---------------------------------------------------------------------------
// L5 — forbid(unsafe_code) in crate roots
// ---------------------------------------------------------------------------

fn l5_forbid_unsafe(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut found = false;
    for i in 0..toks.len() {
        if let (Some(TokenTree::Punct(h)), Some(TokenTree::Punct(b)), Some(TokenTree::Group(g))) =
            (toks.get(i), toks.get(i + 1), toks.get(i + 2))
        {
            if h.ch == '#'
                && b.ch == '!'
                && g.delimiter == Delimiter::Bracket
                && contains_ident(&g.tokens, "forbid")
                && contains_ident(&g.tokens, "unsafe_code")
            {
                found = true;
                break;
            }
        }
    }
    if !found {
        diags.push(Diagnostic {
            rule: Rule::L5,
            path: path.to_string(),
            line: 1,
            column: 1,
            message: "library crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// L6 — lock discipline
// ---------------------------------------------------------------------------

/// Guard-producing acquisition methods on the facade primitives.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Kernel entry-point name prefixes (the launch subset of the L3
/// marker set, [`KERNEL_CONTRACTS`]) that must never run while a lock
/// guard binding is live: the kernels fan out across rayon workers and
/// a guard held across the launch serializes — or deadlocks — the
/// fleet.
const LAUNCH_PREFIXES: &[&str] = &[
    "gridder",
    "degridder",
    "fft_subgrids",
    "add_subgrids",
    "split_subgrids",
];

/// Is `toks[i]` an identifier in method-call position (`.ident(...)`)?
fn is_method_call(toks: &[TokenTree], i: usize) -> bool {
    matches!(toks.get(i.wrapping_sub(1)), Some(TokenTree::Punct(p)) if p.ch == '.')
        && matches!(
            toks.get(i + 1),
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
        )
}

/// Sub-rule (a): `Condvar::wait` only *directly* inside a `while`/`loop`
/// body, where the loop re-checks the predicate around it. An
/// if-guarded or bare wait admits lost wakeups — the seeded stream
/// mutant demonstrates the failing schedule under the model checker —
/// and an extra block between the wait and its loop hides the re-check,
/// so it is flagged the same way.
fn l6_wait_in_loop(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            return;
        };
        if id.text == "wait" && is_method_call(toks, i) && !cx.wait_ok {
            diags.push(diag(
                path,
                &toks[i],
                Rule::L6,
                "Condvar::wait outside a while/loop predicate re-check — an if-guarded or \
                 bare wait loses wakeups (DESIGN.md §13)"
                    .to_string(),
            ));
        }
    });
}

/// Sub-rule (b): no raw poison-panicking acquisitions. The facade's
/// `lock()`/`read()`/`write()`/`wait()` return guards directly and
/// recover from poisoning; a `.unwrap()`/`.expect()` chained onto an
/// acquisition is the std::sync idiom that turns one panicked thread
/// into a cascade.
fn l6_raw_acquisition(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            return;
        };
        let acquires = ACQUIRE_METHODS.contains(&id.text.as_str()) || id.text == "wait";
        if !acquires || !is_method_call(toks, i) {
            return;
        }
        let chained_dot = matches!(toks.get(i + 2), Some(TokenTree::Punct(p)) if p.ch == '.');
        let unwraps = matches!(
            toks.get(i + 3),
            Some(TokenTree::Ident(u)) if u.text == "unwrap" || u.text == "expect"
        );
        let called = matches!(
            toks.get(i + 4),
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
        );
        if chained_dot && unwraps && called {
            diags.push(diag(
                path,
                &toks[i],
                Rule::L6,
                format!(
                    "raw `.{}().unwrap()`-style acquisition — poison recovery belongs to \
                     the idg-sync facade; acquire through it (DESIGN.md §13)",
                    id.text
                ),
            ));
        }
    });
}

/// Sub-rule (c): the declared lock-order hierarchy. Within one function
/// body, once a lock of some class is acquired, no lock of an *earlier*
/// (outer) class may be acquired after it — lexical order in the body
/// stands in for hold order, which matches how the workspace's
/// straight-line acquisition sites are written.
fn l6_lock_order(path: &str, fns: &[FnItem], cfg: &Config, diags: &mut Vec<Diagnostic>) {
    if cfg.lock_classes.is_empty() {
        return;
    }
    for f in fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let mut acqs = Vec::new();
        collect_acquisitions(&body.tokens, &cfg.lock_classes, &mut acqs);
        // Deepest class acquired so far; an acquisition that goes back
        // *up* the hierarchy is out of order.
        let mut deepest: Option<(usize, String)> = None;
        for (rank, line, column, ident) in acqs {
            if let Some((held_rank, held_ident)) = &deepest {
                if rank < *held_rank {
                    diags.push(Diagnostic {
                        rule: Rule::L6,
                        path: path.to_string(),
                        line,
                        column: column + 1,
                        message: format!(
                            "lock-order violation in `{}`: `{}` (class `{}`) acquired after \
                             `{}` (class `{}`) — tools/lock-order.toml declares the opposite \
                             order",
                            f.name,
                            ident,
                            cfg.lock_classes[rank].name,
                            held_ident,
                            cfg.lock_classes[*held_rank].name
                        ),
                    });
                }
            }
            if deepest.as_ref().is_none_or(|(r, _)| rank > *r) {
                deepest = Some((rank, ident));
            }
        }
    }
}

/// Lexically ordered `(rank, line, column, ident)` acquisition sites of
/// declared lock classes in a body: `IDENT.lock()` (or
/// `.read()`/`.write()`) and helper calls `ident()` listed in a class.
/// Nested `fn` bodies are skipped — they are scanned as their own items.
fn collect_acquisitions(
    toks: &[TokenTree],
    classes: &[LockClass],
    out: &mut Vec<(usize, usize, usize, String)>,
) {
    let mut skip_fn_body = false;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.text == "fn" => {
                skip_fn_body = true;
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == ';' => {
                skip_fn_body = false;
                i += 1;
            }
            TokenTree::Group(g) => {
                if g.delimiter == Delimiter::Brace && skip_fn_body {
                    skip_fn_body = false;
                } else {
                    collect_acquisitions(&g.tokens, classes, out);
                }
                i += 1;
            }
            TokenTree::Ident(id) => {
                if let Some(rank) = classes
                    .iter()
                    .position(|c| c.idents.iter().any(|n| n == &id.text))
                {
                    let declared = matches!(toks.get(i.wrapping_sub(1)), Some(TokenTree::Ident(p)) if p.text == "fn");
                    let helper_call = matches!(
                        toks.get(i + 1),
                        Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                    );
                    let method_acquire = matches!(
                        toks.get(i + 1),
                        Some(TokenTree::Punct(p)) if p.ch == '.'
                    ) && matches!(
                        toks.get(i + 2),
                        Some(TokenTree::Ident(m)) if ACQUIRE_METHODS.contains(&m.text.as_str())
                    ) && matches!(
                        toks.get(i + 3),
                        Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                    );
                    if !declared && (helper_call || method_acquire) {
                        let span = toks[i].span();
                        out.push((
                            rank,
                            span.start().line,
                            span.start().column,
                            id.text.clone(),
                        ));
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Sub-rule (d): guard liveness across kernel launches. A `let` binding
/// whose initializer acquires a facade guard keeps it live to the end
/// of its scope (or an explicit `drop(name)`); launching a kernel entry
/// point with any guard live is flagged. `idg_obs::`-qualified counter
/// calls share the `add_subgrids` prefix but are bookkeeping, not
/// launches, and are excluded.
fn l6_guard_liveness(path: &str, fns: &[FnItem], diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        scan_guard_scope(&body.tokens, &[], path, diags);
    }
}

fn scan_guard_scope(
    toks: &[TokenTree],
    live_in: &[String],
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut live: Vec<String> = live_in.to_vec();
    // A guard binding becomes live at its statement's `;`, not inside
    // the initializer expression itself.
    let mut pending: Option<String> = None;
    let mut skip_fn_body = false;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.text == "fn" => {
                skip_fn_body = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.text == "let" => {
                let mut j = i + 1;
                if matches!(toks.get(j), Some(TokenTree::Ident(m)) if m.text == "mut") {
                    j += 1;
                }
                if let Some(TokenTree::Ident(name)) = toks.get(j) {
                    let mut k = j + 1;
                    while k < toks.len() {
                        match &toks[k] {
                            TokenTree::Punct(p) if p.ch == ';' => break,
                            TokenTree::Ident(m)
                                if ACQUIRE_METHODS.contains(&m.text.as_str())
                                    && is_method_call(toks, k) =>
                            {
                                pending = Some(name.text.clone());
                                break;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                i += 1;
            }
            TokenTree::Ident(id) if id.text == "drop" => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    if g.delimiter == Delimiter::Parenthesis {
                        if let [TokenTree::Ident(name)] = g.tokens.as_slice() {
                            live.retain(|n| n != &name.text);
                        }
                    }
                }
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == ';' => {
                if let Some(name) = pending.take() {
                    live.push(name);
                }
                skip_fn_body = false;
                i += 1;
            }
            TokenTree::Group(g) => {
                if g.delimiter == Delimiter::Brace && skip_fn_body {
                    skip_fn_body = false;
                } else {
                    scan_guard_scope(&g.tokens, &live, path, diags);
                }
                i += 1;
            }
            TokenTree::Ident(id) => {
                let launches = LAUNCH_PREFIXES.iter().any(|p| matches_prefix(&id.text, p));
                let called = matches!(
                    toks.get(i + 1),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                );
                let declared = matches!(toks.get(i.wrapping_sub(1)), Some(TokenTree::Ident(p)) if p.text == "fn");
                let obs_counter = matches!(
                    toks.get(i.wrapping_sub(1)),
                    Some(TokenTree::Punct(p)) if p.ch == ':'
                ) && matches!(
                    toks.get(i.wrapping_sub(3)),
                    Some(TokenTree::Ident(q)) if q.text == "idg_obs"
                );
                if launches && called && !declared && !obs_counter {
                    if let Some(guard) = live.first() {
                        diags.push(diag(
                            path,
                            &toks[i],
                            Rule::L6,
                            format!(
                                "kernel entry `{}` launched while lock guard `{}` is live — \
                                 release the guard before the launch (DESIGN.md §13)",
                                id.text, guard
                            ),
                        ));
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// L7 — sync facade
// ---------------------------------------------------------------------------

/// `std::sync` items that must come from the `idg-sync` facade instead.
/// Atomics, `Arc`, `OnceLock`, and `mpsc` stay fair game: the model
/// checker interposes on blocking primitives only.
const L7_BANNED_SYNC: &[&str] = &[
    "Mutex",
    "Condvar",
    "RwLock",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

/// Is `toks[i..i+2]` a `::` path separator?
fn path_sep(toks: &[TokenTree], i: usize) -> bool {
    matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.ch == ':' && p.joint)
        && matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.ch == ':')
}

/// L7: every `std::sync::{Mutex,Condvar,RwLock,…}` and
/// `std::thread::scope` mention — import or inline qualified path —
/// must go through `idg-sync`, whose `--cfg idg_model_check` build
/// routes the primitive through the `idg-mc` cooperative scheduler.
fn l7_sync_facade(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            return;
        };
        if id.text != "std" || !path_sep(toks, i + 1) {
            return;
        }
        let Some(TokenTree::Ident(module)) = toks.get(i + 3) else {
            return;
        };
        let banned: &[&str] = match module.text.as_str() {
            "sync" => L7_BANNED_SYNC,
            "thread" => &["scope"],
            _ => return,
        };
        if !path_sep(toks, i + 4) {
            return;
        }
        match toks.get(i + 6) {
            Some(TokenTree::Ident(item)) if banned.contains(&item.text.as_str()) => {
                diags.push(diag(
                    path,
                    &toks[i + 6],
                    Rule::L7,
                    format!(
                        "`{}` taken from std::{} — import it from the idg-sync facade so \
                         the model checker can interpose (DESIGN.md §13)",
                        item.text, module.text
                    ),
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
                flag_banned_in_tree(&g.tokens, banned, &module.text, path, diags);
            }
            _ => {}
        }
    });
}

/// Flag every banned identifier in a `use`-tree group, span-precisely.
/// `Banned as Alias` flags the source name once; an alias that happens
/// to spell a banned name is not a std import and is skipped.
fn flag_banned_in_tree(
    toks: &[TokenTree],
    banned: &[&str],
    module: &str,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for (j, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Ident(item) if banned.contains(&item.text.as_str()) => {
                let is_alias = matches!(
                    toks.get(j.wrapping_sub(1)),
                    Some(TokenTree::Ident(a)) if a.text == "as"
                );
                if !is_alias {
                    diags.push(diag(
                        path,
                        t,
                        Rule::L7,
                        format!(
                            "`{}` taken from std::{} — import it from the idg-sync facade \
                             so the model checker can interpose (DESIGN.md §13)",
                            item.text, module
                        ),
                    ));
                }
            }
            TokenTree::Group(g) => flag_banned_in_tree(&g.tokens, banned, module, path, diags),
            _ => {}
        }
    }
}
