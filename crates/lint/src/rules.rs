//! The five workspace invariants (L1–L5).
//!
//! Each rule is a pure function from a parsed file (plus the scope
//! [`Config`](crate::Config)) to diagnostics. All rules are
//! test-module-aware: nothing fires inside `#[cfg(test)]` items,
//! `#[test]`/`#[should_panic]` functions, or after an inner
//! `#![cfg(test)]` — the exemption the old grep ratchet approximated by
//! truncating files at the first `#[cfg(test)]` line.

use crate::model::{collect_fns, contains_ident, for_each_token, Cx, FnItem};
use crate::{Config, Diagnostic, Rule};
use syn::{Delimiter, LitKind, TokenTree};

/// Run every applicable rule on one parsed file.
pub fn lint_file(path: &str, file: &syn::File, cfg: &Config) -> Vec<Diagnostic> {
    let krate = crate_of(path);
    let mut diags = Vec::new();
    let fns = collect_fns(&file.tokens);
    // L1, L2 float-equality and L4 cover every walked crate by default,
    // so a freshly added crate is in scope before anyone remembers it.
    l1_panic_freedom(path, file, cfg, &mut diags);
    l2_float_eq(path, file, &mut diags);
    if cfg.l2_cast_crates.iter().any(|c| c == krate) {
        l2_narrowing_casts(path, file, cfg, &mut diags);
    }
    if cfg.l3_crates.iter().any(|c| c == krate) {
        l3_kernel_counters(path, &fns, cfg, &mut diags);
    }
    if !cfg.l4_exempt_crates.iter().any(|c| c == krate) {
        l4_typed_errors(path, &fns, cfg, &mut diags);
    }
    if is_crate_root(path) {
        l5_forbid_unsafe(path, file, &mut diags);
    }
    diags
}

/// Is this path a library crate root (`src/lib.rs` of the root package
/// or of any `crates/*` member)?
pub fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// The crate directory name a repo-relative source path belongs to
/// (`crates/<name>/src/...` → `<name>`; the root package → `idg-repro`).
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some("src") => "idg-repro",
        _ => "",
    }
}

fn diag(path: &str, t: &TokenTree, rule: Rule, message: String) -> Diagnostic {
    let span = t.span();
    Diagnostic {
        rule,
        path: path.to_string(),
        line: span.start().line,
        column: span.start().column + 1,
        message,
    }
}

// ---------------------------------------------------------------------------
// L1 — panic freedom
// ---------------------------------------------------------------------------

/// Macros whose expansion is an unconditional panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that put a following `[...]` group in pattern/type position
/// rather than index position.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "return", "if", "else", "match", "where", "impl", "dyn",
    "move", "pub", "fn", "use", "mod", "crate", "super", "static", "const", "type", "struct",
    "enum", "union", "break", "continue", "while", "loop", "for", "unsafe", "await", "yield",
];

fn l1_panic_freedom(path: &str, file: &syn::File, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let boundary = cfg.boundary_index_files.iter().any(|p| p == path);
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        match &toks[i] {
            TokenTree::Ident(id) if id.text == "unwrap" || id.text == "expect" => {
                let after_dot =
                    matches!(toks.get(i.wrapping_sub(1)), Some(TokenTree::Punct(p)) if p.ch == '.');
                let called = matches!(
                    toks.get(i + 1),
                    Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Parenthesis
                );
                if after_dot && called {
                    diags.push(diag(
                        path,
                        &toks[i],
                        Rule::L1,
                        format!(
                            ".{}() in library code — return a typed IdgError instead (DESIGN.md §9)",
                            id.text
                        ),
                    ));
                }
            }
            TokenTree::Ident(id) if PANIC_MACROS.contains(&id.text.as_str()) => {
                if matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.ch == '!') {
                    diags.push(diag(
                        path,
                        &toks[i],
                        Rule::L1,
                        format!(
                            "{}! in library code — return a typed IdgError instead (DESIGN.md §9)",
                            id.text
                        ),
                    ));
                }
            }
            TokenTree::Group(g) if boundary && g.delimiter == Delimiter::Bracket => {
                // Index expression on externally-controlled data: a
                // bracket group directly following an expression.
                let indexes = match toks.get(i.wrapping_sub(1)) {
                    Some(TokenTree::Ident(prev)) => {
                        !NON_INDEX_KEYWORDS.contains(&prev.text.as_str())
                    }
                    Some(TokenTree::Group(prev)) => prev.delimiter != Delimiter::Brace,
                    _ => false,
                };
                if indexes && !g.tokens.is_empty() {
                    diags.push(diag(
                        path,
                        &toks[i],
                        Rule::L1,
                        "unchecked indexing in an input-boundary module — use .get() and return \
                         a typed IdgError on miss"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    });
}

// ---------------------------------------------------------------------------
// L2 — numeric discipline
// ---------------------------------------------------------------------------

fn l2_float_eq(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Punct(p) = &toks[i] else {
            return;
        };
        // `==` is ('=' joint, '='); `!=` is ('!' joint, '='). Detect at
        // the first character so the second never double-reports; a
        // preceding joint punct would make this the tail of `<=`, `+=`…
        let op = match (p.ch, p.joint, toks.get(i + 1)) {
            ('=', true, Some(TokenTree::Punct(q))) if q.ch == '=' => {
                let prev_joint = matches!(
                    toks.get(i.wrapping_sub(1)),
                    Some(TokenTree::Punct(r)) if r.joint
                );
                // `x === y` is not Rust; `a <== b` neither. The only
                // legal joint-prev case is `!=`, handled below.
                if prev_joint {
                    return;
                }
                "=="
            }
            ('!', true, Some(TokenTree::Punct(q))) if q.ch == '=' => "!=",
            _ => return,
        };
        let float_lhs = matches!(
            toks.get(i.wrapping_sub(1)),
            Some(TokenTree::Literal(l)) if l.kind == LitKind::Float
        );
        let float_rhs = matches!(
            toks.get(i + 2),
            Some(TokenTree::Literal(l)) if l.kind == LitKind::Float
        );
        if float_lhs || float_rhs {
            diags.push(diag(
                path,
                &toks[i],
                Rule::L2,
                format!(
                    "float `{op}` against a literal — compare with an explicit tolerance \
                     or bit-pattern (DESIGN.md §6)"
                ),
            ));
        }
    });
}

/// Cast targets that lose precision from the workspace's working types
/// (`f64`, `usize`, `u64`, `i64`).
const NARROW_TARGETS: &[&str] = &["f32", "u32", "u16", "u8", "i32", "i16", "i8"];

fn l2_narrowing_casts(path: &str, file: &syn::File, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for_each_token(&file.tokens, &mut |toks: &[TokenTree], i, cx: &Cx| {
        if cx.in_test {
            return;
        }
        let TokenTree::Ident(id) = &toks[i] else {
            return;
        };
        if id.text != "as" {
            return;
        }
        let Some(TokenTree::Ident(target)) = toks.get(i + 1) else {
            return;
        };
        if !NARROW_TARGETS.contains(&target.text.as_str()) {
            return;
        }
        if let Some(f) = cx.current_fn() {
            if cfg.narrowing_helpers.iter().any(|h| h == f) {
                return;
            }
        }
        diags.push(diag(
            path,
            &toks[i + 1],
            Rule::L2,
            format!(
                "precision-losing `as {}` outside a named narrowing helper — go through \
                 one of [{}] (DESIGN.md §9)",
                target.text,
                cfg.narrowing_helpers.join(", ")
            ),
        ));
    });
}

// ---------------------------------------------------------------------------
// L3 — kernel ↔ observability contract
// ---------------------------------------------------------------------------

/// A kernel-entry-point naming contract: a `pub fn` whose name matches
/// `name_prefix` (exactly, or prefix + `_…`) and whose signature
/// mentions `signature_marker` must increment one of `required_any`.
pub struct KernelContract {
    /// Entry-point name prefix (`gridder` matches `gridder_cpu`…).
    pub name_prefix: &'static str,
    /// Type that must appear in the argument list for the contract to
    /// apply (filters out unrelated helpers sharing the prefix).
    pub signature_marker: &'static str,
    /// `idg-obs` counter calls, any one of which satisfies the contract.
    pub required_any: &'static [&'static str],
}

/// The kernel naming contracts enforced in `crates/kernels`/`crates/gpusim`.
pub const KERNEL_CONTRACTS: &[KernelContract] = &[
    KernelContract {
        name_prefix: "gridder",
        signature_marker: "KernelData",
        required_any: &["add_kernel"],
    },
    KernelContract {
        name_prefix: "degridder",
        signature_marker: "KernelData",
        required_any: &["add_kernel"],
    },
    KernelContract {
        name_prefix: "fft_subgrids",
        signature_marker: "SubgridArray",
        required_any: &["add_subgrids_fft", "add_subgrids_ifft"],
    },
    KernelContract {
        name_prefix: "add_subgrids",
        signature_marker: "SubgridArray",
        required_any: &["add_subgrids_added"],
    },
    KernelContract {
        name_prefix: "split_subgrids",
        signature_marker: "SubgridArray",
        required_any: &["add_subgrids_split"],
    },
    // the pass-level kernel cache: every lookup must surface as a
    // hit or a miss in the observability counters, or the proxy's
    // expected-lookup self-validation rots silently
    KernelContract {
        name_prefix: "geometry",
        signature_marker: "GeometryKey",
        required_any: &["add_cache_hits", "add_cache_misses"],
    },
    KernelContract {
        name_prefix: "phasors",
        signature_marker: "PhasorKey",
        required_any: &["add_cache_hits", "add_cache_misses"],
    },
    // the fleet health tracker: every job outcome fed to a breaker
    // must surface in the health counters, or a silent tracker makes
    // the chaos suite's "breaker observably trips" assertion vacuous
    KernelContract {
        name_prefix: "record_outcome",
        signature_marker: "JobOutcome",
        required_any: &["add_health_outcomes", "add_breaker_trips"],
    },
    // the streaming scheduler: every chunk it ingests (and every
    // window-constrained admission) must surface in the stream
    // counters, or the soak suite's backpressure assertions go blind
    KernelContract {
        name_prefix: "run_stream",
        signature_marker: "Chunk",
        required_any: &["add_chunks_ingested", "add_backpressure_waits"],
    },
];

fn matches_prefix(name: &str, prefix: &str) -> bool {
    name == prefix
        || name
            .strip_prefix(prefix)
            .is_some_and(|r| r.starts_with('_'))
}

fn l3_kernel_counters(path: &str, fns: &[FnItem], _cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.is_pub || f.in_test {
            continue;
        }
        let Some(contract) = KERNEL_CONTRACTS.iter().find(|c| {
            matches_prefix(&f.name, c.name_prefix)
                && contains_ident(&f.arg_tokens, c.signature_marker)
        }) else {
            continue;
        };
        let Some(body) = &f.body else { continue };
        let direct = contract
            .required_any
            .iter()
            .any(|r| contains_ident(&body.tokens, r));
        // One level of delegation: the body calls a sibling fn in this
        // file that performs the increment (e.g. a shared `record_fft`).
        let delegated = !direct
            && fns.iter().any(|g| {
                g.name != f.name
                    && contains_ident(&body.tokens, &g.name)
                    && g.body.as_ref().is_some_and(|b| {
                        contract
                            .required_any
                            .iter()
                            .any(|r| contains_ident(&b.tokens, r))
                    })
            });
        if !direct && !delegated {
            diags.push(Diagnostic {
                rule: Rule::L3,
                path: path.to_string(),
                line: f.line,
                column: f.column + 1,
                message: format!(
                    "kernel entry point `{}` lacks its idg-obs counter increment (one of [{}]) \
                     — the analytic≡measured contract of DESIGN.md §8 would rot silently",
                    f.name,
                    contract.required_any.join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L4 — typed fallibility
// ---------------------------------------------------------------------------

/// Verb prefixes that mark a function as fallible by intent: returning
/// `Option`/`bool` from these is error-signaling without an error type.
const FALLIBLE_VERBS: &[&str] = &["try", "parse", "load", "read", "open", "write", "validate"];

fn l4_typed_errors(path: &str, fns: &[FnItem], _cfg: &Config, diags: &mut Vec<Diagnostic>) {
    for f in fns {
        if !f.is_pub || f.in_test || f.ret_tokens.is_empty() {
            continue;
        }
        let mut push = |message: String| {
            diags.push(Diagnostic {
                rule: Rule::L4,
                path: path.to_string(),
                line: f.line,
                column: f.column + 1,
                message,
            });
        };
        match outer_type(&f.ret_tokens) {
            Outer::Result { error_last_ident } => {
                if error_last_ident.as_deref() != Some("IdgError") {
                    push(format!(
                        "pub fn `{}` returns Result<_, {}> — library errors must be IdgError",
                        f.name,
                        error_last_ident.as_deref().unwrap_or("?")
                    ));
                }
            }
            Outer::BareResult { fmt_alias } => {
                if !fmt_alias {
                    push(format!(
                        "pub fn `{}` returns a bare `Result` alias — spell the error type \
                         (IdgError) out",
                        f.name
                    ));
                }
            }
            Outer::Option | Outer::Bool => {
                let fallible = FALLIBLE_VERBS.iter().any(|v| matches_prefix(&f.name, v));
                if fallible {
                    push(format!(
                        "pub fn `{}` signals failure via {} — return Result<_, IdgError>",
                        f.name,
                        if matches!(outer_type(&f.ret_tokens), Outer::Bool) {
                            "bool"
                        } else {
                            "Option"
                        }
                    ));
                }
            }
            Outer::Other => {}
        }
    }
}

enum Outer {
    Result { error_last_ident: Option<String> },
    BareResult { fmt_alias: bool },
    Option,
    Bool,
    Other,
}

/// Classify the outermost type of a return-type token run.
fn outer_type(ret: &[TokenTree]) -> Outer {
    // Path head: idents separated by `::` up to the first `<` (or end).
    let mut head: Vec<&str> = Vec::new();
    let mut lt = None;
    for (i, t) in ret.iter().enumerate() {
        match t {
            TokenTree::Ident(id) if id.text == "dyn" || id.text == "impl" => return Outer::Other,
            TokenTree::Ident(id) => head.push(id.text.as_str()),
            TokenTree::Punct(p) if p.ch == ':' => {}
            TokenTree::Punct(p) if p.ch == '<' => {
                lt = Some(i);
                break;
            }
            TokenTree::Punct(p) if p.ch == '&' => {} // references to the payload
            _ => return Outer::Other,
        }
    }
    let Some(name) = head.last() else {
        return Outer::Other;
    };
    match (*name, lt) {
        ("bool", None) => Outer::Bool,
        ("Result", None) => Outer::BareResult {
            fmt_alias: head.contains(&"fmt"),
        },
        ("Option", Some(_)) => Outer::Option,
        ("Result", Some(open)) => {
            // Find the last top-level comma inside the angle brackets.
            let mut depth = 0i32;
            let mut last_comma = None;
            let mut end = ret.len();
            for (i, t) in ret.iter().enumerate().skip(open) {
                match t {
                    TokenTree::Punct(p) if p.ch == '<' => depth += 1,
                    TokenTree::Punct(p) if p.ch == '>' => {
                        let arrow = matches!(
                            ret.get(i.wrapping_sub(1)),
                            Some(TokenTree::Punct(d)) if d.ch == '-' && d.joint
                        );
                        if !arrow {
                            depth -= 1;
                            if depth == 0 {
                                end = i;
                                break;
                            }
                        }
                    }
                    TokenTree::Punct(p) if p.ch == ',' && depth == 1 => last_comma = Some(i),
                    _ => {}
                }
            }
            let error_last_ident = last_comma.and_then(|c| {
                ret[c + 1..end].iter().rev().find_map(|t| match t {
                    TokenTree::Ident(id) => Some(id.text.clone()),
                    _ => None,
                })
            });
            Outer::Result { error_last_ident }
        }
        _ => Outer::Other,
    }
}

// ---------------------------------------------------------------------------
// L5 — forbid(unsafe_code) in crate roots
// ---------------------------------------------------------------------------

fn l5_forbid_unsafe(path: &str, file: &syn::File, diags: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut found = false;
    for i in 0..toks.len() {
        if let (Some(TokenTree::Punct(h)), Some(TokenTree::Punct(b)), Some(TokenTree::Group(g))) =
            (toks.get(i), toks.get(i + 1), toks.get(i + 2))
        {
            if h.ch == '#'
                && b.ch == '!'
                && g.delimiter == Delimiter::Bracket
                && contains_ident(&g.tokens, "forbid")
                && contains_ident(&g.tokens, "unsafe_code")
            {
                found = true;
                break;
            }
        }
    }
    if !found {
        diags.push(Diagnostic {
            rule: Rule::L5,
            path: path.to_string(),
            line: 1,
            column: 1,
            message: "library crate root lacks `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}
