//! # idg-lint — workspace static analysis with span-level invariant ratchets
//!
//! The paper's headline claims rest on numerical discipline (the f32
//! kernels must track the f64 reference) and on operation accounting
//! that the observability layer (DESIGN.md §8) validates *at runtime*.
//! This crate is the *static* half of that contract: a `syn`-based pass
//! over every library source file enforcing five domain invariants with
//! `file:line:col` diagnostics and a committed, shrink-only allowlist
//! (`tools/lint-allowlist.toml`):
//!
//! * **L1 — panic freedom**: no `.unwrap()` / `.expect()` /
//!   `panic!`-family macros in library code, and no unchecked indexing
//!   in input-boundary modules; fallible paths return typed
//!   [`IdgError`](../idg_types) values. Subsumes the old
//!   `tools/panic_audit.sh` grep ratchet, now comment-, string- and
//!   test-module-aware via the token tree.
//! * **L2 — numeric discipline**: no float `==`/`!=` against literals,
//!   and no precision-losing `as` casts in the numeric-core crates
//!   outside named narrowing helpers.
//! * **L3 — kernel ↔ observability contract**: every kernel entry point
//!   in `crates/kernels`/`crates/gpusim` must increment its `idg-obs`
//!   counter, so the analytic≡measured validation cannot rot when a new
//!   kernel is added.
//! * **L4 — typed fallibility**: `pub fn`s that fail do so through
//!   `Result<_, IdgError>` — no foreign error types, no
//!   `Option`/`bool`-as-error on fallibly-named functions.
//! * **L5 — `#![forbid(unsafe_code)]`** in every library crate root.
//! * **L6 — lock discipline**: `Condvar::wait` only directly inside a
//!   `while`/`loop` body where its predicate is re-checked; no raw
//!   poison-panicking `.lock().unwrap()`-style acquisitions; the
//!   declared lock-order hierarchy (`tools/lock-order.toml`) respected;
//!   and no kernel entry point launched while a lock guard binding is
//!   live.
//! * **L7 — sync facade**: concurrency primitives (`Mutex`, `Condvar`,
//!   `RwLock`, `thread::scope`) come from the `idg-sync` facade, never
//!   `std::sync`/`std::thread` directly — the facade is what lets the
//!   model checker (`idg-mc`) take over every primitive under
//!   `--cfg idg_model_check`. The facade crates themselves (`sync`,
//!   `mc`) are the one sanctioned home of the std primitives and are
//!   exempt.
//!
//! Run as `cargo run -p idg-lint` (CI mode; non-zero on any drift in
//! either direction) or `cargo run -p idg-lint -- --update-allowlist`
//! after shrinking the residue. L6/L7 launched with a zero-entry
//! allowlist budget: no residual sites existed, so none may appear.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lockorder;
pub mod model;
pub mod rules;
pub mod walk;

use allowlist::Allowlist;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Identifier of one lint rule.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panic freedom in library code.
    L1,
    /// Numeric discipline (float equality, narrowing casts).
    L2,
    /// Kernel ↔ observability counter contract.
    L3,
    /// Typed fallibility (`Result<_, IdgError>`).
    L4,
    /// `#![forbid(unsafe_code)]` in crate roots.
    L5,
    /// Lock discipline (wait-in-loop, facade acquisition, lock order,
    /// guard liveness across kernel launches).
    L6,
    /// Sync facade: concurrency primitives from `idg-sync`, not std.
    L7,
}

impl Rule {
    /// Parse a rule name as serialized in the allowlist.
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "L1" => Some(Rule::L1),
            "L2" => Some(Rule::L2),
            "L3" => Some(Rule::L3),
            "L4" => Some(Rule::L4),
            "L5" => Some(Rule::L5),
            "L6" => Some(Rule::L6),
            "L7" => Some(Rule::L7),
            _ => None,
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
        })
    }
}

/// One violation, anchored to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative, `/`-separated source path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
    /// Human-readable description with the suggested fix.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.column, self.rule, self.message
        )
    }
}

/// Failures of the lint pass itself (not rule violations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintError {
    /// Filesystem failure.
    Io {
        /// Offending path.
        path: String,
        /// OS error description.
        message: String,
    },
    /// A source file did not lex (span-aware).
    Parse {
        /// Offending path.
        path: String,
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Lexer error description.
        message: String,
    },
    /// The committed allowlist is malformed.
    Allowlist {
        /// 1-based line in `tools/lint-allowlist.toml`.
        line: usize,
        /// Parse error description.
        message: String,
    },
    /// The committed lock-order hierarchy is malformed.
    LockOrder {
        /// 1-based line in `tools/lock-order.toml`.
        line: usize,
        /// Parse error description.
        message: String,
    },
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io { path, message } => write!(f, "io error on {path}: {message}"),
            LintError::Parse {
                path,
                line,
                column,
                message,
            } => write!(f, "{path}:{line}:{column}: parse error: {message}"),
            LintError::Allowlist { line, message } => {
                write!(f, "tools/lint-allowlist.toml:{line}: {message}")
            }
            LintError::LockOrder { line, message } => {
                write!(f, "tools/lock-order.toml:{line}: {message}")
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Rule scoping for a workspace. [`Config::workspace`] is the committed
/// policy; fixture tests construct narrower ones.
#[derive(Clone, Debug)]
pub struct Config {
    /// Files where L1 additionally flags unchecked indexing (modules
    /// that parse externally-controlled bytes).
    pub boundary_index_files: Vec<String>,
    /// Crates whose narrowing `as` casts L2 polices (the numeric core).
    pub l2_cast_crates: Vec<String>,
    /// Function names allowed to narrow (the named helpers).
    pub narrowing_helpers: Vec<String>,
    /// Crates under the L3 kernel-counter contract.
    pub l3_crates: Vec<String>,
    /// Crates exempt from L4 (dev tooling with its own error type).
    pub l4_exempt_crates: Vec<String>,
    /// Crates exempt from L6/L7: the sync facade and the model checker
    /// are the sanctioned home of the raw std primitives.
    pub sync_exempt_crates: Vec<String>,
    /// The declared lock-order hierarchy for L6 sub-rule (c),
    /// outermost-first (loaded from `tools/lock-order.toml`).
    pub lock_classes: Vec<lockorder::LockClass>,
}

impl Config {
    /// The committed workspace policy. The lock-order hierarchy is
    /// file-borne config, not code: [`run_check`]/[`run_update`] load
    /// it from [`LOCK_ORDER_PATH`] on top of this.
    pub fn workspace() -> Self {
        Config {
            boundary_index_files: vec!["crates/telescope/src/io.rs".to_string()],
            l2_cast_crates: vec!["kernels".to_string(), "fft".to_string(), "math".to_string()],
            narrowing_helpers: vec![
                "from_f64".to_string(),
                "from_usize".to_string(),
                "cast".to_string(),
                "narrow_f32".to_string(),
            ],
            l3_crates: vec![
                "kernels".to_string(),
                "gpusim".to_string(),
                "stream".to_string(),
            ],
            // lint has its own error type; mc mirrors std::thread's
            // API, where join's error *is* the panic payload.
            l4_exempt_crates: vec!["lint".to_string(), "mc".to_string()],
            sync_exempt_crates: vec!["sync".to_string(), "mc".to_string()],
            lock_classes: Vec::new(),
        }
    }
}

/// Lint one source file. `path` is the repo-relative path used for
/// scoping (which crate, boundary file, crate root) and diagnostics.
pub fn lint_source(path: &str, src: &str, cfg: &Config) -> Result<Vec<Diagnostic>, LintError> {
    let file = syn::parse_file(src).map_err(|e| LintError::Parse {
        path: path.to_string(),
        line: e.span.line,
        column: e.span.column + 1,
        message: e.message,
    })?;
    Ok(rules::lint_file(path, &file, cfg))
}

/// Lint every library source under `root`. Diagnostics come back sorted
/// by path, then line, then column, then rule — deterministically.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, LintError> {
    let mut diags = Vec::new();
    for rel in walk::workspace_sources(root)? {
        let full = root.join(&rel);
        let src = std::fs::read_to_string(&full).map_err(|e| LintError::Io {
            path: rel.clone(),
            message: e.to_string(),
        })?;
        diags.extend(lint_source(&rel, &src, cfg)?);
    }
    diags.sort_by(|a, b| {
        (&a.path, a.line, a.column, a.rule).cmp(&(&b.path, b.line, b.column, b.rule))
    });
    Ok(diags)
}

/// Aggregate diagnostics into per-`(path, rule)` counts.
pub fn count_by_key(diags: &[Diagnostic]) -> BTreeMap<allowlist::Key, usize> {
    let mut counts: BTreeMap<allowlist::Key, usize> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.path.clone(), d.rule)).or_insert(0) += 1;
    }
    counts
}

/// Outcome of a CI-mode run: the report text and the process exit code.
#[derive(Clone, Debug)]
pub struct Report {
    /// Human-readable report (diagnostics + summary), deterministic.
    pub text: String,
    /// 0 = clean (modulo allowlist), 1 = drift in either direction.
    pub status: i32,
}

/// Compare workspace diagnostics against the committed allowlist.
///
/// Both directions fail: counts above budget list every offending span;
/// counts below budget demand a ratchet update so the fix is locked in.
pub fn check_against_allowlist(diags: &[Diagnostic], allow: &Allowlist) -> Report {
    let counts = count_by_key(diags);
    let mut text = String::new();
    let mut status = 0;
    // Over-budget keys, in (path, rule) order with every span listed.
    for (key, &actual) in &counts {
        let budget = allow.budgets.get(key).copied().unwrap_or(0);
        if actual > budget {
            status = 1;
            for d in diags
                .iter()
                .filter(|d| (&d.path, d.rule) == (&key.0, key.1))
            {
                let _ = writeln!(text, "{d}");
            }
            let _ = writeln!(
                text,
                "idg-lint: {}: {} {} site(s), allowlisted {}",
                key.0, actual, key.1, budget
            );
        }
    }
    // Under-budget keys: the ratchet must shrink.
    for (key, &budget) in &allow.budgets {
        let actual = counts.get(key).copied().unwrap_or(0);
        if actual < budget {
            status = 1;
            let _ = writeln!(
                text,
                "idg-lint: {}: allowlist grants {} {} site(s) but only {} remain — run \
                 `cargo run -p idg-lint -- --update-allowlist` to ratchet down",
                key.0, budget, key.1, actual
            );
        }
    }
    if status == 0 {
        let _ = writeln!(
            text,
            "idg-lint: ok ({} residual site(s) within the {}-entry allowlist)",
            counts.values().sum::<usize>(),
            allow.budgets.len()
        );
    }
    Report { text, status }
}

/// Path of the committed allowlist below the workspace root.
pub const ALLOWLIST_PATH: &str = "tools/lint-allowlist.toml";

/// Path of the committed lock-order hierarchy below the workspace root.
pub const LOCK_ORDER_PATH: &str = "tools/lock-order.toml";

/// Load the committed lock-order hierarchy (absent file = no declared
/// hierarchy, so L6 sub-rule (c) has nothing to enforce).
pub fn load_lock_order(root: &Path) -> Result<Vec<lockorder::LockClass>, LintError> {
    let path = root.join(LOCK_ORDER_PATH);
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| LintError::Io {
        path: LOCK_ORDER_PATH.to_string(),
        message: e.to_string(),
    })?;
    lockorder::parse_lock_order(&text)
}

/// The committed policy plus the file-borne lock-order hierarchy.
pub fn workspace_config(root: &Path) -> Result<Config, LintError> {
    let mut cfg = Config::workspace();
    cfg.lock_classes = load_lock_order(root)?;
    Ok(cfg)
}

/// Load the committed allowlist (absent file = empty budgets).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, LintError> {
    let path = root.join(ALLOWLIST_PATH);
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| LintError::Io {
        path: ALLOWLIST_PATH.to_string(),
        message: e.to_string(),
    })?;
    Allowlist::parse(&text)
}

/// The full CI-mode run: lint, compare, report.
pub fn run_check(root: &Path) -> Result<Report, LintError> {
    let diags = lint_workspace(root, &workspace_config(root)?)?;
    let allow = load_allowlist(root)?;
    Ok(check_against_allowlist(&diags, &allow))
}

/// Regenerate the allowlist from the current workspace state.
pub fn run_update(root: &Path) -> Result<Report, LintError> {
    let diags = lint_workspace(root, &workspace_config(root)?)?;
    let allow = Allowlist::from_counts(&count_by_key(&diags));
    let path = root.join(ALLOWLIST_PATH);
    std::fs::write(&path, allow.to_toml()).map_err(|e| LintError::Io {
        path: ALLOWLIST_PATH.to_string(),
        message: e.to_string(),
    })?;
    Ok(Report {
        text: format!(
            "idg-lint: allowlist regenerated ({} entries, {} residual sites)\n",
            allow.budgets.len(),
            allow.total()
        ),
        status: 0,
    })
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
