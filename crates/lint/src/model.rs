//! Lightweight item recognition over `syn` token trees.
//!
//! The offline `syn` shim exposes the spanned token-tree layer (see
//! `shims/syn`); this module rebuilds the two structural facts the rules
//! need on top of it:
//!
//! * **test exemption** — which regions of a file are test code
//!   (`#[cfg(test)]` items, `#[test]`/`#[should_panic]` functions, and
//!   everything after an inner `#![cfg(test)]`), so library-only rules
//!   never fire inside tests;
//! * **function items** — every `fn` with its name, visibility,
//!   signature/return-type token runs and body group, so the contract
//!   rules (L3/L4) and the named-narrowing-helper exemption (L2) can
//!   reason per function.
//!
//! Attribute groups themselves (`#[derive(...)]`, `#[doc = "..."]`) are
//! *not* walked as expressions: their tokens are metadata, not code.

use syn::{Delimiter, Group, TokenTree};

/// Context handed to every token visit.
#[derive(Clone, Debug)]
pub struct Cx {
    /// Inside test-exempt code (`#[cfg(test)]` module, `#[test]` fn, …).
    pub in_test: bool,
    /// Names of the enclosing functions, innermost last.
    pub fn_stack: Vec<String>,
    /// The innermost enclosing brace group is the body of a
    /// `while`/`loop` — the only position where a `Condvar::wait` gets
    /// its predicate re-checked (L6 sub-rule (a)). An `if` body, a
    /// plain block, or a function body resets this: a wait there is
    /// if-guarded or bare even when an outer loop exists.
    pub wait_ok: bool,
}

impl Cx {
    fn root() -> Self {
        Cx {
            in_test: false,
            fn_stack: Vec::new(),
            wait_ok: false,
        }
    }

    /// The innermost enclosing function name, if any.
    pub fn current_fn(&self) -> Option<&str> {
        self.fn_stack.last().map(String::as_str)
    }
}

/// Does an attribute token run (the tokens *inside* the `[...]` of an
/// attribute) mark the annotated item as lint-exempt?
///
/// Recognized: `test`, `should_panic`, `cfg(test)`, and `cfg(...)` whose
/// argument list mentions `test` anywhere (covers `cfg(any(test, ...))`).
/// `cfg(idg_model_check)` is exempt on the same footing: it gates
/// model-check-only scaffolding (seeded concurrency mutants, schedule
/// harness hooks) that is verification code, not library code — the
/// mutants exist precisely to violate the concurrency rules so the
/// dynamic checker can demonstrate the failure.
fn attr_is_test(attr_tokens: &[TokenTree]) -> bool {
    match attr_tokens.first() {
        Some(TokenTree::Ident(i)) if i.text == "test" || i.text == "should_panic" => true,
        Some(TokenTree::Ident(i)) if i.text == "cfg" => attr_tokens.iter().any(|t| match t {
            TokenTree::Group(g) => {
                contains_ident(&g.tokens, "test") || contains_ident(&g.tokens, "idg_model_check")
            }
            _ => false,
        }),
        _ => false,
    }
}

/// Recursively search a token run for an identifier.
pub fn contains_ident(tokens: &[TokenTree], name: &str) -> bool {
    tokens.iter().any(|t| match t {
        TokenTree::Ident(i) => i.text == name,
        TokenTree::Group(g) => contains_ident(&g.tokens, name),
        _ => false,
    })
}

/// Walk every token of `tokens` depth-first, calling
/// `visit(level_tokens, index, cx)` once per token with the sibling
/// slice it lives in (so rules can pattern-match neighborhoods).
/// Attribute groups are skipped; test regions carry `cx.in_test`.
pub fn for_each_token<F>(tokens: &[TokenTree], visit: &mut F)
where
    F: FnMut(&[TokenTree], usize, &Cx),
{
    walk_level(tokens, &Cx::root(), visit);
}

fn walk_level<F>(tokens: &[TokenTree], cx: &Cx, visit: &mut F)
where
    F: FnMut(&[TokenTree], usize, &Cx),
{
    let mut cx_here = cx.clone();
    // `pending_test` marks the item introduced by a preceding test
    // attribute; it covers every token up to (and including) the item's
    // brace-group body, or up to `;` for body-less items.
    let mut pending_test = false;
    // Name of a `fn` whose body group is still ahead at this level.
    let mut pending_fn: Option<String> = None;
    // A `while`/`loop` keyword whose body brace is still ahead: that
    // brace is a loop body, the one place `Condvar::wait` may live.
    let mut pending_loop = false;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.ch == '#' => {
                // Attribute: `#[...]` (outer) or `#![...]` (inner).
                let inner = matches!(&tokens.get(i + 1), Some(TokenTree::Punct(q)) if q.ch == '!');
                let group_idx = if inner { i + 2 } else { i + 1 };
                if let Some(TokenTree::Group(g)) = tokens.get(group_idx) {
                    if g.delimiter == Delimiter::Bracket {
                        if attr_is_test(&g.tokens) {
                            if inner {
                                // `#![cfg(test)]`: the rest of this level
                                // is test code.
                                cx_here.in_test = true;
                            } else {
                                pending_test = true;
                            }
                        }
                        // Attribute tokens are metadata — do not visit.
                        i = group_idx + 1;
                        continue;
                    }
                }
                visit(tokens, i, &cx_here);
                i += 1;
            }
            TokenTree::Ident(id) if id.text == "fn" => {
                visit(tokens, i, &cx_here);
                if let Some(TokenTree::Ident(name)) = tokens.get(i + 1) {
                    pending_fn = Some(name.text.clone());
                }
                pending_loop = false;
                i += 1;
            }
            TokenTree::Ident(id) if id.text == "loop" || id.text == "while" => {
                visit(tokens, i, &cx_here);
                pending_loop = true;
                i += 1;
            }
            TokenTree::Punct(p) if p.ch == ';' => {
                visit(tokens, i, &cx_here);
                pending_test = false;
                pending_fn = None;
                pending_loop = false;
                i += 1;
            }
            TokenTree::Group(g) => {
                visit(tokens, i, &cx_here);
                let mut sub = cx_here.clone();
                sub.in_test |= pending_test;
                if g.delimiter == Delimiter::Brace {
                    if let Some(name) = pending_fn.take() {
                        sub.fn_stack.push(name);
                    }
                    // The brace is a loop body iff a `while`/`loop`
                    // introduced it; any other brace (fn body, `if`,
                    // `match`, plain block) resets wait-position.
                    sub.wait_ok = pending_loop;
                    pending_loop = false;
                    // A brace group closes the pending item.
                    walk_level(&g.tokens, &sub, visit);
                    pending_test = false;
                } else {
                    // Args/index/tuple groups between an attribute (or a
                    // fn keyword, or a loop condition) and the body
                    // inherit the pending flags but do not consume them.
                    let keep_fn = pending_fn.clone();
                    walk_level(&g.tokens, &sub, visit);
                    pending_fn = keep_fn;
                }
                i += 1;
            }
            _ => {
                visit(tokens, i, &cx_here);
                i += 1;
            }
        }
    }
}

/// A recognized `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Declared with `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Tokens of the argument list (inside the parentheses).
    pub arg_tokens: Vec<TokenTree>,
    /// Tokens after `->` up to the body / `where` / `;` (empty when the
    /// function returns `()` implicitly).
    pub ret_tokens: Vec<TokenTree>,
    /// The body group (absent for trait-method declarations).
    pub body: Option<Group>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based column of the `fn` keyword.
    pub column: usize,
    /// Whether the item lives in test-exempt code.
    pub in_test: bool,
}

/// Collect every `fn` item in the file, however deeply nested.
pub fn collect_fns(tokens: &[TokenTree]) -> Vec<FnItem> {
    let mut out = Vec::new();
    collect_fns_level(tokens, false, &mut out);
    out
}

fn collect_fns_level(tokens: &[TokenTree], in_test: bool, out: &mut Vec<FnItem>) {
    let mut pending_test = false;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.ch == '#' => {
                let inner = matches!(&tokens.get(i + 1), Some(TokenTree::Punct(q)) if q.ch == '!');
                let group_idx = if inner { i + 2 } else { i + 1 };
                if let Some(TokenTree::Group(g)) = tokens.get(group_idx) {
                    if g.delimiter == Delimiter::Bracket {
                        if attr_is_test(&g.tokens) {
                            pending_test = true;
                        }
                        i = group_idx + 1;
                        continue;
                    }
                }
                i += 1;
            }
            TokenTree::Ident(id) if id.text == "fn" => {
                let (item, next) = parse_fn(tokens, i, in_test || pending_test);
                if let Some(f) = item {
                    if let Some(body) = &f.body {
                        collect_fns_level(&body.tokens, f.in_test, out);
                    }
                    out.push(f);
                }
                pending_test = false;
                i = next;
            }
            TokenTree::Punct(p) if p.ch == ';' => {
                pending_test = false;
                i += 1;
            }
            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => {
                collect_fns_level(&g.tokens, in_test || pending_test, out);
                pending_test = false;
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Parse one `fn` item starting at `tokens[at]` (the `fn` keyword).
/// Returns the item (None if malformed) and the index to resume at.
fn parse_fn(tokens: &[TokenTree], at: usize, in_test: bool) -> (Option<FnItem>, usize) {
    let span = tokens[at].span();
    let Some(TokenTree::Ident(name)) = tokens.get(at + 1) else {
        return (None, at + 1);
    };
    // Visibility: scan backwards over `pub`, `pub(crate)` and qualifiers
    // like `const`/`async`/`unsafe`/`extern "C"` preceding `fn`.
    let mut is_pub = false;
    let mut back = at;
    while back > 0 {
        back -= 1;
        match &tokens[back] {
            TokenTree::Ident(i)
                if matches!(i.text.as_str(), "const" | "async" | "unsafe" | "extern") => {}
            TokenTree::Ident(i) if i.text == "pub" => {
                is_pub = true;
                break;
            }
            TokenTree::Literal(_) => {} // the "C" of `extern "C"`
            TokenTree::Group(g) if g.delimiter == Delimiter::Parenthesis => {
                // possibly the `(crate)` of `pub(crate)` — keep looking
            }
            _ => break,
        }
    }

    let mut i = at + 2;
    // Skip generics `<...>`, arrow-aware (`Fn() -> T` bounds contain `>`
    // that must not close the list).
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.ch == '<' {
            let mut depth = 0i32;
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Punct(q) if q.ch == '<' => depth += 1,
                    TokenTree::Punct(q) if q.ch == '>' => {
                        // `->` inside bounds: the `>` belongs to an arrow.
                        let is_arrow = matches!(
                            tokens.get(i.wrapping_sub(1)),
                            Some(TokenTree::Punct(d)) if d.ch == '-' && d.joint
                        );
                        if !is_arrow {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    // Argument list.
    let Some(TokenTree::Group(args)) = tokens.get(i) else {
        return (None, at + 2);
    };
    if args.delimiter != Delimiter::Parenthesis {
        return (None, at + 2);
    }
    let arg_tokens = args.tokens.clone();
    i += 1;
    // Return type.
    let mut ret_tokens = Vec::new();
    if let (Some(TokenTree::Punct(d)), Some(TokenTree::Punct(gt))) =
        (tokens.get(i), tokens.get(i + 1))
    {
        if d.ch == '-' && d.joint && gt.ch == '>' {
            i += 2;
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Group(g) if g.delimiter == Delimiter::Brace => break,
                    TokenTree::Punct(p) if p.ch == ';' => break,
                    TokenTree::Ident(w) if w.text == "where" => break,
                    t => {
                        ret_tokens.push(t.clone());
                        i += 1;
                    }
                }
            }
        }
    }
    // Skip a where-clause if present.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter == Delimiter::Brace => break,
            TokenTree::Punct(p) if p.ch == ';' => break,
            _ => i += 1,
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter == Delimiter::Brace => {
            i += 1;
            Some(g.clone())
        }
        _ => {
            i += 1; // the `;`
            None
        }
    };
    (
        Some(FnItem {
            name: name.text.clone(),
            is_pub,
            arg_tokens,
            ret_tokens,
            body,
            line: span.start().line,
            column: span.start().column,
            in_test,
        }),
        i,
    )
}
