//! The shrink-only allowlist ratchet (`tools/lint-allowlist.toml`).
//!
//! Residual violations are budgeted per `(rule, file)` pair. The file is
//! a ratchet in both directions:
//!
//! * a file **over** its budget fails the build with every offending
//!   span listed — new violations cannot land;
//! * a file **under** its budget also fails, telling the author to run
//!   `--update-allowlist` — fixed sites are locked in and cannot
//!   silently regress later.
//!
//! Serialization is deterministic (entries sorted by path, then rule;
//! one canonical formatting) so CI failures always show a stable,
//! reviewable delta.

use crate::{LintError, Rule};
use std::collections::BTreeMap;

/// Budget key: repo-relative path plus rule. Ordered by path first so
/// the serialized file and all diff output group by file.
pub type Key = (String, Rule);

/// A parsed allowlist: budget per `(path, rule)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Violation budget per key.
    pub budgets: BTreeMap<Key, usize>,
}

const HEADER: &str = "\
# idg-lint allowlist — the shrink-only ratchet for residual rule
# violations (see DESIGN.md §9). Regenerate with
#
#     cargo run -p idg-lint -- --update-allowlist
#
# Entries are sorted by path, then rule; counts may only go down.
";

impl Allowlist {
    /// Parse the committed allowlist. The format is the `[[allow]]`
    /// array-of-tables subset of TOML written by [`Allowlist::to_toml`].
    pub fn parse(text: &str) -> Result<Self, LintError> {
        let mut budgets = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<Rule>, Option<usize>)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let bad = |msg: &str| LintError::Allowlist {
                line: lineno + 1,
                message: msg.to_string(),
            };
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                Self::finish_entry(&mut cur, &mut budgets, lineno)?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(bad("expected `key = value`"));
            };
            let entry = cur.as_mut().ok_or_else(|| bad("value outside [[allow]]"))?;
            let value = value.trim();
            match key.trim() {
                "path" => entry.0 = Some(unquote(value).ok_or_else(|| bad("bad path string"))?),
                "rule" => {
                    let name = unquote(value).ok_or_else(|| bad("bad rule string"))?;
                    entry.1 = Some(Rule::parse(&name).ok_or_else(|| bad("unknown rule"))?);
                }
                "count" => {
                    entry.2 = Some(value.parse::<usize>().map_err(|_| bad("bad count"))?);
                }
                _ => return Err(bad("unknown key")),
            }
        }
        let last_line = text.lines().count();
        Self::finish_entry(&mut cur, &mut budgets, last_line)?;
        Ok(Allowlist { budgets })
    }

    fn finish_entry(
        cur: &mut Option<(Option<String>, Option<Rule>, Option<usize>)>,
        budgets: &mut BTreeMap<Key, usize>,
        lineno: usize,
    ) -> Result<(), LintError> {
        let Some((path, rule, count)) = cur.take() else {
            return Ok(());
        };
        match (path, rule, count) {
            (Some(p), Some(r), Some(c)) => {
                budgets.insert((p, r), c);
                Ok(())
            }
            _ => Err(LintError::Allowlist {
                line: lineno,
                message: "incomplete [[allow]] entry (need path, rule, count)".to_string(),
            }),
        }
    }

    /// Serialize deterministically (sorted by path, then rule).
    pub fn to_toml(&self) -> String {
        let mut out = String::from(HEADER);
        for ((path, rule), count) in &self.budgets {
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("path = \"{path}\"\n"));
            out.push_str(&format!("rule = \"{rule}\"\n"));
            out.push_str(&format!("count = {count}\n"));
        }
        out
    }

    /// Build an allowlist exactly covering the given per-key counts.
    pub fn from_counts(counts: &BTreeMap<Key, usize>) -> Self {
        Allowlist {
            budgets: counts
                .iter()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| (k.clone(), c))
                .collect(),
        }
    }

    /// Total budgeted violation count.
    pub fn total(&self) -> usize {
        self.budgets.values().sum()
    }
}

fn unquote(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    // Paths and rule names never contain escapes; reject rather than
    // mis-parse if one ever does.
    if inner.contains('\\') || inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_canonical_and_sorted() {
        let mut counts = BTreeMap::new();
        counts.insert(("crates/b/src/lib.rs".to_string(), Rule::L1), 2);
        counts.insert(("crates/a/src/lib.rs".to_string(), Rule::L2), 7);
        counts.insert(("crates/a/src/lib.rs".to_string(), Rule::L1), 1);
        counts.insert(("crates/z/src/lib.rs".to_string(), Rule::L4), 0); // dropped
        let al = Allowlist::from_counts(&counts);
        let text = al.to_toml();
        // a/L1 before a/L2 before b/L1; zero-count entry dropped
        let pos = |needle: &str| text.find(needle).expect("serialized");
        assert!(
            pos("crates/a/src/lib.rs\"\nrule = \"L1") < pos("crates/a/src/lib.rs\"\nrule = \"L2")
        );
        assert!(pos("rule = \"L2") < pos("crates/b/src/lib.rs"));
        assert!(!text.contains("crates/z"));
        let back = Allowlist::parse(&text).expect("canonical text parses");
        assert_eq!(back, al);
        // serialization is a fixed point
        assert_eq!(back.to_toml(), text);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(Allowlist::parse("count = 3\n").is_err());
        assert!(Allowlist::parse("[[allow]]\npath = \"a\"\n").is_err());
        assert!(Allowlist::parse("[[allow]]\npath = \"a\"\nrule = \"L9\"\ncount = 1\n").is_err());
        assert!(Allowlist::parse("[[allow]]\npath = \"a\"\nrule = \"L1\"\ncount = x\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let al = Allowlist::parse("# hi\n\n[[allow]]\npath = \"p\"\nrule = \"L3\"\ncount = 4\n")
            .expect("parses");
        assert_eq!(al.budgets.len(), 1);
        assert_eq!(al.budgets[&("p".to_string(), Rule::L3)], 4);
    }
}
