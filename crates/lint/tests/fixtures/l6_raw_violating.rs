//! L6 sub-rule (b) fixture: poison-panicking raw acquisitions. The
//! receivers are type-erased on purpose — the rule keys on the call
//! shape, not on the receiver's declared type.

pub fn raw_acquisitions(m: &M, rw: &R) -> u32 {
    let a = *m.lock().unwrap();
    let b = *rw.read().expect("poisoned");
    let c = *rw.write().unwrap();
    a + b + c
}
