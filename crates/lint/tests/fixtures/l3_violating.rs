//! L3 fixture: a kernel entry point missing its counter increment.

pub fn gridder_fixture(data: &KernelData<'_>, items: &[WorkItem]) -> Result<(), IdgError> {
    let _ = (data, items);
    Ok(())
}
