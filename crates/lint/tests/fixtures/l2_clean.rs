//! L2 fixture: tolerance comparison and the named narrowing helpers.

use idg_types::Float;

pub fn scale(x: f64, n: usize) -> f32 {
    let v = f32::from_f64(x);
    if v.abs() < 1e-6 {
        return 0.0;
    }
    v / f32::from_usize(n)
}
