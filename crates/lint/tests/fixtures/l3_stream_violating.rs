//! L3 fixture: a streaming-scheduler entry point missing its counter
//! increments — chunks would flow through the queue invisibly.

pub fn run_stream_fixture(chunk: Chunk, workers: usize) {
    let _ = (chunk, workers);
}
