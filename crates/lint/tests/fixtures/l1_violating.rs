//! L1 fixture: panic sites plus boundary indexing (lint this under the
//! boundary path to get all four diagnostics).

pub fn first(v: &[u32]) -> u32 {
    let x = v.first().unwrap();
    let y = v.last().expect("non-empty");
    if *x > *y {
        panic!("inverted");
    }
    v[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1).unwrap();
    }
}
