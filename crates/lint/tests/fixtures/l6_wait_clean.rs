//! L6 sub-rule (a) clean fixture: every wait sits directly inside a
//! `while`/`loop` body that re-checks its predicate.
use idg_sync::{Condvar, Mutex};

pub fn wait_in_while(m: &Mutex<bool>, cv: &Condvar) {
    let mut g = m.lock();
    while !*g {
        g = cv.wait(g);
    }
}

pub fn wait_in_loop(m: &Mutex<usize>, cv: &Condvar) -> usize {
    let mut g = m.lock();
    loop {
        if *g > 0 {
            break *g;
        }
        g = cv.wait(g);
    }
}
