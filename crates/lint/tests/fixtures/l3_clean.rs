//! L3 fixture: the same entry point satisfying the counter contract.

pub fn gridder_fixture(
    counters: &Counters,
    data: &KernelData<'_>,
    items: &[WorkItem],
) -> Result<(), IdgError> {
    counters.add_kernel(KernelKind::Gridder, items.len());
    let _ = data;
    Ok(())
}
