//! L4 fixture: failure signaled without a typed error.

pub fn parse_scale(s: &str) -> Option<u32> {
    s.parse().ok()
}

pub fn load_table(path: &str) -> Result<Vec<u8>, String> {
    Err(path.to_string())
}
