//! L3 fixture: the same streaming entry point satisfying the counter
//! contract.

pub fn run_stream_fixture(chunk: Chunk, workers: usize) {
    idg_obs::add_chunks_ingested(1);
    let _ = (chunk, workers);
}
