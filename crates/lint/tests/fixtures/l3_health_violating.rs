//! L3 fixture: a breaker health entry point missing its counter
//! increment — the tracker would absorb outcomes invisibly.

pub fn record_outcome_fixture(outcome: JobOutcome, now: f64) {
    let _ = (outcome, now);
}
