//! L6 sub-rule (a) fixture: condvar waits outside a predicate
//! re-check loop — one bare, one if-guarded, one hidden in a plain
//! block inside an outer loop (the seeded stream-mutant shape).
use idg_sync::{Condvar, Mutex};

pub fn bare_wait(m: &Mutex<bool>, cv: &Condvar) {
    let mut g = m.lock();
    g = cv.wait(g);
    let _ = *g;
}

pub fn if_guarded_wait(m: &Mutex<bool>, cv: &Condvar) {
    let mut g = m.lock();
    if !*g {
        g = cv.wait(g);
    }
    let _ = *g;
}

pub fn block_hidden_wait(m: &Mutex<bool>, cv: &Condvar) {
    loop {
        let done = {
            let mut g = m.lock();
            g = cv.wait(g);
            *g
        };
        if done {
            break;
        }
    }
}
