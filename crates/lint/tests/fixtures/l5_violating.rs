//! L5 fixture: a crate root without the forbid attribute.

pub struct Marker;
