//! L6 sub-rule (d) fixture: kernel entry points launched while a lock
//! guard binding is live — directly, and from a nested block that
//! inherits the outer guard.
use idg_sync::Mutex;

pub fn launch_under_guard(state: &Mutex<u32>, data: &mut K) {
    let st = state.lock();
    gridder_cpu(data);
    let _ = *st;
}

pub fn launch_under_guard_nested(state: &Mutex<u32>, data: &mut K) {
    let st = state.lock();
    {
        fft_subgrids(data);
    }
    let _ = *st;
}
