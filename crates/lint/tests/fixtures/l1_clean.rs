//! L1 fixture: the same lookup with typed fallibility — clean even
//! under the boundary-indexing path.

use idg_types::IdgError;

pub fn first(v: &[u32]) -> Result<u32, IdgError> {
    v.first()
        .copied()
        .ok_or_else(|| IdgError::InvalidParameter("empty input".to_string()))
}
