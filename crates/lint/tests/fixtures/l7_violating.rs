//! L7 fixture: concurrency primitives taken from std instead of the
//! facade — grouped imports, a plain import, an aliased import, a
//! std::thread::scope import, and inline qualified paths.
use std::sync::Condvar;
use std::sync::RwLock as Lock;
use std::sync::{Arc, Mutex};
use std::thread::scope;

pub fn qualified(n: u32) -> u32 {
    let m = std::sync::Mutex::new(n);
    std::thread::scope(|_s| {});
    let _ = (&m, Arc::new(0u8));
    n
}
