//! L2 fixture: float literal equality plus a raw narrowing cast (lint
//! under a numeric-core crate path for both; only the equality fires
//! elsewhere).

pub fn scale(x: f64, n: usize) -> f32 {
    if x == 0.0 {
        return 0.0;
    }
    (x / n as f64) as f32
}

/// Named helper: narrowing here is the blessed path.
pub fn narrow_f32(x: f64) -> f32 {
    x as f32
}
