//! L7 clean fixture: primitives from the facade; atomics, `Arc`, and
//! `mpsc` straight from std are fine — the model checker interposes on
//! blocking primitives only.
use idg_sync::{thread, Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

pub fn uses_facade(n: u64) -> u64 {
    let m = Arc::new(Mutex::new(n));
    let a = AtomicU64::new(n);
    let (_tx, _rx) = mpsc::channel::<u64>();
    thread::scope(|_s| {
        let _ = (&m, Condvar::new(), RwLock::new(n));
    });
    a.load(Ordering::SeqCst)
}
