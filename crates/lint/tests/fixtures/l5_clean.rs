//! L5 fixture: a crate root carrying the forbid attribute.

#![forbid(unsafe_code)]

pub struct Marker;
