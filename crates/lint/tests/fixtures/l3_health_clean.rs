//! L3 fixture: the same health entry point satisfying the counter
//! contract.

pub fn record_outcome_fixture(outcome: JobOutcome, now: f64) {
    idg_obs::add_health_outcomes(1);
    let _ = (outcome, now);
}
