//! L6 sub-rule (d) clean fixture: guards released — by `drop` or by
//! scope exit — before any kernel entry point runs, and obs counter
//! calls sharing a launch prefix left alone.
use idg_sync::Mutex;

pub fn launch_after_drop(state: &Mutex<u32>, data: &mut K) {
    let st = state.lock();
    let n = *st;
    drop(st);
    gridder_cpu(data);
    let _ = n;
}

pub fn launch_after_scope(state: &Mutex<u32>, data: &mut K) {
    {
        let _st = state.lock();
    }
    fft_subgrids(data);
}

pub fn counter_under_guard(state: &Mutex<u32>) {
    let st = state.lock();
    idg_obs::add_subgrids_added(*st as u64);
}
