//! L6 sub-rule (b) clean fixture: facade acquisitions return guards
//! directly — no poison unwrapping anywhere.
use idg_sync::{Mutex, RwLock};

pub fn facade_acquisitions(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    let a = *m.lock();
    let b = *rw.read();
    let c = *rw.write();
    a + b + c
}
