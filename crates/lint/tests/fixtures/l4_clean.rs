//! L4 fixture: fallibility through `Result<_, IdgError>`.

use idg_types::IdgError;

pub fn parse_scale(s: &str) -> Result<u32, IdgError> {
    s.parse()
        .map_err(|_| IdgError::InvalidParameter(s.to_string()))
}
