//! L6 sub-rule (c) fixture: acquisitions against the declared
//! hierarchy — the collector (inner class) taken before the session
//! gate (outer class), in both the direct and the helper-call form.

pub fn wrong_order_direct() {
    let c = COLLECTOR.lock();
    let g = SESSION_GATE.lock();
    let _ = (c, g);
}

pub fn wrong_order_helper() {
    let c = lock_collector();
    let g = SESSION_GATE.lock();
    let _ = (c, g);
}
