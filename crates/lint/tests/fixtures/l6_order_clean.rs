//! L6 sub-rule (c) clean fixture: the declared order — session gate
//! strictly before the collector — and single-class acquisitions.

pub fn declared_order() {
    let g = SESSION_GATE.lock();
    let c = lock_collector();
    let _ = (g, c);
}

pub fn collector_alone() {
    let c = lock_collector();
    let _ = c;
}
